//! Property tests for the MAPE-K core: guardrail arithmetic, confidence
//! algebra, Knowledge round-trips, and loop-engine behavioural
//! invariants that hold for *any* domain (tested over a scalar domain
//! with scripted components).

use moda_core::component::{Analyzer, Executor, Monitor, Plan, PlannedAction, Planner};
use moda_core::domain::Domain;
use moda_core::knowledge::{Knowledge, OutcomeRecord, RunRecord};
use moda_core::{AutonomyMode, Confidence, ConfidenceGate, Guard, GuardConfig, MapeLoop};
use moda_sim::{SimDuration, SimTime};
use proptest::prelude::*;
use std::cell::Cell;
use std::collections::BTreeMap;
use std::rc::Rc;

// ------------------------------------------------------------- confidence

proptest! {
    /// Confidence is clamped to [0,1]; `and` is commutative, monotone,
    /// and never exceeds either operand (a conjunction).
    #[test]
    fn confidence_algebra(a in -1.0f64..2.0, b in -1.0f64..2.0) {
        let ca = Confidence::new(a);
        let cb = Confidence::new(b);
        prop_assert!((0.0..=1.0).contains(&ca.value()));
        let ab = ca.and(cb);
        let ba = cb.and(ca);
        prop_assert_eq!(ab.value(), ba.value());
        prop_assert!(ab.value() <= ca.value() + 1e-12);
        prop_assert!(ab.value() <= cb.value() + 1e-12);
    }

    /// Interval-derived confidence decreases with relative width; support
    /// confidence increases with n. Both stay in [0,1].
    #[test]
    fn confidence_sources_monotone(est in 1.0f64..1e5, w1 in 0.0f64..1e5, dw in 0.1f64..1e4, n in 0u64..1000) {
        let tight = Confidence::from_interval(est, w1, 2.0);
        let loose = Confidence::from_interval(est, w1 + dw, 2.0);
        prop_assert!(loose.value() <= tight.value() + 1e-12);
        let less = Confidence::from_support(n, 5.0);
        let more = Confidence::from_support(n + 10, 5.0);
        prop_assert!(less.value() <= more.value() + 1e-12);
        for c in [tight, loose, less, more] {
            prop_assert!((0.0..=1.0).contains(&c.value()));
        }
    }

    /// The gate admits exactly confidences ≥ threshold.
    #[test]
    fn gate_threshold_semantics(t in 0.0f64..1.0, c in 0.0f64..1.0) {
        let gate = ConfidenceGate::new(t);
        prop_assert_eq!(gate.passes(Confidence::new(c)), c >= t);
    }
}

// ------------------------------------------------------------- guard

proptest! {
    /// Count caps: exactly `cap` commits are admitted, ever.
    #[test]
    fn guard_count_cap_exact(cap in 0u32..20, attempts in 1u32..60) {
        let mut g = Guard::new(GuardConfig::unlimited().with_max_count("x", cap));
        let mut ok = 0;
        for i in 0..attempts {
            if g.admit(SimTime::from_secs(i as u64), "x", 1.0).is_ok() {
                ok += 1;
            }
        }
        prop_assert_eq!(ok, attempts.min(cap));
        prop_assert_eq!(g.allowed_count() + g.blocked_count(), attempts as u64);
    }

    /// Magnitude budgets: the admitted total never exceeds the budget,
    /// and a request is refused only if it would overflow it.
    #[test]
    fn guard_magnitude_budget(budget in 1.0f64..1000.0, sizes in prop::collection::vec(0.1f64..100.0, 1..50)) {
        let mut g = Guard::new(GuardConfig::unlimited().with_max_magnitude("ext", budget));
        let mut total = 0.0;
        for (i, &m) in sizes.iter().enumerate() {
            match g.admit(SimTime::from_secs(i as u64), "ext", m) {
                Ok(()) => {
                    total += m;
                    prop_assert!(total <= budget + 1e-9);
                }
                Err(_) => {
                    prop_assert!(total + m > budget - 1e-9);
                }
            }
        }
        prop_assert!((g.magnitude_of("ext") - total).abs() < 1e-9);
    }

    /// Min-gap: two admitted actions of the same kind are never closer
    /// than the configured spacing.
    #[test]
    fn guard_min_gap_enforced(gap_s in 1u64..100, times in prop::collection::vec(0u64..1000, 1..60)) {
        let gap = SimDuration::from_secs(gap_s);
        let mut g = Guard::new(GuardConfig::unlimited().with_min_gap("k", gap));
        let mut sorted = times.clone();
        sorted.sort_unstable();
        let mut admitted: Vec<u64> = Vec::new();
        for &t in &sorted {
            if g.admit(SimTime::from_secs(t), "k", 0.0).is_ok() {
                admitted.push(t);
            }
        }
        for w in admitted.windows(2) {
            prop_assert!(w[1] - w[0] >= gap_s, "gap violated: {:?}", w);
        }
    }

    /// Rate limit: inside any window, at most `n` actions are admitted.
    #[test]
    fn guard_rate_limit_holds(n in 1u32..10, times in prop::collection::vec(0u64..500, 1..80)) {
        let window = SimDuration::from_secs(60);
        let mut g = Guard::new(GuardConfig::unlimited().with_rate_limit(window, n));
        let mut sorted = times.clone();
        sorted.sort_unstable();
        let mut admitted: Vec<u64> = Vec::new();
        for &t in &sorted {
            if g.admit(SimTime::from_secs(t), "any", 0.0).is_ok() {
                admitted.push(t);
            }
        }
        // Sliding-window check over admitted timestamps.
        for (i, &t) in admitted.iter().enumerate() {
            let in_window = admitted[..=i]
                .iter()
                .filter(|&&u| t - u < 60)
                .count();
            prop_assert!(in_window <= n as usize, "rate limit violated at {t}");
        }
    }
}

// ------------------------------------------------------------- knowledge

proptest! {
    /// Knowledge round-trips losslessly through JSON for arbitrary
    /// contents (the §III.iii open-dataset promise).
    #[test]
    fn knowledge_json_roundtrip(
        runs in prop::collection::vec((0.0f64..1e6, 1u64..1_000_000), 0..20),
        facts in prop::collection::btree_map("[a-z]{1,12}", -1e9f64..1e9, 0..20),
    ) {
        let mut k = Knowledge::new();
        for (i, &(runtime, steps)) in runs.iter().enumerate() {
            k.record_run(RunRecord {
                app_class: format!("c{}", i % 3),
                signature: vec![runtime, steps as f64],
                runtime_s: runtime,
                total_steps: steps,
                metadata: BTreeMap::new(),
            });
        }
        for (key, &v) in &facts {
            k.set_fact(key.clone(), v);
        }
        k.record_outcome(OutcomeRecord {
            loop_name: "l".into(),
            t: SimTime::from_secs(1),
            kind: "k".into(),
            confidence: 0.5,
            success: None,
            error: 0.0,
        });
        let json = serde_json::to_string(&k).unwrap();
        let back: Knowledge = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(serde_json::to_string(&back).unwrap(), json);
        prop_assert_eq!(back.run_count(), runs.len());
        for (key, &v) in &facts {
            prop_assert_eq!(back.fact(key), Some(v));
        }
    }

    /// `mean_runtime` is the arithmetic mean of the class's runs only.
    #[test]
    fn knowledge_mean_runtime_per_class(
        a_runs in prop::collection::vec(1.0f64..1e5, 1..20),
        b_runs in prop::collection::vec(1.0f64..1e5, 0..20),
    ) {
        let mut k = Knowledge::new();
        let rec = |class: &str, rt: f64| RunRecord {
            app_class: class.into(),
            signature: vec![],
            runtime_s: rt,
            total_steps: 1,
            metadata: BTreeMap::new(),
        };
        for &r in &a_runs { k.record_run(rec("a", r)); }
        for &r in &b_runs { k.record_run(rec("b", r)); }
        let want = a_runs.iter().sum::<f64>() / a_runs.len() as f64;
        prop_assert!((k.mean_runtime("a").unwrap() - want).abs() < 1e-9 * want);
        prop_assert_eq!(k.mean_runtime("b").is_some(), !b_runs.is_empty());
        prop_assert_eq!(k.mean_runtime("zzz"), None);
    }
}

// ------------------------------------------------------------- loop engine

/// Scripted scalar domain for engine-level properties.
#[derive(Debug)]
struct Scripted;
impl Domain for Scripted {
    type Obs = f64;
    type Assessment = f64;
    type Action = f64;
    type Outcome = bool;
}

struct ConstMonitor(f64);
impl Monitor<Scripted> for ConstMonitor {
    fn observe(&mut self, _n: SimTime) -> Option<f64> {
        Some(self.0)
    }
}
struct Id;
impl Analyzer<Scripted> for Id {
    fn analyze(&mut self, _n: SimTime, o: &f64, _k: &Knowledge) -> f64 {
        *o
    }
}
/// Emits one action per tick with the configured confidence.
struct AlwaysAct {
    confidence: f64,
}
impl Planner<Scripted> for AlwaysAct {
    fn plan(&mut self, _n: SimTime, v: &f64, _k: &Knowledge) -> Plan<f64> {
        Plan::single(PlannedAction::new(
            *v,
            "act",
            Confidence::new(self.confidence),
        ))
    }
}
struct CountExec(Rc<Cell<usize>>);
impl Executor<Scripted> for CountExec {
    fn execute(&mut self, _n: SimTime, _a: &f64) -> bool {
        self.0.set(self.0.get() + 1);
        true
    }
}

fn scripted_loop(
    confidence: f64,
    gate: f64,
    mode: AutonomyMode,
) -> (MapeLoop<Scripted>, Rc<Cell<usize>>) {
    let hits = Rc::new(Cell::new(0));
    let l = MapeLoop::new(
        "prop-loop",
        Box::new(ConstMonitor(1.0)),
        Box::new(Id),
        Box::new(AlwaysAct { confidence }),
        Box::new(CountExec(hits.clone())),
    )
    .with_gate(ConfidenceGate::new(gate))
    .with_mode(mode);
    (l, hits)
}

proptest! {
    /// Executed + blocked + queued always equals planned, whatever the
    /// gate, mode, and confidence (no action is silently dropped).
    #[test]
    fn loop_report_conserves_actions(
        confidence in 0.0f64..1.0,
        gate in 0.0f64..1.0,
        ticks in 1u64..30,
        mode_pick in 0usize..3,
    ) {
        let mode = match mode_pick {
            0 => AutonomyMode::Autonomous,
            1 => AutonomyMode::HumanOnTheLoop,
            _ => AutonomyMode::HumanInTheLoop { latency: SimDuration::from_secs(30) },
        };
        let (mut l, hits) = scripted_loop(confidence, gate, mode);
        let mut planned = 0;
        let mut executed = 0;
        let mut blocked = 0;
        let mut queued = 0;
        for i in 0..ticks {
            let r = l.tick(SimTime::from_secs(i * 10));
            planned += r.planned;
            executed += r.executed;
            blocked += r.blocked;
            queued += r.queued;
        }
        // Conservation: every planned action is blocked, executed, or
        // still awaiting approval. (Released queued actions count once:
        // they appear in `queued` at plan time and move to `executed` on
        // release, so cumulative executed = queued − pending in HITL.)
        prop_assert_eq!(planned, blocked + executed + l.pending_count());
        if matches!(mode, AutonomyMode::HumanInTheLoop { .. }) {
            prop_assert_eq!(executed + l.pending_count(), queued);
        } else {
            prop_assert_eq!(queued, 0);
        }
        prop_assert_eq!(hits.get(), executed);
        // Gate semantics: below-threshold plans never execute.
        if confidence < gate {
            prop_assert_eq!(executed, 0);
            prop_assert_eq!(blocked, planned);
        }
    }

    /// Human-in-the-loop latency: nothing executes before the approval
    /// delay has elapsed, everything executes after it (given ticks).
    #[test]
    fn human_latency_delays_execution(latency_s in 10u64..200, period_s in 1u64..40) {
        let (mut l, hits) = scripted_loop(
            0.9,
            0.0,
            AutonomyMode::HumanInTheLoop { latency: SimDuration::from_secs(latency_s) },
        );
        let mut t = SimTime::ZERO;
        // First tick plans + queues.
        l.tick(t);
        prop_assert_eq!(hits.get(), 0);
        prop_assert_eq!(l.pending_count(), 1);
        // Tick until just before the release time: still nothing.
        while t + SimDuration::from_secs(period_s) < SimTime::from_secs(latency_s) {
            t += SimDuration::from_secs(period_s);
            l.tick(t);
        }
        prop_assert_eq!(hits.get(), 0, "executed before approval latency");
        // One tick at/after the deadline releases it.
        l.tick(SimTime::from_secs(latency_s));
        prop_assert!(hits.get() >= 1, "approved action never released");
    }
}
