//! Property tests for the analytics toolbox.
//!
//! DESIGN.md §7 promises: forecast monotonicity under clean progress and
//! CUSUM detection bounds. Added here: estimator exactness on noiseless
//! inputs, robustness guarantees that justify the Theil–Sen default, RLS
//! convergence, and k-NN ordering invariants.

use moda_analytics::forecast::{theil_sen, Estimator, LinearFit, ProgressForecaster};
use moda_analytics::{
    knn, Cusum, CusumVerdict, MadDetector, RlsModel, RunSignature, ZScoreDetector,
};
use moda_core::knowledge::RunRecord;
use proptest::prelude::*;
use std::collections::BTreeMap;

// ------------------------------------------------------------- fitting

proptest! {
    /// Both estimators recover a noiseless line exactly — any slope, any
    /// intercept, any (distinct) sample positions.
    #[test]
    fn estimators_recover_noiseless_lines(
        slope in -100.0f64..100.0,
        intercept in -1e4f64..1e4,
        xs in prop::collection::btree_set(0u32..10_000, 2..60),
    ) {
        let pts: Vec<(f64, f64)> = xs
            .iter()
            .map(|&x| (x as f64, slope * x as f64 + intercept))
            .collect();
        let ols = LinearFit::fit(&pts).unwrap();
        let ts = theil_sen(&pts).unwrap();
        let scale = slope.abs().max(1.0);
        prop_assert!((ols.slope - slope).abs() < 1e-6 * scale);
        prop_assert!((ts.slope - slope).abs() < 1e-6 * scale);
        prop_assert!((ols.intercept - intercept).abs() < 1e-5 * intercept.abs().max(1.0));
    }

    /// Theil–Sen shrugs off a minority of arbitrarily-wild outliers —
    /// the property that makes it the default for progress markers
    /// (stragglers and I/O stalls corrupt individual markers).
    #[test]
    fn theil_sen_resists_outliers(
        slope in 0.1f64..50.0,
        outlier in -1e6f64..1e6,
        n_outliers in 1usize..5,
    ) {
        let n = 31;
        let mut pts: Vec<(f64, f64)> = (0..n)
            .map(|i| (i as f64, slope * i as f64))
            .collect();
        for k in 0..n_outliers {
            pts[5 + 2 * k].1 = outlier;
        }
        let ts = theil_sen(&pts).unwrap();
        prop_assert!(
            (ts.slope - slope).abs() < slope * 0.15 + 1e-9,
            "Theil–Sen slope {} vs true {} with {} outliers",
            ts.slope, slope, n_outliers
        );
    }

    /// Forecast sanity on clean linear progress: ETA equals
    /// remaining-steps ÷ rate, and more completed work ⇒ shorter ETA
    /// (monotonicity).
    #[test]
    fn forecast_monotone_in_progress(rate in 0.1f64..10.0, total in 100.0f64..10_000.0) {
        let f = ProgressForecaster::new(Estimator::TheilSen);
        let mk = |k: usize| -> Vec<(f64, f64)> {
            (0..k).map(|i| (i as f64 * 10.0, rate * i as f64 * 10.0)).collect()
        };
        let early = f.forecast(&mk(10), total, 90.0).unwrap();
        let late = f.forecast(&mk(30), total, 290.0).unwrap();
        let expect_early = (total - rate * 90.0).max(0.0) / rate;
        prop_assert!((early.eta_s - expect_early).abs() < 1e-6 * expect_early.max(1.0));
        prop_assert!(late.eta_s <= early.eta_s + 1e-9);
        // Rates recovered exactly on clean input.
        prop_assert!((early.rate - rate).abs() < 1e-9 * rate.max(1.0));
    }

    /// A stalled job (zero or negative rate) yields no forecast rather
    /// than a bogus one.
    #[test]
    fn stalled_jobs_produce_no_forecast(level in 0.0f64..100.0) {
        let f = ProgressForecaster::new(Estimator::TheilSen);
        let pts: Vec<(f64, f64)> = (0..20).map(|i| (i as f64 * 10.0, level)).collect();
        prop_assert!(f.forecast(&pts, 1000.0, 200.0).is_none());
    }
}

// ------------------------------------------------------------- anomaly

proptest! {
    /// CUSUM never fires during calibration, always fires on a large
    /// sustained shift within a bounded number of samples, and the
    /// detection bound shrinks as the shift grows.
    #[test]
    fn cusum_detects_sustained_shifts(
        baseline in -100.0f64..100.0,
        shift_sigmas in 2.0f64..20.0,
    ) {
        let mut c = Cusum::new(0.5, 4.0, 20);
        // Calibration: gentle deterministic wobble around the baseline
        // (σ estimated from it is small but nonzero).
        for i in 0..20 {
            let wobble = if i % 2 == 0 { 0.5 } else { -0.5 };
            prop_assert_eq!(c.update(baseline + wobble), CusumVerdict::InControl);
        }
        prop_assert!(!c.calibrating());
        // Sustained downward shift of `shift_sigmas` σ must fire within
        // ceil(h / (shift − k)) + 1 samples of drift accumulation.
        let sigma = 0.5; // wobble std ≈ 0.5
        let shifted = baseline - shift_sigmas * sigma;
        let bound = (4.0 / (shift_sigmas - 0.5)).ceil() as usize + 2;
        let mut fired_at = None;
        for i in 0..bound + 4 {
            if c.update(shifted) == CusumVerdict::ShiftDown {
                fired_at = Some(i);
                break;
            }
        }
        let at = fired_at.expect("sustained shift must be detected");
        prop_assert!(at <= bound, "fired at {at} > bound {bound}");
    }

    /// Z-score and MAD agree that in-window values are unremarkable and
    /// that a point far outside the window is anomalous.
    #[test]
    fn detectors_flag_gross_outliers(center in -100.0f64..100.0) {
        let mut z = ZScoreDetector::new(64, 3.0);
        let mut m = MadDetector::new(64, 3.5);
        for i in 0..64 {
            let x = center + if i % 2 == 0 { 1.0 } else { -1.0 };
            z.score_and_push(x);
            m.score_and_push(x);
        }
        prop_assert!(!z.is_anomalous(center));
        prop_assert!(!m.is_anomalous(center));
        let far = center + 1000.0;
        prop_assert!(z.is_anomalous(far));
        prop_assert!(m.is_anomalous(far));
    }
}

// ------------------------------------------------------------- online

proptest! {
    /// RLS with forgetting converges to the generating weights on a
    /// stationary stream (and its prediction error goes to ~zero).
    #[test]
    fn rls_converges_on_stationary_data(
        w0 in -10.0f64..10.0,
        w1 in -10.0f64..10.0,
        lambda in 0.95f64..1.0,
    ) {
        let mut m = RlsModel::new(2, lambda, 100.0);
        // Deterministic persistent excitation: rotate through distinct xs.
        for i in 0..400 {
            let x1 = ((i % 17) as f64) - 8.0;
            let y = w0 + w1 * x1;
            m.update(&[1.0, x1], y);
        }
        let probe = [1.0, 3.5];
        let want = w0 + w1 * 3.5;
        prop_assert!(
            (m.predict(&probe) - want).abs() < 1e-3 * want.abs().max(1.0),
            "prediction {} vs truth {}", m.predict(&probe), want
        );
    }

    /// After a regime change, forgetting RLS re-converges; its post-drift
    /// error drops below the never-forgetting variant's.
    #[test]
    fn forgetting_beats_remembering_under_drift(shift in 1.5f64..5.0) {
        let mut forget = RlsModel::new(2, 0.95, 100.0);
        let mut keep = RlsModel::new(2, 1.0, 100.0);
        let gen = |i: usize, factor: f64| -> ([f64; 2], f64) {
            let x1 = ((i % 13) as f64) + 1.0;
            ([1.0, x1], factor * 2.0 * x1)
        };
        for i in 0..300 {
            let (x, y) = gen(i, 1.0);
            forget.update(&x, y);
            keep.update(&x, y);
        }
        for i in 300..450 {
            let (x, y) = gen(i, shift);
            forget.update(&x, y);
            keep.update(&x, y);
        }
        let (xp, yp) = gen(7, shift);
        let e_forget = (forget.predict(&xp) - yp).abs();
        let e_keep = (keep.predict(&xp) - yp).abs();
        prop_assert!(
            e_forget < e_keep,
            "forgetting error {e_forget} not below remembering {e_keep}"
        );
    }
}

// ------------------------------------------------------------- knn

fn record(sig: RunSignature, runtime: f64) -> RunRecord {
    RunRecord {
        app_class: "p".into(),
        signature: sig.to_vec(),
        runtime_s: runtime,
        total_steps: 1,
        metadata: BTreeMap::new(),
    }
}

proptest! {
    /// knn returns at most k unique indices, sorted by non-decreasing
    /// distance, and an exact-match query always ranks first.
    #[test]
    fn knn_ordering_invariants(
        scales in prop::collection::vec(0.0f64..1e4, 2..50),
        k in 1usize..10,
        pick in 0usize..50,
    ) {
        let records: Vec<RunRecord> = scales
            .iter()
            .map(|&s| record(
                RunSignature { mean_step_s: 0.0, step_cv: 0.0, io_fraction: 0.0, nodes: 0.0, scale: s },
                s * 2.0,
            ))
            .collect();
        let pick = pick % scales.len();
        let query = RunSignature {
            mean_step_s: 0.0, step_cv: 0.0, io_fraction: 0.0, nodes: 0.0, scale: scales[pick],
        };
        let hits = knn(&query, &records, k);
        prop_assert!(hits.len() <= k);
        prop_assert!(!hits.is_empty());
        // Sorted by distance.
        prop_assert!(hits.windows(2).all(|w| w[0].1 <= w[1].1));
        // Unique indices in range.
        let mut idx: Vec<usize> = hits.iter().map(|h| h.0).collect();
        idx.sort_unstable();
        idx.dedup();
        prop_assert_eq!(idx.len(), hits.len());
        // Exact match is nearest (distance 0).
        prop_assert_eq!(hits[0].1, 0.0);
        prop_assert_eq!(scales[hits[0].0], scales[pick]);
    }
}
