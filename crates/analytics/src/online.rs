//! Continual learning: recursive least squares with forgetting.
//!
//! §IV argues against "large models with millions of parameters" for
//! real-time loop decisions and for "continual/lifelong AI that can
//! evolve rapidly with small overhead". [`RlsModel`] is exactly that: an
//! online linear model `y = wᵀx` updated per observation in O(d²), whose
//! forgetting factor `λ < 1` exponentially discounts old data — so when
//! the workload drifts (experiment E9), the model tracks the new regime
//! instead of averaging across both.

use serde::{Deserialize, Serialize};

/// Recursive least squares with exponential forgetting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RlsModel {
    dim: usize,
    /// Weight vector.
    w: Vec<f64>,
    /// Inverse covariance estimate (row-major d×d).
    p: Vec<f64>,
    /// Forgetting factor in `(0, 1]`; 1 = ordinary RLS (infinite memory).
    lambda: f64,
    updates: u64,
}

impl RlsModel {
    /// Model of input dimension `dim` with forgetting factor `lambda`.
    /// `delta` scales the initial covariance (large = weak prior).
    pub fn new(dim: usize, lambda: f64, delta: f64) -> Self {
        assert!(dim >= 1, "dimension must be at least 1");
        assert!(
            lambda > 0.0 && lambda <= 1.0,
            "forgetting factor must be in (0, 1]"
        );
        assert!(delta > 0.0, "prior scale must be positive");
        let mut p = vec![0.0; dim * dim];
        for i in 0..dim {
            p[i * dim + i] = delta;
        }
        RlsModel {
            dim,
            w: vec![0.0; dim],
            p,
            lambda,
            updates: 0,
        }
    }

    /// Input dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Observations folded in so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Current weights.
    pub fn weights(&self) -> &[f64] {
        &self.w
    }

    /// Predict `y` for input `x`.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim, "input dimension mismatch");
        self.w.iter().zip(x).map(|(w, x)| w * x).sum()
    }

    /// Fold in one observation `(x, y)`; returns the pre-update
    /// prediction error (the innovation).
    pub fn update(&mut self, x: &[f64], y: f64) -> f64 {
        assert_eq!(x.len(), self.dim, "input dimension mismatch");
        let d = self.dim;
        // px = P·x
        let px: Vec<f64> = self
            .p
            .chunks_exact(d)
            .map(|row| row.iter().zip(x).map(|(p, x)| p * x).sum())
            .collect();
        // denom = λ + xᵀ·P·x
        let xpx: f64 = x.iter().zip(&px).map(|(x, px)| x * px).sum();
        let denom = self.lambda + xpx;
        // Gain k = P·x / denom
        let k: Vec<f64> = px.iter().map(|v| v / denom).collect();
        let err = y - self.predict(x);
        for (w, k) in self.w.iter_mut().zip(&k) {
            *w += k * err;
        }
        // P ← (P − k·(xᵀP)) / λ ; xᵀP = pxᵀ because P is symmetric.
        for (row, k) in self.p.chunks_exact_mut(d).zip(&k) {
            for (p, px) in row.iter_mut().zip(&px) {
                *p = (*p - k * px) / self.lambda;
            }
        }
        self.updates += 1;
        err
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn converges_to_true_weights() {
        let mut m = RlsModel::new(2, 1.0, 1000.0);
        let mut rng = StdRng::seed_from_u64(3);
        // y = 2·x0 − 3·x1 + noise.
        for _ in 0..500 {
            let x = [rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)];
            let y = 2.0 * x[0] - 3.0 * x[1] + rng.gen_range(-0.01..0.01);
            m.update(&x, y);
        }
        assert!(
            (m.weights()[0] - 2.0).abs() < 0.05,
            "w0 = {}",
            m.weights()[0]
        );
        assert!(
            (m.weights()[1] + 3.0).abs() < 0.05,
            "w1 = {}",
            m.weights()[1]
        );
        assert_eq!(m.updates(), 500);
    }

    #[test]
    fn prediction_error_shrinks() {
        let mut m = RlsModel::new(1, 1.0, 100.0);
        let mut early = 0.0;
        let mut late = 0.0;
        for i in 0..200 {
            let x = [(i % 10) as f64 + 1.0];
            let e = m.update(&x, 5.0 * x[0]).abs();
            if i < 10 {
                early += e;
            }
            if i >= 190 {
                late += e;
            }
        }
        assert!(late < early * 0.01, "early {early} late {late}");
    }

    #[test]
    fn forgetting_tracks_drift_where_infinite_memory_lags() {
        let mut forgetful = RlsModel::new(1, 0.95, 100.0);
        let mut eternal = RlsModel::new(1, 1.0, 100.0);
        // Regime 1: y = 1·x for 300 steps; then regime 2: y = 4·x.
        for i in 0..600 {
            let x = [((i % 7) + 1) as f64];
            let w = if i < 300 { 1.0 } else { 4.0 };
            forgetful.update(&x, w * x[0]);
            eternal.update(&x, w * x[0]);
        }
        let f_err = (forgetful.predict(&[1.0]) - 4.0).abs();
        let e_err = (eternal.predict(&[1.0]) - 4.0).abs();
        assert!(f_err < 0.1, "forgetful failed to track drift: {f_err}");
        assert!(
            f_err < e_err,
            "forgetting must beat infinite memory under drift"
        );
    }

    #[test]
    fn bias_term_via_constant_feature() {
        let mut m = RlsModel::new(2, 1.0, 1000.0);
        // y = 3·x + 7, encoded as x_vec = [x, 1].
        for i in 0..200 {
            let x = (i % 13) as f64;
            m.update(&[x, 1.0], 3.0 * x + 7.0);
        }
        assert!((m.predict(&[10.0, 1.0]) - 37.0).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dimension_panics() {
        let m = RlsModel::new(2, 1.0, 1.0);
        m.predict(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "forgetting factor")]
    fn bad_lambda_rejected() {
        RlsModel::new(1, 0.0, 1.0);
    }
}
