//! Progress forecasting.
//!
//! The Scheduler case (§III) monitors progress markers ("simulation
//! time-step" values dropped by rank 0) and must forecast time to
//! completion robustly against step-time noise and phase changes. Two
//! estimators are provided:
//!
//! * ordinary least squares ([`LinearFit`]) — cheap, optimal under
//!   homoscedastic noise,
//! * Theil–Sen ([`theil_sen`]) — robust to outlier markers (I/O stalls,
//!   checkpoint pauses), at O(n²) in the window size.
//!
//! [`ProgressForecaster`] wraps either into the loop-facing API: feed
//! `(time, steps_done)` samples, get a [`Forecast`] with an ETA, a
//! prediction interval, and a [`Confidence`] derived from interval
//! tightness and sample support — the §IV requirement that decisions
//! carry confidence.

use moda_core::Confidence;
use serde::{Deserialize, Serialize};

/// Ordinary-least-squares line fit `y = slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    /// Slope.
    pub slope: f64,
    /// Intercept.
    pub intercept: f64,
    /// Residual standard deviation.
    pub residual_std: f64,
    /// Points fitted.
    pub n: usize,
}

impl LinearFit {
    /// Fit `(x, y)` points; `None` for fewer than 2 points or a
    /// degenerate (zero-variance) x.
    pub fn fit(points: &[(f64, f64)]) -> Option<LinearFit> {
        let n = points.len();
        if n < 2 {
            return None;
        }
        let nf = n as f64;
        let mx = points.iter().map(|p| p.0).sum::<f64>() / nf;
        let my = points.iter().map(|p| p.1).sum::<f64>() / nf;
        let sxx: f64 = points.iter().map(|p| (p.0 - mx) * (p.0 - mx)).sum();
        if sxx <= 0.0 {
            return None;
        }
        let sxy: f64 = points.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
        let slope = sxy / sxx;
        let intercept = my - slope * mx;
        let ss_res: f64 = points
            .iter()
            .map(|p| {
                let e = p.1 - (slope * p.0 + intercept);
                e * e
            })
            .sum();
        let residual_std = if n > 2 {
            (ss_res / (nf - 2.0)).sqrt()
        } else {
            0.0
        };
        Some(LinearFit {
            slope,
            intercept,
            residual_std,
            n,
        })
    }

    /// Predicted y at x.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Theil–Sen robust slope/intercept: median of pairwise slopes, median
/// intercept. `None` under the same degeneracies as OLS.
pub fn theil_sen(points: &[(f64, f64)]) -> Option<LinearFit> {
    let n = points.len();
    if n < 2 {
        return None;
    }
    let mut slopes = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = points[j].0 - points[i].0;
            if dx.abs() > f64::EPSILON {
                slopes.push((points[j].1 - points[i].1) / dx);
            }
        }
    }
    if slopes.is_empty() {
        return None;
    }
    let slope = median_in_place(&mut slopes);
    let mut intercepts: Vec<f64> = points.iter().map(|p| p.1 - slope * p.0).collect();
    let intercept = median_in_place(&mut intercepts);
    let mut abs_res: Vec<f64> = points
        .iter()
        .map(|p| (p.1 - (slope * p.0 + intercept)).abs())
        .collect();
    // 1.4826 × MAD ≈ σ under normality.
    let residual_std = 1.4826 * median_in_place(&mut abs_res);
    Some(LinearFit {
        slope,
        intercept,
        residual_std,
        n,
    })
}

fn median_in_place(v: &mut [f64]) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

/// A time-to-completion forecast.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Forecast {
    /// Estimated seconds until the job reaches its step target.
    pub eta_s: f64,
    /// Prediction-interval half-width, seconds (±).
    pub half_width_s: f64,
    /// Estimated progress rate, steps/second.
    pub rate: f64,
    /// Confidence derived from interval tightness and sample support.
    pub confidence: Confidence,
}

/// Which estimator the forecaster uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Estimator {
    /// Ordinary least squares.
    Ols,
    /// Theil–Sen robust regression.
    TheilSen,
}

/// Loop-facing forecaster over `(t_seconds, steps_done)` marker samples.
#[derive(Debug, Clone)]
pub struct ProgressForecaster {
    estimator: Estimator,
    /// z-multiplier for the prediction interval (1.96 ≈ 95%).
    z: f64,
    /// Confidence decay constant for interval width (see
    /// [`Confidence::from_interval`]).
    conf_k: f64,
}

impl Default for ProgressForecaster {
    fn default() -> Self {
        ProgressForecaster {
            estimator: Estimator::TheilSen,
            z: 1.96,
            conf_k: 2.0,
        }
    }
}

impl ProgressForecaster {
    /// Forecaster using the given estimator.
    pub fn new(estimator: Estimator) -> Self {
        ProgressForecaster {
            estimator,
            ..ProgressForecaster::default()
        }
    }

    /// Forecast the time from `now_s` until `total_steps` is reached.
    ///
    /// `samples` are `(t_seconds, steps_done)` markers, oldest-first.
    /// Returns `None` when no usable fit exists (too few markers) or the
    /// estimated rate is non-positive (stalled job — which callers treat
    /// as its own symptom, not a forecast).
    pub fn forecast(
        &self,
        samples: &[(f64, f64)],
        total_steps: f64,
        now_s: f64,
    ) -> Option<Forecast> {
        let fit = match self.estimator {
            Estimator::Ols => LinearFit::fit(samples)?,
            Estimator::TheilSen => theil_sen(samples)?,
        };
        if fit.slope <= 0.0 {
            return None;
        }
        let current = fit.predict(now_s).min(total_steps);
        let remaining_steps = (total_steps - current).max(0.0);
        let eta_s = remaining_steps / fit.slope;
        // Propagate marker noise into time units: ±z·σ_y / rate.
        let half_width_s = self.z * fit.residual_std / fit.slope;
        let conf_interval = Confidence::from_interval(eta_s.max(1e-9), half_width_s, self.conf_k);
        let conf_support = Confidence::from_support(fit.n as u64, 5.0);
        Some(Forecast {
            eta_s,
            half_width_s,
            rate: fit.slope,
            confidence: conf_interval.and(conf_support),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize, slope: f64, noise: &[f64]) -> Vec<(f64, f64)> {
        (0..n)
            .map(|i| {
                let x = i as f64 * 10.0;
                (
                    x,
                    slope * x + noise.get(i % noise.len().max(1)).copied().unwrap_or(0.0),
                )
            })
            .collect()
    }

    #[test]
    fn ols_recovers_exact_line() {
        let pts = line(10, 2.0, &[0.0]);
        let f = LinearFit::fit(&pts).unwrap();
        assert!((f.slope - 2.0).abs() < 1e-12);
        assert!(f.intercept.abs() < 1e-9);
        assert!(f.residual_std < 1e-9);
        assert_eq!(f.predict(100.0), 200.0);
    }

    #[test]
    fn ols_degenerate_inputs() {
        assert!(LinearFit::fit(&[]).is_none());
        assert!(LinearFit::fit(&[(1.0, 2.0)]).is_none());
        // Zero x-variance.
        assert!(LinearFit::fit(&[(1.0, 2.0), (1.0, 3.0)]).is_none());
    }

    #[test]
    fn theil_sen_matches_ols_on_clean_data() {
        let pts = line(20, 1.5, &[0.0]);
        let ts = theil_sen(&pts).unwrap();
        let ols = LinearFit::fit(&pts).unwrap();
        assert!((ts.slope - ols.slope).abs() < 1e-9);
        assert!((ts.intercept - ols.intercept).abs() < 1e-9);
    }

    #[test]
    fn theil_sen_shrugs_off_outliers() {
        let mut pts = line(20, 1.0, &[0.0]);
        // Corrupt two markers catastrophically (checkpoint stall).
        pts[5].1 += 1000.0;
        pts[12].1 -= 1000.0;
        let ts = theil_sen(&pts).unwrap();
        assert!((ts.slope - 1.0).abs() < 0.05, "TS slope {}", ts.slope);
        let ols = LinearFit::fit(&pts).unwrap();
        // OLS is meaningfully dragged; Theil–Sen is strictly closer.
        assert!((ts.slope - 1.0).abs() < (ols.slope - 1.0).abs());
    }

    #[test]
    fn forecaster_eta_on_clean_progress() {
        // 1 step/s, at t=100 we are at step 100 of 1000 → ETA 900 s.
        let pts: Vec<(f64, f64)> = (0..=10)
            .map(|i| (i as f64 * 10.0, i as f64 * 10.0))
            .collect();
        let fc = ProgressForecaster::new(Estimator::Ols)
            .forecast(&pts, 1000.0, 100.0)
            .unwrap();
        assert!((fc.eta_s - 900.0).abs() < 1e-6);
        assert!((fc.rate - 1.0).abs() < 1e-9);
        assert!(fc.confidence.value() > 0.5, "clean fit confident");
        assert!(fc.half_width_s < 1.0);
    }

    #[test]
    fn forecaster_none_when_stalled() {
        // Flat progress — slope 0.
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 50.0)).collect();
        assert!(ProgressForecaster::default()
            .forecast(&pts, 100.0, 10.0)
            .is_none());
    }

    #[test]
    fn forecaster_none_with_too_few_markers() {
        assert!(ProgressForecaster::default()
            .forecast(&[(0.0, 0.0)], 100.0, 1.0)
            .is_none());
    }

    #[test]
    fn noisier_markers_mean_lower_confidence() {
        let clean: Vec<(f64, f64)> = (0..20)
            .map(|i| (i as f64 * 10.0, i as f64 * 10.0))
            .collect();
        let noisy: Vec<(f64, f64)> = (0..20)
            .map(|i| {
                let x = i as f64 * 10.0;
                (x, x + if i % 2 == 0 { 30.0 } else { -30.0 })
            })
            .collect();
        let f = ProgressForecaster::new(Estimator::Ols);
        let c1 = f.forecast(&clean, 1000.0, 200.0).unwrap();
        let c2 = f.forecast(&noisy, 1000.0, 200.0).unwrap();
        assert!(c1.confidence.value() > c2.confidence.value());
        assert!(c2.half_width_s > c1.half_width_s);
    }

    #[test]
    fn eta_clamps_past_total() {
        // Job already past its step target → ETA 0.
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, i as f64 * 2.0)).collect();
        let fc = ProgressForecaster::new(Estimator::Ols)
            .forecast(&pts, 10.0, 9.0)
            .unwrap();
        assert_eq!(fc.eta_s, 0.0);
    }

    #[test]
    fn median_helpers() {
        assert_eq!(median_in_place(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median_in_place(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
    }
}
