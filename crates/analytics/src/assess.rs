//! Plan-outcome assessment arithmetic.
//!
//! Fig. 3's final step: "Assess the Knowledge about the success of the
//! Plan and refine the Knowledge", with §III.iv's validation criterion —
//! "validation of the run-time extension will be clear through comparison
//! of the time extension with the actual application run time". This
//! module is that comparison, shared by the Scheduler-case assessor and
//! the experiment harnesses.

use serde::{Deserialize, Serialize};

/// Assessment of one walltime-extension decision after the job ended.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExtensionAssessment {
    /// Seconds of extension the loop obtained.
    pub granted_s: f64,
    /// Seconds the job actually still needed beyond its original limit
    /// (0 if it would have finished anyway).
    pub needed_s: f64,
    /// Signed error: granted − needed. Positive = overestimation
    /// (blocks backfill, §III.iv); negative = underestimation (job may
    /// still die).
    pub error_s: f64,
    /// Did the decision achieve its intent (job completed within the
    /// extended limit)?
    pub success: bool,
}

impl ExtensionAssessment {
    /// Score a decision.
    ///
    /// * `granted_s` — extension obtained from the scheduler,
    /// * `needed_s` — ground-truth overrun the job had beyond its
    ///   original limit (from the simulator / post-run log),
    /// * `completed` — whether the job finished within the extended limit.
    pub fn score(granted_s: f64, needed_s: f64, completed: bool) -> Self {
        ExtensionAssessment {
            granted_s,
            needed_s,
            error_s: granted_s - needed_s,
            success: completed,
        }
    }

    /// Relative overestimation in `[0, ∞)`: how much granted time beyond
    /// need, normalized by need (0 when under-granted or exactly right;
    /// `granted/needed - 1` otherwise). Needed = 0 with a grant counts as
    /// fully wasted (returns `granted_s` normalized to 1s to stay finite
    /// and comparable).
    pub fn overestimation_ratio(&self) -> f64 {
        if self.error_s <= 0.0 {
            return 0.0;
        }
        if self.needed_s <= 0.0 {
            return self.granted_s.max(0.0);
        }
        self.error_s / self.needed_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_grant_is_success_with_zero_error() {
        let a = ExtensionAssessment::score(300.0, 300.0, true);
        assert!(a.success);
        assert_eq!(a.error_s, 0.0);
        assert_eq!(a.overestimation_ratio(), 0.0);
    }

    #[test]
    fn overestimation_positive_error() {
        let a = ExtensionAssessment::score(600.0, 300.0, true);
        assert_eq!(a.error_s, 300.0);
        assert!((a.overestimation_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn underestimation_negative_error() {
        let a = ExtensionAssessment::score(100.0, 300.0, false);
        assert_eq!(a.error_s, -200.0);
        assert!(!a.success);
        assert_eq!(a.overestimation_ratio(), 0.0);
    }

    #[test]
    fn unneeded_grant_counts_as_waste() {
        let a = ExtensionAssessment::score(120.0, 0.0, true);
        assert_eq!(a.overestimation_ratio(), 120.0);
    }
}
