//! Anomaly and change detection.
//!
//! "Failure prediction and anomaly detection have long been MODA analysis
//! goals" (§IV). Three detectors cover the cases' needs:
//!
//! * [`ZScoreDetector`] — rolling-window z-score for spiky metrics,
//! * [`MadDetector`] — the robust twin (median/MAD), immune to the very
//!   outliers it is hunting,
//! * [`Cusum`] — cumulative-sum control chart for *persistent mean
//!   shifts*, the right tool for the OST case: a degraded target drops
//!   its observed bandwidth and keeps it low, which CUSUM flags quickly
//!   at a controlled false-alarm rate while a z-score on noisy samples
//!   dithers.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Rolling-window z-score detector.
#[derive(Debug, Clone)]
pub struct ZScoreDetector {
    window: VecDeque<f64>,
    capacity: usize,
    threshold: f64,
}

impl ZScoreDetector {
    /// Detector over the last `capacity` samples flagging |z| ≥ `threshold`.
    pub fn new(capacity: usize, threshold: f64) -> Self {
        assert!(capacity >= 3, "z-score needs at least 3 samples of context");
        ZScoreDetector {
            window: VecDeque::with_capacity(capacity),
            capacity,
            threshold,
        }
    }

    /// Score `x` against the current window *then* add it. Returns the
    /// z-score (`None` until the window has ≥ 3 samples or when the
    /// window variance is zero and x equals the mean).
    pub fn score_and_push(&mut self, x: f64) -> Option<f64> {
        let z = self.score(x);
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back(x);
        z
    }

    /// Score without recording.
    pub fn score(&self, x: f64) -> Option<f64> {
        if self.window.len() < 3 {
            return None;
        }
        let n = self.window.len() as f64;
        let mean = self.window.iter().sum::<f64>() / n;
        let var = self
            .window
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / (n - 1.0);
        let std = var.sqrt();
        if std <= f64::EPSILON {
            // Degenerate window: any deviation is infinitely surprising.
            return Some(if (x - mean).abs() <= f64::EPSILON {
                0.0
            } else {
                f64::INFINITY
            });
        }
        Some((x - mean) / std)
    }

    /// Is `x` anomalous against the current window?
    pub fn is_anomalous(&self, x: f64) -> bool {
        self.score(x)
            .map(|z| z.abs() >= self.threshold)
            .unwrap_or(false)
    }
}

/// Median/MAD robust outlier detector over a sliding window.
#[derive(Debug, Clone)]
pub struct MadDetector {
    window: VecDeque<f64>,
    capacity: usize,
    threshold: f64,
}

impl MadDetector {
    /// Detector over `capacity` samples flagging robust |z| ≥ `threshold`.
    pub fn new(capacity: usize, threshold: f64) -> Self {
        assert!(capacity >= 3, "MAD needs at least 3 samples of context");
        MadDetector {
            window: VecDeque::with_capacity(capacity),
            capacity,
            threshold,
        }
    }

    fn median(mut v: Vec<f64>) -> f64 {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let n = v.len();
        if n % 2 == 1 {
            v[n / 2]
        } else {
            0.5 * (v[n / 2 - 1] + v[n / 2])
        }
    }

    /// Robust z of `x` against the window (1.4826·MAD as σ).
    pub fn score(&self, x: f64) -> Option<f64> {
        if self.window.len() < 3 {
            return None;
        }
        let med = Self::median(self.window.iter().copied().collect());
        let mad = Self::median(self.window.iter().map(|v| (v - med).abs()).collect());
        let sigma = 1.4826 * mad;
        if sigma <= f64::EPSILON {
            return Some(if (x - med).abs() <= f64::EPSILON {
                0.0
            } else {
                f64::INFINITY
            });
        }
        Some((x - med) / sigma)
    }

    /// Score `x`, then push it into the window.
    pub fn score_and_push(&mut self, x: f64) -> Option<f64> {
        let z = self.score(x);
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back(x);
        z
    }

    /// Is `x` anomalous against the current window?
    pub fn is_anomalous(&self, x: f64) -> bool {
        self.score(x)
            .map(|z| z.abs() >= self.threshold)
            .unwrap_or(false)
    }
}

/// Cross-sectional robust outlier scan: indices of `values` whose
/// robust z-score against the *set's own* median/MAD is ≥ `threshold`.
///
/// Where [`MadDetector`] asks "is this sample odd against this metric's
/// history?", this asks "which members of a fleet are odd against their
/// peers *right now*?" — the cross-node straggler question. Robustness
/// matters for the same reason: the stragglers being hunted are in the
/// population and must not widen the yardstick that flags them. With
/// fewer than 4 values, or a degenerate (zero-MAD) population where
/// everything is equal, nothing is flagged.
pub fn mad_outliers(values: &[f64], threshold: f64) -> Vec<usize> {
    if values.len() < 4 {
        return Vec::new();
    }
    let median = |mut v: Vec<f64>| -> f64 {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let n = v.len();
        if n % 2 == 1 {
            v[n / 2]
        } else {
            0.5 * (v[n / 2 - 1] + v[n / 2])
        }
    };
    let med = median(values.to_vec());
    let mad = median(values.iter().map(|v| (v - med).abs()).collect());
    let sigma = 1.4826 * mad;
    if sigma <= f64::EPSILON {
        // All-equal population (MAD 0): flag only genuine deviants.
        return values
            .iter()
            .enumerate()
            .filter(|(_, v)| (**v - med).abs() > f64::EPSILON)
            .map(|(i, _)| i)
            .collect();
    }
    values
        .iter()
        .enumerate()
        .filter(|(_, v)| ((**v - med) / sigma).abs() >= threshold)
        .map(|(i, _)| i)
        .collect()
}

/// CUSUM verdict for one sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CusumVerdict {
    /// Process in control.
    InControl,
    /// Persistent upward shift detected.
    ShiftUp,
    /// Persistent downward shift detected.
    ShiftDown,
}

/// Two-sided CUSUM control chart with self-calibration.
///
/// The first `calibration` samples estimate the in-control mean and σ;
/// afterwards the classic recursions
/// `S⁺ = max(0, S⁺ + (z - k))`, `S⁻ = max(0, S⁻ - (z + k))`
/// accumulate standardized deviations, flagging when either exceeds `h`.
/// After a detection the accumulators reset (restart behaviour).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cusum {
    /// Allowance (dead zone) in σ units; shifts smaller than `k` are ignored.
    pub k: f64,
    /// Decision threshold in σ units.
    pub h: f64,
    calibration: usize,
    calib_samples: Vec<f64>,
    mean: f64,
    std: f64,
    s_pos: f64,
    s_neg: f64,
    detections: u64,
}

impl Cusum {
    /// CUSUM with allowance `k`, threshold `h`, calibrating on the first
    /// `calibration` samples (≥ 2).
    pub fn new(k: f64, h: f64, calibration: usize) -> Self {
        assert!(calibration >= 2, "need at least 2 calibration samples");
        Cusum {
            k,
            h,
            calibration,
            calib_samples: Vec::with_capacity(calibration),
            mean: 0.0,
            std: 1.0,
            s_pos: 0.0,
            s_neg: 0.0,
            detections: 0,
        }
    }

    /// Is the detector still calibrating?
    pub fn calibrating(&self) -> bool {
        self.calib_samples.len() < self.calibration
    }

    /// Detections so far.
    pub fn detections(&self) -> u64 {
        self.detections
    }

    /// In-control mean learned during calibration.
    pub fn baseline_mean(&self) -> f64 {
        self.mean
    }

    /// Feed one sample.
    pub fn update(&mut self, x: f64) -> CusumVerdict {
        if self.calibrating() {
            self.calib_samples.push(x);
            if !self.calibrating() {
                let n = self.calib_samples.len() as f64;
                self.mean = self.calib_samples.iter().sum::<f64>() / n;
                let var = self
                    .calib_samples
                    .iter()
                    .map(|v| (v - self.mean) * (v - self.mean))
                    .sum::<f64>()
                    / (n - 1.0);
                // Floor σ: a perfectly flat calibration window must not
                // make every subsequent sample an infinite deviation.
                self.std = var.sqrt().max(1e-9).max(self.mean.abs() * 1e-6);
            }
            return CusumVerdict::InControl;
        }
        let z = (x - self.mean) / self.std;
        self.s_pos = (self.s_pos + z - self.k).max(0.0);
        self.s_neg = (self.s_neg - z - self.k).max(0.0);
        if self.s_pos > self.h {
            self.s_pos = 0.0;
            self.s_neg = 0.0;
            self.detections += 1;
            CusumVerdict::ShiftUp
        } else if self.s_neg > self.h {
            self.s_pos = 0.0;
            self.s_neg = 0.0;
            self.detections += 1;
            CusumVerdict::ShiftDown
        } else {
            CusumVerdict::InControl
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn zscore_flags_spike() {
        let mut d = ZScoreDetector::new(16, 3.0);
        for i in 0..16 {
            d.score_and_push(10.0 + (i % 3) as f64 * 0.1);
        }
        assert!(!d.is_anomalous(10.1));
        assert!(d.is_anomalous(20.0));
        let z = d.score(20.0).unwrap();
        assert!(z > 3.0);
    }

    #[test]
    fn zscore_needs_context() {
        let mut d = ZScoreDetector::new(8, 3.0);
        assert_eq!(d.score_and_push(1.0), None);
        assert_eq!(d.score_and_push(2.0), None);
        assert_eq!(d.score_and_push(3.0), None);
        assert!(d.score_and_push(2.0).is_some());
    }

    #[test]
    fn zscore_degenerate_window() {
        let mut d = ZScoreDetector::new(8, 3.0);
        for _ in 0..5 {
            d.score_and_push(7.0);
        }
        assert_eq!(d.score(7.0), Some(0.0));
        assert_eq!(d.score(8.0), Some(f64::INFINITY));
        assert!(d.is_anomalous(7.0001));
    }

    #[test]
    fn mad_survives_contaminated_window() {
        let mut zd = ZScoreDetector::new(16, 3.0);
        let mut md = MadDetector::new(16, 3.0);
        // Window of clean 10s with a few giant outliers inside it.
        for i in 0..16 {
            let v = if i % 5 == 4 { 1000.0 } else { 10.0 };
            zd.score_and_push(v);
            md.score_and_push(v);
        }
        // The plain z-score's σ is inflated by the contamination, so a
        // genuinely bad sample (50) hides; MAD still flags it.
        assert!(!zd.is_anomalous(50.0));
        assert!(md.is_anomalous(50.0));
    }

    #[test]
    fn mad_degenerate_window() {
        let mut d = MadDetector::new(8, 3.5);
        for _ in 0..4 {
            d.score_and_push(5.0);
        }
        assert_eq!(d.score(5.0), Some(0.0));
        assert!(d.is_anomalous(5.1));
    }

    #[test]
    fn mad_outliers_finds_cross_sectional_stragglers() {
        // Fleet of near-identical nodes with two deviants.
        let values = [10.0, 10.2, 9.9, 10.1, 35.0, 10.0, 2.0, 10.3];
        let out = mad_outliers(&values, 3.5);
        assert_eq!(out, vec![4, 6]);
        // Uniform fleet: nothing to flag, even at MAD 0.
        assert!(mad_outliers(&[5.0; 8], 3.5).is_empty());
        // Degenerate (zero-MAD) population with one deviant still flags it.
        assert_eq!(mad_outliers(&[5.0, 5.0, 5.0, 5.0, 6.0], 3.5), vec![4]);
        // Too small a population proves nothing.
        assert!(mad_outliers(&[1.0, 100.0, 1.0], 3.5).is_empty());
    }

    #[test]
    fn cusum_detects_downward_shift() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut c = Cusum::new(0.5, 5.0, 20);
        // Calibrate at mean 100, σ ≈ 2.
        for _ in 0..20 {
            c.update(100.0 + rng.gen_range(-3.0..3.0));
        }
        assert!(!c.calibrating());
        assert!((c.baseline_mean() - 100.0).abs() < 2.0);
        // In-control stretch: no detections.
        for _ in 0..100 {
            assert_eq!(
                c.update(100.0 + rng.gen_range(-3.0..3.0)),
                CusumVerdict::InControl
            );
        }
        // Bandwidth collapses to 60 (degraded OST): detect within a few
        // samples.
        let mut detected_after = None;
        for i in 0..50 {
            if c.update(60.0 + rng.gen_range(-3.0..3.0)) == CusumVerdict::ShiftDown {
                detected_after = Some(i + 1);
                break;
            }
        }
        let lag = detected_after.expect("CUSUM must detect a 20σ shift");
        assert!(lag <= 5, "detection lag {lag} too slow");
        assert_eq!(c.detections(), 1);
    }

    #[test]
    fn cusum_detects_upward_shift() {
        let mut c = Cusum::new(0.5, 4.0, 10);
        for i in 0..10 {
            c.update(10.0 + (i % 2) as f64); // mean 10.5, small σ
        }
        let mut verdict = CusumVerdict::InControl;
        for _ in 0..20 {
            verdict = c.update(14.0);
            if verdict != CusumVerdict::InControl {
                break;
            }
        }
        assert_eq!(verdict, CusumVerdict::ShiftUp);
    }

    #[test]
    fn cusum_ignores_shifts_inside_allowance() {
        let mut c = Cusum::new(1.0, 8.0, 10);
        for i in 0..10 {
            c.update(10.0 + (i % 3) as f64); // σ ≈ 0.8–1
        }
        // A drift of ~0.5σ stays under the k=1 allowance forever.
        for _ in 0..500 {
            assert_eq!(c.update(10.0 + 1.4), CusumVerdict::InControl);
        }
    }

    #[test]
    fn cusum_resets_after_detection() {
        let mut c = Cusum::new(0.5, 4.0, 5);
        for _ in 0..5 {
            c.update(10.0);
        }
        // Flat calibration gets a floored σ; force a detection.
        let mut hits = 0;
        for _ in 0..1000 {
            if c.update(9.0) != CusumVerdict::InControl {
                hits += 1;
            }
        }
        // Restart behaviour: repeated detections, not one latched alarm.
        assert!(hits > 1);
        assert_eq!(c.detections(), hits);
    }

    #[test]
    #[should_panic(expected = "calibration")]
    fn cusum_needs_calibration_samples() {
        Cusum::new(0.5, 4.0, 1);
    }
}
