//! Misconfiguration detection (§III, case 4).
//!
//! "Detection of misconfiguration of user jobs such as unintended
//! mismatch of threads to cores, underutilization of CPUs or GPUs, or
//! wrong library search paths. Depending on the type of misconfiguration,
//! users could either be informed about their mistake along with
//! suggestions for better configurations, or the misconfiguration could
//! be corrected on the fly."
//!
//! Detection is rule-based over a [`JobConfigSnapshot`] — the same
//! quantities a site collects per job slot — with thresholds collected in
//! a [`ConfigPolicy`]. Each [`Finding`] carries a severity, a suggestion
//! string (the "inform the user" surface), and whether the condition is
//! auto-correctable (the "corrected on the fly" branch of the loop).

use moda_core::Confidence;
use serde::{Deserialize, Serialize};

/// Per-job configuration/utilization snapshot the detector consumes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobConfigSnapshot {
    /// Threads each rank spawns.
    pub threads_per_rank: u32,
    /// Cores allocated per rank.
    pub cores_per_rank: u32,
    /// GPUs allocated per node.
    pub gpus_allocated: u32,
    /// Mean GPU utilization over the observation window, `[0, 1]`.
    pub gpu_util: f64,
    /// Mean CPU utilization over the observation window, `[0, 1]`.
    pub cpu_util: f64,
    /// Whether the launcher resolved libraries from the expected paths.
    pub lib_path_ok: bool,
}

/// Kinds of detectable misconfiguration (the paper's three examples,
/// with under/oversubscription split for actionability).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MisconfigKind {
    /// More threads than cores: oversubscription thrash.
    ThreadOversubscription,
    /// Fewer threads than cores: paid-for cores sit idle.
    ThreadUndersubscription,
    /// GPUs allocated but (near-)idle.
    IdleGpu,
    /// CPU utilization far below what the allocation implies.
    LowCpuUtilization,
    /// Wrong library search path.
    BadLibraryPath,
}

/// One detected misconfiguration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Finding {
    /// What is wrong.
    pub kind: MisconfigKind,
    /// Detection confidence.
    pub confidence: Confidence,
    /// Severity in `[0, 1]` (drives inform-vs-correct planning).
    pub severity: f64,
    /// Human-readable suggestion (the "inform the user" surface).
    pub suggestion: String,
    /// Whether the loop can fix this without the user (on-the-fly
    /// correction, e.g. clamping thread count; not possible for a wrong
    /// library path mid-run).
    pub auto_correctable: bool,
}

/// Detection thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfigPolicy {
    /// GPU utilization below this (with GPUs allocated) is "idle".
    pub gpu_idle_threshold: f64,
    /// CPU utilization below this is "underutilized".
    pub cpu_low_threshold: f64,
}

impl Default for ConfigPolicy {
    fn default() -> Self {
        ConfigPolicy {
            gpu_idle_threshold: 0.05,
            cpu_low_threshold: 0.25,
        }
    }
}

/// Run every detector against a snapshot.
pub fn detect(snap: &JobConfigSnapshot, policy: &ConfigPolicy) -> Vec<Finding> {
    let mut findings = Vec::new();

    if snap.threads_per_rank > snap.cores_per_rank && snap.cores_per_rank > 0 {
        let ratio = snap.threads_per_rank as f64 / snap.cores_per_rank as f64;
        findings.push(Finding {
            kind: MisconfigKind::ThreadOversubscription,
            confidence: Confidence::CERTAIN, // structural: read from config
            severity: (1.0 - 1.0 / ratio).clamp(0.0, 1.0),
            suggestion: format!(
                "{} threads per rank on {} cores; set OMP_NUM_THREADS={}",
                snap.threads_per_rank, snap.cores_per_rank, snap.cores_per_rank
            ),
            auto_correctable: true,
        });
    }
    if snap.threads_per_rank < snap.cores_per_rank && snap.threads_per_rank > 0 {
        let idle = 1.0 - snap.threads_per_rank as f64 / snap.cores_per_rank as f64;
        findings.push(Finding {
            kind: MisconfigKind::ThreadUndersubscription,
            confidence: Confidence::CERTAIN,
            severity: idle,
            suggestion: format!(
                "only {} of {} allocated cores threaded; raise OMP_NUM_THREADS or shrink the allocation",
                snap.threads_per_rank, snap.cores_per_rank
            ),
            auto_correctable: true,
        });
    }
    if snap.gpus_allocated > 0 && snap.gpu_util < policy.gpu_idle_threshold {
        // Utilization is a noisy measurement: confidence scales with how
        // far below the threshold we are.
        let margin = (policy.gpu_idle_threshold - snap.gpu_util) / policy.gpu_idle_threshold;
        findings.push(Finding {
            kind: MisconfigKind::IdleGpu,
            confidence: Confidence::new(0.5 + 0.5 * margin),
            severity: 1.0 - snap.gpu_util,
            suggestion: format!(
                "{} GPU(s) allocated at {:.0}% utilization; resubmit to a CPU partition",
                snap.gpus_allocated,
                snap.gpu_util * 100.0
            ),
            auto_correctable: false,
        });
    }
    if snap.cpu_util < policy.cpu_low_threshold {
        let margin = (policy.cpu_low_threshold - snap.cpu_util) / policy.cpu_low_threshold;
        findings.push(Finding {
            kind: MisconfigKind::LowCpuUtilization,
            confidence: Confidence::new(0.4 + 0.5 * margin),
            severity: 1.0 - snap.cpu_util,
            suggestion: format!(
                "CPU utilization {:.0}%; check rank/thread mapping or input staging",
                snap.cpu_util * 100.0
            ),
            auto_correctable: false,
        });
    }
    if !snap.lib_path_ok {
        findings.push(Finding {
            kind: MisconfigKind::BadLibraryPath,
            confidence: Confidence::CERTAIN,
            severity: 0.9,
            suggestion: "library search path resolves to an unexpected location; check LD_LIBRARY_PATH / module loads".to_string(),
            auto_correctable: false,
        });
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn healthy() -> JobConfigSnapshot {
        JobConfigSnapshot {
            threads_per_rank: 8,
            cores_per_rank: 8,
            gpus_allocated: 0,
            gpu_util: 0.0,
            cpu_util: 0.9,
            lib_path_ok: true,
        }
    }

    fn kinds(f: &[Finding]) -> Vec<MisconfigKind> {
        f.iter().map(|x| x.kind).collect()
    }

    #[test]
    fn healthy_job_is_clean() {
        assert!(detect(&healthy(), &ConfigPolicy::default()).is_empty());
    }

    #[test]
    fn oversubscription_detected_with_certainty() {
        let snap = JobConfigSnapshot {
            threads_per_rank: 16,
            cores_per_rank: 8,
            ..healthy()
        };
        let f = detect(&snap, &ConfigPolicy::default());
        assert_eq!(kinds(&f), vec![MisconfigKind::ThreadOversubscription]);
        assert_eq!(f[0].confidence, Confidence::CERTAIN);
        assert!(f[0].auto_correctable);
        assert!(f[0].suggestion.contains("OMP_NUM_THREADS=8"));
        assert!((f[0].severity - 0.5).abs() < 1e-12);
    }

    #[test]
    fn undersubscription_detected() {
        let snap = JobConfigSnapshot {
            threads_per_rank: 2,
            cores_per_rank: 8,
            ..healthy()
        };
        let f = detect(&snap, &ConfigPolicy::default());
        assert_eq!(kinds(&f), vec![MisconfigKind::ThreadUndersubscription]);
        assert!((f[0].severity - 0.75).abs() < 1e-12);
    }

    #[test]
    fn idle_gpu_flagged_only_when_allocated() {
        let with_gpu = JobConfigSnapshot {
            gpus_allocated: 4,
            gpu_util: 0.01,
            ..healthy()
        };
        let f = detect(&with_gpu, &ConfigPolicy::default());
        assert!(kinds(&f).contains(&MisconfigKind::IdleGpu));
        assert!(!f[0].auto_correctable);
        // No GPUs allocated → a 0% GPU utilization is not a finding.
        let without = JobConfigSnapshot {
            gpus_allocated: 0,
            gpu_util: 0.0,
            ..healthy()
        };
        assert!(detect(&without, &ConfigPolicy::default()).is_empty());
    }

    #[test]
    fn low_cpu_and_bad_libpath_compose() {
        let snap = JobConfigSnapshot {
            cpu_util: 0.05,
            lib_path_ok: false,
            ..healthy()
        };
        let f = detect(&snap, &ConfigPolicy::default());
        let ks = kinds(&f);
        assert!(ks.contains(&MisconfigKind::LowCpuUtilization));
        assert!(ks.contains(&MisconfigKind::BadLibraryPath));
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn gpu_confidence_scales_with_margin() {
        let barely = JobConfigSnapshot {
            gpus_allocated: 1,
            gpu_util: 0.049,
            ..healthy()
        };
        let dead = JobConfigSnapshot {
            gpus_allocated: 1,
            gpu_util: 0.0,
            ..healthy()
        };
        let p = ConfigPolicy::default();
        let c_barely = detect(&barely, &p)[0].confidence.value();
        let c_dead = detect(&dead, &p)[0].confidence.value();
        assert!(c_dead > c_barely);
        assert!((c_dead - 1.0).abs() < 1e-9);
    }

    #[test]
    fn policy_thresholds_are_respected() {
        let snap = JobConfigSnapshot {
            cpu_util: 0.3,
            ..healthy()
        };
        assert!(detect(&snap, &ConfigPolicy::default()).is_empty());
        let strict = ConfigPolicy {
            cpu_low_threshold: 0.5,
            ..ConfigPolicy::default()
        };
        assert_eq!(
            kinds(&detect(&snap, &strict)),
            vec![MisconfigKind::LowCpuUtilization]
        );
    }
}
