//! Behavioral run signatures and similarity matching.
//!
//! §III: "Given an application, a strategy is also required to map the
//! application to a set of measurements of behavioral characteristics to
//! enable comparison against past and future runs" — and the Plan phase
//! "might have to be inferred from similar jobs with different input
//! decks". A [`RunSignature`] is that measurement set; [`knn`] finds the
//! most similar historical runs, and [`estimate_runtime`] turns them into
//! a cold-start runtime estimate with a support/spread-derived
//! confidence.

use moda_core::{Confidence, RunRecord};
use serde::{Deserialize, Serialize};

/// Behavioral feature vector of one run.
///
/// Feature scales differ wildly (seconds vs fractions), so distances are
/// computed on per-dimension normalized values; [`knn`] normalizes by the
/// reference set's ranges.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSignature {
    /// Mean progress-step duration, seconds.
    pub mean_step_s: f64,
    /// Coefficient of variation of step duration.
    pub step_cv: f64,
    /// Fraction of runtime spent in I/O.
    pub io_fraction: f64,
    /// Nodes used.
    pub nodes: f64,
    /// Problem scale knob (input-deck size proxy).
    pub scale: f64,
}

impl RunSignature {
    /// Flatten to the vector stored in [`RunRecord::signature`].
    pub fn to_vec(&self) -> Vec<f64> {
        vec![
            self.mean_step_s,
            self.step_cv,
            self.io_fraction,
            self.nodes,
            self.scale,
        ]
    }

    /// Rebuild from a stored vector (`None` when the dimension is wrong —
    /// records written by other loop versions are skipped, not trusted).
    pub fn from_slice(v: &[f64]) -> Option<RunSignature> {
        if v.len() != 5 {
            return None;
        }
        Some(RunSignature {
            mean_step_s: v[0],
            step_cv: v[1],
            io_fraction: v[2],
            nodes: v[3],
            scale: v[4],
        })
    }
}

/// The `k` nearest records to `query` (by range-normalized Euclidean
/// distance over signatures), as `(index into records, distance)`
/// sorted nearest-first. Records with malformed signatures are skipped.
pub fn knn(query: &RunSignature, records: &[RunRecord], k: usize) -> Vec<(usize, f64)> {
    let q = query.to_vec();
    let dim = q.len();
    let usable: Vec<(usize, &[f64])> = records
        .iter()
        .enumerate()
        .filter(|(_, r)| r.signature.len() == dim)
        .map(|(i, r)| (i, r.signature.as_slice()))
        .collect();
    if usable.is_empty() || k == 0 {
        return Vec::new();
    }
    // Per-dimension ranges over reference set ∪ query.
    let mut lo = q.clone();
    let mut hi = q.clone();
    for (_, s) in &usable {
        for d in 0..dim {
            lo[d] = lo[d].min(s[d]);
            hi[d] = hi[d].max(s[d]);
        }
    }
    let range: Vec<f64> = lo
        .iter()
        .zip(&hi)
        .map(|(l, h)| {
            let r = h - l;
            if r > f64::EPSILON {
                r
            } else {
                1.0
            }
        })
        .collect();
    let mut scored: Vec<(usize, f64)> = usable
        .into_iter()
        .map(|(i, s)| {
            let d2: f64 = (0..dim)
                .map(|d| {
                    let diff = (s[d] - q[d]) / range[d];
                    diff * diff
                })
                .sum();
            (i, d2.sqrt())
        })
        .collect();
    scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    scored.truncate(k);
    scored
}

/// Distance-weighted runtime estimate from the `k` nearest historical
/// runs, with confidence from neighbor support and agreement.
///
/// Returns `None` when no usable history exists.
pub fn estimate_runtime(
    query: &RunSignature,
    records: &[RunRecord],
    k: usize,
) -> Option<(f64, Confidence)> {
    let neighbors = knn(query, records, k);
    if neighbors.is_empty() {
        return None;
    }
    // Inverse-distance weights with an epsilon so exact matches dominate
    // but never divide by zero.
    let mut wsum = 0.0;
    let mut est = 0.0;
    for &(i, d) in &neighbors {
        let w = 1.0 / (d + 1e-6);
        wsum += w;
        est += w * records[i].runtime_s;
    }
    let est = est / wsum;
    // Spread of neighbor runtimes relative to the estimate → agreement.
    let spread = neighbors
        .iter()
        .map(|&(i, _)| (records[i].runtime_s - est).abs())
        .fold(0.0, f64::max);
    let conf_agreement = Confidence::from_interval(est.max(1e-9), spread, 1.0);
    let conf_support = Confidence::from_support(neighbors.len() as u64, 3.0);
    Some((est, conf_agreement.and(conf_support)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn sig(step: f64, scale: f64) -> RunSignature {
        RunSignature {
            mean_step_s: step,
            step_cv: 0.1,
            io_fraction: 0.2,
            nodes: 4.0,
            scale,
        }
    }

    fn rec(step: f64, scale: f64, runtime: f64) -> RunRecord {
        RunRecord {
            app_class: "cfd".into(),
            signature: sig(step, scale).to_vec(),
            runtime_s: runtime,
            total_steps: 1000,
            metadata: BTreeMap::new(),
        }
    }

    #[test]
    fn signature_round_trip() {
        let s = sig(1.5, 10.0);
        let v = s.to_vec();
        assert_eq!(RunSignature::from_slice(&v), Some(s));
        assert_eq!(RunSignature::from_slice(&[1.0, 2.0]), None);
    }

    #[test]
    fn knn_orders_by_distance() {
        let records = vec![
            rec(1.0, 10.0, 100.0),
            rec(5.0, 50.0, 500.0),
            rec(1.1, 11.0, 110.0),
        ];
        let hits = knn(&sig(1.0, 10.0), &records, 2);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].0, 0); // exact match first
        assert_eq!(hits[1].0, 2); // near match second
        assert!(hits[0].1 < hits[1].1);
    }

    #[test]
    fn knn_skips_malformed_signatures() {
        let mut bad = rec(1.0, 10.0, 100.0);
        bad.signature = vec![1.0];
        let records = vec![bad, rec(2.0, 20.0, 200.0)];
        let hits = knn(&sig(2.0, 20.0), &records, 5);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, 1);
    }

    #[test]
    fn knn_empty_and_zero_k() {
        assert!(knn(&sig(1.0, 1.0), &[], 3).is_empty());
        let records = vec![rec(1.0, 1.0, 1.0)];
        assert!(knn(&sig(1.0, 1.0), &records, 0).is_empty());
    }

    #[test]
    fn estimate_prefers_close_neighbors() {
        let records = vec![
            rec(1.0, 10.0, 100.0),
            rec(1.05, 10.5, 105.0),
            rec(9.0, 90.0, 900.0),
        ];
        let (est, conf) = estimate_runtime(&sig(1.0, 10.0), &records, 3).unwrap();
        // Exact neighbor dominates through inverse-distance weighting.
        assert!((est - 100.0).abs() < 5.0, "estimate {est}");
        assert!(conf.value() > 0.0);
    }

    #[test]
    fn estimate_confidence_scales_with_agreement() {
        let tight = vec![
            rec(1.0, 10.0, 100.0),
            rec(1.01, 10.1, 101.0),
            rec(0.99, 9.9, 99.0),
        ];
        let loose = vec![
            rec(1.0, 10.0, 50.0),
            rec(1.01, 10.1, 400.0),
            rec(0.99, 9.9, 100.0),
        ];
        let (_, c_tight) = estimate_runtime(&sig(1.0, 10.0), &tight, 3).unwrap();
        let (_, c_loose) = estimate_runtime(&sig(1.0, 10.0), &loose, 3).unwrap();
        assert!(c_tight.value() > c_loose.value());
    }

    #[test]
    fn estimate_none_without_history() {
        assert!(estimate_runtime(&sig(1.0, 1.0), &[], 3).is_none());
    }

    #[test]
    fn normalization_keeps_large_scale_features_from_dominating() {
        // scale differs by 1000x; step by 2x. Without normalization the
        // scale dimension would drown out step similarity.
        let records = vec![
            rec(1.0, 1000.0, 100.0), // same step, far scale
            rec(2.0, 1010.0, 999.0), // different step, near scale
        ];
        let hits = knn(&sig(1.0, 1005.0), &records, 1);
        // Normalized: scale range is tiny relative to its magnitude, so
        // the step match (record 0) wins.
        assert_eq!(hits[0].0, 0);
    }
}
