//! # moda-analytics
//!
//! Operational data analytics — the **Analyze** vocabulary the paper's
//! loops are built from (Fig. 1's "Visualize / Diagnose / Forecast" and
//! the §IV analysis goals):
//!
//! * [`forecast`] — progress-rate estimation and time-to-completion
//!   forecasting with prediction intervals (the Scheduler case's core
//!   analysis: "a few simple measurable quantities can be used to
//!   forecast time to completion", §III),
//! * [`anomaly`] — rolling z-score, robust MAD, and CUSUM change
//!   detection ("failure prediction and anomaly detection have long been
//!   MODA analysis goals", §IV) — the OST case's detector,
//! * [`similarity`] — behavioral run signatures and k-NN matching
//!   against Knowledge history ("inferred from similar jobs with
//!   different input decks", §III),
//! * [`online`] — recursive least squares with a forgetting factor:
//!   lightweight continual learning ("continual/lifelong AI that can
//!   evolve rapidly with small overhead", §IV),
//! * [`misconfig`] — rule-based and statistical detection of user-job
//!   misconfigurations (§III, case 4),
//! * [`assess`] — scoring of executed plans against realized outcomes
//!   (the Knowledge-refinement arithmetic of Fig. 3's assessment step).
//!
//! Everything is deterministic, allocation-light, and free of external
//! ML dependencies — per §IV, "focus should be on careful selection of
//! efficient models and modeling parameters that fit HPC data", not
//! million-parameter models.

pub mod anomaly;
pub mod assess;
pub mod forecast;
pub mod misconfig;
pub mod online;
pub mod similarity;

pub use anomaly::{mad_outliers, Cusum, CusumVerdict, MadDetector, ZScoreDetector};
pub use assess::ExtensionAssessment;
pub use forecast::{Forecast, LinearFit, ProgressForecaster};
pub use misconfig::{ConfigPolicy, Finding, JobConfigSnapshot, MisconfigKind};
pub use online::RlsModel;
pub use similarity::{knn, RunSignature};
