//! FCFS + EASY-backfill scheduler with feedback hooks.
//!
//! Node pool is homogeneous and fungible (counts, not topology) — the
//! paper's loops react to *time* (walltime limits, queue reservations,
//! outage windows), not placement, so counts capture the relevant
//! dynamics while keeping the shadow-time computation exact.
//!
//! EASY backfill: the queue head gets a *reservation* at the shadow time
//! (earliest instant enough nodes will be free, by current walltime
//! limits); later jobs may start out of order only if they terminate
//! before the shadow time or fit into the nodes spare even after the
//! head's reservation. Walltime extensions interact with exactly this
//! reservation — which is why §III.iv worries about extensions delaying
//! backfill — and [`Scheduler::request_extension`] implements that
//! negotiation.

use crate::accounting::Accounting;
use crate::job::{Job, JobId, JobRequest, JobState};
use crate::policy::{DenyReason, ExtensionDecision, ExtensionPolicy};
use moda_sim::{SimDuration, SimTime};
use std::collections::{HashMap, VecDeque};

/// Static scheduler configuration.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Homogeneous node count.
    pub total_nodes: u32,
    /// Extension-hook policy.
    pub policy: ExtensionPolicy,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            total_nodes: 64,
            policy: ExtensionPolicy::default(),
        }
    }
}

/// The batch scheduler.
#[derive(Debug)]
pub struct Scheduler {
    cfg: SchedulerConfig,
    free: u32,
    queue: VecDeque<JobId>,
    jobs: HashMap<JobId, Job>,
    running: Vec<JobId>,
    outages: Vec<(SimTime, SimTime)>,
    acct: Accounting,
}

impl Scheduler {
    /// Empty scheduler over `cfg.total_nodes` free nodes.
    pub fn new(cfg: SchedulerConfig) -> Self {
        let free = cfg.total_nodes;
        Scheduler {
            cfg,
            free,
            queue: VecDeque::new(),
            jobs: HashMap::new(),
            running: Vec::new(),
            outages: Vec::new(),
            acct: Accounting::new(),
        }
    }

    // ----- submission & lifecycle ---------------------------------------

    /// Enqueue a job. `resubmit` marks checkpoint-restart resubmissions
    /// for the §III.v statistics.
    pub fn submit(&mut self, now: SimTime, req: JobRequest, resubmit: bool) {
        self.advance_acct(now);
        assert!(
            req.nodes > 0 && req.nodes <= self.cfg.total_nodes,
            "job {} requests {} nodes of {}",
            req.id,
            req.nodes,
            self.cfg.total_nodes
        );
        assert!(
            !self.jobs.contains_key(&req.id),
            "duplicate job id {}",
            req.id
        );
        if resubmit {
            self.acct.note_resubmit();
        }
        let id = req.id;
        self.jobs.insert(id, Job::new(req));
        self.queue.push_back(id);
    }

    /// Run one scheduling pass (FCFS + EASY backfill). Returns the jobs
    /// started at `now`.
    pub fn schedule(&mut self, now: SimTime) -> Vec<JobId> {
        self.advance_acct(now);
        let mut started = Vec::new();

        // FCFS: start from the head while it fits.
        while let Some(&head) = self.queue.front() {
            let (nodes, wall) = {
                let j = &self.jobs[&head];
                (j.req.nodes, j.req.walltime)
            };
            if nodes <= self.free && self.start_allowed(now, wall) {
                self.start_job(now, head);
                self.queue.pop_front();
                started.push(head);
            } else {
                break;
            }
        }

        // EASY backfill behind a blocked head.
        if let Some(&head) = self.queue.front() {
            let (head_nodes, head_wall) = {
                let j = &self.jobs[&head];
                (j.req.nodes, j.req.walltime)
            };
            let (shadow, mut spare) = self.shadow_for(now, head_nodes, head_wall, None);
            let candidates: Vec<JobId> = self.queue.iter().skip(1).copied().collect();
            for id in candidates {
                let (nodes, wall) = {
                    let j = &self.jobs[&id];
                    (j.req.nodes, j.req.walltime)
                };
                if nodes > self.free || !self.start_allowed(now, wall) {
                    continue;
                }
                let before_shadow = now + wall <= shadow;
                let in_spare = nodes <= spare;
                if before_shadow || in_spare {
                    self.start_job(now, id);
                    self.queue.retain(|&q| q != id);
                    started.push(id);
                    if !before_shadow {
                        spare -= nodes;
                    }
                }
            }
        }
        started
    }

    /// Application completed before its limit: release nodes.
    pub fn finish(&mut self, now: SimTime, id: JobId) {
        self.advance_acct(now);
        let job = self.jobs.get_mut(&id).expect("finish of unknown job");
        assert_eq!(job.state, JobState::Running, "finish of non-running {id}");
        job.state = JobState::Completed;
        job.end = Some(now);
        let nodes = job.req.nodes;
        self.release(id, nodes);
        self.acct.completed += 1;
    }

    /// Kill every running job whose walltime limit has passed. Returns
    /// the killed ids.
    pub fn kill_expired(&mut self, now: SimTime) -> Vec<JobId> {
        self.advance_acct(now);
        let expired: Vec<JobId> = self
            .running
            .iter()
            .copied()
            .filter(|id| self.jobs[id].limit_end.is_some_and(|limit| limit <= now))
            .collect();
        for id in &expired {
            let job = self.jobs.get_mut(id).expect("running job exists");
            job.state = JobState::TimedOut;
            job.end = Some(now);
            let nodes = job.req.nodes;
            self.release(*id, nodes);
            self.acct.timed_out += 1;
        }
        expired
    }

    /// Cancel a job (pending or running), e.g. after it checkpointed for
    /// resubmission.
    pub fn cancel(&mut self, now: SimTime, id: JobId) {
        self.advance_acct(now);
        let job = self.jobs.get_mut(&id).expect("cancel of unknown job");
        match job.state {
            JobState::Pending => {
                job.state = JobState::Cancelled;
                job.end = Some(now);
                self.queue.retain(|&q| q != id);
                self.acct.cancelled += 1;
            }
            JobState::Running => {
                job.state = JobState::Cancelled;
                job.end = Some(now);
                let nodes = job.req.nodes;
                self.release(id, nodes);
                self.acct.cancelled += 1;
            }
            _ => {}
        }
    }

    /// Kill one running job because the node under it failed (fail-stop
    /// fault injection for §IV resilience experiments). Returns whether
    /// the job was running.
    pub fn fail(&mut self, now: SimTime, id: JobId) -> bool {
        self.advance_acct(now);
        match self.jobs.get_mut(&id) {
            Some(job) if job.state == JobState::Running => {
                job.state = JobState::Failed;
                job.end = Some(now);
                let nodes = job.req.nodes;
                self.release(id, nodes);
                self.acct.failed += 1;
                true
            }
            _ => false,
        }
    }

    // ----- maintenance outages -------------------------------------------

    /// Announce a full-system maintenance window `[start, end)`. The
    /// scheduler drains toward it: no job may start whose walltime
    /// overlaps the window.
    pub fn add_outage(&mut self, start: SimTime, end: SimTime) {
        assert!(end > start, "outage must have positive length");
        self.outages.push((start, end));
        self.outages.sort();
    }

    /// Announced outages.
    pub fn outages(&self) -> &[(SimTime, SimTime)] {
        &self.outages
    }

    /// Kill every running job (an outage began). Returns the killed ids —
    /// the jobs the Maintenance loop should have checkpointed beforehand.
    pub fn outage_kill(&mut self, now: SimTime) -> Vec<JobId> {
        self.advance_acct(now);
        let victims: Vec<JobId> = self.running.clone();
        for id in &victims {
            let job = self.jobs.get_mut(id).expect("running job exists");
            job.state = JobState::MaintenanceKilled;
            job.end = Some(now);
            let nodes = job.req.nodes;
            self.release(*id, nodes);
            self.acct.maintenance_killed += 1;
        }
        victims
    }

    // ----- the extension hook (Fig. 3 Execute phase) ---------------------

    /// The feedback hook of the Scheduler use case: ask for `extra` more
    /// walltime for `id`. The answer follows the configured
    /// [`ExtensionPolicy`] and may be a full grant, a clipped partial
    /// grant, or a denial with reason.
    pub fn request_extension(
        &mut self,
        now: SimTime,
        id: JobId,
        extra: SimDuration,
    ) -> ExtensionDecision {
        self.advance_acct(now);
        let (limit_end, extensions, extended_total) = match self.jobs.get(&id) {
            Some(j) if j.state == JobState::Running => (
                j.limit_end.expect("running job has limit"),
                j.extensions,
                j.extended_total,
            ),
            _ => {
                self.acct.note_denial(DenyReason::NotRunning);
                return ExtensionDecision::Denied(DenyReason::NotRunning);
            }
        };

        if extensions >= self.cfg.policy.max_extensions_per_job {
            self.acct.note_denial(DenyReason::TooManyExtensions);
            return ExtensionDecision::Denied(DenyReason::TooManyExtensions);
        }
        let budget_left = self
            .cfg
            .policy
            .max_total_extension
            .saturating_sub(extended_total);
        if budget_left == SimDuration::ZERO {
            self.acct.note_denial(DenyReason::BudgetExhausted);
            return ExtensionDecision::Denied(DenyReason::BudgetExhausted);
        }
        let mut grant = SimDuration(extra.0.min(budget_left.0));

        // Outage clipping: the extended limit may not cross into a window.
        for &(s, e) in &self.outages {
            if limit_end <= s && limit_end + grant > s {
                grant = s.saturating_since(limit_end);
            } else if limit_end > s && limit_end < e {
                // Already doomed to die at the outage; extending is moot.
                self.acct.note_denial(DenyReason::OverlapsOutage);
                return ExtensionDecision::Denied(DenyReason::OverlapsOutage);
            }
        }
        if grant == SimDuration::ZERO {
            self.acct.note_denial(DenyReason::OverlapsOutage);
            return ExtensionDecision::Denied(DenyReason::OverlapsOutage);
        }

        // Reservation protection (§III.iv).
        let mut reservation_delay = SimDuration::ZERO;
        if let Some(&head) = self.queue.front() {
            let (head_nodes, head_wall) = {
                let j = &self.jobs[&head];
                (j.req.nodes, j.req.walltime)
            };
            let (shadow, _) = self.shadow_for(now, head_nodes, head_wall, None);
            let (shadow2, _) =
                self.shadow_for(now, head_nodes, head_wall, Some((id, limit_end + grant)));
            if shadow2 > shadow {
                if self.cfg.policy.respect_reservation {
                    let slack = shadow.saturating_since(limit_end);
                    if slack == SimDuration::ZERO {
                        self.acct.note_denial(DenyReason::WouldDelayReservation);
                        return ExtensionDecision::Denied(DenyReason::WouldDelayReservation);
                    }
                    grant = SimDuration(grant.0.min(slack.0));
                } else {
                    reservation_delay = shadow2.saturating_since(shadow);
                }
            }
        }

        // Commit.
        let job = self.jobs.get_mut(&id).expect("checked running above");
        job.extensions += 1;
        job.extended_total += grant;
        job.limit_end = Some(limit_end + grant);
        let partial = grant < extra;
        self.acct.note_grant(grant, partial, reservation_delay);
        if partial {
            ExtensionDecision::Partial {
                granted: grant,
                requested: extra,
            }
        } else {
            ExtensionDecision::Granted(grant)
        }
    }

    // ----- queries ---------------------------------------------------------

    /// Job record.
    pub fn job(&self, id: JobId) -> Option<&Job> {
        self.jobs.get(&id)
    }

    /// All job records (unspecified order) — post-campaign analysis.
    pub fn jobs(&self) -> impl Iterator<Item = &Job> {
        self.jobs.values()
    }

    /// Free node count.
    pub fn free_nodes(&self) -> u32 {
        self.free
    }

    /// Pending queue length.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Ids of running jobs (unspecified order).
    pub fn running_ids(&self) -> &[JobId] {
        &self.running
    }

    /// Earliest walltime deadline among running jobs — when the world
    /// should next check [`Scheduler::kill_expired`].
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.running
            .iter()
            .filter_map(|id| self.jobs[id].limit_end)
            .min()
    }

    /// The queue head's EASY reservation time, if the queue is non-empty.
    pub fn head_reservation(&self, now: SimTime) -> Option<SimTime> {
        let &head = self.queue.front()?;
        let (n, w) = {
            let j = &self.jobs[&head];
            (j.req.nodes, j.req.walltime)
        };
        Some(self.shadow_for(now, n, w, None).0)
    }

    /// Accounting totals.
    pub fn accounting(&self) -> &Accounting {
        &self.acct
    }

    /// Total node count.
    pub fn total_nodes(&self) -> u32 {
        self.cfg.total_nodes
    }

    // ----- internals --------------------------------------------------------

    fn advance_acct(&mut self, now: SimTime) {
        let busy = self.cfg.total_nodes - self.free;
        self.acct.advance(now, busy, self.free, self.queue.len());
    }

    fn start_job(&mut self, now: SimTime, id: JobId) {
        let job = self.jobs.get_mut(&id).expect("start of unknown job");
        debug_assert_eq!(job.state, JobState::Pending);
        job.state = JobState::Running;
        job.start = Some(now);
        job.limit_end = Some(now + job.req.walltime);
        self.free -= job.req.nodes;
        self.running.push(id);
    }

    fn release(&mut self, id: JobId, nodes: u32) {
        self.free += nodes;
        debug_assert!(self.free <= self.cfg.total_nodes);
        self.running.retain(|&r| r != id);
    }

    /// May a job of length `wall` start at `at` without overlapping an
    /// outage?
    fn start_allowed(&self, at: SimTime, wall: SimDuration) -> bool {
        let end = at + wall;
        self.outages.iter().all(|&(s, e)| !(at < e && end > s))
    }

    /// Earliest time `needed` nodes are simultaneously free (the EASY
    /// shadow), and the nodes spare beyond the head's need at that time.
    ///
    /// `override_limit` substitutes one running job's limit (used to
    /// evaluate a hypothetical extension without committing it). Outages
    /// push the shadow to the window end, where the machine is empty
    /// (outage kills all running jobs).
    fn shadow_for(
        &self,
        now: SimTime,
        needed: u32,
        head_wall: SimDuration,
        override_limit: Option<(JobId, SimTime)>,
    ) -> (SimTime, u32) {
        let mut releases: Vec<(SimTime, u32)> = self
            .running
            .iter()
            .map(|id| {
                let j = &self.jobs[id];
                let mut limit = j.limit_end.expect("running job has limit");
                if let Some((oid, olimit)) = override_limit {
                    if oid == *id {
                        limit = olimit;
                    }
                }
                (limit, j.req.nodes)
            })
            .collect();
        releases.sort();

        let mut free = self.free;
        let mut shadow = now;
        if free < needed {
            let mut found = false;
            for (t, n) in releases {
                free += n;
                if free >= needed {
                    shadow = t.max(now);
                    found = true;
                    break;
                }
            }
            if !found {
                return (SimTime::MAX, 0);
            }
        }
        // Push past any outage the head job would overlap; after an
        // outage the machine is empty.
        loop {
            let end = shadow + head_wall;
            match self.outages.iter().find(|&&(s, e)| shadow < e && end > s) {
                Some(&(_, e)) => {
                    shadow = e;
                    free = self.cfg.total_nodes;
                }
                None => break,
            }
        }
        (shadow, free - needed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, nodes: u32, wall_mins: u64) -> JobRequest {
        JobRequest {
            id: JobId(id),
            user: "u".into(),
            app_class: "a".into(),
            submit: SimTime::ZERO,
            nodes,
            walltime: SimDuration::from_mins(wall_mins),
        }
    }

    fn sched(nodes: u32) -> Scheduler {
        Scheduler::new(SchedulerConfig {
            total_nodes: nodes,
            policy: ExtensionPolicy::default(),
        })
    }

    fn t(mins: u64) -> SimTime {
        SimTime::from_mins(mins)
    }

    #[test]
    fn fcfs_starts_in_order() {
        let mut s = sched(4);
        s.submit(t(0), req(1, 2, 60), false);
        s.submit(t(0), req(2, 2, 60), false);
        s.submit(t(0), req(3, 2, 60), false);
        let started = s.schedule(t(0));
        assert_eq!(started, vec![JobId(1), JobId(2)]);
        assert_eq!(s.free_nodes(), 0);
        assert_eq!(s.queue_len(), 1);
        assert_eq!(s.job(JobId(1)).unwrap().state, JobState::Running);
        assert_eq!(s.job(JobId(3)).unwrap().state, JobState::Pending);
    }

    #[test]
    fn easy_backfill_fills_short_jobs() {
        // 4 nodes. J1 uses 3 for 100 min. Head J2 needs 4 (blocked until
        // J1 ends at t=100). J3 needs 1 node for 30 min → fits before the
        // shadow → backfills.
        let mut s = sched(4);
        s.submit(t(0), req(1, 3, 100), false);
        s.schedule(t(0));
        s.submit(t(1), req(2, 4, 60), false);
        s.submit(t(1), req(3, 1, 30), false);
        let started = s.schedule(t(1));
        assert_eq!(started, vec![JobId(3)]);
        assert_eq!(s.job(JobId(2)).unwrap().state, JobState::Pending);
        // The head's reservation is at J1's limit end.
        assert_eq!(s.head_reservation(t(1)), Some(t(100)));
    }

    #[test]
    fn backfill_never_delays_head_reservation() {
        // Same setup, but J3 is 1 node for 200 min: it would end after the
        // shadow (t=100) and does not fit in spare (4-4=0) → must wait.
        let mut s = sched(4);
        s.submit(t(0), req(1, 3, 100), false);
        s.schedule(t(0));
        s.submit(t(1), req(2, 4, 60), false);
        s.submit(t(1), req(3, 1, 200), false);
        let started = s.schedule(t(1));
        assert!(started.is_empty());
        assert_eq!(s.queue_len(), 2);
    }

    #[test]
    fn backfill_into_spare_nodes() {
        // 8 nodes. J1 uses 4 for 100 min. Head J2 needs 6 → blocked until
        // t=100, spare at shadow = 8-6 = 2. J3 needs 2 nodes for 500 min:
        // longer than the shadow but fits in spare → backfills.
        let mut s = sched(8);
        s.submit(t(0), req(1, 4, 100), false);
        s.schedule(t(0));
        s.submit(t(1), req(2, 6, 60), false);
        s.submit(t(1), req(3, 2, 500), false);
        let started = s.schedule(t(1));
        assert_eq!(started, vec![JobId(3)]);
        // A second 2-node long job would exceed spare → waits.
        s.submit(t(2), req(4, 2, 500), false);
        assert!(s.schedule(t(2)).is_empty());
    }

    #[test]
    fn finish_releases_and_unblocks() {
        let mut s = sched(4);
        s.submit(t(0), req(1, 4, 60), false);
        s.schedule(t(0));
        s.submit(t(5), req(2, 4, 60), false);
        assert!(s.schedule(t(5)).is_empty());
        s.finish(t(30), JobId(1));
        assert_eq!(s.free_nodes(), 4);
        let started = s.schedule(t(30));
        assert_eq!(started, vec![JobId(2)]);
        assert_eq!(s.accounting().completed, 1);
    }

    #[test]
    fn kill_expired_enforces_walltime() {
        let mut s = sched(4);
        s.submit(t(0), req(1, 2, 60), false);
        s.schedule(t(0));
        assert!(s.kill_expired(t(59)).is_empty());
        let killed = s.kill_expired(t(60));
        assert_eq!(killed, vec![JobId(1)]);
        assert_eq!(s.job(JobId(1)).unwrap().state, JobState::TimedOut);
        assert_eq!(s.free_nodes(), 4);
        assert_eq!(s.accounting().timed_out, 1);
        assert_eq!(s.next_deadline(), None);
    }

    #[test]
    fn extension_moves_deadline() {
        let mut s = sched(4);
        s.submit(t(0), req(1, 2, 60), false);
        s.schedule(t(0));
        let d = s.request_extension(t(30), JobId(1), SimDuration::from_mins(30));
        assert_eq!(d, ExtensionDecision::Granted(SimDuration::from_mins(30)));
        assert_eq!(s.next_deadline(), Some(t(90)));
        assert!(s.kill_expired(t(60)).is_empty());
        assert_eq!(s.kill_expired(t(90)), vec![JobId(1)]);
        assert_eq!(s.accounting().ext_granted, 1);
    }

    #[test]
    fn extension_denied_for_non_running() {
        let mut s = sched(4);
        s.submit(t(0), req(1, 2, 60), false);
        // Still pending.
        let d = s.request_extension(t(0), JobId(1), SimDuration::from_mins(5));
        assert_eq!(d, ExtensionDecision::Denied(DenyReason::NotRunning));
        let d2 = s.request_extension(t(0), JobId(99), SimDuration::from_mins(5));
        assert_eq!(d2, ExtensionDecision::Denied(DenyReason::NotRunning));
    }

    #[test]
    fn extension_count_limit() {
        let mut s = Scheduler::new(SchedulerConfig {
            total_nodes: 4,
            policy: ExtensionPolicy {
                max_extensions_per_job: 2,
                max_total_extension: SimDuration::from_hours(10),
                respect_reservation: false,
            },
        });
        s.submit(t(0), req(1, 2, 600), false);
        s.schedule(t(0));
        assert!(s
            .request_extension(t(1), JobId(1), SimDuration::from_mins(1))
            .is_granted());
        assert!(s
            .request_extension(t(2), JobId(1), SimDuration::from_mins(1))
            .is_granted());
        let d = s.request_extension(t(3), JobId(1), SimDuration::from_mins(1));
        assert_eq!(d, ExtensionDecision::Denied(DenyReason::TooManyExtensions));
        assert_eq!(s.accounting().ext_denied_too_many, 1);
    }

    #[test]
    fn extension_budget_clips_to_partial() {
        let mut s = Scheduler::new(SchedulerConfig {
            total_nodes: 4,
            policy: ExtensionPolicy {
                max_extensions_per_job: 10,
                max_total_extension: SimDuration::from_mins(40),
                respect_reservation: false,
            },
        });
        s.submit(t(0), req(1, 2, 600), false);
        s.schedule(t(0));
        let d = s.request_extension(t(1), JobId(1), SimDuration::from_mins(60));
        assert_eq!(
            d,
            ExtensionDecision::Partial {
                granted: SimDuration::from_mins(40),
                requested: SimDuration::from_mins(60)
            }
        );
        let d2 = s.request_extension(t(2), JobId(1), SimDuration::from_mins(1));
        assert_eq!(d2, ExtensionDecision::Denied(DenyReason::BudgetExhausted));
    }

    #[test]
    fn extension_respects_head_reservation() {
        // 4 nodes. J1 (2 nodes) ends at t=60; J2 (2 nodes) ends at t=100.
        // Head J3 needs 4 nodes → shadow = 100. J2 extension by 30 would
        // move the shadow to 130 → denied... but J2 has slack 0? J2's
        // limit IS the shadow, so slack = 0 → denied outright.
        let mut s = sched(4);
        s.submit(t(0), req(1, 2, 60), false);
        s.submit(t(0), req(2, 2, 100), false);
        s.schedule(t(0));
        s.submit(t(1), req(3, 4, 60), false);
        s.schedule(t(1));
        let d = s.request_extension(t(10), JobId(2), SimDuration::from_mins(30));
        assert_eq!(
            d,
            ExtensionDecision::Denied(DenyReason::WouldDelayReservation)
        );
        // J1 has slack 40 (its limit 60 vs shadow 100): clipped grant.
        let d1 = s.request_extension(t(10), JobId(1), SimDuration::from_mins(60));
        assert_eq!(
            d1,
            ExtensionDecision::Partial {
                granted: SimDuration::from_mins(40),
                requested: SimDuration::from_mins(60)
            }
        );
        assert_eq!(s.accounting().ext_denied_reservation, 1);
    }

    #[test]
    fn permissive_policy_records_reservation_delay() {
        let mut s = Scheduler::new(SchedulerConfig {
            total_nodes: 4,
            policy: ExtensionPolicy::permissive(),
        });
        s.submit(t(0), req(1, 2, 60), false);
        s.submit(t(0), req(2, 2, 100), false);
        s.schedule(t(0));
        s.submit(t(1), req(3, 4, 60), false);
        s.schedule(t(1));
        // Extending J2 by 30 min delays the head reservation 100 → 130.
        let d = s.request_extension(t(10), JobId(2), SimDuration::from_mins(30));
        assert!(d.is_granted());
        assert_eq!(s.accounting().reservation_delay_ms, 30 * 60_000);
    }

    #[test]
    fn outage_drain_blocks_overlapping_starts() {
        let mut s = sched(4);
        s.add_outage(t(60), t(120));
        // 90-minute job at t=0 would overlap the outage → may not start.
        s.submit(t(0), req(1, 2, 90), false);
        assert!(s.schedule(t(0)).is_empty());
        // 30-minute job finishes before the outage → starts.
        s.submit(t(0), req(2, 2, 30), false);
        let started = s.schedule(t(0));
        assert_eq!(started, vec![JobId(2)]);
        // After the outage the long job can start.
        s.finish(t(30), JobId(2));
        assert!(s.schedule(t(119)).is_empty());
        assert_eq!(s.schedule(t(120)), vec![JobId(1)]);
    }

    #[test]
    fn outage_kill_slays_running_jobs() {
        let mut s = sched(4);
        s.submit(t(0), req(1, 2, 50), false);
        s.schedule(t(0));
        s.add_outage(t(30), t(60));
        let killed = s.outage_kill(t(30));
        assert_eq!(killed, vec![JobId(1)]);
        assert_eq!(s.job(JobId(1)).unwrap().state, JobState::MaintenanceKilled);
        assert_eq!(s.accounting().maintenance_killed, 1);
        assert_eq!(s.free_nodes(), 4);
    }

    #[test]
    fn extension_clipped_at_outage_boundary() {
        let mut s = Scheduler::new(SchedulerConfig {
            total_nodes: 4,
            policy: ExtensionPolicy::permissive(),
        });
        s.submit(t(0), req(1, 2, 50), false);
        s.schedule(t(0));
        s.add_outage(t(60), t(120));
        // Limit is t=50; requesting 30 min would cross t=60 → clipped to 10.
        let d = s.request_extension(t(10), JobId(1), SimDuration::from_mins(30));
        assert_eq!(
            d,
            ExtensionDecision::Partial {
                granted: SimDuration::from_mins(10),
                requested: SimDuration::from_mins(30)
            }
        );
        // A second request has zero room → denied.
        let d2 = s.request_extension(t(11), JobId(1), SimDuration::from_mins(5));
        assert_eq!(d2, ExtensionDecision::Denied(DenyReason::OverlapsOutage));
    }

    #[test]
    fn cancel_pending_and_running() {
        let mut s = sched(4);
        s.submit(t(0), req(1, 4, 60), false);
        s.submit(t(0), req(2, 2, 60), false);
        s.schedule(t(0));
        s.cancel(t(5), JobId(2)); // pending
        assert_eq!(s.job(JobId(2)).unwrap().state, JobState::Cancelled);
        assert_eq!(s.queue_len(), 0);
        s.cancel(t(6), JobId(1)); // running
        assert_eq!(s.free_nodes(), 4);
        assert_eq!(s.accounting().cancelled, 2);
    }

    #[test]
    fn resubmit_counter() {
        let mut s = sched(4);
        s.submit(t(0), req(1, 1, 10), false);
        s.submit(t(0), req(2, 1, 10), true);
        assert_eq!(s.accounting().resubmitted, 1);
    }

    #[test]
    fn utilization_integrates_over_run() {
        let mut s = sched(2);
        s.submit(t(0), req(1, 2, 60), false);
        s.schedule(t(0));
        s.finish(t(60), JobId(1));
        // Close the books at t=120 (idle, empty queue).
        s.schedule(t(120));
        let a = s.accounting();
        assert_eq!(a.busy_node_ms, 2 * 60 * 60_000);
        assert_eq!(a.idle_empty_node_ms, 2 * 60 * 60_000);
        assert!((a.utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn next_deadline_is_min_limit() {
        let mut s = sched(8);
        s.submit(t(0), req(1, 2, 60), false);
        s.submit(t(0), req(2, 2, 30), false);
        s.schedule(t(0));
        assert_eq!(s.next_deadline(), Some(t(30)));
    }

    #[test]
    #[should_panic(expected = "duplicate job id")]
    fn duplicate_submit_panics() {
        let mut s = sched(4);
        s.submit(t(0), req(1, 1, 10), false);
        s.submit(t(0), req(1, 1, 10), false);
    }

    #[test]
    fn head_blocked_by_outage_gets_post_outage_reservation() {
        let mut s = sched(4);
        s.add_outage(t(30), t(60));
        // Head needs 4 nodes for 90 min; machine is free but the start
        // would overlap the outage → waits with reservation at t=60.
        s.submit(t(0), req(1, 4, 90), false);
        assert!(s.schedule(t(0)).is_empty());
        assert_eq!(s.head_reservation(t(0)), Some(t(60)));
    }
}
