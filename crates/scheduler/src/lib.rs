//! # moda-scheduler
//!
//! A SLURM-like batch scheduler — the managed system of the paper's
//! **Scheduler** use case (§III, Fig. 3) and the substrate for the
//! Maintenance case.
//!
//! What the loops need from a scheduler, and what this crate provides:
//!
//! * **FCFS + EASY backfill** over a homogeneous node pool
//!   ([`scheduler::Scheduler`]), with walltime enforcement (jobs are
//!   killed at their limit — the failure mode the Scheduler loop exists
//!   to prevent),
//! * **the extension hook** — "for typical HPC schedulers, such as
//!   SLURM, this is an existing command-line functionality" (§III):
//!   [`scheduler::Scheduler::request_extension`] may grant, partially
//!   grant, or deny (§III: "the scheduler may deny the request or provide
//!   a shorter extension than requested"), governed by a configurable
//!   [`policy::ExtensionPolicy`] with the §III.iv trust controls,
//! * **maintenance outages** — full-system windows the scheduler drains
//!   toward (no job may start if it would overlap), for the Maintenance
//!   case,
//! * **accounting** — utilization, queue-blocked idle node-time,
//!   completions/kills/requeues, extension grants and reservation delays:
//!   the quantities §III.iv–v name as validation and incentive metrics.

pub mod accounting;
pub mod job;
pub mod policy;
pub mod scheduler;

pub use accounting::Accounting;
pub use job::{Job, JobId, JobRequest, JobState};
pub use policy::{DenyReason, ExtensionDecision, ExtensionPolicy};
pub use scheduler::{Scheduler, SchedulerConfig};
