//! Walltime-extension policy.
//!
//! The Execute phase of the Scheduler loop calls
//! [`crate::scheduler::Scheduler::request_extension`]; this module is the
//! scheduler-side policy that answers. §III is explicit that the answer
//! is not always yes: "the scheduler may deny the request or provide a
//! shorter extension than requested", and §III.iv names the trust
//! controls — "limits on the number and overall time of extensions for a
//! single application" — which appear here as policy knobs.

use moda_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Why an extension was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DenyReason {
    /// The job is not running.
    NotRunning,
    /// Per-job extension-count limit reached.
    TooManyExtensions,
    /// Per-job total-extension-time budget exhausted.
    BudgetExhausted,
    /// Granting would delay the backfill reservation of the queue head
    /// and the policy forbids that.
    WouldDelayReservation,
    /// Granting would push the job into a maintenance outage.
    OverlapsOutage,
}

/// The scheduler's answer to an extension request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ExtensionDecision {
    /// Full grant of the requested time.
    Granted(SimDuration),
    /// Partial grant: less than requested (clipped by a budget, the
    /// reservation, or an outage).
    Partial {
        /// Time actually granted.
        granted: SimDuration,
        /// Time that was requested.
        requested: SimDuration,
    },
    /// Refused outright.
    Denied(DenyReason),
}

impl ExtensionDecision {
    /// Time actually granted (zero when denied).
    pub fn granted(&self) -> SimDuration {
        match *self {
            ExtensionDecision::Granted(d) => d,
            ExtensionDecision::Partial { granted, .. } => granted,
            ExtensionDecision::Denied(_) => SimDuration::ZERO,
        }
    }

    /// Whether any time was granted.
    pub fn is_granted(&self) -> bool {
        self.granted() > SimDuration::ZERO
    }
}

/// Scheduler-side extension policy (§III.iv trust controls).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExtensionPolicy {
    /// Maximum number of extensions per job.
    pub max_extensions_per_job: u32,
    /// Maximum cumulative extension time per job.
    pub max_total_extension: SimDuration,
    /// If true, an extension may not delay the EASY reservation of the
    /// queue head; the grant is clipped to the reservation slack (and
    /// denied if there is none).
    pub respect_reservation: bool,
}

impl Default for ExtensionPolicy {
    /// SLURM-site-flavoured defaults: up to 3 extensions, at most 2 h
    /// total, never delaying the head reservation.
    fn default() -> Self {
        ExtensionPolicy {
            max_extensions_per_job: 3,
            max_total_extension: SimDuration::from_hours(2),
            respect_reservation: true,
        }
    }
}

impl ExtensionPolicy {
    /// A policy that always grants (baseline/ablation configuration).
    pub fn permissive() -> Self {
        ExtensionPolicy {
            max_extensions_per_job: u32::MAX,
            max_total_extension: SimDuration(u64::MAX),
            respect_reservation: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_granted_amounts() {
        assert_eq!(
            ExtensionDecision::Granted(SimDuration::from_secs(60)).granted(),
            SimDuration::from_secs(60)
        );
        assert_eq!(
            ExtensionDecision::Partial {
                granted: SimDuration::from_secs(30),
                requested: SimDuration::from_secs(60)
            }
            .granted(),
            SimDuration::from_secs(30)
        );
        assert_eq!(
            ExtensionDecision::Denied(DenyReason::TooManyExtensions).granted(),
            SimDuration::ZERO
        );
    }

    #[test]
    fn is_granted_semantics() {
        assert!(ExtensionDecision::Granted(SimDuration::from_secs(1)).is_granted());
        assert!(!ExtensionDecision::Denied(DenyReason::NotRunning).is_granted());
        // A zero-length "grant" counts as not granted.
        assert!(!ExtensionDecision::Granted(SimDuration::ZERO).is_granted());
    }

    #[test]
    fn default_policy_has_trust_controls() {
        let p = ExtensionPolicy::default();
        assert_eq!(p.max_extensions_per_job, 3);
        assert!(p.respect_reservation);
        let perm = ExtensionPolicy::permissive();
        assert!(!perm.respect_reservation);
        assert!(perm.max_total_extension > SimDuration::from_hours(1_000_000));
    }
}
