//! Jobs as the scheduler sees them.
//!
//! The scheduler knows only what a user request tells it — node count and
//! *requested* walltime. Actual durations are a property of the running
//! application (modeled in `moda-hpc`); the gap between the two is
//! exactly what the Scheduler autonomy loop estimates and corrects.

use moda_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Scheduler-wide job identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// A submission: what the user asked for.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRequest {
    /// Unique id (assigned by the submitter).
    pub id: JobId,
    /// Owner (accounting/trust metrics are per-user in §III.v).
    pub user: String,
    /// Application family, linking the job to Knowledge history.
    pub app_class: String,
    /// Submission time.
    pub submit: SimTime,
    /// Nodes requested.
    pub nodes: u32,
    /// Requested walltime limit.
    pub walltime: SimDuration,
}

/// Lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    /// Waiting in the queue.
    Pending,
    /// Running since the contained time.
    Running,
    /// Finished before its limit.
    Completed,
    /// Killed at its walltime limit while still working — the outcome
    /// the Scheduler loop exists to prevent.
    TimedOut,
    /// Killed by a maintenance outage.
    MaintenanceKilled,
    /// Killed by a node failure (fail-stop hardware fault, §IV
    /// resilience scenarios).
    Failed,
    /// Removed by request (e.g. after checkpointing for resubmission).
    Cancelled,
}

impl JobState {
    /// Terminal states never transition again.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Completed
                | JobState::TimedOut
                | JobState::MaintenanceKilled
                | JobState::Failed
                | JobState::Cancelled
        )
    }
}

/// Scheduler-internal job record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Job {
    /// The original request.
    pub req: JobRequest,
    /// Current state.
    pub state: JobState,
    /// Start time (set when Running).
    pub start: Option<SimTime>,
    /// Current kill deadline (start + walltime + granted extensions).
    pub limit_end: Option<SimTime>,
    /// End time (set on terminal transition).
    pub end: Option<SimTime>,
    /// Number of extensions granted so far.
    pub extensions: u32,
    /// Total extension time granted so far.
    pub extended_total: SimDuration,
}

impl Job {
    /// Fresh pending job.
    pub fn new(req: JobRequest) -> Self {
        Job {
            req,
            state: JobState::Pending,
            start: None,
            limit_end: None,
            end: None,
            extensions: 0,
            extended_total: SimDuration::ZERO,
        }
    }

    /// Remaining allocation at `now` (None unless running).
    pub fn remaining(&self, now: SimTime) -> Option<SimDuration> {
        match (self.state, self.limit_end) {
            (JobState::Running, Some(limit)) => Some(limit.saturating_since(now)),
            _ => None,
        }
    }

    /// Wait time in queue (None until started).
    pub fn wait_time(&self) -> Option<SimDuration> {
        self.start.map(|s| s.saturating_since(self.req.submit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req() -> JobRequest {
        JobRequest {
            id: JobId(1),
            user: "alice".into(),
            app_class: "cfd".into(),
            submit: SimTime::from_secs(100),
            nodes: 4,
            walltime: SimDuration::from_mins(30),
        }
    }

    #[test]
    fn new_job_is_pending() {
        let j = Job::new(req());
        assert_eq!(j.state, JobState::Pending);
        assert_eq!(j.remaining(SimTime::from_secs(200)), None);
        assert_eq!(j.wait_time(), None);
    }

    #[test]
    fn remaining_counts_down_when_running() {
        let mut j = Job::new(req());
        j.state = JobState::Running;
        j.start = Some(SimTime::from_secs(200));
        j.limit_end = Some(SimTime::from_secs(200) + SimDuration::from_mins(30));
        let rem = j.remaining(SimTime::from_secs(200 + 600)).unwrap();
        assert_eq!(rem, SimDuration::from_mins(20));
        // Past the limit saturates to zero.
        assert_eq!(
            j.remaining(SimTime::from_secs(200 + 3600)).unwrap(),
            SimDuration::ZERO
        );
        assert_eq!(j.wait_time(), Some(SimDuration::from_secs(100)));
    }

    #[test]
    fn terminal_states() {
        assert!(!JobState::Pending.is_terminal());
        assert!(!JobState::Running.is_terminal());
        assert!(JobState::Completed.is_terminal());
        assert!(JobState::TimedOut.is_terminal());
        assert!(JobState::MaintenanceKilled.is_terminal());
        assert!(JobState::Cancelled.is_terminal());
    }

    #[test]
    fn display_and_ordering() {
        assert_eq!(JobId(7).to_string(), "job7");
        assert!(JobId(1) < JobId(2));
    }
}
