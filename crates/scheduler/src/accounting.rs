//! Scheduler accounting — the validation and incentive metrics of
//! §III.iv–v.
//!
//! "Additional statistics, such as increase in completed and decrease in
//! resubmitted jobs, would incentivize administrators to deploy it"; and
//! trust requires "evaluations such as run time overestimations that
//! would have resulted in untaken backfill opportunities". This module
//! integrates those quantities as the scheduler runs:
//!
//! * terminal-state counters (completed / timed-out / maintenance-killed /
//!   cancelled) and resubmissions,
//! * node-time utilization, split into busy, idle-with-empty-queue, and
//!   **idle-while-queued** (the backfill-loss proxy: node-seconds that
//!   sat idle although work was waiting),
//! * extension accounting: grants, partials, denials by reason, total
//!   granted time, and cumulative reservation delay imposed on the queue
//!   head by grants.

use crate::policy::DenyReason;
use moda_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Running totals. Time integrals are in node-milliseconds.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Accounting {
    /// Jobs that finished within their (possibly extended) limit.
    pub completed: u64,
    /// Jobs killed at the walltime limit.
    pub timed_out: u64,
    /// Jobs killed by a maintenance outage.
    pub maintenance_killed: u64,
    /// Jobs cancelled (e.g. checkpoint-then-resubmit).
    pub cancelled: u64,
    /// Jobs killed by node failures (fail-stop fault injection).
    pub failed: u64,
    /// Resubmissions observed (submits whose request carries a retry
    /// marker; see [`Accounting::note_resubmit`]).
    pub resubmitted: u64,

    /// Node-ms with a job assigned.
    pub busy_node_ms: u64,
    /// Node-ms idle while the queue was empty (benign idle).
    pub idle_empty_node_ms: u64,
    /// Node-ms idle while jobs were queued (blocked by fragmentation or
    /// reservation — the untaken-backfill proxy).
    pub idle_queued_node_ms: u64,

    /// Extensions fully granted.
    pub ext_granted: u64,
    /// Extensions partially granted.
    pub ext_partial: u64,
    /// Extensions denied, by reason.
    pub ext_denied_not_running: u64,
    /// Denials: per-job count limit.
    pub ext_denied_too_many: u64,
    /// Denials: per-job time budget.
    pub ext_denied_budget: u64,
    /// Denials: would delay the head reservation.
    pub ext_denied_reservation: u64,
    /// Denials: would overlap an outage.
    pub ext_denied_outage: u64,
    /// Total extension time granted (ms).
    pub ext_time_granted_ms: u64,
    /// Cumulative delay imposed on the queue-head reservation by grants (ms).
    pub reservation_delay_ms: u64,

    last_advance: SimTime,
}

impl Accounting {
    /// Fresh accounting starting at t=0.
    pub fn new() -> Self {
        Accounting::default()
    }

    /// Integrate node-time from the last advance to `now` given the
    /// current occupancy. Call *before* mutating scheduler state.
    pub fn advance(&mut self, now: SimTime, busy_nodes: u32, free_nodes: u32, queue_len: usize) {
        let dt = now.saturating_since(self.last_advance).as_millis();
        if dt > 0 {
            self.busy_node_ms += dt * busy_nodes as u64;
            let idle = dt * free_nodes as u64;
            if queue_len > 0 {
                self.idle_queued_node_ms += idle;
            } else {
                self.idle_empty_node_ms += idle;
            }
            self.last_advance = now;
        }
    }

    /// Count a resubmission.
    pub fn note_resubmit(&mut self) {
        self.resubmitted += 1;
    }

    /// Count an extension denial.
    pub fn note_denial(&mut self, reason: DenyReason) {
        match reason {
            DenyReason::NotRunning => self.ext_denied_not_running += 1,
            DenyReason::TooManyExtensions => self.ext_denied_too_many += 1,
            DenyReason::BudgetExhausted => self.ext_denied_budget += 1,
            DenyReason::WouldDelayReservation => self.ext_denied_reservation += 1,
            DenyReason::OverlapsOutage => self.ext_denied_outage += 1,
        }
    }

    /// Count a grant (full or partial) of `granted`, which delayed the
    /// head reservation by `reservation_delay`.
    pub fn note_grant(
        &mut self,
        granted: SimDuration,
        partial: bool,
        reservation_delay: SimDuration,
    ) {
        if partial {
            self.ext_partial += 1;
        } else {
            self.ext_granted += 1;
        }
        self.ext_time_granted_ms += granted.as_millis();
        self.reservation_delay_ms += reservation_delay.as_millis();
    }

    /// Utilization in `[0, 1]`: busy / (busy + idle).
    pub fn utilization(&self) -> f64 {
        let total = self.busy_node_ms + self.idle_empty_node_ms + self.idle_queued_node_ms;
        if total == 0 {
            0.0
        } else {
            self.busy_node_ms as f64 / total as f64
        }
    }

    /// Total extension denials.
    pub fn ext_denied_total(&self) -> u64 {
        self.ext_denied_not_running
            + self.ext_denied_too_many
            + self.ext_denied_budget
            + self.ext_denied_reservation
            + self.ext_denied_outage
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_integrates_node_time() {
        let mut a = Accounting::new();
        // 10 s with 3 busy, 1 free, empty queue.
        a.advance(SimTime::from_secs(10), 3, 1, 0);
        assert_eq!(a.busy_node_ms, 30_000);
        assert_eq!(a.idle_empty_node_ms, 10_000);
        assert_eq!(a.idle_queued_node_ms, 0);
        // Next 10 s with 2 busy, 2 free, queue waiting.
        a.advance(SimTime::from_secs(20), 2, 2, 5);
        assert_eq!(a.busy_node_ms, 50_000);
        assert_eq!(a.idle_queued_node_ms, 20_000);
        let util = a.utilization();
        assert!((util - 50.0 / 80.0).abs() < 1e-12);
    }

    #[test]
    fn advance_is_idempotent_at_same_time() {
        let mut a = Accounting::new();
        a.advance(SimTime::from_secs(5), 1, 0, 0);
        let busy = a.busy_node_ms;
        a.advance(SimTime::from_secs(5), 1, 0, 0);
        assert_eq!(a.busy_node_ms, busy);
    }

    #[test]
    fn denial_counters_route_by_reason() {
        let mut a = Accounting::new();
        a.note_denial(DenyReason::TooManyExtensions);
        a.note_denial(DenyReason::WouldDelayReservation);
        a.note_denial(DenyReason::WouldDelayReservation);
        assert_eq!(a.ext_denied_too_many, 1);
        assert_eq!(a.ext_denied_reservation, 2);
        assert_eq!(a.ext_denied_total(), 3);
    }

    #[test]
    fn grant_accounting() {
        let mut a = Accounting::new();
        a.note_grant(SimDuration::from_mins(5), false, SimDuration::ZERO);
        a.note_grant(SimDuration::from_mins(2), true, SimDuration::from_secs(30));
        assert_eq!(a.ext_granted, 1);
        assert_eq!(a.ext_partial, 1);
        assert_eq!(a.ext_time_granted_ms, 7 * 60_000);
        assert_eq!(a.reservation_delay_ms, 30_000);
    }

    #[test]
    fn utilization_empty_is_zero() {
        assert_eq!(Accounting::new().utilization(), 0.0);
    }
}
