//! Property tests for the batch-scheduler substrate.
//!
//! A randomized campaign driver submits arbitrary job mixes, runs the
//! scheduler's event loop to completion, injects random extension
//! requests, and checks the global invariants DESIGN.md §7 promises:
//! node conservation, walltime enforcement, per-job extension caps, and
//! reservation protection (the §III.iv trust control).

use moda_scheduler::{ExtensionPolicy, JobId, JobRequest, JobState, Scheduler, SchedulerConfig};
use moda_sim::{SimDuration, SimTime};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
struct SpecJob {
    nodes: u32,
    walltime_s: u64,
    actual_s: u64,
    submit_s: u64,
    /// Whether the driver fires an extension request mid-run.
    asks_extension: bool,
}

fn spec_job() -> impl Strategy<Value = SpecJob> {
    (
        1u32..16,
        60u64..4000,
        60u64..5000,
        0u64..2000,
        any::<bool>(),
    )
        .prop_map(
            |(nodes, walltime_s, actual_s, submit_s, asks_extension)| SpecJob {
                nodes,
                walltime_s,
                actual_s,
                submit_s,
                asks_extension,
            },
        )
}

/// Drive a random campaign to completion, checking stepwise invariants.
/// Returns the scheduler for post-hoc assertions.
fn drive(
    jobs: &[SpecJob],
    policy: ExtensionPolicy,
    total_nodes: u32,
) -> Result<Scheduler, TestCaseError> {
    let mut s = Scheduler::new(SchedulerConfig {
        total_nodes,
        policy,
    });
    // Submission events.
    let mut submissions: Vec<(u64, JobRequest)> = jobs
        .iter()
        .enumerate()
        .map(|(i, j)| {
            (
                j.submit_s,
                JobRequest {
                    id: JobId(i as u64),
                    user: format!("u{}", i % 3),
                    app_class: "p".into(),
                    submit: SimTime::from_secs(j.submit_s),
                    nodes: j.nodes.min(total_nodes),
                    walltime: SimDuration::from_secs(j.walltime_s),
                },
            )
        })
        .collect();
    submissions.sort_by_key(|(t, r)| (*t, r.id.0));

    let mut finish_at: HashMap<JobId, SimTime> = HashMap::new();
    let mut asked: HashMap<JobId, bool> = HashMap::new();
    let mut t = SimTime::ZERO;
    let mut guard = 0usize;
    loop {
        guard += 1;
        prop_assert!(guard < 100_000, "driver did not converge");

        // Process arrivals due now.
        while let Some((ts, _)) = submissions.first() {
            if SimTime::from_secs(*ts) > t {
                break;
            }
            let (_, req) = submissions.remove(0);
            s.submit(t, req, false);
        }
        // Enforce walltimes, then schedule.
        for id in s.kill_expired(t) {
            finish_at.remove(&id);
        }
        for id in s.schedule(t) {
            let spec = &jobs[id.0 as usize];
            let start = s.job(id).unwrap().start.unwrap();
            finish_at.insert(id, start + SimDuration::from_secs(spec.actual_s));
        }
        // Natural completions due now.
        let done: Vec<JobId> = finish_at
            .iter()
            .filter(|(_, &end)| end <= t)
            .map(|(&id, _)| id)
            .collect();
        for id in done {
            // The job may have been killed at its limit first.
            if s.job(id).unwrap().state == JobState::Running {
                s.finish(t, id);
            }
            finish_at.remove(&id);
        }
        // Mid-run extension requests (roughly half-way through).
        let running: Vec<JobId> = s.running_ids().to_vec();
        for id in running {
            let spec = &jobs[id.0 as usize];
            if spec.asks_extension && !asked.get(&id).copied().unwrap_or(false) {
                asked.insert(id, true);
                let _ = s.request_extension(t, id, SimDuration::from_secs(spec.actual_s / 2));
            }
        }

        // ---- stepwise invariants ----
        // Node conservation.
        let in_use: u32 = s
            .running_ids()
            .iter()
            .map(|id| s.job(*id).unwrap().req.nodes)
            .sum();
        prop_assert_eq!(in_use + s.free_nodes(), total_nodes, "node leak at {:?}", t);
        // No running job past its (possibly extended) limit beyond one step.
        for id in s.running_ids() {
            let j = s.job(*id).unwrap();
            prop_assert!(
                j.limit_end.unwrap() + SimDuration::from_secs(1) >= t,
                "job {} overran its limit",
                j.req.id
            );
        }

        // ---- advance time ----
        let mut next: Option<SimTime> = None;
        let mut consider = |cand: Option<SimTime>| {
            if let Some(c) = cand {
                next = Some(next.map_or(c, |n: SimTime| n.min(c)));
            }
        };
        consider(submissions.first().map(|(ts, _)| SimTime::from_secs(*ts)));
        consider(finish_at.values().min().copied());
        consider(s.next_deadline());
        match next {
            Some(n) => t = n.max(t + SimDuration(1)),
            None => break,
        }
    }
    Ok(s)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Full random campaigns terminate with every job in a terminal
    /// state, no node leaks, and per-job extension caps honored.
    #[test]
    fn random_campaigns_respect_invariants(jobs in prop::collection::vec(spec_job(), 1..25)) {
        let policy = ExtensionPolicy::default();
        let s = drive(&jobs, policy, 32)?;
        let mut terminal = 0;
        for (i, spec) in jobs.iter().enumerate() {
            let j = s.job(JobId(i as u64)).expect("job exists");
            prop_assert!(j.state.is_terminal(), "{} not terminal: {:?}", j.req.id, j.state);
            terminal += 1;
            // §III.iv caps.
            prop_assert!(j.extensions <= policy.max_extensions_per_job);
            prop_assert!(j.extended_total <= policy.max_total_extension);
            // Jobs whose request covered their work must complete.
            if spec.actual_s + 1 < spec.walltime_s {
                prop_assert_eq!(
                    j.state,
                    JobState::Completed,
                    "well-requested job {} should finish", j.req.id
                );
            }
            // Completed jobs ran within limit; timed-out jobs died at it.
            if j.state == JobState::TimedOut {
                prop_assert_eq!(j.end.unwrap(), j.limit_end.unwrap());
            }
        }
        prop_assert_eq!(terminal, jobs.len());
        // All nodes free at the end.
        prop_assert_eq!(s.free_nodes(), 32);
        // Accounting sanity.
        let a = s.accounting();
        prop_assert!(a.utilization() <= 1.0 + 1e-9);
    }

    /// With `respect_reservation`, the head job's reservation is never
    /// delayed by extensions (the reservation-delay meter stays zero).
    #[test]
    fn protected_reservations_never_delayed(jobs in prop::collection::vec(spec_job(), 1..25)) {
        let s = drive(&jobs, ExtensionPolicy::default(), 16)?;
        prop_assert_eq!(s.accounting().reservation_delay_ms, 0);
    }

    /// Denial accounting matches: every request is granted, partial, or
    /// denied — and the counters add up.
    #[test]
    fn extension_accounting_adds_up(jobs in prop::collection::vec(spec_job(), 1..25)) {
        let s = drive(&jobs, ExtensionPolicy::default(), 32)?;
        let a = s.accounting();
        let granted_time: u64 = {
            let mut sum = SimDuration::ZERO;
            for (i, _) in jobs.iter().enumerate() {
                sum += s.job(JobId(i as u64)).unwrap().extended_total;
            }
            sum.0
        };
        prop_assert_eq!(a.ext_time_granted_ms, granted_time);
        // Each granting event granted some time; each denial none.
        if a.ext_granted + a.ext_partial == 0 {
            prop_assert_eq!(a.ext_time_granted_ms, 0);
        }
    }

    /// FCFS fairness floor: with no extensions in play, a job can never
    /// start before an earlier-submitted job *of equal or smaller size*
    /// (equal-size jobs are interchangeable to backfill, so any
    /// overtaking among them would be a scheduler bug).
    #[test]
    fn no_overtaking_among_equal_jobs(
        mut jobs in prop::collection::vec(spec_job(), 2..20),
        nodes in 1u32..8,
        wall in 100u64..2000,
    ) {
        for j in jobs.iter_mut() {
            j.nodes = nodes;
            j.walltime_s = wall;
            j.actual_s = wall.saturating_sub(10).max(1);
            j.asks_extension = false;
        }
        let s = drive(&jobs, ExtensionPolicy::default(), 16)?;
        // Equal jobs must start in submit order (ties broken by id).
        let mut order: Vec<(SimTime, u64, SimTime)> = (0..jobs.len() as u64)
            .filter_map(|i| {
                let j = s.job(JobId(i)).unwrap();
                j.start.map(|st| (j.req.submit, i, st))
            })
            .collect();
        order.sort();
        for w in order.windows(2) {
            prop_assert!(
                w[0].2 <= w[1].2,
                "job {} (submitted earlier) started after job {}",
                w[0].1,
                w[1].1
            );
        }
    }
}
