//! Property tests for the composed world: whatever the workload and
//! fault configuration, campaign accounting must balance and the same
//! seed must reproduce the same history.

use moda_hpc::{workload, FailureConfig, World, WorldConfig};
use moda_scheduler::JobState;
use moda_sim::{RngStreams, SimDuration, SimTime};
use proptest::prelude::*;

fn world_with(seed: u64, n_jobs: usize, nodes: u32, mtbf_s: Option<f64>) -> World {
    let mut w = World::new(WorldConfig {
        nodes,
        seed,
        power_period: None,
        failure: mtbf_s.map(|node_mtbf_s| FailureConfig { node_mtbf_s }),
        resubmit_delay: SimDuration::from_secs(60),
        ..WorldConfig::default()
    });
    w.submit_campaign(workload::generate(
        &workload::WorkloadConfig {
            n_jobs,
            mean_interarrival_s: 60.0,
            ..workload::WorkloadConfig::default()
        },
        &RngStreams::new(seed),
        0,
    ));
    w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Attempt accounting balances: every submitted attempt (root or
    /// resubmission) ends in exactly one terminal state, and the world's
    /// counters agree with the scheduler's job table.
    #[test]
    fn attempt_accounting_balances(seed in 0u64..1000, n_jobs in 1usize..40) {
        let mut w = world_with(seed, n_jobs, 16, None);
        w.run_to_completion(SimTime::from_hours(24 * 30));
        prop_assert!(w.drained());

        let mut by_state = [0u64; 6];
        let mut attempts = 0u64;
        for j in w.sched.jobs() {
            attempts += 1;
            prop_assert!(j.state.is_terminal(), "{} not terminal", j.req.id);
            by_state[match j.state {
                JobState::Completed => 0,
                JobState::TimedOut => 1,
                JobState::MaintenanceKilled => 2,
                JobState::Failed => 3,
                JobState::Cancelled => 4,
                JobState::Pending | JobState::Running => 5,
            }] += 1;
        }
        let m = &w.metrics;
        prop_assert_eq!(by_state[0], m.completed);
        prop_assert_eq!(by_state[1], m.timed_out);
        prop_assert_eq!(by_state[2], m.maintenance_killed);
        prop_assert_eq!(by_state[3], m.failures);
        prop_assert_eq!(attempts, m.roots_total + m.resubmits);
        // Every root eventually completes (auto-resubmit retries walltime
        // kills with padded requests until they fit).
        prop_assert_eq!(m.roots_completed, n_jobs as u64);
    }

    /// Bit-identical reproducibility: same seed ⇒ same campaign history,
    /// including under failure injection.
    #[test]
    fn same_seed_reproduces_history(seed in 0u64..1000, with_failures in any::<bool>()) {
        let mtbf = with_failures.then_some(40.0 * 3600.0);
        let run = || {
            let mut w = world_with(seed, 15, 8, mtbf);
            w.run_to_completion(SimTime::from_hours(24 * 30));
            let m = &w.metrics;
            (
                m.completed,
                m.timed_out,
                m.failures,
                m.resubmits,
                m.steps_completed,
                w.last_progress(),
            )
        };
        prop_assert_eq!(run(), run());
    }

    /// Progress markers are per-job monotone non-decreasing in both time
    /// and value — the Analyze-phase precondition.
    #[test]
    fn progress_markers_are_monotone(seed in 0u64..1000) {
        let mut w = world_with(seed, 10, 8, None);
        w.run_to_completion(SimTime::from_hours(24 * 30));
        let ids: Vec<_> = w
            .tsdb
            .names()
            .filter(|(name, _)| name.ends_with(".steps"))
            .map(|(_, id)| id)
            .collect();
        prop_assert!(!ids.is_empty());
        for id in ids {
            let samples: Vec<_> = w.tsdb.series(id).iter().collect();
            for pair in samples.windows(2) {
                prop_assert!(pair[0].t <= pair[1].t);
                prop_assert!(pair[0].value <= pair[1].value);
            }
        }
    }

    /// The progress metrics' rollup tier agrees with the raw marker
    /// series: for every job metric, a wide rollup-served window
    /// aggregate equals the same fold over the raw view (raw retention
    /// covers these short campaigns), whatever the workload shape.
    #[test]
    fn progress_rollups_agree_with_raw_markers(seed in 0u64..200, n_jobs in 1usize..12) {
        use moda_telemetry::WindowAgg;
        let mut w = world_with(seed, n_jobs, 16, None);
        w.run_to_completion(SimTime::from_hours(24 * 30));
        let now = w.now();
        let window = SimDuration::from_hours(24 * 40);
        let ids: Vec<_> = w
            .tsdb
            .names()
            .filter(|(name, _)| name.starts_with("job.") && name.ends_with(".steps"))
            .map(|(_, id)| id)
            .collect();
        prop_assert!(!ids.is_empty());
        for id in ids {
            prop_assert!(w.tsdb.rollups(id).is_some());
            for agg in [WindowAgg::Count, WindowAgg::Min, WindowAgg::Max, WindowAgg::Last] {
                let got = w.tsdb.window_agg(id, now, window, agg);
                let view = w.tsdb.window_view(id, now, window);
                let want = if view.is_empty() { None } else { Some(view.aggregate(agg)) };
                prop_assert_eq!(got, want, "{:?} on {:?}", agg, id);
            }
        }
    }

    /// Failure injection respects the configured process: more failures
    /// at lower MTBF, none when disabled, and the kill count matches the
    /// terminal states.
    #[test]
    fn failure_rate_ordering(seed in 0u64..200) {
        let count = |mtbf: Option<f64>| {
            let mut w = world_with(seed, 20, 16, mtbf);
            w.run_to_completion(SimTime::from_hours(24 * 60));
            w.metrics.failures
        };
        let none = count(None);
        let rare = count(Some(400.0 * 3600.0));
        let frequent = count(Some(20.0 * 3600.0));
        prop_assert_eq!(none, 0);
        prop_assert!(rare <= frequent + 2,
            "rare {} should not far exceed frequent {}", rare, frequent);
    }
}
