//! Synthetic workload generation.
//!
//! The paper plans to release "exploratory datasets used to gain insight
//! into the variation of progress markers and run-time variation"
//! (§III.iii); until such open datasets exist, reproductions synthesize
//! campaigns with the structure production job logs exhibit: Poisson
//! arrivals, lognormal work sizes, a small mix of recurring application
//! families whose instances differ by input deck, and — crucially for
//! the Scheduler case — *user walltime-request error*: most users
//! overestimate (hurting backfill), a tail underestimates (their jobs
//! die at the limit).

use crate::app::{AppProfile, MisconfigSpec, PhaseChange};
use moda_scheduler::{JobId, JobRequest};
use moda_sim::dist::Dist;
use moda_sim::{RngStreams, SimDuration, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One recurring application family.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AppClassSpec {
    /// Family name.
    pub name: String,
    /// Sampling weight in the mix.
    pub weight: f64,
    /// Distribution of total steps.
    pub steps: Dist,
    /// Distribution of true mean step time, seconds.
    pub mean_step_s: Dist,
    /// Step-time coefficient of variation.
    pub step_cv: f64,
    /// I/O burst cadence (steps; 0 = no I/O).
    pub io_every: u64,
    /// I/O burst size, MB.
    pub io_mb: f64,
    /// Stripe width.
    pub stripe: usize,
    /// Probability of a mid-run phase change.
    pub phase_change_prob: f64,
    /// Phase-change step-time factor when it occurs.
    pub phase_factor: f64,
    /// Checkpoint cost, seconds.
    pub checkpoint_cost_s: f64,
    /// Node-count choices (uniform pick).
    pub node_choices: Vec<u32>,
    /// Cores per rank.
    pub cores_per_rank: u32,
}

impl AppClassSpec {
    /// A compute-bound "CFD-like" family.
    pub fn cfd() -> Self {
        AppClassSpec {
            name: "cfd".into(),
            weight: 1.0,
            steps: Dist::Uniform {
                lo: 400.0,
                hi: 1200.0,
            },
            mean_step_s: Dist::Uniform { lo: 1.0, hi: 3.0 },
            step_cv: 0.15,
            io_every: 50,
            io_mb: 200.0,
            stripe: 2,
            phase_change_prob: 0.25,
            phase_factor: 1.8,
            checkpoint_cost_s: 20.0,
            node_choices: vec![2, 4, 8],
            cores_per_rank: 8,
        }
    }

    /// An I/O-heavy "analysis" family.
    pub fn analysis() -> Self {
        AppClassSpec {
            name: "analysis".into(),
            weight: 0.5,
            steps: Dist::Uniform {
                lo: 100.0,
                hi: 400.0,
            },
            mean_step_s: Dist::Uniform { lo: 0.5, hi: 1.5 },
            step_cv: 0.3,
            io_every: 5,
            io_mb: 500.0,
            stripe: 4,
            phase_change_prob: 0.1,
            phase_factor: 1.5,
            checkpoint_cost_s: 10.0,
            node_choices: vec![1, 2],
            cores_per_rank: 8,
        }
    }
}

/// User walltime-request error model.
///
/// With probability `underestimate_frac` the request *under*-covers the
/// true work (factor sampled from `under_factor`, < 1); otherwise it
/// overestimates (factor from `over_factor`, > 1) — the classic
/// bimodal behaviour of production logs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WalltimeErrorModel {
    /// Fraction of jobs whose request under-covers the true runtime.
    pub underestimate_frac: f64,
    /// Request/true-runtime factor for underestimating jobs (< 1).
    pub under_factor: Dist,
    /// Request/true-runtime factor for overestimating jobs (> 1).
    pub over_factor: Dist,
}

impl Default for WalltimeErrorModel {
    fn default() -> Self {
        WalltimeErrorModel {
            underestimate_frac: 0.2,
            under_factor: Dist::Uniform { lo: 0.75, hi: 0.97 },
            over_factor: Dist::Uniform { lo: 1.3, hi: 3.0 },
        }
    }
}

/// Campaign configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Number of jobs to generate.
    pub n_jobs: usize,
    /// Mean inter-arrival time, seconds (exponential).
    pub mean_interarrival_s: f64,
    /// Application mix.
    pub classes: Vec<AppClassSpec>,
    /// Walltime-request error model.
    pub walltime_error: WalltimeErrorModel,
    /// Fraction of jobs carrying an injected misconfiguration.
    pub misconfig_rate: f64,
    /// Step-time slowdown of misconfigured jobs.
    pub misconfig_slowdown: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            n_jobs: 200,
            mean_interarrival_s: 120.0,
            classes: vec![AppClassSpec::cfd(), AppClassSpec::analysis()],
            walltime_error: WalltimeErrorModel::default(),
            misconfig_rate: 0.0,
            misconfig_slowdown: 2.0,
        }
    }
}

/// Generate a campaign: `(request, profile)` pairs sorted by submit time,
/// with job ids starting at `first_id`.
pub fn generate(
    cfg: &WorkloadConfig,
    streams: &RngStreams,
    first_id: u64,
) -> Vec<(JobRequest, AppProfile)> {
    assert!(!cfg.classes.is_empty(), "workload needs app classes");
    let mut arrivals = streams.stream("workload-arrivals");
    let mut picks = streams.stream("workload-classes");
    let mut jobs = Vec::with_capacity(cfg.n_jobs);
    let total_weight: f64 = cfg.classes.iter().map(|c| c.weight).sum();
    let mut t = 0.0_f64;

    for i in 0..cfg.n_jobs {
        let id = JobId(first_id + i as u64);
        t += Dist::Exponential {
            mean: cfg.mean_interarrival_s,
        }
        .sample(&mut arrivals);

        // Pick a class by weight.
        let mut pick = picks.gen_range(0.0..total_weight);
        let mut class = &cfg.classes[0];
        for c in &cfg.classes {
            if pick < c.weight {
                class = c;
                break;
            }
            pick -= c.weight;
        }

        let mut rng = streams.stream_n("workload-job", id.0);
        let total_steps = class.steps.sample(&mut rng).round().max(1.0) as u64;
        let mean_step_s = class.mean_step_s.sample(&mut rng).max(0.01);
        let phase_change = if rng.gen_bool(class.phase_change_prob.clamp(0.0, 1.0)) {
            Some(PhaseChange {
                at_frac: rng.gen_range(0.3..0.7),
                factor: class.phase_factor,
            })
        } else {
            None
        };
        let misconfig =
            if cfg.misconfig_rate > 0.0 && rng.gen_bool(cfg.misconfig_rate.clamp(0.0, 1.0)) {
                // Rotate through the misconfiguration kinds.
                let kind = rng.gen_range(0..3);
                Some(MisconfigSpec {
                    slowdown: cfg.misconfig_slowdown,
                    threads_per_rank: if kind == 0 {
                        class.cores_per_rank * 4
                    } else {
                        class.cores_per_rank
                    },
                    gpus_allocated: if kind == 1 { 2 } else { 0 },
                    gpu_util: if kind == 1 { 0.01 } else { 0.0 },
                    lib_path_ok: kind != 2,
                })
            } else {
                None
            };
        let nodes = class.node_choices[rng.gen_range(0..class.node_choices.len())];
        let scale = total_steps as f64 * mean_step_s;

        let profile = AppProfile {
            app_class: class.name.clone(),
            total_steps,
            mean_step_s,
            step_cv: class.step_cv,
            io_every: class.io_every,
            io_mb: class.io_mb,
            stripe: class.stripe,
            phase_change,
            checkpoint_cost_s: class.checkpoint_cost_s,
            misconfig,
            scale,
            cores_per_rank: class.cores_per_rank,
        };

        // True expected runtime (compute + rough I/O), from which the
        // user's request deviates.
        let est_io_s = total_steps
            .checked_div(class.io_every)
            .map_or(0.0, |bursts| bursts as f64 * (class.io_mb / 500.0));
        let slowdown = misconfig.map(|m| m.slowdown).unwrap_or(1.0);
        let true_s = profile.base_compute_s() * slowdown + est_io_s;
        let under = rng.gen_bool(cfg.walltime_error.underestimate_frac.clamp(0.0, 1.0));
        let factor = if under {
            cfg.walltime_error.under_factor.sample(&mut rng)
        } else {
            cfg.walltime_error.over_factor.sample(&mut rng)
        };
        let req_s = (true_s * factor).max(60.0);

        jobs.push((
            JobRequest {
                id,
                user: format!("user{}", rng.gen_range(0..8)),
                app_class: class.name.clone(),
                submit: SimTime::from_secs(t as u64),
                nodes,
                walltime: SimDuration::from_secs_f64(req_s),
            },
            profile,
        ));
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(cfg: &WorkloadConfig, seed: u64) -> Vec<(JobRequest, AppProfile)> {
        generate(cfg, &RngStreams::new(seed), 0)
    }

    #[test]
    fn generates_requested_count_sorted_by_submit() {
        let jobs = gen(&WorkloadConfig::default(), 1);
        assert_eq!(jobs.len(), 200);
        for w in jobs.windows(2) {
            assert!(w[0].0.submit <= w[1].0.submit);
        }
        // Ids are dense from first_id.
        assert_eq!(jobs[0].0.id, JobId(0));
        assert_eq!(jobs[199].0.id, JobId(199));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = gen(&WorkloadConfig::default(), 7);
        let b = gen(&WorkloadConfig::default(), 7);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.0, y.0);
            assert_eq!(x.1, y.1);
        }
        let c = gen(&WorkloadConfig::default(), 8);
        assert!(a.iter().zip(&c).any(|(x, y)| x.0 != y.0));
    }

    #[test]
    fn underestimate_fraction_roughly_respected() {
        let cfg = WorkloadConfig {
            n_jobs: 2000,
            ..WorkloadConfig::default()
        };
        let jobs = gen(&cfg, 3);
        let under = jobs
            .iter()
            .filter(|(req, prof)| {
                let slowdown = prof.misconfig.map(|m| m.slowdown).unwrap_or(1.0);
                let true_s = prof.base_compute_s() * slowdown;
                (req.walltime.as_secs_f64()) < true_s
            })
            .count();
        let frac = under as f64 / jobs.len() as f64;
        // Configured 0.2; the I/O margin shifts it slightly.
        assert!((0.1..0.32).contains(&frac), "underestimate fraction {frac}");
    }

    #[test]
    fn misconfig_rate_respected() {
        let cfg = WorkloadConfig {
            n_jobs: 1000,
            misconfig_rate: 0.3,
            ..WorkloadConfig::default()
        };
        let jobs = gen(&cfg, 5);
        let bad = jobs.iter().filter(|(_, p)| p.misconfig.is_some()).count();
        let frac = bad as f64 / jobs.len() as f64;
        assert!((0.24..0.36).contains(&frac), "misconfig fraction {frac}");
        // Misconfigured jobs come in multiple kinds.
        let with_gpu = jobs
            .iter()
            .filter(|(_, p)| p.misconfig.is_some_and(|m| m.gpus_allocated > 0))
            .count();
        let with_threads = jobs
            .iter()
            .filter(|(_, p)| {
                p.misconfig
                    .is_some_and(|m| m.threads_per_rank > p.cores_per_rank)
            })
            .count();
        let with_lib = jobs
            .iter()
            .filter(|(_, p)| p.misconfig.is_some_and(|m| !m.lib_path_ok))
            .count();
        assert!(with_gpu > 0 && with_threads > 0 && with_lib > 0);
    }

    #[test]
    fn class_mix_follows_weights() {
        let jobs = gen(
            &WorkloadConfig {
                n_jobs: 3000,
                ..WorkloadConfig::default()
            },
            11,
        );
        let cfd = jobs.iter().filter(|(r, _)| r.app_class == "cfd").count() as f64;
        let frac = cfd / jobs.len() as f64;
        // weights 1.0 vs 0.5 → 2/3 cfd.
        assert!((0.6..0.73).contains(&frac), "cfd fraction {frac}");
    }

    #[test]
    fn walltimes_have_a_floor() {
        let cfg = WorkloadConfig {
            n_jobs: 100,
            classes: vec![AppClassSpec {
                steps: Dist::Constant(1.0),
                mean_step_s: Dist::Constant(0.01),
                ..AppClassSpec::cfd()
            }],
            ..WorkloadConfig::default()
        };
        for (req, _) in gen(&cfg, 2) {
            assert!(req.walltime >= SimDuration::from_secs(60));
        }
    }

    #[test]
    #[should_panic(expected = "app classes")]
    fn empty_mix_rejected() {
        let cfg = WorkloadConfig {
            classes: vec![],
            ..WorkloadConfig::default()
        };
        gen(&cfg, 1);
    }
}
