//! Node and facility power model.
//!
//! Fig. 1's holistic-monitoring vision spans *building infrastructure*
//! and *system hardware*; this model provides both sensor domains: busy
//! and idle node draw with measurement noise, and a facility figure
//! (node sum × PUE). The §IV warning that "safe operations of power and
//! energy controls" demand confidence measures is exercised by
//! experiments that gate power-affecting actions.

use rand::Rng;

/// Static power parameters.
#[derive(Debug, Clone, Copy)]
pub struct PowerModel {
    /// Idle node draw, watts.
    pub idle_w: f64,
    /// Busy node draw, watts.
    pub busy_w: f64,
    /// Sensor noise amplitude, watts (uniform ±).
    pub noise_w: f64,
    /// Facility power-usage-effectiveness multiplier.
    pub pue: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel {
            idle_w: 120.0,
            busy_w: 420.0,
            noise_w: 8.0,
            pue: 1.35,
        }
    }
}

impl PowerModel {
    /// Sampled draw of one node, watts.
    pub fn node_sample<R: Rng + ?Sized>(&self, busy: bool, rng: &mut R) -> f64 {
        let base = if busy { self.busy_w } else { self.idle_w };
        if self.noise_w > 0.0 {
            base + rng.gen_range(-self.noise_w..self.noise_w)
        } else {
            base
        }
    }

    /// Facility-level power for the given node occupancy, kilowatts
    /// (noise-free expectation; facility meters are slow and smooth).
    pub fn facility_kw(&self, busy_nodes: u32, total_nodes: u32) -> f64 {
        let idle_nodes = total_nodes.saturating_sub(busy_nodes);
        let node_w = busy_nodes as f64 * self.busy_w + idle_nodes as f64 * self.idle_w;
        node_w * self.pue / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn busy_draws_more_than_idle() {
        let m = PowerModel::default();
        let mut rng = StdRng::seed_from_u64(1);
        let busy = m.node_sample(true, &mut rng);
        let idle = m.node_sample(false, &mut rng);
        assert!(busy > idle);
        assert!((busy - m.busy_w).abs() <= m.noise_w);
        assert!((idle - m.idle_w).abs() <= m.noise_w);
    }

    #[test]
    fn noise_free_model_is_exact() {
        let m = PowerModel {
            noise_w: 0.0,
            ..PowerModel::default()
        };
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(m.node_sample(true, &mut rng), m.busy_w);
    }

    #[test]
    fn facility_applies_pue() {
        let m = PowerModel {
            idle_w: 100.0,
            busy_w: 400.0,
            noise_w: 0.0,
            pue: 1.5,
        };
        // 2 busy + 2 idle = 1000 W × 1.5 = 1.5 kW.
        assert!((m.facility_kw(2, 4) - 1.5).abs() < 1e-12);
        // Saturating occupancy.
        assert!((m.facility_kw(10, 4) - 400.0 * 10.0 * 1.5 / 1000.0).abs() < 1e-12);
    }
}
