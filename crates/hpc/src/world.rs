//! The composed simulated HPC center.
//!
//! One discrete-event loop multiplexes every subsystem: job arrivals,
//! application steps (with I/O through the parallel filesystem and QoS
//! admission), walltime enforcement, maintenance outages, power
//! telemetry, and user resubmission behaviour.
//!
//! The [`World`] exposes two distinct surfaces:
//!
//! * **sensor/actuator methods** — what a MAPE-K loop may touch:
//!   progress markers from telemetry, remaining allocation, config
//!   snapshots, observed OST bandwidth; extension requests, checkpoint
//!   signals, file reopen-with-avoid, QoS retuning, misconfiguration
//!   correction. Monitors/executors hold an `Rc<RefCell<World>>` and
//!   borrow per phase.
//! * **ground-truth methods** — what only experiment harnesses may use
//!   for scoring (true remaining work, profiles). These are marked in
//!   their docs; loops that peeked would be cheating.

use crate::app::{AppInstance, AppProfile};
use crate::failure::FailureConfig;
use crate::power::PowerModel;
use moda_pfs::{FileId, OstId, Pfs, PfsConfig, QosManager};
use moda_scheduler::{
    ExtensionDecision, ExtensionPolicy, JobId, JobRequest, JobState, Scheduler, SchedulerConfig,
};
use moda_sim::stats::Summary;
use moda_sim::{EventQueue, RngStreams, SimDuration, SimTime};
use moda_telemetry::{MetricId, MetricMeta, SourceDomain, Tsdb, WindowAgg};
use std::collections::HashMap;

/// World configuration.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Cluster node count.
    pub nodes: u32,
    /// Scheduler extension policy.
    pub policy: ExtensionPolicy,
    /// Parallel filesystem configuration.
    pub pfs: PfsConfig,
    /// Root RNG seed (all stochastic behaviour derives from it).
    pub seed: u64,
    /// Power model.
    pub power: PowerModel,
    /// Power-sensor sampling period (None disables power telemetry).
    pub power_period: Option<SimDuration>,
    /// Fail-stop node-failure injection (None disables failures).
    pub failure: Option<FailureConfig>,
    /// Do users resubmit killed jobs?
    pub auto_resubmit: bool,
    /// How long a user takes to notice and resubmit.
    pub resubmit_delay: SimDuration,
    /// Walltime padding factor users apply on retry.
    pub resubmit_walltime_factor: f64,
    /// Embed quantile sketches in the per-job progress-marker rollup
    /// pyramids, making [`World::progress_percentile_wide`] sketch-served
    /// (1 % relative error) however far the raw marker ring has rolled.
    /// On by default; campaigns with very high job cardinality can turn
    /// it off to keep the compact pyramids sketch-free (~8 bytes per
    /// distinct marker magnitude per bucket), at which point wide
    /// percentile reads fall back to the exact raw path within raw
    /// retention.
    pub progress_sketches: bool,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            nodes: 32,
            policy: ExtensionPolicy::default(),
            pfs: PfsConfig::default(),
            seed: 42,
            power: PowerModel::default(),
            power_period: Some(SimDuration::from_secs(60)),
            failure: None,
            auto_resubmit: true,
            resubmit_delay: SimDuration::from_mins(10),
            resubmit_walltime_factor: 1.5,
            progress_sketches: true,
        }
    }
}

/// Campaign-level outcome counters.
#[derive(Debug, Clone, Default)]
pub struct WorldMetrics {
    /// Job attempts that completed.
    pub completed: u64,
    /// Job attempts killed at the walltime limit.
    pub timed_out: u64,
    /// Job attempts killed by maintenance outages.
    pub maintenance_killed: u64,
    /// Job attempts killed by injected node failures.
    pub failures: u64,
    /// Resubmissions performed.
    pub resubmits: u64,
    /// Distinct submitted root jobs.
    pub roots_total: u64,
    /// Root jobs whose work eventually completed.
    pub roots_completed: u64,
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// On-the-fly misconfiguration corrections applied.
    pub corrections: u64,
    /// Application steps completed.
    pub steps_completed: u64,
    /// I/O bursts served.
    pub io_writes: u64,
}

#[derive(Debug, Clone)]
enum Event {
    Arrival(u32),
    Step(JobId, u64),
    CheckpointDone(JobId, u64),
    DeadlineCheck,
    OutageStart,
    OutageEnd,
    PowerSample,
    NodeFailure,
}

/// The simulated center.
pub struct World {
    cfg: WorldConfig,
    queue: EventQueue<Event>,
    /// The batch scheduler (public: harnesses read accounting).
    pub sched: Scheduler,
    /// The parallel filesystem.
    pub pfs: Pfs,
    /// QoS allocations (I/O admission per user).
    pub qos: QosManager,
    /// Holistic telemetry store.
    pub tsdb: Tsdb,
    /// Campaign counters.
    pub metrics: WorldMetrics,

    arriving: Vec<Option<(JobRequest, AppProfile)>>,
    apps: HashMap<JobId, AppInstance>,
    profiles: HashMap<JobId, AppProfile>,
    requests: HashMap<JobId, JobRequest>,
    step_seq: HashMap<JobId, u64>,
    files: HashMap<JobId, FileId>,
    avoid_lists: HashMap<JobId, Vec<OstId>>,
    resume_steps: HashMap<JobId, u64>,
    root_of: HashMap<JobId, JobId>,
    progress_metric: HashMap<JobId, MetricId>,
    /// Watermark cursors of [`World::export_progress`] — persistent, so
    /// repeated snapshots ship only each job's *new* markers and newly
    /// sealed pyramid buckets.
    progress_exporter: moda_telemetry::Exporter,
    io_latency: HashMap<String, Summary>,
    streams: RngStreams,
    next_job_id: u64,
    power_sensor_rng: rand::rngs::StdRng,
    failure_rng: rand::rngs::StdRng,
    /// Facility power cap (kW). When the uncapped facility draw would
    /// exceed it, node sensors and the facility meter report the capped
    /// (proportionally scaled) draw — the actuation surface of a
    /// center-level power-management loop.
    power_cap_kw: Option<f64>,
    /// Is a NodeFailure event outstanding in the queue? Prevents
    /// [`World::set_failure`] from stacking duplicate failure processes:
    /// one armed event per world is the invariant (each firing re-arms).
    failure_armed: bool,
    /// Failures already exported through the `sched.failures` rate
    /// gauge (the gauge reports deltas between samples).
    failures_sampled: u64,
    /// Earliest armed DeadlineCheck, if any. Prevents duplicate checks
    /// from flooding the queue: every schedule pass wants to "make sure"
    /// a check exists, but one outstanding check per deadline epoch is
    /// enough (each check re-arms the next on firing).
    armed_deadline: Option<SimTime>,
    /// Time of the last event that represented campaign work (arrival,
    /// step, kill, completion). Stale bookkeeping events — e.g. a
    /// DeadlineCheck armed for a walltime limit the job never reached —
    /// may sit in the queue long after the campaign is over, so the
    /// campaign makespan must come from here rather than the clock.
    last_progress: SimTime,
}

impl World {
    /// Build an empty world.
    pub fn new(cfg: WorldConfig) -> Self {
        let sched = Scheduler::new(SchedulerConfig {
            total_nodes: cfg.nodes,
            policy: cfg.policy,
        });
        let pfs = Pfs::new(cfg.pfs.clone());
        let streams = RngStreams::new(cfg.seed);
        let power_sensor_rng = streams.stream("power-sensor");
        let failure_rng = streams.stream("node-failures");
        let mut w = World {
            sched,
            pfs,
            qos: QosManager::new(),
            tsdb: Tsdb::new(),
            metrics: WorldMetrics::default(),
            queue: EventQueue::new(),
            arriving: Vec::new(),
            apps: HashMap::new(),
            profiles: HashMap::new(),
            requests: HashMap::new(),
            step_seq: HashMap::new(),
            files: HashMap::new(),
            avoid_lists: HashMap::new(),
            resume_steps: HashMap::new(),
            root_of: HashMap::new(),
            progress_metric: HashMap::new(),
            progress_exporter: moda_telemetry::Exporter::new(),
            io_latency: HashMap::new(),
            streams,
            next_job_id: 0,
            power_sensor_rng,
            failure_rng,
            power_cap_kw: None,
            failure_armed: false,
            failures_sampled: 0,
            armed_deadline: None,
            last_progress: SimTime::ZERO,
            cfg,
        };
        if let Some(p) = w.cfg.power_period {
            w.queue.schedule(SimTime::ZERO + p, Event::PowerSample);
        }
        if let Some(f) = w.cfg.failure {
            let gap = f.next_gap(w.cfg.nodes, &mut w.failure_rng);
            w.queue.schedule(SimTime::ZERO + gap, Event::NodeFailure);
            w.failure_armed = true;
        }
        w
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Configuration (read-only).
    pub fn config(&self) -> &WorldConfig {
        &self.cfg
    }

    // ----- campaign setup ------------------------------------------------

    /// Queue a generated campaign for arrival. Job ids must be fresh.
    pub fn submit_campaign(&mut self, jobs: Vec<(JobRequest, AppProfile)>) {
        for (req, profile) in jobs {
            let at = req.submit;
            self.next_job_id = self.next_job_id.max(req.id.0 + 1);
            self.metrics.roots_total += 1;
            let idx = self.arriving.len() as u32;
            self.arriving.push(Some((req, profile)));
            self.queue.schedule(at, Event::Arrival(idx));
        }
    }

    /// Announce a maintenance outage `[start, end)`.
    pub fn add_outage(&mut self, start: SimTime, end: SimTime) {
        self.sched.add_outage(start, end);
        self.queue.schedule(start, Event::OutageStart);
        self.queue.schedule(end, Event::OutageEnd);
    }

    // ----- event loop ------------------------------------------------------

    /// Process all events at or before `t`.
    pub fn run_until(&mut self, t: SimTime) {
        while let Some(ts) = self.queue.peek_time() {
            if ts > t {
                break;
            }
            let ev = self.queue.pop().expect("peeked event exists");
            self.handle(ev.at, ev.event);
        }
    }

    /// Run until the campaign finishes or `max_t` passes. Returns the
    /// final simulated time. Stale bookkeeping events (deadline checks
    /// armed for limits no running job will reach) are left unprocessed
    /// once no work remains, so the clock stops at the last real event.
    pub fn run_to_completion(&mut self, max_t: SimTime) -> SimTime {
        while self.work_remaining() {
            let Some(ts) = self.queue.peek_time() else {
                break;
            };
            if ts > max_t {
                break;
            }
            let ev = self.queue.pop().expect("peeked event exists");
            self.handle(ev.at, ev.event);
        }
        self.now()
    }

    /// Next pending event time (for harnesses interleaving loop ticks).
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Does any campaign work remain: applications running, jobs queued,
    /// or arrivals (including resubmissions) still to come?
    pub fn work_remaining(&self) -> bool {
        !self.apps.is_empty()
            || self.sched.queue_len() > 0
            || self.arriving.iter().any(Option::is_some)
    }

    /// Is all submitted work finished? (The event queue may still hold
    /// stale bookkeeping events; they cannot create new work.)
    pub fn drained(&self) -> bool {
        !self.work_remaining()
    }

    /// Time of the last event that represented campaign work — the
    /// campaign makespan once [`World::drained`] is true.
    pub fn last_progress(&self) -> SimTime {
        self.last_progress
    }

    fn note_progress(&mut self, t: SimTime) {
        if t > self.last_progress {
            self.last_progress = t;
        }
    }

    fn handle(&mut self, t: SimTime, ev: Event) {
        if matches!(
            ev,
            Event::Arrival(_) | Event::Step(..) | Event::CheckpointDone(..)
        ) {
            self.note_progress(t);
        }
        match ev {
            Event::Arrival(idx) => {
                let (req, profile) = self.arriving[idx as usize]
                    .take()
                    .expect("arrival consumed twice");
                let id = req.id;
                let resubmit = self.root_of.contains_key(&id);
                self.root_of.entry(id).or_insert(id);
                self.profiles.insert(id, profile);
                self.requests.insert(id, req.clone());
                self.sched.submit(t, req, resubmit);
                self.try_schedule(t);
            }
            Event::Step(id, seq) => {
                if self.step_seq.get(&id).copied() != Some(seq) {
                    return; // stale event (kill/checkpoint invalidated it)
                }
                if !self.apps.contains_key(&id) {
                    return;
                }
                self.complete_step(t, id);
            }
            Event::CheckpointDone(id, seq) => {
                if self.step_seq.get(&id).copied() != Some(seq) {
                    return;
                }
                if self.apps.contains_key(&id) {
                    self.schedule_next_step(t, id);
                }
            }
            Event::DeadlineCheck => {
                self.armed_deadline = None;
                let killed = self.sched.kill_expired(t);
                for id in killed {
                    self.handle_kill(t, id, JobState::TimedOut);
                }
                self.try_schedule(t);
                self.ensure_deadline_event();
            }
            Event::OutageStart => {
                let victims = self.sched.outage_kill(t);
                for id in victims {
                    self.handle_kill(t, id, JobState::MaintenanceKilled);
                }
            }
            Event::OutageEnd => {
                self.try_schedule(t);
            }
            Event::NodeFailure => {
                self.failure_armed = false;
                let Some(fcfg) = self.cfg.failure else { return };
                // A node crashes; the job running on it dies with it.
                // Failures on idle nodes are harmless at this fidelity.
                let running = self.sched.running_ids().to_vec();
                if !running.is_empty() {
                    use rand::Rng as _;
                    let victim = running[self.failure_rng.gen_range(0..running.len())];
                    self.metrics.failures += 1;
                    self.sched.fail(t, victim);
                    self.handle_kill(t, victim, JobState::Failed);
                    self.try_schedule(t);
                }
                // Re-arm while the campaign is alive (a dead campaign
                // must not be kept open by the failure process).
                if self.work_remaining() {
                    let gap = fcfg.next_gap(self.cfg.nodes, &mut self.failure_rng);
                    self.queue.schedule(t + gap, Event::NodeFailure);
                    self.failure_armed = true;
                }
            }
            Event::PowerSample => {
                self.sample_power(t);
                // Re-arm only while something can still happen; otherwise
                // the sampler would keep an otherwise-drained world alive.
                if !self.queue.is_empty() {
                    if let Some(p) = self.cfg.power_period {
                        self.queue.schedule(t + p, Event::PowerSample);
                    }
                }
            }
        }
    }

    // ----- stepping ---------------------------------------------------------

    fn try_schedule(&mut self, t: SimTime) {
        let started = self.sched.schedule(t);
        for id in started {
            let profile = self.profiles[&id].clone();
            let resume = self.resume_steps.get(&id).copied().unwrap_or(0);
            let rng = self.streams.stream_n("app-steps", id.0);
            let app = AppInstance::start(id, profile.clone(), t, resume, rng);
            // Open the app's output file honoring any avoid list carried
            // over from a previous attempt (OST-case response memory).
            let avoid = self.avoid_lists.get(&id).cloned().unwrap_or_default();
            let file = self.pfs.open(profile.stripe, &avoid);
            self.files.insert(id, file);
            self.apps.insert(id, app);
            let metric = self.tsdb.register(MetricMeta::counter(
                format!("job.{}.steps", id.0),
                "steps",
                SourceDomain::Application,
            ));
            // Per-job progress markers carry the compact rollup pyramid:
            // wide Analyze windows (overrun forecasting over hours of
            // history) read sealed 1m/1h buckets instead of raw markers,
            // sketched (unless configured off) so wide marker
            // percentiles are servable too. `ensure` not `enable`:
            // registration is idempotent by name, so if this attempt's
            // metric somehow already exists (each resubmitted attempt
            // normally gets a fresh id and metric), an existing
            // pyramid's sealed buckets — which outlive the raw ring —
            // must not be rebuilt from the raw tail.
            let rollup_cfg = if self.cfg.progress_sketches {
                moda_telemetry::RollupConfig::compact().with_sketches()
            } else {
                moda_telemetry::RollupConfig::compact()
            };
            self.tsdb.ensure_rollups(metric, &rollup_cfg);
            self.progress_metric.insert(id, metric);
            // Marker at step `resume` (the resume point) anchors the series.
            self.tsdb.insert(metric, t, resume as f64);
            self.schedule_next_step(t, id);
        }
        self.ensure_deadline_event();
    }

    fn schedule_next_step(&mut self, t: SimTime, id: JobId) {
        let (compute, io_delay) = {
            let app = self.apps.get_mut(&id).expect("scheduling step of live app");
            let compute = app.next_step_duration();
            let io = if app.step_does_io() {
                let mb = app.profile.io_mb;
                let user = self.requests[&id].user.clone();
                let qos_delay = self.qos.admit(t, &user, mb);
                let file = self.files[&id];
                let outcome = self.pfs.write(t, file, mb);
                let total = qos_delay + outcome.duration;
                app.io_wait_s += total.as_secs_f64();
                self.metrics.io_writes += 1;
                self.io_latency
                    .entry(user)
                    .or_default()
                    .push(total.as_secs_f64() * 1000.0);
                total
            } else {
                SimDuration::ZERO
            };
            (compute, io)
        };
        let seq = self.bump_seq(id);
        self.queue
            .schedule(t + compute + io_delay, Event::Step(id, seq));
    }

    fn complete_step(&mut self, t: SimTime, id: JobId) {
        let (done, step, metric) = {
            let app = self.apps.get_mut(&id).expect("live app");
            app.advance();
            (app.done(), app.step, self.progress_metric[&id])
        };
        self.metrics.steps_completed += 1;
        // Rank 0 drops its time-step (§III): the progress marker.
        self.tsdb.insert(metric, t, step as f64);
        if done {
            self.finish_job(t, id);
        } else {
            self.schedule_next_step(t, id);
        }
    }

    fn finish_job(&mut self, t: SimTime, id: JobId) {
        if let Some(file) = self.files.remove(&id) {
            self.pfs.close(file);
        }
        self.apps.remove(&id);
        self.sched.finish(t, id);
        self.metrics.completed += 1;
        self.metrics.roots_completed += 1;
        self.try_schedule(t);
    }

    fn handle_kill(&mut self, t: SimTime, id: JobId, _reason: JobState) {
        self.note_progress(t);
        if let Some(file) = self.files.remove(&id) {
            self.pfs.close(file);
        }
        let app = self.apps.remove(&id);
        self.step_seq.remove(&id);
        match self.sched.job(id).map(|j| j.state) {
            Some(JobState::TimedOut) => self.metrics.timed_out += 1,
            Some(JobState::MaintenanceKilled) => self.metrics.maintenance_killed += 1,
            _ => {}
        }
        if self.cfg.auto_resubmit {
            let old_req = self.requests[&id].clone();
            let profile = self.profiles[&id].clone();
            let checkpoint = app.map(|a| a.checkpoint_step).unwrap_or(0);
            let new_id = JobId(self.next_job_id);
            self.next_job_id += 1;
            let root = self.root_of[&id];
            self.root_of.insert(new_id, root);
            self.resume_steps.insert(new_id, checkpoint);
            // Carry the avoid list forward too.
            if let Some(avoid) = self.avoid_lists.get(&id).cloned() {
                self.avoid_lists.insert(new_id, avoid);
            }
            let new_req = JobRequest {
                id: new_id,
                submit: t + self.cfg.resubmit_delay,
                walltime: old_req.walltime.mul_f64(self.cfg.resubmit_walltime_factor),
                ..old_req
            };
            self.metrics.resubmits += 1;
            let at = new_req.submit;
            let idx = self.arriving.len() as u32;
            self.arriving.push(Some((new_req, profile)));
            self.queue.schedule(at, Event::Arrival(idx));
        }
    }

    fn bump_seq(&mut self, id: JobId) -> u64 {
        let e = self.step_seq.entry(id).or_insert(0);
        *e += 1;
        *e
    }

    fn ensure_deadline_event(&mut self) {
        if let Some(deadline) = self.sched.next_deadline() {
            let at = deadline.max(self.now());
            // Arm only if no check is outstanding or a strictly earlier
            // deadline appeared; a later-than-armed deadline is covered
            // by the re-arm when the armed check fires.
            let need = match self.armed_deadline {
                Some(armed) => at < armed,
                None => true,
            };
            if need {
                self.queue.schedule(at, Event::DeadlineCheck);
                self.armed_deadline = Some(at);
            }
        }
    }

    fn sample_power(&mut self, t: SimTime) {
        use rand::Rng as _;
        let total = self.cfg.nodes;
        let busy = total - self.sched.free_nodes();
        // Draw every node sensor before inserting: a facility power cap
        // applies proportionally across nodes, so the scale factor needs
        // the uncapped facility draw first. Draw order (and thus the RNG
        // stream) is identical to the uncapped path.
        let samples: Vec<f64> = (0..total)
            .map(|i| {
                self.cfg
                    .power
                    .node_sample(i < busy, &mut self.power_sensor_rng)
            })
            .collect();
        let kw = self.cfg.power.facility_kw(busy, total);
        let (kw, scale) = match self.power_cap_kw {
            Some(cap) if kw > cap => (cap, cap / kw),
            _ => (kw, 1.0),
        };
        // Per-node hardware sensors (registered lazily, ids stable).
        for (i, v) in samples.iter().enumerate() {
            let name = format!("node.{i}.power_w");
            let id = match self.tsdb.lookup(&name) {
                Some(id) => id,
                None => self
                    .tsdb
                    .register(MetricMeta::gauge(name, "W", SourceDomain::Hardware)),
            };
            self.tsdb.insert(id, t, v * scale);
        }
        // Facility meter.
        let fid = match self.tsdb.lookup("facility.power_kw") {
            Some(id) => id,
            None => self.tsdb.register(MetricMeta::gauge(
                "facility.power_kw",
                "kW",
                SourceDomain::Facility,
            )),
        };
        self.tsdb.insert(fid, t, kw);
        // Software-domain queue gauge.
        let qid = match self.tsdb.lookup("sched.queue_len") {
            Some(id) => id,
            None => self.tsdb.register(MetricMeta::gauge(
                "sched.queue_len",
                "jobs",
                SourceDomain::Software,
            )),
        };
        self.tsdb.insert(qid, t, self.sched.queue_len() as f64);
        // Reliability gauge: job-killing node failures since the last
        // sample. A rate (not the cumulative count) so windowed fleet
        // queries see the failure process stop as soon as it is
        // repaired, instead of integrating history forever.
        let fail_id = match self.tsdb.lookup("sched.failures") {
            Some(id) => id,
            None => self.tsdb.register(MetricMeta::gauge(
                "sched.failures",
                "jobs",
                SourceDomain::Software,
            )),
        };
        let delta = self.metrics.failures - self.failures_sampled;
        self.failures_sampled = self.metrics.failures;
        self.tsdb.insert(fail_id, t, delta as f64);
        let _ = self.power_sensor_rng.gen::<u8>(); // decorrelate successive sweeps
    }

    // ----- sensor surface (what loops may read) ------------------------------

    /// Running job ids.
    pub fn running_jobs(&self) -> Vec<JobId> {
        self.sched.running_ids().to_vec()
    }

    /// Progress markers of a job as `(t_seconds, steps)` pairs, most
    /// recent `n` markers, oldest-first — exactly what rank 0 dropped.
    pub fn progress_markers(&self, id: JobId, n: usize) -> Vec<(f64, f64)> {
        let mut out = Vec::new();
        self.progress_markers_into(id, n, &mut out);
        out
    }

    /// [`World::progress_markers`] into a caller-owned buffer: reads the
    /// TSDB through a borrowed [`moda_telemetry::SampleView`], so the only
    /// allocation is the caller's reusable output vector.
    pub fn progress_markers_into(&self, id: JobId, n: usize, out: &mut Vec<(f64, f64)>) {
        out.clear();
        if let Some(&m) = self.progress_metric.get(&id) {
            let view = self.tsdb.series(m).last_n_view(n);
            out.reserve(view.len());
            out.extend(view.into_iter().map(|s| (s.t.as_secs_f64(), s.value)));
        }
    }

    /// Most recent progress rate of a job (steps/second over the last `n`
    /// markers), computed allocation-free from the marker series.
    pub fn progress_rate(&self, id: JobId, n: usize) -> Option<f64> {
        let &m = self.progress_metric.get(&id)?;
        moda_telemetry::window::counter_rate_view(&self.tsdb.series(m).last_n_view(n))
    }

    /// Progress rate of a job over the trailing `window` (steps/second),
    /// served from the marker metric's rollup tier: computed as the
    /// marker delta `(max − min)` from pre-folded buckets over the span
    /// the job could actually have produced markers in — `window`,
    /// clamped to the attempt's age so a job younger than the window is
    /// not diluted. For a monotone step counter this equals the wide
    /// marker delta rate up to bucket-edge resolution. Unlike
    /// [`World::progress_rate`] (marker-count based, raw-ring bound),
    /// this stays O(window/res) however long the job has run, and keeps
    /// answering after the raw ring has evicted old markers. `None` when
    /// the window holds no markers or covers none of the job's lifetime.
    pub fn progress_rate_wide(&self, id: JobId, window: SimDuration) -> Option<f64> {
        let &m = self.progress_metric.get(&id)?;
        let now = self.now();
        // The marker series is anchored at the attempt's start (the
        // resume marker), so the attempt age bounds the data span.
        let start = self.sched.job(id).and_then(|j| j.start)?;
        let span = window.min(now.saturating_since(start)).as_secs_f64();
        if span <= 0.0 {
            return None;
        }
        let max = self.tsdb.window_agg(m, now, window, WindowAgg::Max)?;
        let min = self.tsdb.window_agg(m, now, window, WindowAgg::Min)?;
        Some((max - min).max(0.0) / span)
    }

    /// Wide percentile of a job's progress markers over the trailing
    /// `window` — e.g. the p10 marker value as a robust floor on how far
    /// the application had advanced through most of the window, immune
    /// to a late burst the way `max − min` rates are not. With
    /// [`WorldConfig::progress_sketches`] on (the default) this is
    /// served by merging sealed-bucket quantile sketches (1 % relative
    /// error, O(window/res)) and keeps answering beyond raw marker
    /// retention; sketch-free worlds fall back to the exact raw
    /// selection within retention. `None` when the window holds no
    /// markers or the job is unknown.
    pub fn progress_percentile_wide(&self, id: JobId, window: SimDuration, q: f64) -> Option<f64> {
        let &m = self.progress_metric.get(&id)?;
        self.tsdb
            .window_agg(m, self.now(), window, WindowAgg::Percentile(q))
    }

    /// Downsampled progress-marker history of a job over `[t0, t1)` in
    /// `bucket`-wide slots (the per-slot **last** marker; `None` marks
    /// slots without markers), into a caller-owned buffer. Wide spans are
    /// served from sealed rollup buckets — the Knowledge-layer shape of
    /// [`World::progress_markers`], usable far beyond raw retention.
    pub fn progress_history_into(
        &self,
        id: JobId,
        t0: SimTime,
        t1: SimTime,
        bucket: SimDuration,
        out: &mut Vec<Option<f64>>,
    ) {
        out.clear();
        if let Some(&m) = self.progress_metric.get(&id) {
            self.tsdb
                .resample_into(m, t0, t1, bucket, WindowAgg::Last, out);
        }
    }

    /// Snapshot every job's progress pyramid to an export sink — the
    /// §III.iii "variation of progress markers" dataset leaving the
    /// simulated center incrementally. Each job's marker metric ships
    /// its pending raw markers, sealed compact-pyramid buckets, and
    /// (with [`WorldConfig::progress_sketches`] on) sparse sketch
    /// columns; watermark cursors persist inside the world, so calling
    /// this periodically exports each marker and sealed bucket exactly
    /// once. Returns the drain's batch/record stats.
    pub fn export_progress<S: moda_telemetry::Sink>(
        &mut self,
        sink: &mut S,
    ) -> std::io::Result<moda_telemetry::DrainStats> {
        let mut ids: Vec<MetricId> = self.progress_metric.values().copied().collect();
        ids.sort_unstable();
        self.progress_exporter.drain_metrics(&self.tsdb, &ids, sink)
    }

    /// Total steps the application targets (the app knows its own input
    /// deck; legitimately observable by its loop).
    pub fn total_steps(&self, id: JobId) -> Option<u64> {
        self.profiles.get(&id).map(|p| p.total_steps)
    }

    /// Remaining allocation of a running job.
    pub fn remaining_alloc(&self, id: JobId) -> Option<SimDuration> {
        self.sched.job(id).and_then(|j| j.remaining(self.now()))
    }

    /// The job's configuration/utilization snapshot (misconfig sensor).
    pub fn config_snapshot(
        &mut self,
        id: JobId,
    ) -> Option<moda_analytics::misconfig::JobConfigSnapshot> {
        let app = self.apps.get_mut(&id)?;
        let util = app.cpu_util();
        let corrected = app.corrected;
        Some(app.profile.config_snapshot(corrected, util))
    }

    /// Observed per-stream bandwidth of an OST (None until it served I/O).
    pub fn observed_ost_bw(&self, ost: OstId) -> Option<f64> {
        self.pfs.observed_bw(ost)
    }

    /// Per-user I/O latency summary (ms), if the user did any I/O.
    pub fn io_latency(&self, user: &str) -> Option<&Summary> {
        self.io_latency.get(user)
    }

    /// App class of a job.
    pub fn app_class(&self, id: JobId) -> Option<&str> {
        self.requests.get(&id).map(|r| r.app_class.as_str())
    }

    /// The root (original submission) a job attempt belongs to.
    pub fn root_of(&self, id: JobId) -> Option<JobId> {
        self.root_of.get(&id).copied()
    }

    // ----- actuator surface (what loops may do) -------------------------------

    /// Fig. 3's Execute: ask the scheduler for more walltime.
    pub fn request_extension(&mut self, id: JobId, extra: SimDuration) -> ExtensionDecision {
        let now = self.now();
        let d = self.sched.request_extension(now, id, extra);
        if d.is_granted() {
            self.ensure_deadline_event();
        }
        d
    }

    /// Signal an application to checkpoint (asynchronous: stepping pauses
    /// for the checkpoint cost, then resumes). Returns false if the job
    /// is not running or already checkpointing.
    pub fn signal_checkpoint(&mut self, id: JobId) -> bool {
        let now = self.now();
        let Some(app) = self.apps.get_mut(&id) else {
            return false;
        };
        let cost = app.checkpoint();
        self.metrics.checkpoints += 1;
        let seq = self.bump_seq(id); // invalidates the in-flight step
        self.queue
            .schedule(now + cost, Event::CheckpointDone(id, seq));
        true
    }

    /// Correct a detected misconfiguration on the fly (§III case 4).
    pub fn correct_misconfig(&mut self, id: JobId) -> bool {
        match self.apps.get_mut(&id) {
            Some(app) => {
                let changed = app.correct_misconfig();
                if changed {
                    self.metrics.corrections += 1;
                }
                changed
            }
            None => false,
        }
    }

    /// Close and reopen a job's output file avoiding the given OSTs
    /// (the OST case's response). The avoid list persists across
    /// resubmissions of the job.
    pub fn reopen_avoiding(&mut self, id: JobId, avoid: Vec<OstId>) -> bool {
        if !self.apps.contains_key(&id) {
            return false;
        }
        if let Some(old) = self.files.remove(&id) {
            self.pfs.close(old);
        }
        let stripe = self.profiles[&id].stripe;
        let file = self.pfs.open(stripe, &avoid);
        self.files.insert(id, file);
        self.avoid_lists.insert(id, avoid);
        true
    }

    /// Cap (or uncap, with `None`) the facility power draw. While the
    /// uncapped draw would exceed the cap, power telemetry reports the
    /// capped draw with node sensors scaled proportionally — the
    /// center-level power-management response (§III power case at
    /// cluster scale).
    pub fn set_power_cap_kw(&mut self, cap: Option<f64>) {
        self.power_cap_kw = cap;
    }

    /// The facility power cap currently in force, if any.
    pub fn power_cap_kw(&self) -> Option<f64> {
        self.power_cap_kw
    }

    /// Replace (or disable, with `None`) the fail-stop node-failure
    /// process at runtime — the repair/mitigation actuator: a response
    /// loop that has diagnosed a failing node can stop the bleeding with
    /// `set_failure(None)`, and a chaos harness can switch aggressive
    /// failure injection on mid-campaign. Arms the failure process if it
    /// was idle; never stacks a second one.
    pub fn set_failure(&mut self, failure: Option<FailureConfig>) {
        self.cfg.failure = failure;
        if let Some(f) = self.cfg.failure {
            if !self.failure_armed {
                let gap = f.next_gap(self.cfg.nodes, &mut self.failure_rng);
                let at = self.now() + gap;
                self.queue.schedule(at, Event::NodeFailure);
                self.failure_armed = true;
            }
        }
    }

    /// Retune a user's QoS allocation (I/O-QoS case's response).
    pub fn set_qos_rate(&mut self, user: &str, rate: f64) -> bool {
        let now = self.now();
        self.qos.set_rate(now, user, rate)
    }

    /// Register a QoS tenant.
    pub fn register_qos(&mut self, user: &str, rate: f64, burst: f64) {
        self.qos.register(user, rate, burst);
    }

    // ----- ground truth (harness/scoring only) --------------------------------

    /// Ground truth: the profile of a job. **Harness use only** — a loop
    /// reading this is cheating.
    pub fn ground_truth_profile(&self, id: JobId) -> Option<&AppProfile> {
        self.profiles.get(&id)
    }

    /// Ground truth: expected seconds of work remaining for a running
    /// job (compute only). **Harness use only.**
    pub fn ground_truth_remaining_s(&self, id: JobId) -> Option<f64> {
        let app = self.apps.get(&id)?;
        let p = &app.profile;
        let mut s = 0.0;
        for step in app.step..p.total_steps {
            let frac = step as f64 / p.total_steps.max(1) as f64;
            let mut mean = p.mean_step_s;
            if let Some(pc) = p.phase_change {
                if frac >= pc.at_frac {
                    mean *= pc.factor;
                }
            }
            if let Some(m) = &p.misconfig {
                if !app.corrected {
                    mean *= m.slowdown;
                }
            }
            s += mean;
        }
        Some(s)
    }

    /// Ground truth: the original request of a job attempt.
    pub fn request_of(&self, id: JobId) -> Option<&JobRequest> {
        self.requests.get(&id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate, WorkloadConfig};

    fn small_world(seed: u64) -> World {
        World::new(WorldConfig {
            nodes: 8,
            seed,
            power_period: None,
            resubmit_delay: SimDuration::from_secs(60),
            ..WorldConfig::default()
        })
    }

    fn quick_job(
        id: u64,
        nodes: u32,
        steps: u64,
        step_s: f64,
        wall_s: u64,
    ) -> (JobRequest, AppProfile) {
        (
            JobRequest {
                id: JobId(id),
                user: "u".into(),
                app_class: "t".into(),
                submit: SimTime::ZERO,
                nodes,
                walltime: SimDuration::from_secs(wall_s),
            },
            AppProfile {
                app_class: "t".into(),
                total_steps: steps,
                mean_step_s: step_s,
                step_cv: 0.0,
                io_every: 0,
                io_mb: 0.0,
                stripe: 1,
                phase_change: None,
                checkpoint_cost_s: 2.0,
                misconfig: None,
                scale: 1.0,
                cores_per_rank: 8,
            },
        )
    }

    #[test]
    fn job_runs_to_completion() {
        let mut w = small_world(1);
        // 10 steps × 5 s = 50 s of work; 100 s walltime.
        w.submit_campaign(vec![quick_job(0, 2, 10, 5.0, 100)]);
        w.run_to_completion(SimTime::from_hours(1));
        assert_eq!(w.metrics.completed, 1);
        assert_eq!(w.metrics.timed_out, 0);
        assert_eq!(w.metrics.steps_completed, 10);
        let j = w.sched.job(JobId(0)).unwrap();
        assert_eq!(j.state, JobState::Completed);
        assert_eq!(j.end, Some(SimTime::from_secs(50)));
        assert_eq!(w.sched.free_nodes(), 8);
    }

    #[test]
    fn underestimated_job_dies_at_limit_and_resubmits() {
        let mut w = small_world(2);
        // 100 steps × 5 s = 500 s of work; only 200 s walltime.
        w.submit_campaign(vec![quick_job(0, 2, 100, 5.0, 200)]);
        w.run_to_completion(SimTime::from_hours(4));
        assert!(w.metrics.timed_out >= 1);
        assert!(w.metrics.resubmits >= 1);
        // Retry padding (×1.5 per attempt) eventually covers the work and
        // the root completes.
        assert_eq!(w.metrics.roots_completed, 1);
        assert_eq!(w.sched.job(JobId(0)).unwrap().state, JobState::TimedOut);
    }

    #[test]
    fn no_resubmit_when_disabled() {
        let mut w = World::new(WorldConfig {
            nodes: 8,
            auto_resubmit: false,
            power_period: None,
            ..WorldConfig::default()
        });
        w.submit_campaign(vec![quick_job(0, 2, 100, 5.0, 200)]);
        w.run_to_completion(SimTime::from_hours(4));
        assert_eq!(w.metrics.timed_out, 1);
        assert_eq!(w.metrics.resubmits, 0);
        assert_eq!(w.metrics.roots_completed, 0);
    }

    #[test]
    fn progress_markers_accumulate() {
        let mut w = small_world(3);
        w.submit_campaign(vec![quick_job(0, 2, 10, 5.0, 100)]);
        w.run_until(SimTime::from_secs(26));
        let markers = w.progress_markers(JobId(0), 100);
        // Markers at start (step 0) plus steps 1..=5 (t = 5, 10, 15, 20, 25).
        assert_eq!(markers.len(), 6);
        assert_eq!(markers.last().unwrap().1, 5.0);
        assert_eq!(w.total_steps(JobId(0)), Some(10));
        // The DES clock sits at the last processed event (the step at
        // t=25), so 75 s of the 100 s allocation remain.
        assert_eq!(
            w.remaining_alloc(JobId(0)),
            Some(SimDuration::from_secs(75))
        );
        // The zero-allocation buffer-reuse path returns the same markers.
        let mut reused = vec![(0.0, 0.0); 3]; // stale content must be cleared
        w.progress_markers_into(JobId(0), 100, &mut reused);
        assert_eq!(reused, markers);
        // Allocation-free progress rate over the same series: 5 steps in
        // 25 s = 0.2 steps/s (deterministic step time, cv = 0).
        let rate = w.progress_rate(JobId(0), 100).unwrap();
        assert!((rate - 0.2).abs() < 1e-9, "rate {rate}");
        // Fewer than two markers (or an unknown job) yields no rate.
        assert_eq!(w.progress_rate(JobId(0), 1), None);
        assert_eq!(w.progress_rate(JobId(999), 100), None);
    }

    #[test]
    fn progress_pyramids_export_incrementally() {
        use moda_telemetry::export::{ExportRecord, MemorySink, ReplayStore};
        let mut w = small_world(3);
        // 2000 steps × 5 s: plenty of markers and sealed 1m buckets.
        w.submit_campaign(vec![quick_job(0, 2, 2000, 5.0, 20_000)]);
        w.run_until(SimTime::from_secs(4_000));
        let mut sink = MemorySink::new();
        let s1 = w.export_progress(&mut sink).unwrap();
        assert_eq!(s1.metas, 1, "one marker metric");
        assert!(s1.samples > 0);
        assert!(s1.buckets > 0, "sealed compact-pyramid buckets ship");
        assert!(
            s1.sketch_entries > 0,
            "progress_sketches default ⇒ sketch columns ship"
        );
        // The snapshot is incremental: advancing the world and draining
        // again ships only the new markers/buckets.
        let shipped_before = s1.samples;
        w.run_until(SimTime::from_secs(8_000));
        let s2 = w.export_progress(&mut sink).unwrap();
        assert!(s2.samples > 0 && s2.metas == 0);
        // Replay rebuilds the marker dataset downstream: same metric
        // name, markers in time order, buckets carrying sketches.
        let mut replay = ReplayStore::new();
        for b in &sink.batches {
            replay.apply(b);
        }
        let id = replay.lookup("job.0.steps").expect("marker metric");
        assert_eq!(replay.samples(id).len() as u64, shipped_before + s2.samples);
        assert!(replay
            .samples(id)
            .windows(2)
            .all(|p| p[0].0 <= p[1].0 && p[0].1 <= p[1].1));
        let minute = moda_telemetry::rollup::RES_1M;
        assert!(replay.merged_sketch(id, minute).count() > 0);
        // Only progress metrics leave the node — power telemetry stays.
        assert!(sink
            .records()
            .all(|r| !matches!(r, ExportRecord::Meta { meta, .. } if meta.name.contains("power"))));
    }

    #[test]
    fn wide_progress_reads_come_from_rollups() {
        let mut w = small_world(3);
        // 2000 steps × 5 s = 10 000 s of markers — enough to seal many
        // 1-minute rollup buckets.
        w.submit_campaign(vec![quick_job(0, 2, 2000, 5.0, 20_000)]);
        w.run_until(SimTime::from_secs(9_000));
        let id = JobId(0);
        let hits_before = w.tsdb.rollup_hits();
        // Rollup-served wide rate ≈ the deterministic 0.2 steps/s.
        let wide = w
            .progress_rate_wide(id, SimDuration::from_secs(7_200))
            .unwrap();
        assert!(
            w.tsdb.rollup_hits() > hits_before,
            "wide rate should hit rollups"
        );
        let narrow = w.progress_rate(id, 100).unwrap();
        assert!(
            (wide - narrow).abs() / narrow < 0.05,
            "wide {wide} vs narrow {narrow}"
        );
        // Downsampled marker history: last marker per 10-minute slot,
        // monotone (steps are a counter) and rollup-served.
        let mut hist = Vec::new();
        w.progress_history_into(
            id,
            SimTime::ZERO,
            SimTime::from_secs(9_000),
            SimDuration::from_secs(600),
            &mut hist,
        );
        assert_eq!(hist.len(), 15);
        let vals: Vec<f64> = hist.iter().map(|v| v.expect("dense markers")).collect();
        assert!(
            vals.windows(2).all(|p| p[0] <= p[1]),
            "history must be monotone"
        );
        assert_eq!(*vals.last().unwrap(), 1799.0); // step at t=8995s

        // Wide marker percentile: sketch-served (progress_sketches is on
        // by default) and within the sketch's 1 % bound of the exact
        // selection over the same window. Markers are the counter values
        // 360..=1799 over the trailing 7200 s, so the median sits near
        // the middle of that span.
        let sketch_hits = w.tsdb.sketch_hits();
        let p50 = w
            .progress_percentile_wide(id, SimDuration::from_secs(7_200), 0.5)
            .unwrap();
        assert!(
            w.tsdb.sketch_hits() > sketch_hits,
            "wide marker percentile should be sketch-served"
        );
        let exact = {
            let m = w.tsdb.lookup("job.0.steps").unwrap();
            w.tsdb
                .window_view(m, w.now(), SimDuration::from_secs(7_200))
                .aggregate(WindowAgg::Percentile(0.5))
        };
        assert!(
            (p50 - exact).abs() <= 0.0101 * exact.abs(),
            "sketch p50 {p50} vs exact {exact}"
        );

        // Unknown jobs yield empty/None results, not panics.
        assert_eq!(
            w.progress_rate_wide(JobId(999), SimDuration::from_secs(60)),
            None
        );
        assert_eq!(
            w.progress_percentile_wide(JobId(999), SimDuration::from_secs(60), 0.9),
            None
        );
        let mut empty = vec![Some(1.0)];
        w.progress_history_into(
            JobId(999),
            SimTime::ZERO,
            SimTime::from_secs(60),
            SimDuration::from_secs(60),
            &mut empty,
        );
        assert!(empty.is_empty());
    }

    #[test]
    fn extension_keeps_job_alive() {
        let mut w = small_world(4);
        // 500 s of work, 400 s walltime → doomed without help.
        w.submit_campaign(vec![quick_job(0, 2, 100, 5.0, 400)]);
        w.run_until(SimTime::from_secs(100));
        let d = w.request_extension(JobId(0), SimDuration::from_secs(200));
        assert!(d.is_granted());
        w.run_to_completion(SimTime::from_hours(2));
        assert_eq!(w.metrics.completed, 1);
        assert_eq!(w.metrics.timed_out, 0);
        assert_eq!(w.metrics.resubmits, 0);
    }

    #[test]
    fn checkpoint_resume_preserves_progress() {
        let mut w = small_world(5);
        // 100 × 5 s = 500 s work, 300 s walltime.
        w.submit_campaign(vec![quick_job(0, 2, 100, 5.0, 300)]);
        w.run_until(SimTime::from_secs(250)); // ~50 steps done
        assert!(w.signal_checkpoint(JobId(0)));
        w.run_to_completion(SimTime::from_hours(4));
        assert_eq!(w.metrics.checkpoints, 1);
        assert!(w.metrics.timed_out >= 1);
        // The resubmission resumed: total steps completed across attempts
        // stays ~100 + a re-done tail, far below a full restart's 150+.
        assert_eq!(w.metrics.roots_completed, 1);
        assert!(
            w.metrics.steps_completed < 120,
            "steps {} suggests restart-from-zero",
            w.metrics.steps_completed
        );
    }

    #[test]
    fn maintenance_outage_kills_and_recovery_works() {
        let mut w = small_world(6);
        w.submit_campaign(vec![quick_job(0, 2, 100, 5.0, 600)]);
        // Let the job start, then announce a near-term outage (announced
        // after start: the drain cannot protect an already-running job).
        w.run_until(SimTime::from_secs(50));
        w.add_outage(SimTime::from_secs(100), SimTime::from_secs(200));
        w.run_to_completion(SimTime::from_hours(4));
        assert_eq!(w.metrics.maintenance_killed, 1);
        // Resubmitted after the outage and completed.
        assert_eq!(w.metrics.roots_completed, 1);
    }

    #[test]
    fn preannounced_outage_drains_instead_of_killing() {
        let mut w = small_world(6);
        // Announced before submission: the scheduler refuses to start the
        // job across the window, so nothing is killed — it just waits.
        w.add_outage(SimTime::from_secs(100), SimTime::from_secs(200));
        w.submit_campaign(vec![quick_job(0, 2, 100, 5.0, 600)]);
        w.run_to_completion(SimTime::from_hours(4));
        assert_eq!(w.metrics.maintenance_killed, 0);
        assert_eq!(w.metrics.roots_completed, 1);
        // Started only after the window.
        let start = w.sched.job(JobId(0)).unwrap().start.unwrap();
        assert!(start >= SimTime::from_secs(200));
    }

    #[test]
    fn io_flows_through_pfs_and_qos() {
        let mut w = small_world(7);
        let (req, mut prof) = quick_job(0, 2, 20, 1.0, 600);
        prof.io_every = 5;
        prof.io_mb = 100.0;
        w.register_qos("u", 10.0, 50.0); // tight: 10 MB/s sustained
        w.submit_campaign(vec![(req, prof)]);
        w.run_to_completion(SimTime::from_hours(2));
        assert_eq!(w.metrics.io_writes, 4);
        assert!(w.pfs.total_writes() >= 4);
        let lat = w.io_latency("u").unwrap();
        assert_eq!(lat.count(), 4);
        // QoS throttling forced non-trivial latency on later bursts.
        assert!(lat.max().unwrap() > 1000.0, "max {:?} ms", lat.max());
    }

    #[test]
    fn reopen_avoiding_moves_stripe() {
        let mut w = small_world(8);
        let (req, mut prof) = quick_job(0, 2, 50, 2.0, 600);
        prof.io_every = 5;
        prof.io_mb = 10.0;
        prof.stripe = 1;
        w.submit_campaign(vec![(req, prof)]);
        w.run_until(SimTime::from_secs(30));
        assert!(w.reopen_avoiding(JobId(0), vec![OstId(0)]));
        w.run_until(SimTime::from_secs(120));
        // New writes avoid ost0: its observed bandwidth stops updating
        // while another target starts serving.
        let served_elsewhere =
            (1..w.pfs.num_osts() as u32).any(|i| w.observed_ost_bw(OstId(i)).is_some());
        assert!(served_elsewhere);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut w = small_world(seed);
            let jobs = generate(
                &WorkloadConfig {
                    n_jobs: 30,
                    mean_interarrival_s: 60.0,
                    ..WorkloadConfig::default()
                },
                &RngStreams::new(seed),
                0,
            );
            w.submit_campaign(jobs);
            w.run_to_completion(SimTime::from_hours(48));
            (
                w.metrics.completed,
                w.metrics.timed_out,
                w.metrics.steps_completed,
                w.now(),
            )
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn campaign_with_mixed_outcomes_accounts_roots() {
        let mut w = small_world(9);
        let jobs = generate(
            &WorkloadConfig {
                n_jobs: 40,
                mean_interarrival_s: 30.0,
                ..WorkloadConfig::default()
            },
            &RngStreams::new(99),
            0,
        );
        w.submit_campaign(jobs);
        w.run_to_completion(SimTime::from_hours(96));
        assert_eq!(w.metrics.roots_total, 40);
        // With auto-resubmit and walltime padding, all roots finish.
        assert_eq!(w.metrics.roots_completed, 40);
        // But a meaningful number of first attempts died (the 20%
        // underestimate fraction).
        assert!(w.metrics.timed_out > 0);
        assert_eq!(w.metrics.resubmits as i64, w.metrics.timed_out as i64);
    }

    #[test]
    fn power_telemetry_lands_in_all_domains() {
        let mut w = World::new(WorldConfig {
            nodes: 4,
            power_period: Some(SimDuration::from_secs(10)),
            ..WorldConfig::default()
        });
        w.submit_campaign(vec![quick_job(0, 2, 30, 5.0, 600)]);
        w.run_to_completion(SimTime::from_hours(1));
        let node = w.tsdb.lookup("node.0.power_w").expect("node sensor");
        let fac = w.tsdb.lookup("facility.power_kw").expect("facility meter");
        let q = w.tsdb.lookup("sched.queue_len").expect("queue gauge");
        assert!(w.tsdb.series(node).len() > 3);
        assert!(w.tsdb.series(fac).len() > 3);
        assert!(w.tsdb.series(q).len() > 3);
        assert_eq!(w.tsdb.meta(fac).domain, SourceDomain::Facility);
    }

    #[test]
    fn power_cap_scales_reported_draw() {
        let run = |cap: Option<f64>| {
            let mut w = World::new(WorldConfig {
                nodes: 4,
                power_period: Some(SimDuration::from_secs(10)),
                ..WorldConfig::default()
            });
            w.submit_campaign(vec![quick_job(0, 4, 60, 5.0, 600)]);
            w.set_power_cap_kw(cap);
            w.run_to_completion(SimTime::from_hours(1));
            let span = SimDuration::from_hours(1);
            let fac = w.tsdb.lookup("facility.power_kw").unwrap();
            let node = w.tsdb.lookup("node.0.power_w").unwrap();
            (
                w.tsdb
                    .window_agg(fac, w.now(), span, WindowAgg::Max)
                    .unwrap(),
                w.tsdb
                    .window_agg(node, w.now(), span, WindowAgg::Max)
                    .unwrap(),
            )
        };
        let (uncapped, uncapped_node) = run(None);
        assert!(uncapped > 0.0);
        let cap = uncapped * 0.6;
        let (capped, capped_node) = run(Some(cap));
        // The facility meter never reports above the cap, and node
        // sensors scale down with it (same seed, same RNG draws).
        assert!(capped <= cap + 1e-9, "capped {capped} vs cap {cap}");
        assert!(
            capped_node < uncapped_node * 0.8,
            "node sensor {capped_node} vs uncapped {uncapped_node}"
        );
        // Uncapping restores the raw draw.
        let mut w = World::new(WorldConfig {
            nodes: 4,
            power_period: Some(SimDuration::from_secs(10)),
            ..WorldConfig::default()
        });
        w.set_power_cap_kw(Some(cap));
        assert_eq!(w.power_cap_kw(), Some(cap));
        w.set_power_cap_kw(None);
        assert_eq!(w.power_cap_kw(), None);
    }

    #[test]
    fn runtime_failure_injection_arms_and_disarms() {
        let mut w = small_world(12);
        // 200 × 5 s = 1000 s of work with checkpoints available.
        w.submit_campaign(vec![quick_job(0, 2, 200, 5.0, 4000)]);
        w.run_until(SimTime::from_secs(10));
        assert_eq!(w.metrics.failures, 0);
        // Aggressive failures switched on mid-campaign (system MTBF
        // 100 s/8 nodes = 12.5 s): kills arrive almost immediately.
        w.set_failure(Some(FailureConfig { node_mtbf_s: 100.0 }));
        w.run_until(SimTime::from_secs(400));
        assert!(w.metrics.failures > 0, "no failures injected");
        let seen = w.metrics.failures;
        // Repair: disabling the process stops the bleeding for good.
        w.set_failure(None);
        w.run_to_completion(SimTime::from_hours(12));
        assert_eq!(w.metrics.failures, seen);
        assert_eq!(w.metrics.roots_completed, 1);
    }

    #[test]
    fn misconfig_correction_speeds_job() {
        use crate::app::MisconfigSpec;
        let mk = |seed| {
            let mut w = small_world(seed);
            let (req, mut prof) = quick_job(0, 2, 100, 2.0, 2000);
            prof.misconfig = Some(MisconfigSpec {
                slowdown: 3.0,
                threads_per_rank: 32,
                gpus_allocated: 0,
                gpu_util: 0.0,
                lib_path_ok: true,
            });
            w.submit_campaign(vec![(req, prof)]);
            w
        };
        // Uncorrected: 100 × 6 s = 600 s.
        let mut plain = mk(10);
        plain.run_to_completion(SimTime::from_hours(2));
        let t_plain = plain.sched.job(JobId(0)).unwrap().end.unwrap();
        // Corrected at t=60: remaining steps run at 2 s.
        let mut fixed = mk(10);
        fixed.run_until(SimTime::from_secs(60));
        let snap = fixed.config_snapshot(JobId(0)).unwrap();
        assert!(snap.threads_per_rank > snap.cores_per_rank);
        assert!(fixed.correct_misconfig(JobId(0)));
        fixed.run_to_completion(SimTime::from_hours(2));
        let t_fixed = fixed.sched.job(JobId(0)).unwrap().end.unwrap();
        assert!(t_fixed < t_plain, "{t_fixed} !< {t_plain}");
        assert_eq!(fixed.metrics.corrections, 1);
    }

    #[test]
    fn ground_truth_remaining_shrinks() {
        let mut w = small_world(11);
        w.submit_campaign(vec![quick_job(0, 2, 100, 5.0, 1000)]);
        w.run_until(SimTime::from_secs(1));
        let full = w.ground_truth_remaining_s(JobId(0)).unwrap();
        assert!((full - 495.0).abs() < 10.0);
        w.run_until(SimTime::from_secs(250));
        let half = w.ground_truth_remaining_s(JobId(0)).unwrap();
        assert!(half < full / 1.8);
    }
}
