//! Multi-`World` cluster harness: K deterministic simulated centers
//! feeding one fleet aggregation tier.
//!
//! Each [`crate::World`] is one "node" of the cluster in the fleet
//! sense: an independent deterministic simulation with its own
//! telemetry store (power sensors, queue gauge, per-job progress
//! pyramids). The [`Cluster`] steps all worlds in lock-step windows
//! and, on a configurable drain cadence, runs each world's persistent
//! [`Exporter`] over its whole store and ingests the batches into a
//! [`FleetAggregator`] — so cluster-level questions (*fleet-wide p99
//! node power over the campaign*, *which world's queue is deepest*,
//! *has any world's telemetry gone stale*) are answered by the same
//! aggregation tier the threaded runtime uses, while every world stays
//! bit-reproducible.
//!
//! Worlds share one [`WorldConfig`] template but receive distinct RNG
//! seeds (`seed + node index`), so their workloads decorrelate the way
//! real nodes' do.

use crate::world::{World, WorldConfig};
use moda_fleet::{FleetAggregator, FleetHealth, FleetStore, NodeId};
use moda_sim::{SimDuration, SimTime};
use moda_telemetry::export::MemorySink;
use moda_telemetry::{Exporter, WindowAgg};

/// Configuration of a [`Cluster`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// World (node) count.
    pub nodes: usize,
    /// Per-world configuration template; world `k` runs with
    /// `seed + k`.
    pub world: WorldConfig,
    /// How much simulated time passes between export drains (the fleet
    /// tier's view of each world advances in these steps).
    pub drain_period: SimDuration,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 4,
            world: WorldConfig::default(),
            drain_period: SimDuration::from_mins(10),
        }
    }
}

/// One world and its export-side state.
struct ClusterNode {
    world: World,
    exporter: Exporter,
    id: NodeId,
}

/// K deterministic worlds → K exporters → one aggregation tier. See
/// the module docs.
pub struct Cluster {
    nodes: Vec<ClusterNode>,
    agg: FleetAggregator,
    drain_period: SimDuration,
    drained_until: SimTime,
}

impl Cluster {
    /// Build `cfg.nodes` worlds from the template, seeds offset per
    /// node, and open one aggregator session per world
    /// (`world00`, `world01`, …).
    pub fn new(cfg: ClusterConfig) -> Self {
        assert!(cfg.nodes > 0, "a cluster needs at least one world");
        assert!(cfg.drain_period.0 > 0, "drain period must be positive");
        let mut agg = FleetAggregator::new();
        let nodes = (0..cfg.nodes)
            .map(|k| {
                let mut wc = cfg.world.clone();
                wc.seed = cfg.world.seed.wrapping_add(k as u64);
                ClusterNode {
                    world: World::new(wc),
                    exporter: Exporter::new(),
                    id: agg.add_node(&format!("world{k:02}")),
                }
            })
            .collect();
        Cluster {
            nodes,
            agg,
            drain_period: cfg.drain_period,
            drained_until: SimTime::ZERO,
        }
    }

    /// World count.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// One world, for campaign setup and node-local inspection.
    pub fn world(&self, k: usize) -> &World {
        &self.nodes[k].world
    }

    /// Mutable access to one world (submit campaigns, add outages).
    pub fn world_mut(&mut self, k: usize) -> &mut World {
        &mut self.nodes[k].world
    }

    /// The aggregator's node id of world `k`.
    pub fn node_id(&self, k: usize) -> NodeId {
        self.nodes[k].id
    }

    /// The fleet aggregation tier.
    pub fn aggregator(&self) -> &FleetAggregator {
        &self.agg
    }

    /// The cluster store (fleet queries live here).
    pub fn store(&self) -> &FleetStore {
        self.agg.store()
    }

    /// Latest simulated time any world has reached.
    pub fn now(&self) -> SimTime {
        self.nodes
            .iter()
            .map(|n| n.world.now())
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Advance every world to `t`, draining each world's telemetry into
    /// the aggregation tier every [`ClusterConfig::drain_period`] of
    /// simulated time (and once at `t`). Deterministic: worlds are
    /// independent simulations and the per-world exporters' watermark
    /// cursors make every drain an exact delta.
    pub fn run_until(&mut self, t: SimTime) {
        let mut next = SimTime(self.drained_until.0.saturating_add(self.drain_period.0));
        while next.0 < t.0 {
            self.step_worlds(next);
            self.drain(next);
            next = SimTime(next.0.saturating_add(self.drain_period.0));
        }
        self.step_worlds(t);
        self.drain(t);
    }

    /// Run every world's queue dry (bounded by `max_t`), draining on
    /// the configured cadence. Returns the cluster-wide makespan (the
    /// latest world's last progress time).
    pub fn run_to_completion(&mut self, max_t: SimTime) -> SimTime {
        loop {
            let t = SimTime(
                self.drained_until
                    .0
                    .saturating_add(self.drain_period.0)
                    .min(max_t.0),
            );
            self.step_worlds(t);
            self.drain(t);
            if t.0 >= max_t.0 || self.nodes.iter().all(|n| n.world.drained()) {
                break;
            }
        }
        self.nodes
            .iter()
            .map(|n| n.world.last_progress())
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    fn step_worlds(&mut self, t: SimTime) {
        for n in &mut self.nodes {
            n.world.run_until(t);
        }
    }

    /// Drain every world's **whole** telemetry store (not just progress
    /// metrics) into the aggregation tier, and feed the per-world drain
    /// totals into fleet health.
    fn drain(&mut self, at: SimTime) {
        for n in &mut self.nodes {
            let mut sink = MemorySink::new();
            let stats = n
                .exporter
                .drain(&n.world.tsdb, &mut sink)
                .expect("memory sink cannot fail");
            for batch in &sink.batches {
                self.agg.ingest(n.id, batch);
            }
            self.agg.report_drain(n.id, &stats);
        }
        self.drained_until = self.drained_until.max(at);
    }

    /// Cluster-wide trailing-window aggregate over a node-local metric
    /// name (e.g. `"facility.power_kw"`, `"sched.queue_len"`), at the
    /// cluster clock.
    pub fn fleet_window_agg(
        &self,
        local_name: &str,
        window: SimDuration,
        agg: WindowAgg,
    ) -> Option<f64> {
        self.agg
            .store()
            .fleet_window_agg(local_name, self.now(), window, agg)
    }

    /// Fleet health at the cluster clock: a world whose ingested data
    /// lags more than `stale_after` is stale (e.g. its campaign ended
    /// long before the others and its sensors stopped).
    pub fn health(&self, stale_after: SimDuration) -> FleetHealth {
        self.agg.health(self.now(), stale_after)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::AppProfile;
    use crate::workload::WorkloadConfig;
    use moda_fleet::Rank;
    use moda_scheduler::JobRequest;

    fn small_cluster(nodes: usize) -> Cluster {
        let cfg = ClusterConfig {
            nodes,
            world: WorldConfig {
                nodes: 8,
                power_period: Some(SimDuration::from_secs(60)),
                auto_resubmit: false,
                ..WorldConfig::default()
            },
            drain_period: SimDuration::from_mins(10),
        };
        Cluster::new(cfg)
    }

    fn campaign(seed: u64) -> Vec<(JobRequest, AppProfile)> {
        let cfg = WorkloadConfig {
            n_jobs: 4,
            ..WorkloadConfig::default()
        };
        crate::workload::generate(&cfg, &moda_sim::rng::RngStreams::new(seed), 0)
    }

    #[test]
    fn cluster_aggregates_every_worlds_telemetry() {
        let mut c = small_cluster(3);
        for k in 0..3 {
            let jobs = campaign(7 + k as u64);
            c.world_mut(k).submit_campaign(jobs);
        }
        c.run_until(SimTime::from_hours(2));
        // Every world's facility meter landed as one logical axis.
        let store = c.store();
        assert_eq!(store.logical_members("facility.power_kw").len(), 3);
        assert!(store.lookup("world01/facility.power_kw").is_some());
        // Fleet-wide mean facility power over the last hour exists and
        // pools all three worlds.
        let (mean, served) = store.fleet_window_agg_served(
            "facility.power_kw",
            c.now(),
            SimDuration::from_hours(1),
            WindowAgg::Mean,
        );
        assert!(mean.unwrap() > 0.0);
        assert_eq!(served.members, 3);
        // Wire hygiene across the deterministic drains.
        for k in 0..3 {
            let counters = c.aggregator().counters(c.node_id(k));
            assert_eq!(counters.duplicate_batches, 0);
            assert_eq!(counters.gaps, 0);
            assert_eq!(counters.unmapped_records, 0);
            assert!(counters.samples > 0);
        }
        // All worlds drained to the same horizon: everyone is live.
        let h = c.health(SimDuration::from_hours(1));
        assert_eq!(h.live, 3);
        assert_eq!(h.stale + h.silent, 0);
    }

    #[test]
    fn cluster_ranks_worlds_and_is_deterministic() {
        let run = || {
            let mut c = small_cluster(2);
            for k in 0..2 {
                c.world_mut(k).submit_campaign(campaign(40 + k as u64));
            }
            c.run_to_completion(SimTime::from_hours(12));
            let ranked = c.store().top_nodes(
                "sched.queue_len",
                c.now(),
                SimDuration::from_hours(12),
                WindowAgg::Max,
                2,
                Rank::Highest,
            );
            let p50 = c.fleet_window_agg(
                "facility.power_kw",
                SimDuration::from_hours(12),
                WindowAgg::Percentile(0.5),
            );
            (ranked, p50, c.store().stats().samples)
        };
        let (a_rank, a_p50, a_samples) = run();
        let (b_rank, b_p50, b_samples) = run();
        assert_eq!(a_rank, b_rank);
        assert_eq!(a_p50, b_p50);
        assert_eq!(a_samples, b_samples);
        assert!(a_samples > 0);
    }
}
