//! Multi-`World` cluster harness: K deterministic simulated centers
//! feeding one fleet aggregation tier.
//!
//! Each [`crate::World`] is one "node" of the cluster in the fleet
//! sense: an independent deterministic simulation with its own
//! telemetry store (power sensors, queue gauge, per-job progress
//! pyramids). The [`Cluster`] steps all worlds in lock-step windows
//! and, on a configurable drain cadence, runs each world's persistent
//! [`Exporter`] over its whole store and ingests the batches into a
//! [`FleetAggregator`] — so cluster-level questions (*fleet-wide p99
//! node power over the campaign*, *which world's queue is deepest*,
//! *has any world's telemetry gone stale*) are answered by the same
//! aggregation tier the threaded runtime uses, while every world stays
//! bit-reproducible.
//!
//! Worlds share one [`WorldConfig`] template but receive distinct RNG
//! seeds (`seed + node index`), so their workloads decorrelate the way
//! real nodes' do.
//!
//! ## Chaos and control
//!
//! The cluster doubles as the chaos harness and actuation surface of
//! the center-level Feedback/Response loop:
//!
//! * **fault schedules** ([`Cluster::schedule_fault`]) — deterministic
//!   [`FaultKind::Kill`] (the world freezes and stops reporting — a
//!   crashed node) and [`FaultKind::Partition`] (the world keeps
//!   running but its drain path fails — a network partition) windows.
//!   Each world drains through a persistent
//!   [`ChaosSink`], so probabilistic frame
//!   faults ([`Cluster::set_chaos`]) compose with the scheduled windows
//!   and every fault is ingest-safe: the exporter rolls back on error
//!   and re-ships after heal.
//! * **actuation** ([`Cluster::control_parts`]) — splits the cluster
//!   into its aggregation tier (what a
//!   [`moda_fleet::FleetResponder`]'s monitors read) and a
//!   [`WorldsActuator`] (what its guarded responses act on:
//!   [`ClusterAction`] power caps, checkpoints, repair-and-drain).

use crate::world::{World, WorldConfig};
use moda_fleet::{
    ActionTarget, ChaosConfig, ChaosSink, ChaosStats, FleetActuator, FleetAggregator, FleetHealth,
    FleetStore, NodeId,
};
use moda_sim::{SimDuration, SimTime};
use moda_telemetry::export::MemorySink;
use moda_telemetry::{Exporter, WindowAgg};

/// Configuration of a [`Cluster`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// World (node) count.
    pub nodes: usize,
    /// Per-world configuration template; world `k` runs with
    /// `seed + k`.
    pub world: WorldConfig,
    /// How much simulated time passes between export drains (the fleet
    /// tier's view of each world advances in these steps).
    pub drain_period: SimDuration,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 4,
            world: WorldConfig::default(),
            drain_period: SimDuration::from_mins(10),
        }
    }
}

/// Kind of an injected cluster fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The world freezes: no simulation progress, no drains — a crashed
    /// node. From the fleet's view it goes stale, then silent. When the
    /// window closes the world resumes (state intact) and catches up.
    Kill,
    /// The world keeps simulating but its drain path fails — a network
    /// partition. The exporter rolls back on every failed drain and
    /// re-ships the backlog after heal, so no telemetry is lost.
    Partition,
}

/// A scheduled fault window `[from, until)` on one world.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeFault {
    /// World index.
    pub node: usize,
    /// What breaks.
    pub kind: FaultKind,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
}

impl NodeFault {
    fn active_at(&self, t: SimTime) -> bool {
        self.from.0 <= t.0 && t.0 < self.until.0
    }
}

/// One world and its export-side state.
struct ClusterNode {
    world: World,
    exporter: Exporter,
    /// Persistent chaos-wrapped drain target: held delayed frames and
    /// the fault RNG stream survive across drains.
    sink: ChaosSink<MemorySink>,
    id: NodeId,
}

/// K deterministic worlds → K exporters → one aggregation tier. See
/// the module docs.
pub struct Cluster {
    nodes: Vec<ClusterNode>,
    agg: FleetAggregator,
    drain_period: SimDuration,
    drained_until: SimTime,
    faults: Vec<NodeFault>,
    /// Drains that failed because the node was partitioned (or the
    /// chaos config rolled a connection fault).
    failed_drains: u64,
}

impl Cluster {
    /// Build `cfg.nodes` worlds from the template, seeds offset per
    /// node, and open one aggregator session per world
    /// (`world00`, `world01`, …).
    pub fn new(cfg: ClusterConfig) -> Self {
        assert!(cfg.nodes > 0, "a cluster needs at least one world");
        assert!(cfg.drain_period.0 > 0, "drain period must be positive");
        let mut agg = FleetAggregator::new();
        let nodes = (0..cfg.nodes)
            .map(|k| {
                let mut wc = cfg.world.clone();
                wc.seed = cfg.world.seed.wrapping_add(k as u64);
                ClusterNode {
                    world: World::new(wc),
                    exporter: Exporter::new(),
                    sink: ChaosSink::new(
                        MemorySink::new(),
                        ChaosConfig {
                            seed: cfg.world.seed.wrapping_add(k as u64),
                            ..ChaosConfig::default()
                        },
                    ),
                    id: agg.add_node(&format!("world{k:02}")),
                }
            })
            .collect();
        Cluster {
            nodes,
            agg,
            drain_period: cfg.drain_period,
            drained_until: SimTime::ZERO,
            faults: Vec::new(),
            failed_drains: 0,
        }
    }

    /// World count.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// One world, for campaign setup and node-local inspection.
    pub fn world(&self, k: usize) -> &World {
        &self.nodes[k].world
    }

    /// Mutable access to one world (submit campaigns, add outages).
    pub fn world_mut(&mut self, k: usize) -> &mut World {
        &mut self.nodes[k].world
    }

    /// The aggregator's node id of world `k`.
    pub fn node_id(&self, k: usize) -> NodeId {
        self.nodes[k].id
    }

    /// The fleet aggregation tier.
    pub fn aggregator(&self) -> &FleetAggregator {
        &self.agg
    }

    /// Mutable aggregation tier (health-transition tracking lives
    /// there: [`FleetAggregator::track_health`]).
    pub fn aggregator_mut(&mut self) -> &mut FleetAggregator {
        &mut self.agg
    }

    /// Split the cluster into the two halves a control loop needs at
    /// the same time: the aggregation tier its monitors read and an
    /// actuator over the worlds its responses act on. Field-disjoint,
    /// so a [`moda_fleet::FleetResponder::tick`] can hold both.
    pub fn control_parts(&mut self) -> (&FleetAggregator, WorldsActuator<'_>) {
        let Cluster { agg, nodes, .. } = self;
        (&*agg, WorldsActuator { nodes })
    }

    /// Schedule a deterministic fault window. Faults may overlap and
    /// may be scheduled mid-run (the schedule is consulted at every
    /// step/drain boundary).
    pub fn schedule_fault(&mut self, fault: NodeFault) {
        assert!(fault.node < self.nodes.len(), "fault on unknown world");
        assert!(fault.from.0 < fault.until.0, "empty fault window");
        self.faults.push(fault);
    }

    /// Replace world `k`'s probabilistic frame-fault configuration.
    /// Rebuilds the chaos stream; call between drains (a held delayed
    /// frame is discarded, which the ingest side treats as a gap).
    pub fn set_chaos(&mut self, k: usize, cfg: ChaosConfig) {
        let n = &mut self.nodes[k];
        let inner = std::mem::take(&mut n.sink.inner_mut().batches);
        let mut sink = ChaosSink::new(MemorySink::new(), cfg);
        sink.inner_mut().batches = inner;
        n.sink = sink;
    }

    /// Frame-fault counters of world `k`'s drain path.
    pub fn chaos_stats(&self, k: usize) -> ChaosStats {
        self.nodes[k].sink.stats()
    }

    /// Drains that failed (partition window or chaos connection fault).
    pub fn failed_drains(&self) -> u64 {
        self.failed_drains
    }

    /// The cluster store (fleet queries live here).
    pub fn store(&self) -> &FleetStore {
        self.agg.store()
    }

    /// Latest simulated time any world has reached.
    pub fn now(&self) -> SimTime {
        self.nodes
            .iter()
            .map(|n| n.world.now())
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Advance every world to `t`, draining each world's telemetry into
    /// the aggregation tier every [`ClusterConfig::drain_period`] of
    /// simulated time (and once at `t`). Deterministic: worlds are
    /// independent simulations and the per-world exporters' watermark
    /// cursors make every drain an exact delta.
    pub fn run_until(&mut self, t: SimTime) {
        let mut next = SimTime(self.drained_until.0.saturating_add(self.drain_period.0));
        while next.0 < t.0 {
            self.step_worlds(next);
            self.drain(next);
            next = SimTime(next.0.saturating_add(self.drain_period.0));
        }
        self.step_worlds(t);
        self.drain(t);
    }

    /// Run every world's queue dry (bounded by `max_t`), draining on
    /// the configured cadence. Returns the cluster-wide makespan (the
    /// latest world's last progress time).
    pub fn run_to_completion(&mut self, max_t: SimTime) -> SimTime {
        loop {
            let t = SimTime(
                self.drained_until
                    .0
                    .saturating_add(self.drain_period.0)
                    .min(max_t.0),
            );
            self.step_worlds(t);
            self.drain(t);
            if t.0 >= max_t.0 || self.nodes.iter().all(|n| n.world.drained()) {
                break;
            }
        }
        self.nodes
            .iter()
            .map(|n| n.world.last_progress())
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    fn fault_active(faults: &[NodeFault], node: usize, kind: FaultKind, t: SimTime) -> bool {
        faults
            .iter()
            .any(|f| f.node == node && f.kind == kind && f.active_at(t))
    }

    fn step_worlds(&mut self, t: SimTime) {
        let faults = &self.faults;
        for (k, n) in self.nodes.iter_mut().enumerate() {
            // A killed world is frozen: its event loop does not advance
            // until the window closes, at which point the next boundary
            // catches it up.
            if Self::fault_active(faults, k, FaultKind::Kill, t) {
                continue;
            }
            n.world.run_until(t);
        }
    }

    /// Drain every world's **whole** telemetry store (not just progress
    /// metrics) into the aggregation tier, and feed the per-world drain
    /// totals into fleet health. Worlds under an active fault window do
    /// not deliver: a killed world drains nothing (it is frozen); a
    /// partitioned world's drain fails and the exporter rolls back, so
    /// the backlog re-ships intact after heal.
    fn drain(&mut self, at: SimTime) {
        let faults = &self.faults;
        for (k, n) in self.nodes.iter_mut().enumerate() {
            if Self::fault_active(faults, k, FaultKind::Kill, at) {
                continue;
            }
            n.sink
                .set_partitioned(Self::fault_active(faults, k, FaultKind::Partition, at));
            match n.exporter.drain(&n.world.tsdb, &mut n.sink) {
                Ok(stats) => {
                    for batch in std::mem::take(&mut n.sink.inner_mut().batches) {
                        self.agg.ingest(n.id, &batch);
                    }
                    self.agg.report_drain(n.id, &stats);
                }
                Err(_) => {
                    // Exporter rolled back; whatever frames already
                    // landed in the sink are still deliverable.
                    self.failed_drains += 1;
                    for batch in std::mem::take(&mut n.sink.inner_mut().batches) {
                        self.agg.ingest(n.id, &batch);
                    }
                }
            }
        }
        self.drained_until = self.drained_until.max(at);
    }

    /// Cluster-wide trailing-window aggregate over a node-local metric
    /// name (e.g. `"facility.power_kw"`, `"sched.queue_len"`), at the
    /// cluster clock.
    pub fn fleet_window_agg(
        &self,
        local_name: &str,
        window: SimDuration,
        agg: WindowAgg,
    ) -> Option<f64> {
        self.agg
            .store()
            .fleet_window_agg(local_name, self.now(), window, agg)
    }

    /// Fleet health at the cluster clock: a world whose ingested data
    /// lags more than `stale_after` is stale (e.g. its campaign ended
    /// long before the others and its sensors stopped).
    pub fn health(&self, stale_after: SimDuration) -> FleetHealth {
        self.agg.health(self.now(), stale_after)
    }
}

/// A center-level response a [`moda_fleet::FleetResponder`] may apply
/// to cluster worlds through the [`WorldsActuator`].
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterAction {
    /// Cap the targeted worlds' facility draw at `kw` (power case).
    PowerCap {
        /// Facility cap, kW.
        kw: f64,
    },
    /// Remove the facility power cap.
    Uncap,
    /// Checkpoint every running job on the targeted worlds (coordinated
    /// drain preparation, resilience response).
    Checkpoint,
    /// Repair a failing world: disable its failure process, checkpoint
    /// running jobs, then drain it behind a maintenance outage so
    /// resubmissions restart on "repaired hardware" after the window.
    RepairAndDrain {
        /// Length of the repair outage.
        outage: SimDuration,
    },
}

/// The actuator half of [`Cluster::control_parts`]: applies
/// [`ClusterAction`]s to the targeted worlds. Aggregator [`NodeId`]s
/// index worlds directly (`NodeId(k)` is `world k` by construction).
pub struct WorldsActuator<'a> {
    nodes: &'a mut [ClusterNode],
}

impl FleetActuator for WorldsActuator<'_> {
    type Action = ClusterAction;

    fn apply(
        &mut self,
        now: SimTime,
        target: &ActionTarget,
        action: &Self::Action,
    ) -> Result<String, String> {
        let ids: Vec<NodeId> = match target {
            ActionTarget::Canary(id) => vec![*id],
            ActionTarget::Fleet(ids) => ids.clone(),
        };
        let mut notes = Vec::with_capacity(ids.len());
        for id in ids {
            let n = self
                .nodes
                .get_mut(id.index())
                .ok_or_else(|| format!("no world for {id:?}"))?;
            let w = &mut n.world;
            match action {
                ClusterAction::PowerCap { kw } => {
                    w.set_power_cap_kw(Some(*kw));
                    notes.push(format!("world{:02} capped at {kw:.1} kW", id.0));
                }
                ClusterAction::Uncap => {
                    w.set_power_cap_kw(None);
                    notes.push(format!("world{:02} uncapped", id.0));
                }
                ClusterAction::Checkpoint => {
                    let mut taken = 0;
                    for j in w.running_jobs() {
                        if w.signal_checkpoint(j) {
                            taken += 1;
                        }
                    }
                    notes.push(format!("world{:02}: {taken} checkpoint(s)", id.0));
                }
                ClusterAction::RepairAndDrain { outage } => {
                    w.set_failure(None);
                    let mut taken = 0;
                    for j in w.running_jobs() {
                        if w.signal_checkpoint(j) {
                            taken += 1;
                        }
                    }
                    // The outage starts at the world's local now if the
                    // controller clock lags it (drain boundaries align
                    // them, but a frozen world may sit behind).
                    let start = if now.0 > w.now().0 { now } else { w.now() };
                    w.add_outage(start, start + *outage);
                    notes.push(format!(
                        "world{:02}: repaired, {taken} checkpoint(s), {}s outage",
                        id.0,
                        outage.as_secs_f64()
                    ));
                }
            }
        }
        Ok(notes.join("; "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::AppProfile;
    use crate::workload::WorkloadConfig;
    use moda_fleet::{NodeLiveness, Rank};
    use moda_scheduler::JobRequest;

    fn small_cluster(nodes: usize) -> Cluster {
        let cfg = ClusterConfig {
            nodes,
            world: WorldConfig {
                nodes: 8,
                power_period: Some(SimDuration::from_secs(60)),
                auto_resubmit: false,
                ..WorldConfig::default()
            },
            drain_period: SimDuration::from_mins(10),
        };
        Cluster::new(cfg)
    }

    fn campaign(seed: u64) -> Vec<(JobRequest, AppProfile)> {
        let cfg = WorkloadConfig {
            n_jobs: 4,
            ..WorkloadConfig::default()
        };
        crate::workload::generate(&cfg, &moda_sim::rng::RngStreams::new(seed), 0)
    }

    #[test]
    fn cluster_aggregates_every_worlds_telemetry() {
        let mut c = small_cluster(3);
        for k in 0..3 {
            let jobs = campaign(7 + k as u64);
            c.world_mut(k).submit_campaign(jobs);
        }
        c.run_until(SimTime::from_hours(2));
        // Every world's facility meter landed as one logical axis.
        let store = c.store();
        assert_eq!(store.logical_members("facility.power_kw").len(), 3);
        assert!(store.lookup("world01/facility.power_kw").is_some());
        // Fleet-wide mean facility power over the last hour exists and
        // pools all three worlds.
        let (mean, served) = store.fleet_window_agg_served(
            "facility.power_kw",
            c.now(),
            SimDuration::from_hours(1),
            WindowAgg::Mean,
        );
        assert!(mean.unwrap() > 0.0);
        assert_eq!(served.members, 3);
        // Wire hygiene across the deterministic drains.
        for k in 0..3 {
            let counters = c.aggregator().counters(c.node_id(k));
            assert_eq!(counters.duplicate_batches, 0);
            assert_eq!(counters.gaps, 0);
            assert_eq!(counters.unmapped_records, 0);
            assert!(counters.samples > 0);
        }
        // All worlds drained to the same horizon: everyone is live.
        let h = c.health(SimDuration::from_hours(1));
        assert_eq!(h.live, 3);
        assert_eq!(h.stale + h.silent, 0);
    }

    #[test]
    fn killed_world_goes_dark_then_catches_up() {
        let mut c = small_cluster(3);
        for k in 0..3 {
            c.world_mut(k).submit_campaign(campaign(70 + k as u64));
        }
        c.schedule_fault(NodeFault {
            node: 1,
            kind: FaultKind::Kill,
            from: SimTime::from_mins(20),
            until: SimTime::from_mins(90),
        });
        c.run_until(SimTime::from_mins(80));
        // Deep in the window: world 1 froze at the last pre-fault
        // boundary, so its telemetry lags the cluster clock.
        let h = c.health(SimDuration::from_mins(15));
        assert!(h.live < 3, "killed world still counted live: {h:?}");
        assert!(c.world(1).now() < c.world(0).now());
        // After the window the world resumes, the backlog ships, and
        // the node is live again (other worlds may by now be honestly
        // stale — their campaigns simply ended).
        c.run_until(SimTime::from_hours(3));
        let h = c.health(SimDuration::from_mins(15));
        let healed = &h.nodes[c.node_id(1).index()];
        assert_eq!(
            healed.liveness,
            NodeLiveness::Live,
            "no recovery: {healed:?}"
        );
        assert!(
            healed.high_water.0 > SimTime::from_mins(90).0,
            "no catch-up"
        );
        assert_eq!(healed.counters.gaps, 0, "freeze must not lose batches");
        assert_eq!(healed.counters.duplicate_batches, 0);
    }

    #[test]
    fn partitioned_world_rolls_back_and_reships_everything() {
        let run = |partition: bool| {
            let mut c = small_cluster(2);
            for k in 0..2 {
                c.world_mut(k).submit_campaign(campaign(80 + k as u64));
            }
            if partition {
                c.schedule_fault(NodeFault {
                    node: 0,
                    kind: FaultKind::Partition,
                    from: SimTime::from_mins(20),
                    until: SimTime::from_mins(100),
                });
            }
            c.run_until(SimTime::from_hours(4));
            (
                c.failed_drains(),
                c.aggregator().counters(c.node_id(0)).samples,
                c.aggregator().counters(c.node_id(0)).gaps,
            )
        };
        let (clean_failures, clean_samples, _) = run(false);
        assert_eq!(clean_failures, 0);
        let (failures, samples, gaps) = run(true);
        // Drains inside the window failed and the exporter rolled back…
        assert!(failures > 0, "partition never bit");
        assert_eq!(gaps, 0, "rollback must leave the stream contiguous");
        // …and after heal the backlog re-shipped bit-identically: the
        // aggregation tier ends with exactly the clean run's samples.
        assert_eq!(samples, clean_samples);
    }

    #[test]
    fn actuator_targets_canary_then_fleet() {
        let mut c = small_cluster(3);
        for k in 0..3 {
            c.world_mut(k).submit_campaign(campaign(90 + k as u64));
        }
        c.run_until(SimTime::from_mins(30));
        let now = c.now();
        let (_agg, mut act) = c.control_parts();
        let detail = act
            .apply(
                now,
                &ActionTarget::Canary(NodeId(1)),
                &ClusterAction::PowerCap { kw: 1.5 },
            )
            .unwrap();
        assert!(detail.contains("world01"), "detail: {detail}");
        assert_eq!(c.world(1).power_cap_kw(), Some(1.5));
        assert_eq!(c.world(0).power_cap_kw(), None, "canary stays scoped");
        let (_agg, mut act) = c.control_parts();
        act.apply(
            now,
            &ActionTarget::Fleet(vec![NodeId(0), NodeId(1), NodeId(2)]),
            &ClusterAction::PowerCap { kw: 1.5 },
        )
        .unwrap();
        assert!((0..3).all(|k| c.world(k).power_cap_kw() == Some(1.5)));
        // Unknown targets are an actuation error, not a panic.
        let (_agg, mut act) = c.control_parts();
        assert!(act
            .apply(now, &ActionTarget::Canary(NodeId(9)), &ClusterAction::Uncap)
            .is_err());
    }

    #[test]
    fn cluster_ranks_worlds_and_is_deterministic() {
        let run = || {
            let mut c = small_cluster(2);
            for k in 0..2 {
                c.world_mut(k).submit_campaign(campaign(40 + k as u64));
            }
            c.run_to_completion(SimTime::from_hours(12));
            let ranked = c.store().top_nodes(
                "sched.queue_len",
                c.now(),
                SimDuration::from_hours(12),
                WindowAgg::Max,
                2,
                Rank::Highest,
            );
            let p50 = c.fleet_window_agg(
                "facility.power_kw",
                SimDuration::from_hours(12),
                WindowAgg::Percentile(0.5),
            );
            (ranked, p50, c.store().stats().samples)
        };
        let (a_rank, a_p50, a_samples) = run();
        let (b_rank, b_p50, b_samples) = run();
        assert_eq!(a_rank, b_rank);
        assert_eq!(a_p50, b_p50);
        assert_eq!(a_samples, b_samples);
        assert!(a_samples > 0);
    }
}
