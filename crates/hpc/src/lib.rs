//! # moda-hpc
//!
//! The **managed system**: a simulated HPC center combining the batch
//! scheduler, the parallel filesystem, holistic telemetry, power, and
//! applications that emit progress markers — everything the paper's
//! autonomy loops monitor and actuate.
//!
//! * [`app`] — application behaviour models: iterative solvers with
//!   noisy step times, periodic I/O bursts, optional mid-run phase
//!   changes, checkpoint support, and injectable misconfigurations.
//!   Rank 0 "drops time-steps" into telemetry exactly as §III describes.
//! * [`power`] — node and facility power (Fig. 1's building-infrastructure
//!   and system-hardware sensor domains).
//! * [`workload`] — synthetic campaign generator: Poisson arrivals,
//!   lognormal work sizes, user walltime-request error (the over/under-
//!   estimation the Scheduler case corrects), app-class mix, and a
//!   misconfiguration rate. Stands in for the open datasets the paper
//!   plans to release (§III.iii).
//! * [`world`] — the composed discrete-event world: one event loop
//!   multiplexing scheduler, filesystem, applications, telemetry
//!   collection, outages, and resubmission behaviour, with *sensor* and
//!   *actuator* surfaces for the use-case loops.
//! * [`cluster`] — K worlds feeding one fleet aggregation tier, plus
//!   the chaos harness (deterministic kill/partition windows,
//!   probabilistic frame faults) and the [`cluster::WorldsActuator`]
//!   surface the center-level control loop acts through.

pub mod app;
pub mod cluster;
pub mod failure;
pub mod power;
pub mod workload;
pub mod world;

pub use app::{AppInstance, AppProfile, MisconfigSpec, PhaseChange};
pub use cluster::{Cluster, ClusterAction, ClusterConfig, FaultKind, NodeFault, WorldsActuator};
pub use failure::{young_interval_s, FailureConfig};
pub use power::PowerModel;
pub use workload::{AppClassSpec, WalltimeErrorModel, WorkloadConfig};
pub use world::{World, WorldConfig, WorldMetrics};
