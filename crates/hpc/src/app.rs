//! Application behaviour models.
//!
//! §III grounds the Scheduler case in applications that expose progress
//! "via markers that could be output by an application (e.g., simulation
//! time-step)". The model here is an iterative solver:
//!
//! * `total_steps` steps, each lognormally noisy around a true mean,
//! * an optional mid-run **phase change** (step time multiplies by a
//!   factor at a given progress fraction — AMR refinement, turbulence
//!   onset, ...) which is what defeats naive whole-history regression,
//! * periodic **I/O bursts** through the parallel filesystem,
//! * **checkpoint** support: persist progress at a time cost, so a
//!   killed job's resubmission resumes instead of restarting,
//! * injectable **misconfiguration** that both shows up in the config
//!   snapshot (detector input) and actually slows the run (so detection
//!   has measurable value, and on-the-fly correction measurably helps).

use moda_analytics::misconfig::JobConfigSnapshot;
use moda_scheduler::JobId;
use moda_sim::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::Rng;
use rand_distr::{Distribution, LogNormal};
use serde::{Deserialize, Serialize};

/// A mid-run behaviour change.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseChange {
    /// Progress fraction at which the change occurs, `(0, 1)`.
    pub at_frac: f64,
    /// Step-time multiplier after the change.
    pub factor: f64,
}

/// An injected misconfiguration and its performance impact.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MisconfigSpec {
    /// Step-time multiplier while the misconfiguration is active.
    pub slowdown: f64,
    /// Threads per rank actually configured.
    pub threads_per_rank: u32,
    /// GPUs allocated (with near-zero utilization if misconfigured).
    pub gpus_allocated: u32,
    /// GPU utilization observed.
    pub gpu_util: f64,
    /// Library path sanity.
    pub lib_path_ok: bool,
}

/// Ground-truth behaviour of one application run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppProfile {
    /// Application family (links Knowledge history).
    pub app_class: String,
    /// Steps to completion.
    pub total_steps: u64,
    /// True mean step duration, seconds.
    pub mean_step_s: f64,
    /// Lognormal coefficient of variation of step time.
    pub step_cv: f64,
    /// Every `io_every` steps the app writes `io_mb` (0 = no I/O).
    pub io_every: u64,
    /// I/O burst size, MB.
    pub io_mb: f64,
    /// Stripe width for the app's output file.
    pub stripe: usize,
    /// Optional mid-run phase change.
    pub phase_change: Option<PhaseChange>,
    /// Time to write a checkpoint, seconds.
    pub checkpoint_cost_s: f64,
    /// Optional injected misconfiguration.
    pub misconfig: Option<MisconfigSpec>,
    /// Input-deck scale proxy (feature for similarity matching).
    pub scale: f64,
    /// Cores per rank in the allocation.
    pub cores_per_rank: u32,
}

impl AppProfile {
    /// Expected compute time (without I/O or misconfiguration), seconds.
    pub fn base_compute_s(&self) -> f64 {
        let phase_factor = match self.phase_change {
            Some(pc) => (1.0 - pc.at_frac) * pc.factor + pc.at_frac,
            None => 1.0,
        };
        self.total_steps as f64 * self.mean_step_s * phase_factor
    }

    /// The config snapshot a monitoring agent would collect for this job.
    pub fn config_snapshot(&self, corrected: bool, cpu_util: f64) -> JobConfigSnapshot {
        match (&self.misconfig, corrected) {
            (Some(m), false) => JobConfigSnapshot {
                threads_per_rank: m.threads_per_rank,
                cores_per_rank: self.cores_per_rank,
                gpus_allocated: m.gpus_allocated,
                gpu_util: m.gpu_util,
                cpu_util,
                lib_path_ok: m.lib_path_ok,
            },
            _ => JobConfigSnapshot {
                threads_per_rank: self.cores_per_rank,
                cores_per_rank: self.cores_per_rank,
                gpus_allocated: 0,
                gpu_util: 0.0,
                cpu_util,
                lib_path_ok: true,
            },
        }
    }
}

/// Live state of one running application.
#[derive(Debug)]
pub struct AppInstance {
    /// The scheduler job this run belongs to.
    pub job: JobId,
    /// Ground-truth behaviour.
    pub profile: AppProfile,
    /// Steps completed so far.
    pub step: u64,
    /// When the run started.
    pub started_at: SimTime,
    /// Last persisted checkpoint step (resume point).
    pub checkpoint_step: u64,
    /// Whether an injected misconfiguration has been corrected on the fly.
    pub corrected: bool,
    /// Cumulative seconds spent waiting on I/O.
    pub io_wait_s: f64,
    rng: StdRng,
}

impl AppInstance {
    /// Start (or resume) a run. `resume_from` is the checkpoint step a
    /// resubmission continues from (0 for a fresh start).
    pub fn start(
        job: JobId,
        profile: AppProfile,
        started_at: SimTime,
        resume_from: u64,
        rng: StdRng,
    ) -> Self {
        AppInstance {
            job,
            step: resume_from.min(profile.total_steps),
            checkpoint_step: resume_from,
            profile,
            started_at,
            corrected: false,
            io_wait_s: 0.0,
            rng,
        }
    }

    /// Has the app reached its final step?
    pub fn done(&self) -> bool {
        self.step >= self.profile.total_steps
    }

    /// Progress fraction `[0, 1]`.
    pub fn progress_frac(&self) -> f64 {
        self.step as f64 / self.profile.total_steps.max(1) as f64
    }

    /// Sample the duration of the *next* step (compute only; the caller
    /// adds I/O wait separately).
    pub fn next_step_duration(&mut self) -> SimDuration {
        let mut mean = self.profile.mean_step_s;
        if let Some(pc) = self.profile.phase_change {
            if self.progress_frac() >= pc.at_frac {
                mean *= pc.factor;
            }
        }
        if let Some(m) = &self.profile.misconfig {
            if !self.corrected {
                mean *= m.slowdown;
            }
        }
        let cv = self.profile.step_cv.max(0.0);
        if cv < 1e-9 {
            return SimDuration::from_secs_f64(mean);
        }
        let sigma2 = (1.0 + cv * cv).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        let d = LogNormal::new(mu, sigma2.sqrt()).expect("valid lognormal");
        SimDuration::from_secs_f64(d.sample(&mut self.rng))
    }

    /// Whether the step just about to complete performs an I/O burst.
    pub fn step_does_io(&self) -> bool {
        self.profile.io_every > 0 && (self.step + 1).is_multiple_of(self.profile.io_every)
    }

    /// Complete one step.
    pub fn advance(&mut self) {
        debug_assert!(!self.done(), "advance past completion");
        self.step += 1;
    }

    /// Persist progress; returns the checkpoint duration.
    pub fn checkpoint(&mut self) -> SimDuration {
        self.checkpoint_step = self.step;
        SimDuration::from_secs_f64(self.profile.checkpoint_cost_s)
    }

    /// Correct an injected misconfiguration on the fly (§III case 4's
    /// "corrected on the fly" branch). Returns whether anything changed.
    pub fn correct_misconfig(&mut self) -> bool {
        if self.profile.misconfig.is_some() && !self.corrected {
            self.corrected = true;
            true
        } else {
            false
        }
    }

    /// Observed CPU utilization proxy: misconfigured runs look
    /// underutilized; healthy runs hover near full.
    pub fn cpu_util(&mut self) -> f64 {
        let base = match (&self.profile.misconfig, self.corrected) {
            (Some(m), false) => (1.0 / m.slowdown).clamp(0.05, 1.0),
            _ => 0.92,
        };
        (base + self.rng.gen_range(-0.03..0.03)).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn profile() -> AppProfile {
        AppProfile {
            app_class: "cfd".into(),
            total_steps: 100,
            mean_step_s: 2.0,
            step_cv: 0.2,
            io_every: 10,
            io_mb: 50.0,
            stripe: 2,
            phase_change: None,
            checkpoint_cost_s: 5.0,
            misconfig: None,
            scale: 1.0,
            cores_per_rank: 8,
        }
    }

    fn inst(p: AppProfile) -> AppInstance {
        AppInstance::start(JobId(1), p, SimTime::ZERO, 0, StdRng::seed_from_u64(42))
    }

    #[test]
    fn steps_accumulate_to_done() {
        let mut a = inst(AppProfile {
            total_steps: 3,
            ..profile()
        });
        assert!(!a.done());
        a.advance();
        a.advance();
        assert!(!a.done());
        assert!((a.progress_frac() - 2.0 / 3.0).abs() < 1e-12);
        a.advance();
        assert!(a.done());
    }

    #[test]
    fn step_durations_average_to_mean() {
        let mut a = inst(AppProfile {
            step_cv: 0.3,
            ..profile()
        });
        let n = 5000;
        let total: f64 = (0..n).map(|_| a.next_step_duration().as_secs_f64()).sum();
        let mean = total / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean step {mean}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = inst(profile());
        let mut b = inst(profile());
        for _ in 0..10 {
            assert_eq!(a.next_step_duration(), b.next_step_duration());
        }
    }

    #[test]
    fn phase_change_slows_late_steps() {
        let p = AppProfile {
            step_cv: 0.0,
            phase_change: Some(PhaseChange {
                at_frac: 0.5,
                factor: 3.0,
            }),
            ..profile()
        };
        let mut a = inst(p);
        let early = a.next_step_duration();
        a.step = 50; // at the phase boundary
        let late = a.next_step_duration();
        assert_eq!(early, SimDuration::from_secs(2));
        assert_eq!(late, SimDuration::from_secs(6));
    }

    #[test]
    fn misconfig_slowdown_and_correction() {
        let p = AppProfile {
            step_cv: 0.0,
            misconfig: Some(MisconfigSpec {
                slowdown: 2.0,
                threads_per_rank: 16,
                gpus_allocated: 0,
                gpu_util: 0.0,
                lib_path_ok: true,
            }),
            ..profile()
        };
        let mut a = inst(p);
        assert_eq!(a.next_step_duration(), SimDuration::from_secs(4));
        assert!(a.correct_misconfig());
        assert_eq!(a.next_step_duration(), SimDuration::from_secs(2));
        // Idempotent.
        assert!(!a.correct_misconfig());
    }

    #[test]
    fn io_cadence() {
        let a = inst(profile()); // io_every = 10
        let mut does_io = Vec::new();
        let mut a = a;
        for _ in 0..20 {
            does_io.push(a.step_does_io());
            a.advance();
        }
        let io_steps: Vec<usize> = does_io
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| i)
            .collect();
        // Steps 10 and 20 (1-indexed) → indices 9 and 19.
        assert_eq!(io_steps, vec![9, 19]);
    }

    #[test]
    fn checkpoint_persists_resume_point() {
        let mut a = inst(profile());
        a.advance();
        a.advance();
        let cost = a.checkpoint();
        assert_eq!(cost, SimDuration::from_secs(5));
        assert_eq!(a.checkpoint_step, 2);
        // A resumed instance starts at the checkpoint.
        let resumed = AppInstance::start(
            JobId(2),
            profile(),
            SimTime::from_secs(100),
            2,
            StdRng::seed_from_u64(1),
        );
        assert_eq!(resumed.step, 2);
    }

    #[test]
    fn config_snapshot_reflects_misconfig_and_correction() {
        let p = AppProfile {
            misconfig: Some(MisconfigSpec {
                slowdown: 2.0,
                threads_per_rank: 16,
                gpus_allocated: 2,
                gpu_util: 0.01,
                lib_path_ok: false,
            }),
            ..profile()
        };
        let snap_bad = p.config_snapshot(false, 0.5);
        assert_eq!(snap_bad.threads_per_rank, 16);
        assert_eq!(snap_bad.gpus_allocated, 2);
        assert!(!snap_bad.lib_path_ok);
        let snap_fixed = p.config_snapshot(true, 0.9);
        assert_eq!(snap_fixed.threads_per_rank, snap_fixed.cores_per_rank);
        assert!(snap_fixed.lib_path_ok);
    }

    #[test]
    fn cpu_util_signals_misconfiguration() {
        let p = AppProfile {
            misconfig: Some(MisconfigSpec {
                slowdown: 4.0,
                threads_per_rank: 32,
                gpus_allocated: 0,
                gpu_util: 0.0,
                lib_path_ok: true,
            }),
            ..profile()
        };
        let mut bad = inst(p);
        let mut good = inst(profile());
        assert!(bad.cpu_util() < 0.4);
        assert!(good.cpu_util() > 0.8);
    }

    #[test]
    fn base_compute_accounts_for_phase() {
        let p = AppProfile {
            phase_change: Some(PhaseChange {
                at_frac: 0.5,
                factor: 2.0,
            }),
            ..profile()
        };
        // 100 steps × 2 s: first half ×1, second half ×2 → 100 + 200 = 300 s.
        assert!((p.base_compute_s() - 300.0).abs() < 1e-9);
        assert!((profile().base_compute_s() - 200.0).abs() < 1e-9);
    }
}
