//! Fail-stop node-failure injection.
//!
//! §IV: *"Resilience is essential in HPC systems where operations must
//! persist through component and subsystem failures."* The experiments
//! need a managed system that actually fails, so the world can inject
//! fail-stop node faults: at stochastic intervals a node crashes and
//! takes the job running on it with it. The job's resubmission then
//! restarts from its last checkpoint (if any loop arranged one) — which
//! is exactly the trade the resilience loop tunes.
//!
//! The process model is the standard one for HPC reliability studies:
//! cluster-wide failures form a Poisson process whose rate scales with
//! node count (per-node exponential lifetimes, memorylessness ⇒ the
//! aggregate is exponential with mean `mtbf_node / nodes`).

use moda_sim::SimDuration;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Failure-injection parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureConfig {
    /// Per-node mean time between failures, seconds. Production-grade
    /// hardware sits around 10⁵–10⁷ s/node; stress experiments go lower.
    pub node_mtbf_s: f64,
}

impl FailureConfig {
    /// Cluster-wide mean time between failures for `nodes` nodes.
    pub fn system_mtbf_s(&self, nodes: u32) -> f64 {
        assert!(nodes > 0, "cluster must have nodes");
        self.node_mtbf_s / nodes as f64
    }

    /// Sample the next inter-failure gap for a cluster of `nodes`.
    /// An infinite MTBF yields a beyond-any-horizon gap (failures
    /// configured but effectively disabled — the healthy-cluster
    /// baseline of resilience experiments).
    pub fn next_gap<R: Rng + ?Sized>(&self, nodes: u32, rng: &mut R) -> SimDuration {
        let mean = self.system_mtbf_s(nodes);
        if !mean.is_finite() {
            return SimDuration(u64::MAX / 4);
        }
        // Inverse-CDF exponential; clamp the uniform away from 0 so the
        // gap is finite.
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        SimDuration::from_secs_f64(-mean * u.ln())
    }
}

/// The optimal periodic checkpoint interval for a given MTBF and
/// checkpoint cost — Young's first-order formula `√(2 · C · MTBF)`.
///
/// The resilience loop uses it as the Plan-phase policy; the
/// `exp_resilience` experiment sweeps cadence around it to show the
/// optimum is where Young says it is.
pub fn young_interval_s(checkpoint_cost_s: f64, system_mtbf_s: f64) -> f64 {
    assert!(checkpoint_cost_s >= 0.0 && system_mtbf_s > 0.0);
    (2.0 * checkpoint_cost_s * system_mtbf_s).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng as _;

    #[test]
    fn system_mtbf_scales_inversely_with_nodes() {
        let f = FailureConfig { node_mtbf_s: 1e6 };
        assert_eq!(f.system_mtbf_s(1), 1e6);
        assert_eq!(f.system_mtbf_s(100), 1e4);
    }

    #[test]
    fn gaps_are_positive_and_mean_matches() {
        let f = FailureConfig {
            node_mtbf_s: 64_000.0,
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let n = 4000;
        let mut sum = 0.0;
        for _ in 0..n {
            let g = f.next_gap(64, &mut rng).as_secs_f64();
            assert!(g > 0.0);
            sum += g;
        }
        let mean = sum / n as f64;
        // System MTBF = 1000 s; LLN with 4000 samples → within ~10%.
        assert!(
            (mean - 1000.0).abs() < 100.0,
            "sample mean {mean} far from 1000"
        );
    }

    #[test]
    fn young_interval_known_values() {
        // C = 50 s, MTBF = 10000 s → √(2·50·10000) = 1000 s.
        assert!((young_interval_s(50.0, 10_000.0) - 1000.0).abs() < 1e-9);
        // Zero-cost checkpoints → checkpoint continuously.
        assert_eq!(young_interval_s(0.0, 10_000.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "nodes")]
    fn zero_nodes_rejected() {
        FailureConfig { node_mtbf_s: 1.0 }.system_mtbf_s(0);
    }
}
