//! The Scheduler use case — the paper's initial case (§III, Fig. 3).
//!
//! > *Monitor* progress of an application … *Analyze* the progress
//! > relative to representative historical application run times …
//! > *Plan* action to be taken … *Execute* the determined response
//! > \[though\] the scheduler may deny the request or provide a shorter
//! > extension than requested. *Assess* the Knowledge about the success
//! > of the Plan …
//!
//! Concretely:
//!
//! * **Monitor** reads each running job's progress markers (the
//!   time-steps rank 0 dropped into telemetry) and remaining allocation.
//! * **Analyze** fits a robust progress model (Theil–Sen by default)
//!   per job and produces an ETA with a prediction interval; jobs with
//!   too few markers fall back to k-NN over Knowledge run history
//!   ("inferred from similar jobs with different input decks").
//! * **Plan** compares ETA against remaining allocation: a projected
//!   deficit requests an extension (padded by a safety margin); when a
//!   previous request was denied — or the remaining allocation runs so
//!   low that a checkpoint barely fits — it plans an asynchronous
//!   checkpoint instead, so the kill that follows wastes nothing.
//! * **Execute** calls the scheduler's extension hook / the app's
//!   checkpoint hook and reports the (possibly partial/denied) outcome.
//! * **Assess** marks outcomes in Knowledge; the end-of-campaign
//!   assessment (extension error vs. ground truth) lives in the
//!   experiment harness, which also owns the §III.iv trust metrics.

use crate::harness::SharedWorld;
use moda_analytics::forecast::{Estimator, ProgressForecaster};
use moda_analytics::similarity::{estimate_runtime, RunSignature};
use moda_core::{
    Analyzer, Assessor, AutonomyMode, Confidence, ConfidenceGate, Domain, Executor, GuardConfig,
    Knowledge, MapeLoop, Monitor, Plan, PlannedAction, Planner, RunRecord,
};
use moda_scheduler::{ExtensionDecision, JobId, JobState};
use moda_sim::{SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet};

/// Loop parameters.
#[derive(Debug, Clone)]
pub struct SchedulerLoopConfig {
    /// Markers fed to the regression (most recent N).
    pub marker_window: usize,
    /// Minimum markers before trusting a per-job fit.
    pub min_markers: usize,
    /// Extension padding over the projected deficit.
    pub safety_margin: f64,
    /// Plan only when the projected deficit exceeds this, seconds.
    pub deficit_trigger_s: f64,
    /// Whether the checkpoint fallback is enabled (§III's extensibility
    /// step: "an option for invoking asynchronous checkpointing").
    pub enable_checkpoint: bool,
    /// Robust (Theil–Sen) or plain OLS forecasting.
    pub estimator: Estimator,
    /// Per-job cap on extension count (mirrors §III.iv trust controls;
    /// enforced loop-side via the guard, scheduler-side via policy).
    pub max_extensions_per_job: u32,
    /// Autonomy mode for the loop.
    pub mode: AutonomyMode,
    /// Confidence gate threshold for actuation.
    pub gate_threshold: f64,
}

impl Default for SchedulerLoopConfig {
    fn default() -> Self {
        SchedulerLoopConfig {
            marker_window: 30,
            min_markers: 5,
            safety_margin: 0.15,
            deficit_trigger_s: 30.0,
            enable_checkpoint: true,
            estimator: Estimator::TheilSen,
            max_extensions_per_job: 3,
            mode: AutonomyMode::Autonomous,
            gate_threshold: 0.3,
        }
    }
}

/// Typed vocabulary of the Scheduler loop.
#[derive(Debug)]
pub struct SchedulerDomain;

/// One job's monitored progress.
#[derive(Debug, Clone)]
pub struct JobProgress {
    /// The job.
    pub id: JobId,
    /// `(t_seconds, steps)` markers, oldest-first.
    pub markers: Vec<(f64, f64)>,
    /// Step target from the input deck.
    pub total_steps: f64,
    /// Remaining allocation, seconds.
    pub remaining_s: f64,
    /// Application class (for Knowledge matching).
    pub app_class: String,
    /// Checkpoint cost, seconds (the app knows its own state size).
    pub checkpoint_cost_s: f64,
}

/// One job's assessed completion risk.
#[derive(Debug, Clone)]
pub struct JobRisk {
    /// The job.
    pub id: JobId,
    /// Estimated seconds to completion (`None` = no usable estimate).
    pub eta_s: Option<f64>,
    /// Remaining allocation, seconds.
    pub remaining_s: f64,
    /// Projected deficit (eta − remaining), seconds; positive = job dies.
    pub deficit_s: f64,
    /// Estimate confidence.
    pub confidence: Confidence,
    /// Whether the estimate came from history (cold start) rather than
    /// the job's own markers.
    pub cold_start: bool,
    /// Checkpoint cost, seconds.
    pub checkpoint_cost_s: f64,
}

/// Actions the loop can take.
#[derive(Debug, Clone)]
pub enum SchedAction {
    /// Request `extra_s` more walltime for the job.
    Extend {
        /// Target job.
        id: JobId,
        /// Requested extra seconds.
        extra_s: f64,
    },
    /// Signal the job to checkpoint asynchronously.
    Checkpoint {
        /// Target job.
        id: JobId,
    },
}

/// What the managed system answered.
#[derive(Debug, Clone)]
pub enum SchedOutcome {
    /// Extension result straight from the scheduler hook.
    Extension(ExtensionDecision),
    /// Checkpoint signal accepted.
    CheckpointStarted,
    /// Checkpoint signal failed (job gone).
    CheckpointFailed,
}

impl Domain for SchedulerDomain {
    type Obs = Vec<JobProgress>;
    type Assessment = Vec<JobRisk>;
    type Action = SchedAction;
    type Outcome = SchedOutcome;
}

/// The behavioral-signature convention shared between the cold-start
/// query and the run records the monitor harvests: before a run starts,
/// only the input-deck scale (its step target) is known, so all
/// runtime-behavioral features are zeroed and similarity is carried by
/// `scale` ("similar jobs with different input decks", §III).
pub fn class_signature(total_steps: f64) -> RunSignature {
    RunSignature {
        mean_step_s: 0.0,
        step_cv: 0.0,
        io_fraction: 0.0,
        nodes: 0.0,
        scale: total_steps,
    }
}

/// Monitor: progress markers + remaining allocation per running job,
/// plus harvesting of completed runs into Knowledge (Fig. 3's
/// "representative historical application run times, which would need
/// to be collected and stored along with appropriate metadata").
pub struct ProgressMonitor {
    world: SharedWorld,
    window: usize,
    /// Jobs observed running at the previous tick; a job leaving this
    /// set has finished one way or another.
    tracked: BTreeSet<JobId>,
}

impl Monitor<SchedulerDomain> for ProgressMonitor {
    fn name(&self) -> &str {
        "progress-markers"
    }
    fn ingest(&mut self, _now: SimTime, k: &mut Knowledge) {
        let w = self.world.borrow();
        let running: BTreeSet<JobId> = w.running_jobs().into_iter().collect();
        for &id in self.tracked.difference(&running) {
            let Some(job) = w.sched.job(id) else { continue };
            if job.state != JobState::Completed {
                continue; // killed/cancelled runs are not representative
            }
            let (Some(start), Some(end)) = (job.start, job.end) else {
                continue;
            };
            let total_steps = w.total_steps(id).unwrap_or(0);
            k.record_run(RunRecord {
                app_class: job.req.app_class.clone(),
                signature: class_signature(total_steps as f64).to_vec(),
                runtime_s: end.saturating_since(start).as_secs_f64(),
                total_steps,
                metadata: BTreeMap::from([
                    ("user".to_string(), job.req.user.clone()),
                    ("nodes".to_string(), job.req.nodes.to_string()),
                ]),
            });
        }
        self.tracked = running;
    }
    fn observe(&mut self, _now: SimTime) -> Option<Vec<JobProgress>> {
        let w = self.world.borrow();
        let jobs = w.running_jobs();
        if jobs.is_empty() {
            return None;
        }
        let obs: Vec<JobProgress> = jobs
            .into_iter()
            .filter_map(|id| {
                let markers = w.progress_markers(id, self.window);
                let total = w.total_steps(id)? as f64;
                let remaining = w.remaining_alloc(id)?.as_secs_f64();
                let app_class = w.app_class(id)?.to_string();
                let checkpoint_cost_s = w
                    .ground_truth_profile(id)
                    .map(|p| p.checkpoint_cost_s)
                    .unwrap_or(10.0);
                Some(JobProgress {
                    id,
                    markers,
                    total_steps: total,
                    remaining_s: remaining,
                    app_class,
                    checkpoint_cost_s,
                })
            })
            .collect();
        if obs.is_empty() {
            None
        } else {
            Some(obs)
        }
    }
}

/// Analyzer: per-job ETA via robust regression, k-NN cold start.
pub struct EtaAnalyzer {
    forecaster: ProgressForecaster,
    min_markers: usize,
}

impl Analyzer<SchedulerDomain> for EtaAnalyzer {
    fn name(&self) -> &str {
        "eta-forecast"
    }
    fn analyze(&mut self, now: SimTime, obs: &Vec<JobProgress>, k: &Knowledge) -> Vec<JobRisk> {
        let now_s = now.as_secs_f64();
        obs.iter()
            .map(|jp| {
                let (eta, conf, cold) = if jp.markers.len() >= self.min_markers {
                    match self.forecaster.forecast(&jp.markers, jp.total_steps, now_s) {
                        Some(f) => (Some(f.eta_s), f.confidence, false),
                        None => (None, Confidence::NONE, false),
                    }
                } else {
                    // Cold start: estimate from similar historical runs.
                    let sig = class_signature(jp.total_steps);
                    match estimate_runtime(&sig, k.runs(), 5) {
                        Some((runtime, c)) => {
                            let done_frac = jp
                                .markers
                                .last()
                                .map(|m| m.1 / jp.total_steps.max(1.0))
                                .unwrap_or(0.0);
                            (Some(runtime * (1.0 - done_frac)), c, true)
                        }
                        None => (None, Confidence::NONE, true),
                    }
                };
                let deficit = eta.map(|e| e - jp.remaining_s).unwrap_or(f64::MIN);
                JobRisk {
                    id: jp.id,
                    eta_s: eta,
                    remaining_s: jp.remaining_s,
                    deficit_s: deficit,
                    confidence: conf,
                    cold_start: cold,
                    checkpoint_cost_s: jp.checkpoint_cost_s,
                }
            })
            .collect()
    }
}

/// Planner: extension first, checkpoint fallback.
pub struct ExtensionPlanner {
    cfg: SchedulerLoopConfig,
}

impl Planner<SchedulerDomain> for ExtensionPlanner {
    fn name(&self) -> &str {
        "extension-planner"
    }
    fn plan(
        &mut self,
        _now: SimTime,
        assessment: &Vec<JobRisk>,
        k: &Knowledge,
    ) -> Plan<SchedAction> {
        let mut actions = Vec::new();
        for risk in assessment {
            let Some(eta) = risk.eta_s else { continue };
            if risk.deficit_s <= self.cfg.deficit_trigger_s {
                continue;
            }
            let denied_before = k
                .fact(&format!("job.{}.ext_denied", risk.id.0))
                .unwrap_or(0.0)
                > 0.0;
            let ext_count = k
                .fact(&format!("job.{}.ext_count", risk.id.0))
                .unwrap_or(0.0) as u32;
            let ckpt_taken = k.fact(&format!("job.{}.ckpt", risk.id.0)).unwrap_or(0.0) > 0.0;
            let extensions_exhausted = ext_count >= self.cfg.max_extensions_per_job;

            if (denied_before || extensions_exhausted) && self.cfg.enable_checkpoint {
                // Fallback: checkpoint while the allocation still covers
                // the checkpoint cost (§III: "signal an application to
                // checkpoint based on the time needed to write a
                // checkpoint and the time remaining in an allocation").
                let fits = risk.remaining_s > risk.checkpoint_cost_s * 2.0;
                if fits && !ckpt_taken {
                    actions.push(
                        PlannedAction::new(
                            SchedAction::Checkpoint { id: risk.id },
                            "checkpoint",
                            risk.confidence,
                        )
                        .with_magnitude(risk.checkpoint_cost_s)
                        .with_rationale(format!(
                            "{}: extension path exhausted (denied={denied_before}, count={ext_count}); checkpointing with {:.0}s left (cost {:.0}s)",
                            risk.id, risk.remaining_s, risk.checkpoint_cost_s
                        )),
                    );
                }
                continue;
            }

            let extra = (risk.deficit_s * (1.0 + self.cfg.safety_margin)).ceil();
            actions.push(
                PlannedAction::new(
                    SchedAction::Extend {
                        id: risk.id,
                        extra_s: extra,
                    },
                    "extension",
                    risk.confidence,
                )
                .with_magnitude(extra)
                .with_rationale(format!(
                    "{}: ETA {:.0}s exceeds remaining {:.0}s by {:.0}s ({}); requesting {:.0}s",
                    risk.id,
                    eta,
                    risk.remaining_s,
                    risk.deficit_s,
                    if risk.cold_start {
                        "history-based"
                    } else {
                        "marker-based"
                    },
                    extra
                )),
            );
        }
        Plan { actions }
    }
}

/// Executor: the scheduler extension hook and the app checkpoint hook.
pub struct SchedExecutor {
    world: SharedWorld,
}

impl Executor<SchedulerDomain> for SchedExecutor {
    fn name(&self) -> &str {
        "scheduler-hooks"
    }
    fn execute(&mut self, _now: SimTime, action: &SchedAction) -> SchedOutcome {
        let mut w = self.world.borrow_mut();
        match action {
            SchedAction::Extend { id, extra_s } => SchedOutcome::Extension(
                w.request_extension(*id, SimDuration::from_secs_f64(*extra_s)),
            ),
            SchedAction::Checkpoint { id } => {
                if w.signal_checkpoint(*id) {
                    SchedOutcome::CheckpointStarted
                } else {
                    SchedOutcome::CheckpointFailed
                }
            }
        }
    }
}

/// Assessor: remembers denials/grants per job so the planner can route
/// to the checkpoint fallback, and counts decisions for calibration.
pub struct SchedAssessor;

impl Assessor<SchedulerDomain> for SchedAssessor {
    fn assess(
        &mut self,
        _now: SimTime,
        action: &PlannedAction<SchedAction>,
        outcome: &SchedOutcome,
        k: &mut Knowledge,
    ) {
        match (&action.action, outcome) {
            (SchedAction::Extend { id, .. }, SchedOutcome::Extension(d)) => {
                let count_key = format!("job.{}.ext_count", id.0);
                k.set_fact(count_key.clone(), k.fact(&count_key).unwrap_or(0.0) + 1.0);
                match d {
                    ExtensionDecision::Denied(_) => {
                        k.set_fact(format!("job.{}.ext_denied", id.0), 1.0);
                        k.assess_latest("scheduler-loop", "extension", false, 0.0);
                    }
                    _ => {
                        let granted = d.granted().as_secs_f64();
                        let key = format!("job.{}.granted_s", id.0);
                        k.set_fact(key.clone(), k.fact(&key).unwrap_or(0.0) + granted);
                    }
                }
            }
            (SchedAction::Checkpoint { id }, SchedOutcome::CheckpointStarted) => {
                k.set_fact(format!("job.{}.ckpt", id.0), 1.0);
                k.assess_latest("scheduler-loop", "checkpoint", true, 0.0);
            }
            (SchedAction::Checkpoint { id }, SchedOutcome::CheckpointFailed) => {
                k.set_fact(format!("job.{}.ckpt", id.0), 0.0);
                k.assess_latest("scheduler-loop", "checkpoint", false, 0.0);
            }
            _ => {}
        }
    }
}

/// Assemble the Fig. 3 loop over a shared world.
pub fn build_loop(world: SharedWorld, cfg: SchedulerLoopConfig) -> MapeLoop<SchedulerDomain> {
    let guard = GuardConfig::unlimited()
        // §III.iv: "limits on the number and overall time of extensions
        // for a single application" — here a campaign-level rate limit;
        // per-job counts are enforced by planner+scheduler policy.
        .with_rate_limit(SimDuration::from_mins(1), 64);
    let gate = ConfidenceGate::new(cfg.gate_threshold);
    let mode = cfg.mode;
    MapeLoop::new(
        "scheduler-loop",
        Box::new(ProgressMonitor {
            world: world.clone(),
            window: cfg.marker_window,
            tracked: BTreeSet::new(),
        }),
        Box::new(EtaAnalyzer {
            forecaster: ProgressForecaster::new(cfg.estimator),
            min_markers: cfg.min_markers,
        }),
        Box::new(ExtensionPlanner { cfg }),
        Box::new(SchedExecutor { world }),
    )
    .with_assessor(Box::new(SchedAssessor))
    .with_guard(guard)
    .with_gate(gate)
    .with_mode(mode)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{drive, shared, CampaignStats};
    use moda_hpc::{AppProfile, World, WorldConfig};
    use moda_scheduler::JobRequest;

    fn doomed_job(id: u64, steps: u64, step_s: f64, wall_s: u64) -> (JobRequest, AppProfile) {
        (
            JobRequest {
                id: JobId(id),
                user: "u".into(),
                app_class: "t".into(),
                submit: SimTime::ZERO,
                nodes: 1,
                walltime: SimDuration::from_secs(wall_s),
            },
            AppProfile {
                app_class: "t".into(),
                total_steps: steps,
                mean_step_s: step_s,
                step_cv: 0.05,
                io_every: 0,
                io_mb: 0.0,
                stripe: 1,
                phase_change: None,
                checkpoint_cost_s: 5.0,
                misconfig: None,
                scale: steps as f64 * step_s,
                cores_per_rank: 8,
            },
        )
    }

    fn world() -> SharedWorld {
        shared(World::new(WorldConfig {
            nodes: 4,
            power_period: None,
            resubmit_delay: SimDuration::from_secs(60),
            ..WorldConfig::default()
        }))
    }

    #[test]
    fn loop_saves_underestimated_job() {
        let w = world();
        // 200 steps × 5 s = 1000 s of work on an 600 s request.
        w.borrow_mut()
            .submit_campaign(vec![doomed_job(0, 200, 5.0, 600)]);
        let mut l = build_loop(w.clone(), SchedulerLoopConfig::default());
        drive(
            &w,
            SimDuration::from_secs(30),
            SimTime::from_hours(4),
            |t| {
                l.tick(t);
            },
        );
        let stats = CampaignStats::collect(&w.borrow());
        assert_eq!(stats.timed_out, 0, "loop failed: {stats:?}");
        assert_eq!(stats.resubmits, 0);
        assert!(stats.ext_granted + stats.ext_partial >= 1);
        assert_eq!(stats.roots_completed, 1);
    }

    #[test]
    fn without_loop_job_dies() {
        let w = world();
        w.borrow_mut()
            .submit_campaign(vec![doomed_job(0, 200, 5.0, 600)]);
        drive(
            &w,
            SimDuration::from_secs(30),
            SimTime::from_hours(4),
            |_| {},
        );
        let stats = CampaignStats::collect(&w.borrow());
        assert!(stats.timed_out >= 1);
        assert!(stats.resubmits >= 1);
    }

    #[test]
    fn healthy_job_triggers_no_action() {
        let w = world();
        // 100 steps × 2 s = 200 s work on a 1000 s request.
        w.borrow_mut()
            .submit_campaign(vec![doomed_job(0, 100, 2.0, 1000)]);
        let mut l = build_loop(w.clone(), SchedulerLoopConfig::default());
        drive(
            &w,
            SimDuration::from_secs(20),
            SimTime::from_hours(2),
            |t| {
                l.tick(t);
            },
        );
        let stats = CampaignStats::collect(&w.borrow());
        assert_eq!(stats.ext_granted + stats.ext_partial + stats.ext_denied, 0);
        assert_eq!(stats.roots_completed, 1);
    }

    #[test]
    fn checkpoint_fallback_when_extensions_exhausted() {
        // Scheduler policy allows zero extensions → first request denied →
        // planner falls back to checkpoint → resubmission resumes.
        let w = shared(World::new(WorldConfig {
            nodes: 4,
            power_period: None,
            policy: moda_scheduler::ExtensionPolicy {
                max_extensions_per_job: 0,
                max_total_extension: SimDuration::ZERO,
                respect_reservation: true,
            },
            resubmit_delay: SimDuration::from_secs(30),
            ..WorldConfig::default()
        }));
        w.borrow_mut()
            .submit_campaign(vec![doomed_job(0, 200, 5.0, 600)]);
        let mut l = build_loop(w.clone(), SchedulerLoopConfig::default());
        drive(
            &w,
            SimDuration::from_secs(30),
            SimTime::from_hours(6),
            |t| {
                l.tick(t);
            },
        );
        let stats = CampaignStats::collect(&w.borrow());
        assert!(stats.checkpoints >= 1, "no checkpoint taken: {stats:?}");
        assert_eq!(stats.roots_completed, 1);
        // The job still died once (extensions impossible), but its retry
        // resumed from the checkpoint instead of restarting.
        assert!(stats.timed_out >= 1);
        let w2 = world();
        w2.borrow_mut()
            .submit_campaign(vec![doomed_job(0, 200, 5.0, 600)]);
        drive(
            &w2,
            SimDuration::from_secs(30),
            SimTime::from_hours(6),
            |_| {},
        );
        let no_loop = CampaignStats::collect(&w2.borrow());
        // Checkpointed retry redoes less work.
        assert!(stats.steps_completed < no_loop.steps_completed);
    }

    #[test]
    fn human_in_the_loop_latency_costs_jobs() {
        // With a 30-minute approval latency the extension arrives after
        // the job is already dead.
        let w = world();
        w.borrow_mut()
            .submit_campaign(vec![doomed_job(0, 200, 5.0, 600)]);
        let mut l = build_loop(
            w.clone(),
            SchedulerLoopConfig {
                mode: AutonomyMode::HumanInTheLoop {
                    latency: SimDuration::from_mins(30),
                },
                enable_checkpoint: false,
                ..SchedulerLoopConfig::default()
            },
        );
        drive(
            &w,
            SimDuration::from_secs(30),
            SimTime::from_hours(4),
            |t| {
                l.tick(t);
            },
        );
        let stats = CampaignStats::collect(&w.borrow());
        assert!(stats.timed_out >= 1, "{stats:?}");
    }

    #[test]
    fn completed_runs_are_harvested_into_knowledge() {
        let w = world();
        // Two healthy jobs complete; their run records must land in K.
        w.borrow_mut().submit_campaign(vec![
            doomed_job(0, 100, 2.0, 1000),
            doomed_job(1, 150, 2.0, 1000),
        ]);
        let mut l = build_loop(w.clone(), SchedulerLoopConfig::default());
        drive(
            &w,
            SimDuration::from_secs(20),
            SimTime::from_hours(2),
            |t| {
                l.tick(t);
            },
        );
        let k = l.knowledge();
        assert_eq!(k.run_count(), 2, "both completed runs recorded");
        for r in k.runs() {
            assert_eq!(r.app_class, "t");
            assert!(r.runtime_s > 0.0);
            assert_eq!(r.signature.len(), 5);
            assert_eq!(r.metadata["nodes"], "1");
        }
        // Killed runs are NOT representative history: a job that dies at
        // its limit must not be recorded.
        let w2 = world();
        w2.borrow_mut()
            .submit_campaign(vec![doomed_job(0, 200, 5.0, 600)]);
        let mut l2 = build_loop(
            w2.clone(),
            SchedulerLoopConfig {
                // Disable the rescue so the first attempt dies.
                min_markers: usize::MAX,
                enable_checkpoint: false,
                ..SchedulerLoopConfig::default()
            },
        );
        drive(
            &w2,
            SimDuration::from_secs(20),
            SimTime::from_hours(1),
            |t| {
                l2.tick(t);
            },
        );
        let killed_recorded = l2
            .knowledge()
            .runs()
            .iter()
            .any(|r| r.runtime_s < 600.0 + 1.0 && r.total_steps == 200 && r.runtime_s <= 601.0);
        // (The resubmission may later complete and be recorded — that one
        // IS representative. Only the killed first attempt must be absent,
        // and killed attempts run exactly to the 600 s limit.)
        assert!(
            !killed_recorded,
            "timed-out attempts must not pollute run history"
        );
    }

    #[test]
    fn cold_start_uses_knowledge_history() {
        use moda_core::RunRecord;
        use std::collections::BTreeMap;
        let w = world();
        w.borrow_mut()
            .submit_campaign(vec![doomed_job(0, 200, 5.0, 600)]);
        // Seed knowledge: similar runs took 1000 s.
        let mut k = Knowledge::new();
        for _ in 0..5 {
            k.record_run(RunRecord {
                app_class: "t".into(),
                signature: RunSignature {
                    mean_step_s: 0.0,
                    step_cv: 0.0,
                    io_fraction: 0.0,
                    nodes: 0.0,
                    scale: 1000.0,
                }
                .to_vec(),
                runtime_s: 1000.0,
                total_steps: 200,
                metadata: BTreeMap::new(),
            });
        }
        let mut l = build_loop(
            w.clone(),
            SchedulerLoopConfig {
                // Huge min_markers forces the cold-start path throughout.
                min_markers: usize::MAX,
                gate_threshold: 0.0,
                ..SchedulerLoopConfig::default()
            },
        )
        .with_knowledge(k);
        drive(
            &w,
            SimDuration::from_secs(30),
            SimTime::from_hours(4),
            |t| {
                l.tick(t);
            },
        );
        let stats = CampaignStats::collect(&w.borrow());
        // History-based ETA (1000 s) exceeds the 600 s allocation → the
        // loop extends and the job completes first-try.
        assert_eq!(stats.timed_out, 0, "{stats:?}");
        assert!(stats.ext_granted + stats.ext_partial >= 1);
    }
}
