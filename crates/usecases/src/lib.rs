//! # moda-usecases
//!
//! The paper's five production use cases (§III), each wired as a MAPE-K
//! autonomy loop over the simulated HPC center:
//!
//! | Module | Paper case | Loop in one sentence |
//! |---|---|---|
//! | [`scheduler_case`] | 5, the initial case (Fig. 3) | forecast job completion from progress markers, negotiate walltime extensions (and checkpoint as fallback) before the limit kills the job |
//! | [`maintenance`] | 1 | checkpoint running jobs just before a maintenance outage so their resubmissions resume instead of restarting |
//! | [`io_qos`] | 2 | retune per-tenant QoS token rates from observed tail latency and bandwidth demand |
//! | [`ost`] | 3 | detect a degraded OST from observed write bandwidth (CUSUM) and reopen files avoiding it |
//! | [`misconfig`] | 4 | detect misconfigured jobs and either inform the user (notification) or correct on the fly |
//! | [`resilience`] | §IV resilience extension | proactively checkpoint on a cadence (Young-optimal given the observed MTBF) so node failures cost bounded rework |
//! | [`fleet_control`] | §II center-level tier | fleet monitors over merged sketches feed a guarded responder that actuates canary-first into the cluster, chaos-tested for graceful degradation |
//!
//! [`harness`] holds the shared campaign driver that interleaves
//! discrete-event world execution with loop ticks, plus the
//! campaign-level statistics every experiment reports (§III.iv–v
//! validation and incentive metrics).

pub mod fleet_control;
pub mod harness;
pub mod io_qos;
pub mod maintenance;
pub mod misconfig;
pub mod ost;
pub mod resilience;
pub mod scheduler_case;

pub use fleet_control::{
    cascading_failure_scenario, partition_degradation_scenario, power_cap_scenario, CascadeReport,
    ClusterControlDriver, ControlTrace, FleetAnomalyMonitor, ForecastBreachMonitor,
    PartitionReport, PowerCapReport, TickTrace,
};
pub use harness::{drive, CampaignStats, SharedWorld};
