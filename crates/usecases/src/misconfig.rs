//! The Misconfiguration use case (§III, case 4).
//!
//! > *Detection of misconfiguration of user jobs such as unintended
//! > mismatch of threads to cores, underutilization of CPUs or GPUs, or
//! > wrong library search paths. Depending on the type of
//! > misconfiguration, users could either be informed about their
//! > mistake along with suggestions for better configurations, or the
//! > misconfiguration could be corrected on the fly.*
//!
//! * **Monitor** collects per-job configuration/utilization snapshots.
//! * **Analyze** runs the rule-based detectors from
//!   [`moda_analytics::misconfig`].
//! * **Plan** routes each finding: auto-correctable and severe enough →
//!   a `Correct` action; otherwise → an `Inform` action whose execution
//!   is a user notification (surfaced through the audit/notification
//!   channel — run the loop in human-on-the-loop mode to deliver them).
//! * **Execute** applies on-the-fly corrections through the app hook.

use crate::harness::SharedWorld;
use moda_analytics::misconfig::{detect, ConfigPolicy, Finding, JobConfigSnapshot};
use moda_core::{
    Analyzer, ConfidenceGate, Domain, Executor, Knowledge, MapeLoop, Monitor, Plan, PlannedAction,
    Planner,
};
use moda_scheduler::JobId;
use moda_sim::SimTime;

/// Loop parameters.
#[derive(Debug, Clone)]
pub struct MisconfigLoopConfig {
    /// Detector thresholds.
    pub policy: ConfigPolicy,
    /// Apply corrections automatically (vs inform-only).
    pub auto_correct: bool,
    /// Minimum severity for an automatic correction.
    pub correct_severity: f64,
}

impl Default for MisconfigLoopConfig {
    fn default() -> Self {
        MisconfigLoopConfig {
            policy: ConfigPolicy::default(),
            auto_correct: true,
            correct_severity: 0.2,
        }
    }
}

/// Typed vocabulary of the Misconfiguration loop.
#[derive(Debug)]
pub struct MisconfigDomain;

/// Assessment: per-job findings.
#[derive(Debug, Clone)]
pub struct JobFindings {
    /// The job.
    pub id: JobId,
    /// Detector findings.
    pub findings: Vec<Finding>,
}

/// Actions the loop can take.
#[derive(Debug, Clone)]
pub enum MisconfigAction {
    /// Correct the job's configuration on the fly.
    Correct {
        /// Target job.
        id: JobId,
    },
    /// Inform the user (delivered via the notification channel).
    Inform {
        /// Target job.
        id: JobId,
        /// The suggestion text shown to the user.
        suggestion: String,
    },
}

impl Domain for MisconfigDomain {
    type Obs = Vec<(JobId, JobConfigSnapshot)>;
    type Assessment = Vec<JobFindings>;
    type Action = MisconfigAction;
    type Outcome = bool;
}

struct SnapshotMonitor {
    world: SharedWorld,
}

impl Monitor<MisconfigDomain> for SnapshotMonitor {
    fn name(&self) -> &str {
        "config-snapshots"
    }
    fn observe(&mut self, _now: SimTime) -> Option<Vec<(JobId, JobConfigSnapshot)>> {
        let mut w = self.world.borrow_mut();
        let jobs = w.running_jobs();
        let snaps: Vec<(JobId, JobConfigSnapshot)> = jobs
            .into_iter()
            .filter_map(|id| w.config_snapshot(id).map(|s| (id, s)))
            .collect();
        if snaps.is_empty() {
            None
        } else {
            Some(snaps)
        }
    }
}

struct DetectAnalyzer {
    policy: ConfigPolicy,
}

impl Analyzer<MisconfigDomain> for DetectAnalyzer {
    fn name(&self) -> &str {
        "misconfig-detect"
    }
    fn analyze(
        &mut self,
        _now: SimTime,
        obs: &Vec<(JobId, JobConfigSnapshot)>,
        _k: &Knowledge,
    ) -> Vec<JobFindings> {
        obs.iter()
            .map(|(id, snap)| JobFindings {
                id: *id,
                findings: detect(snap, &self.policy),
            })
            .filter(|jf| !jf.findings.is_empty())
            .collect()
    }
}

struct RoutePlanner {
    cfg: MisconfigLoopConfig,
}

impl Planner<MisconfigDomain> for RoutePlanner {
    fn name(&self) -> &str {
        "inform-or-correct"
    }
    fn plan(
        &mut self,
        _now: SimTime,
        assessment: &Vec<JobFindings>,
        k: &Knowledge,
    ) -> Plan<MisconfigAction> {
        let mut actions = Vec::new();
        for jf in assessment {
            // One response per job: dedupe through Knowledge.
            if k.fact(&format!("job.{}.misconfig_handled", jf.id.0))
                .unwrap_or(0.0)
                > 0.0
            {
                continue;
            }
            // Pick the most severe finding to respond to.
            let Some(worst) = jf.findings.iter().max_by(|a, b| {
                a.severity
                    .partial_cmp(&b.severity)
                    .unwrap_or(std::cmp::Ordering::Equal)
            }) else {
                continue;
            };
            let correct = self.cfg.auto_correct
                && worst.auto_correctable
                && worst.severity >= self.cfg.correct_severity;
            if correct {
                actions.push(
                    PlannedAction::new(
                        MisconfigAction::Correct { id: jf.id },
                        "correct",
                        worst.confidence,
                    )
                    .with_magnitude(worst.severity)
                    .with_rationale(format!("{}: {}", jf.id, worst.suggestion)),
                );
            } else {
                actions.push(
                    PlannedAction::new(
                        MisconfigAction::Inform {
                            id: jf.id,
                            suggestion: worst.suggestion.clone(),
                        },
                        "inform",
                        worst.confidence,
                    )
                    .with_magnitude(0.0)
                    .with_rationale(format!("{}: {}", jf.id, worst.suggestion)),
                );
            }
        }
        Plan { actions }
    }
}

struct CorrectExecutor {
    world: SharedWorld,
}

impl Executor<MisconfigDomain> for CorrectExecutor {
    fn name(&self) -> &str {
        "correct-or-inform"
    }
    fn execute(&mut self, _now: SimTime, action: &MisconfigAction) -> bool {
        match action {
            MisconfigAction::Correct { id } => self.world.borrow_mut().correct_misconfig(*id),
            // Informing has no managed-system effect; delivery happens
            // through the loop's notification channel.
            MisconfigAction::Inform { .. } => true,
        }
    }
}

struct HandledAssessor;

impl moda_core::Assessor<MisconfigDomain> for HandledAssessor {
    fn assess(
        &mut self,
        _now: SimTime,
        action: &PlannedAction<MisconfigAction>,
        outcome: &bool,
        k: &mut Knowledge,
    ) {
        let id = match &action.action {
            MisconfigAction::Correct { id } => *id,
            MisconfigAction::Inform { id, .. } => *id,
        };
        if *outcome {
            k.set_fact(format!("job.{}.misconfig_handled", id.0), 1.0);
        }
        k.assess_latest("misconfig-loop", &action.kind, *outcome, 0.0);
    }
}

/// Assemble the Misconfiguration loop.
pub fn build_loop(world: SharedWorld, cfg: MisconfigLoopConfig) -> MapeLoop<MisconfigDomain> {
    let policy = cfg.policy;
    MapeLoop::new(
        "misconfig-loop",
        Box::new(SnapshotMonitor {
            world: world.clone(),
        }),
        Box::new(DetectAnalyzer { policy }),
        Box::new(RoutePlanner { cfg }),
        Box::new(CorrectExecutor { world }),
    )
    .with_assessor(Box::new(HandledAssessor))
    .with_gate(ConfidenceGate::new(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{drive, shared};
    use moda_core::AutonomyMode;
    use moda_hpc::{AppProfile, MisconfigSpec, World, WorldConfig};
    use moda_scheduler::JobRequest;
    use moda_sim::SimDuration;

    fn job(id: u64, misconfig: Option<MisconfigSpec>) -> (JobRequest, AppProfile) {
        (
            JobRequest {
                id: JobId(id),
                user: "u".into(),
                app_class: "t".into(),
                submit: SimTime::ZERO,
                nodes: 1,
                walltime: SimDuration::from_hours(4),
            },
            AppProfile {
                app_class: "t".into(),
                total_steps: 200,
                mean_step_s: 2.0,
                step_cv: 0.05,
                io_every: 0,
                io_mb: 0.0,
                stripe: 1,
                phase_change: None,
                checkpoint_cost_s: 5.0,
                misconfig,
                scale: 1.0,
                cores_per_rank: 8,
            },
        )
    }

    fn oversub() -> MisconfigSpec {
        MisconfigSpec {
            slowdown: 2.5,
            threads_per_rank: 32,
            gpus_allocated: 0,
            gpu_util: 0.0,
            lib_path_ok: true,
        }
    }

    fn bad_lib() -> MisconfigSpec {
        MisconfigSpec {
            slowdown: 1.5,
            threads_per_rank: 8,
            gpus_allocated: 0,
            gpu_util: 0.0,
            lib_path_ok: false,
        }
    }

    fn world(jobs: Vec<(JobRequest, AppProfile)>) -> SharedWorld {
        let mut w = World::new(WorldConfig {
            nodes: 8,
            power_period: None,
            ..WorldConfig::default()
        });
        w.submit_campaign(jobs);
        shared(w)
    }

    #[test]
    fn auto_corrects_oversubscription_and_speeds_job() {
        let w = world(vec![job(0, Some(oversub()))]);
        let mut l = build_loop(w.clone(), MisconfigLoopConfig::default());
        drive(
            &w,
            SimDuration::from_secs(20),
            SimTime::from_hours(4),
            |t| {
                l.tick(t);
            },
        );
        assert_eq!(w.borrow().metrics.corrections, 1);
        let t_fixed = w.borrow().now().as_secs_f64();
        // Baseline without the loop.
        let w2 = world(vec![job(0, Some(oversub()))]);
        drive(
            &w2,
            SimDuration::from_secs(20),
            SimTime::from_hours(4),
            |_| {},
        );
        let t_plain = w2.borrow().now().as_secs_f64();
        assert!(
            t_fixed < t_plain * 0.8,
            "correction should speed the run: {t_fixed:.0}s vs {t_plain:.0}s"
        );
    }

    #[test]
    fn non_correctable_finding_informs_instead() {
        let w = world(vec![job(0, Some(bad_lib()))]);
        let mut l = build_loop(w.clone(), MisconfigLoopConfig::default())
            .with_mode(AutonomyMode::HumanOnTheLoop);
        drive(
            &w,
            SimDuration::from_secs(20),
            SimTime::from_hours(4),
            |t| {
                l.tick(t);
            },
        );
        // No correction possible for a wrong library path mid-run…
        assert_eq!(w.borrow().metrics.corrections, 0);
        // …but the user was informed exactly once, with the suggestion.
        let notes = l.audit().notifications().len();
        assert_eq!(notes, 1, "expected exactly one inform notification");
        assert!(l.audit().notifications()[0]
            .explanation
            .contains("library search path"));
    }

    #[test]
    fn healthy_jobs_are_untouched() {
        let w = world(vec![job(0, None), job(1, None)]);
        let mut l = build_loop(w.clone(), MisconfigLoopConfig::default());
        let mut executed = 0;
        drive(
            &w,
            SimDuration::from_secs(20),
            SimTime::from_hours(4),
            |t| {
                executed += l.tick(t).executed;
            },
        );
        assert_eq!(executed, 0);
        assert_eq!(w.borrow().metrics.corrections, 0);
    }

    #[test]
    fn inform_only_mode_never_corrects() {
        let w = world(vec![job(0, Some(oversub()))]);
        let mut l = build_loop(
            w.clone(),
            MisconfigLoopConfig {
                auto_correct: false,
                ..MisconfigLoopConfig::default()
            },
        );
        drive(
            &w,
            SimDuration::from_secs(20),
            SimTime::from_hours(4),
            |t| {
                l.tick(t);
            },
        );
        assert_eq!(w.borrow().metrics.corrections, 0);
        // The finding was still handled (informed) exactly once.
        assert_eq!(l.knowledge().effectiveness("inform"), Some(1.0));
    }

    #[test]
    fn each_job_handled_once() {
        let w = world(vec![job(0, Some(oversub())), job(1, Some(oversub()))]);
        let mut l = build_loop(w.clone(), MisconfigLoopConfig::default());
        let mut executed = 0;
        drive(
            &w,
            SimDuration::from_secs(20),
            SimTime::from_hours(4),
            |t| {
                executed += l.tick(t).executed;
            },
        );
        assert_eq!(executed, 2);
        assert_eq!(w.borrow().metrics.corrections, 2);
    }
}
