//! The OST use case (§III, case 3).
//!
//! > *Response by an application, from continuous evaluation of storage
//! > back-end write performance, to close files using a poorly
//! > performing OST … The application would then reopen them using
//! > different OSTs, or explicitly request to avoid that OST.*
//!
//! * **Monitor** reads the observed per-stream bandwidth of every OST
//!   that has served writes.
//! * **Analyze** maintains one CUSUM control chart per OST; a persistent
//!   downward shift marks the target degraded (and an upward shift
//!   afterwards marks recovery).
//! * **Plan** emits a reopen-with-avoid action for every running job
//!   whenever the degraded set changes (deduplicated per job and set
//!   version through Knowledge).
//! * **Execute** closes and reopens the job's files with the avoid list
//!   — the filesystem hook the paper asks vendors for.

use crate::harness::SharedWorld;
use moda_analytics::anomaly::{Cusum, CusumVerdict};
use moda_core::{
    Analyzer, Confidence, ConfidenceGate, Domain, Executor, Knowledge, MapeLoop, Monitor, Plan,
    PlannedAction, Planner,
};
use moda_pfs::OstId;
use moda_scheduler::JobId;
use moda_sim::SimTime;
use std::collections::{BTreeSet, HashMap};

/// Loop parameters.
#[derive(Debug, Clone)]
pub struct OstLoopConfig {
    /// CUSUM allowance in σ units.
    pub cusum_k: f64,
    /// CUSUM decision threshold in σ units.
    pub cusum_h: f64,
    /// CUSUM calibration samples per OST.
    pub calibration: usize,
}

impl Default for OstLoopConfig {
    fn default() -> Self {
        OstLoopConfig {
            cusum_k: 0.5,
            cusum_h: 4.0,
            calibration: 8,
        }
    }
}

/// Typed vocabulary of the OST loop.
#[derive(Debug)]
pub struct OstDomain;

/// Monitored state: per-OST observed bandwidth and jobs with open files.
#[derive(Debug, Clone)]
pub struct OstObs {
    /// `(ost, observed per-stream MB/s)` for targets that served writes.
    pub bandwidth: Vec<(OstId, f64)>,
    /// Jobs currently running (reopen candidates).
    pub jobs: Vec<JobId>,
}

/// Assessment: the currently-degraded target set (version-stamped).
#[derive(Debug, Clone)]
pub struct DegradedSet {
    /// Degraded targets, sorted.
    pub osts: Vec<OstId>,
    /// Monotone version; bumps whenever membership changes.
    pub version: u64,
    /// Jobs to consider for reopening.
    pub jobs: Vec<JobId>,
    /// Detection confidence.
    pub confidence: Confidence,
}

/// Action: reopen a job's files avoiding the degraded targets.
#[derive(Debug, Clone)]
pub struct ReopenAction {
    /// Target job.
    pub id: JobId,
    /// Targets to avoid.
    pub avoid: Vec<OstId>,
    /// Degraded-set version (for dedup bookkeeping).
    pub version: u64,
}

impl Domain for OstDomain {
    type Obs = OstObs;
    type Assessment = DegradedSet;
    type Action = ReopenAction;
    type Outcome = bool;
}

struct BwMonitor {
    world: SharedWorld,
}

impl Monitor<OstDomain> for BwMonitor {
    fn name(&self) -> &str {
        "ost-bandwidth"
    }
    fn observe(&mut self, _now: SimTime) -> Option<OstObs> {
        let w = self.world.borrow();
        let n = w.pfs.num_osts();
        let bandwidth: Vec<(OstId, f64)> = (0..n as u32)
            .filter_map(|i| w.observed_ost_bw(OstId(i)).map(|bw| (OstId(i), bw)))
            .collect();
        if bandwidth.is_empty() {
            return None;
        }
        Some(OstObs {
            bandwidth,
            jobs: w.running_jobs(),
        })
    }
}

struct CusumAnalyzer {
    cfg: OstLoopConfig,
    charts: HashMap<OstId, Cusum>,
    degraded: BTreeSet<OstId>,
    version: u64,
}

impl Analyzer<OstDomain> for CusumAnalyzer {
    fn name(&self) -> &str {
        "per-ost-cusum"
    }
    fn analyze(&mut self, _now: SimTime, obs: &OstObs, _k: &Knowledge) -> DegradedSet {
        let mut changed = false;
        for &(ost, bw) in &obs.bandwidth {
            let chart = self.charts.entry(ost).or_insert_with(|| {
                Cusum::new(self.cfg.cusum_k, self.cfg.cusum_h, self.cfg.calibration)
            });
            match chart.update(bw) {
                CusumVerdict::ShiftDown => {
                    if self.degraded.insert(ost) {
                        changed = true;
                    }
                }
                CusumVerdict::ShiftUp => {
                    if self.degraded.remove(&ost) {
                        changed = true;
                    }
                }
                CusumVerdict::InControl => {}
            }
        }
        if changed {
            self.version += 1;
        }
        DegradedSet {
            osts: self.degraded.iter().copied().collect(),
            version: self.version,
            jobs: obs.jobs.clone(),
            // Confidence grows with how decisively CUSUM fired; a simple
            // support proxy: number of charts past calibration.
            confidence: Confidence::from_support(
                self.charts.values().filter(|c| !c.calibrating()).count() as u64,
                2.0,
            ),
        }
    }
}

struct ReopenPlanner;

impl Planner<OstDomain> for ReopenPlanner {
    fn name(&self) -> &str {
        "reopen-planner"
    }
    fn plan(&mut self, _now: SimTime, a: &DegradedSet, k: &Knowledge) -> Plan<ReopenAction> {
        if a.osts.is_empty() {
            return Plan::none();
        }
        let mut actions = Vec::new();
        for &id in &a.jobs {
            let key = format!("job.{}.avoid_version", id.0);
            if k.fact(&key).unwrap_or(0.0) >= a.version as f64 {
                continue; // already reopened against this set
            }
            actions.push(
                PlannedAction::new(
                    ReopenAction {
                        id,
                        avoid: a.osts.clone(),
                        version: a.version,
                    },
                    "reopen",
                    a.confidence,
                )
                .with_rationale(format!(
                    "{id}: avoiding degraded OSTs {:?} (set v{})",
                    a.osts, a.version
                )),
            );
        }
        Plan { actions }
    }
}

struct ReopenExecutor {
    world: SharedWorld,
}

impl Executor<OstDomain> for ReopenExecutor {
    fn name(&self) -> &str {
        "reopen-hook"
    }
    fn execute(&mut self, _now: SimTime, action: &ReopenAction) -> bool {
        self.world
            .borrow_mut()
            .reopen_avoiding(action.id, action.avoid.clone())
    }
}

struct ReopenAssessor;

impl moda_core::Assessor<OstDomain> for ReopenAssessor {
    fn assess(
        &mut self,
        _now: SimTime,
        action: &PlannedAction<ReopenAction>,
        outcome: &bool,
        k: &mut Knowledge,
    ) {
        if *outcome {
            k.set_fact(
                format!("job.{}.avoid_version", action.action.id.0),
                action.action.version as f64,
            );
        }
        k.assess_latest("ost-loop", "reopen", *outcome, 0.0);
    }
}

/// Assemble the OST loop.
pub fn build_loop(world: SharedWorld, cfg: OstLoopConfig) -> MapeLoop<OstDomain> {
    MapeLoop::new(
        "ost-loop",
        Box::new(BwMonitor {
            world: world.clone(),
        }),
        Box::new(CusumAnalyzer {
            cfg,
            charts: HashMap::new(),
            degraded: BTreeSet::new(),
            version: 0,
        }),
        Box::new(ReopenPlanner),
        Box::new(ReopenExecutor { world }),
    )
    .with_assessor(Box::new(ReopenAssessor))
    .with_gate(ConfidenceGate::new(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{drive, shared};
    use moda_hpc::{AppProfile, World, WorldConfig};
    use moda_pfs::PfsConfig;
    use moda_scheduler::JobRequest;
    use moda_sim::SimDuration;

    fn io_job(id: u64, steps: u64) -> (JobRequest, AppProfile) {
        (
            JobRequest {
                id: JobId(id),
                user: "u".into(),
                app_class: "io".into(),
                submit: SimTime::ZERO,
                nodes: 1,
                walltime: SimDuration::from_hours(8),
            },
            AppProfile {
                app_class: "io".into(),
                total_steps: steps,
                mean_step_s: 2.0,
                step_cv: 0.05,
                io_every: 2,
                io_mb: 100.0,
                stripe: 1,
                phase_change: None,
                checkpoint_cost_s: 5.0,
                misconfig: None,
                scale: 1.0,
                cores_per_rank: 8,
            },
        )
    }

    fn io_world(seed: u64) -> SharedWorld {
        let mut w = World::new(WorldConfig {
            nodes: 4,
            seed,
            power_period: None,
            pfs: PfsConfig {
                num_osts: 4,
                ost_bandwidth: 500.0,
                default_stripe: 1,
                base_latency_ms: 1,
            },
            ..WorldConfig::default()
        });
        w.submit_campaign(vec![io_job(0, 2000)]);
        shared(w)
    }

    #[test]
    fn loop_detects_degradation_and_reopens() {
        let w = io_world(1);
        let mut l = build_loop(w.clone(), OstLoopConfig::default());
        let mut degraded = false;
        let mut reopened_at: Option<u64> = None;
        drive(
            &w,
            SimDuration::from_secs(10),
            SimTime::from_hours(2),
            |t| {
                // Degrade the job's OST (ost0: least-loaded pick) mid-run.
                if t == SimTime::from_secs(600) {
                    w.borrow_mut().pfs.set_ost_health(OstId(0), 0.05);
                    degraded = true;
                }
                let r = l.tick(t);
                if degraded && r.executed > 0 && reopened_at.is_none() {
                    reopened_at = Some(t.as_millis() / 1000);
                }
            },
        );
        let reopen_t = reopened_at.expect("loop never reopened the file");
        // Detection within a handful of I/O bursts after degradation.
        assert!(
            reopen_t < 600 + 600,
            "detection too slow: reopened at {reopen_t}s"
        );
        // The job's file now avoids ost0 and the job completes.
        assert_eq!(w.borrow().metrics.roots_completed, 1);
    }

    #[test]
    fn healthy_storage_triggers_nothing() {
        let w = io_world(2);
        let mut l = build_loop(w.clone(), OstLoopConfig::default());
        let mut total_exec = 0;
        drive(
            &w,
            SimDuration::from_secs(10),
            SimTime::from_hours(3),
            |t| {
                total_exec += l.tick(t).executed;
            },
        );
        assert_eq!(total_exec, 0);
        assert_eq!(w.borrow().metrics.roots_completed, 1);
    }

    #[test]
    fn degradation_without_loop_slows_job() {
        let run = |with_loop: bool| {
            let w = io_world(3);
            let mut l = build_loop(w.clone(), OstLoopConfig::default());
            drive(
                &w,
                SimDuration::from_secs(10),
                SimTime::from_hours(6),
                |t| {
                    if t == SimTime::from_secs(600) {
                        w.borrow_mut().pfs.set_ost_health(OstId(0), 0.02);
                    }
                    if with_loop {
                        l.tick(t);
                    }
                },
            );
            let end = w.borrow().now().as_secs_f64();
            let done = w.borrow().metrics.roots_completed;
            (end, done)
        };
        let (t_loop, done_loop) = run(true);
        let (t_none, done_none) = run(false);
        assert_eq!(done_loop, 1);
        assert_eq!(done_none, 1);
        assert!(
            t_loop < t_none * 0.8,
            "avoiding the slow OST should speed completion: {t_loop:.0}s vs {t_none:.0}s"
        );
    }
}
