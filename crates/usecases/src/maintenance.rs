//! The Maintenance use case (§III, case 1).
//!
//! > *Responses to system maintenance events to ensure continuity of
//! > running jobs.*
//!
//! The scheduler drains toward an announced outage (no new job may
//! overlap it), but *running* jobs that cannot finish in time are killed
//! at the window start. This loop watches the next outage and every
//! running job's ETA; jobs that will not finish get an asynchronous
//! checkpoint signal just before the window, so their resubmissions
//! resume instead of restarting — §III notes the Maintenance case "would
//! use equivalent application interaction as invoking asynchronous
//! checkpointing" in the Scheduler case, and the implementation shares
//! exactly that actuator.

use crate::harness::SharedWorld;
use moda_analytics::forecast::{Estimator, ProgressForecaster};
use moda_core::{
    Analyzer, Confidence, ConfidenceGate, Domain, Executor, Knowledge, MapeLoop, Monitor, Plan,
    PlannedAction, Planner,
};
use moda_scheduler::JobId;
use moda_sim::SimTime;

/// Loop parameters.
#[derive(Debug, Clone)]
pub struct MaintenanceLoopConfig {
    /// Markers fed to the per-job forecast.
    pub marker_window: usize,
    /// Checkpoint when the outage is closer than
    /// `checkpoint_cost × lead_factor + lead_slack_s`.
    pub lead_factor: f64,
    /// Fixed slack added to the checkpoint lead time, seconds.
    pub lead_slack_s: f64,
}

impl Default for MaintenanceLoopConfig {
    fn default() -> Self {
        MaintenanceLoopConfig {
            marker_window: 30,
            lead_factor: 3.0,
            lead_slack_s: 60.0,
        }
    }
}

/// Typed vocabulary of the Maintenance loop.
#[derive(Debug)]
pub struct MaintenanceDomain;

/// One monitored job: `(id, markers, total_steps, checkpoint_cost_s)`.
pub type MaintJob = (JobId, Vec<(f64, f64)>, f64, f64);

/// Monitored state: the next outage and running jobs' progress.
#[derive(Debug, Clone)]
pub struct MaintObs {
    /// Start of the next future outage, seconds (if any).
    pub next_outage_start_s: Option<f64>,
    /// Running jobs with their progress markers.
    pub jobs: Vec<MaintJob>,
}

/// One job's outage exposure.
#[derive(Debug, Clone)]
pub struct OutageRisk {
    /// The job.
    pub id: JobId,
    /// Seconds until the outage starts.
    pub time_to_outage_s: f64,
    /// Whether the job is forecast to finish before the outage.
    pub survives: bool,
    /// Checkpoint cost, seconds.
    pub checkpoint_cost_s: f64,
    /// Forecast confidence.
    pub confidence: Confidence,
}

impl Domain for MaintenanceDomain {
    type Obs = MaintObs;
    type Assessment = Vec<OutageRisk>;
    type Action = JobId; // checkpoint this job
    type Outcome = bool;
}

struct OutageMonitor {
    world: SharedWorld,
    window: usize,
}

impl Monitor<MaintenanceDomain> for OutageMonitor {
    fn name(&self) -> &str {
        "outage-watch"
    }
    fn observe(&mut self, now: SimTime) -> Option<MaintObs> {
        let w = self.world.borrow();
        let next = w
            .sched
            .outages()
            .iter()
            .filter(|&&(s, _)| s > now)
            .map(|&(s, _)| s.as_secs_f64())
            .fold(None::<f64>, |acc, s| {
                Some(match acc {
                    None => s,
                    Some(a) => a.min(s),
                })
            });
        let jobs: Vec<MaintJob> = w
            .running_jobs()
            .into_iter()
            .filter_map(|id| {
                let markers = w.progress_markers(id, self.window);
                let total = w.total_steps(id)? as f64;
                let cost = w
                    .ground_truth_profile(id)
                    .map(|p| p.checkpoint_cost_s)
                    .unwrap_or(10.0);
                Some((id, markers, total, cost))
            })
            .collect();
        if jobs.is_empty() && next.is_none() {
            return None;
        }
        Some(MaintObs {
            next_outage_start_s: next,
            jobs,
        })
    }
}

struct SurvivalAnalyzer {
    forecaster: ProgressForecaster,
}

impl Analyzer<MaintenanceDomain> for SurvivalAnalyzer {
    fn name(&self) -> &str {
        "outage-survival"
    }
    fn analyze(&mut self, now: SimTime, obs: &MaintObs, _k: &Knowledge) -> Vec<OutageRisk> {
        let Some(outage_s) = obs.next_outage_start_s else {
            return Vec::new();
        };
        let now_s = now.as_secs_f64();
        obs.jobs
            .iter()
            .map(|(id, markers, total, cost)| {
                let fc = self.forecaster.forecast(markers, *total, now_s);
                let (survives, conf) = match fc {
                    // Conservative margin: half a prediction interval.
                    Some(f) => (
                        now_s + f.eta_s + f.half_width_s * 0.5 < outage_s,
                        f.confidence,
                    ),
                    // No forecast → assume exposed, with low confidence.
                    None => (false, Confidence::new(0.3)),
                };
                OutageRisk {
                    id: *id,
                    time_to_outage_s: outage_s - now_s,
                    survives,
                    checkpoint_cost_s: *cost,
                    confidence: conf,
                }
            })
            .collect()
    }
}

struct CheckpointPlanner {
    cfg: MaintenanceLoopConfig,
}

impl Planner<MaintenanceDomain> for CheckpointPlanner {
    fn name(&self) -> &str {
        "pre-outage-checkpoint"
    }
    fn plan(&mut self, _now: SimTime, assessment: &Vec<OutageRisk>, k: &Knowledge) -> Plan<JobId> {
        let mut actions = Vec::new();
        for risk in assessment {
            if risk.survives {
                continue;
            }
            let lead = risk.checkpoint_cost_s * self.cfg.lead_factor + self.cfg.lead_slack_s;
            if risk.time_to_outage_s > lead {
                continue; // too early; keep computing
            }
            if risk.time_to_outage_s < risk.checkpoint_cost_s {
                continue; // too late; the checkpoint cannot finish
            }
            // One checkpoint per job per outage.
            if k.fact(&format!("job.{}.maint_ckpt", risk.id.0))
                .unwrap_or(0.0)
                > 0.0
            {
                continue;
            }
            actions.push(
                PlannedAction::new(risk.id, "maint-checkpoint", risk.confidence)
                    .with_magnitude(risk.checkpoint_cost_s)
                    .with_rationale(format!(
                        "{}: will not finish before outage in {:.0}s; checkpointing (cost {:.0}s)",
                        risk.id, risk.time_to_outage_s, risk.checkpoint_cost_s
                    )),
            );
        }
        Plan { actions }
    }
}

struct CheckpointExecutor {
    world: SharedWorld,
}

impl Executor<MaintenanceDomain> for CheckpointExecutor {
    fn name(&self) -> &str {
        "checkpoint-hook"
    }
    fn execute(&mut self, _now: SimTime, id: &JobId) -> bool {
        self.world.borrow_mut().signal_checkpoint(*id)
    }
}

struct MaintAssessor;

impl moda_core::Assessor<MaintenanceDomain> for MaintAssessor {
    fn assess(
        &mut self,
        _now: SimTime,
        action: &PlannedAction<JobId>,
        outcome: &bool,
        k: &mut Knowledge,
    ) {
        if *outcome {
            k.set_fact(format!("job.{}.maint_ckpt", action.action.0), 1.0);
        }
        k.assess_latest("maintenance-loop", "maint-checkpoint", *outcome, 0.0);
    }
}

/// Assemble the Maintenance loop.
pub fn build_loop(world: SharedWorld, cfg: MaintenanceLoopConfig) -> MapeLoop<MaintenanceDomain> {
    MapeLoop::new(
        "maintenance-loop",
        Box::new(OutageMonitor {
            world: world.clone(),
            window: cfg.marker_window,
        }),
        Box::new(SurvivalAnalyzer {
            forecaster: ProgressForecaster::new(Estimator::TheilSen),
        }),
        Box::new(CheckpointPlanner { cfg }),
        Box::new(CheckpointExecutor { world }),
    )
    .with_assessor(Box::new(MaintAssessor))
    .with_gate(ConfidenceGate::new(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{drive, shared, CampaignStats};
    use moda_hpc::{AppProfile, World, WorldConfig};
    use moda_scheduler::JobRequest;
    use moda_sim::SimDuration;

    fn long_job(id: u64) -> (JobRequest, AppProfile) {
        (
            JobRequest {
                id: JobId(id),
                user: "u".into(),
                app_class: "t".into(),
                submit: SimTime::ZERO,
                nodes: 1,
                walltime: SimDuration::from_secs(4000),
            },
            AppProfile {
                app_class: "t".into(),
                total_steps: 600,
                mean_step_s: 5.0, // 3000 s of work
                step_cv: 0.05,
                io_every: 0,
                io_mb: 0.0,
                stripe: 1,
                phase_change: None,
                checkpoint_cost_s: 10.0,
                misconfig: None,
                scale: 3000.0,
                cores_per_rank: 8,
            },
        )
    }

    fn world_with_outage() -> SharedWorld {
        let mut w = World::new(WorldConfig {
            nodes: 4,
            power_period: None,
            resubmit_delay: SimDuration::from_secs(60),
            ..WorldConfig::default()
        });
        w.submit_campaign(vec![long_job(0)]);
        // Announce the outage after the job started (the drain cannot
        // protect already-running work): t=1000..1600, while the 3000 s
        // job is still far from done.
        w.run_until(SimTime::from_secs(10));
        w.add_outage(SimTime::from_secs(1000), SimTime::from_secs(1600));
        shared(w)
    }

    #[test]
    fn loop_checkpoints_before_outage_and_work_survives() {
        let w = world_with_outage();
        let mut l = build_loop(w.clone(), MaintenanceLoopConfig::default());
        drive(
            &w,
            SimDuration::from_secs(20),
            SimTime::from_hours(4),
            |t| {
                l.tick(t);
            },
        );
        let stats = CampaignStats::collect(&w.borrow());
        assert!(stats.checkpoints >= 1, "{stats:?}");
        assert_eq!(stats.maintenance_killed, 1);
        assert_eq!(stats.roots_completed, 1);
        // Compare wasted work against the no-loop baseline.
        let w2 = world_with_outage();
        drive(
            &w2,
            SimDuration::from_secs(20),
            SimTime::from_hours(4),
            |_| {},
        );
        let no_loop = CampaignStats::collect(&w2.borrow());
        assert_eq!(no_loop.checkpoints, 0);
        assert!(
            stats.steps_completed < no_loop.steps_completed,
            "checkpointing should avoid redone work: {} vs {}",
            stats.steps_completed,
            no_loop.steps_completed
        );
    }

    #[test]
    fn no_outage_means_no_action() {
        let mut world = World::new(WorldConfig {
            nodes: 4,
            power_period: None,
            ..WorldConfig::default()
        });
        world.submit_campaign(vec![long_job(0)]);
        let w = shared(world);
        let mut l = build_loop(w.clone(), MaintenanceLoopConfig::default());
        drive(
            &w,
            SimDuration::from_secs(30),
            SimTime::from_hours(4),
            |t| {
                l.tick(t);
            },
        );
        let stats = CampaignStats::collect(&w.borrow());
        assert_eq!(stats.checkpoints, 0);
        assert_eq!(stats.roots_completed, 1);
    }

    #[test]
    fn surviving_job_is_left_alone() {
        // Outage far enough out that the job finishes first.
        let mut world = World::new(WorldConfig {
            nodes: 4,
            power_period: None,
            ..WorldConfig::default()
        });
        world.add_outage(SimTime::from_secs(10_000), SimTime::from_secs(12_000));
        world.submit_campaign(vec![long_job(0)]); // ~3000 s of work
        let w = shared(world);
        let mut l = build_loop(w.clone(), MaintenanceLoopConfig::default());
        drive(
            &w,
            SimDuration::from_secs(30),
            SimTime::from_hours(4),
            |t| {
                l.tick(t);
            },
        );
        let stats = CampaignStats::collect(&w.borrow());
        assert_eq!(stats.checkpoints, 0, "{stats:?}");
        assert_eq!(stats.maintenance_killed, 0);
        assert_eq!(stats.roots_completed, 1);
    }
}
