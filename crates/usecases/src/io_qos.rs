//! The I/O-QoS use case (§III, case 2).
//!
//! > *Refinement of a storage system whose users receive QoS allocations
//! > … The goal would be to adapt QoS parameters based on the current
//! > application performance and system I/O load to decrease
//! > interference, reduce tail latency, and provide more consistent
//! > results for deadline dependent workflows.*
//!
//! * **Monitor** reads, per tenant, the I/O latency distribution delta
//!   since the previous tick (p99, count) and the current token rate.
//! * **Analyze** classifies tenants as *starved* (p99 above target),
//!   *comfortable*, or *idle*, estimating total demand against capacity.
//! * **Plan** is an AIMD controller: starved tenants get a
//!   multiplicative rate increase funded, when capacity is tight, by a
//!   decrease on the fattest comfortable tenant; long-idle rates decay
//!   back toward the base allocation.
//! * **Execute** retunes token-bucket rates through the QoS hook.

use crate::harness::SharedWorld;
use moda_core::{
    Analyzer, Confidence, ConfidenceGate, Domain, Executor, Knowledge, MapeLoop, Monitor, Plan,
    PlannedAction, Planner,
};
use moda_sim::SimTime;
use std::collections::HashMap;

/// Loop parameters.
#[derive(Debug, Clone)]
pub struct QosLoopConfig {
    /// Tail-latency target, milliseconds (p99).
    pub target_p99_ms: f64,
    /// Aggregate capacity the controller may allocate, MB/s.
    pub capacity_mb_s: f64,
    /// Minimum multiplicative increase for starved tenants. The actual
    /// boost is latency-proportional — `p99 / target`, clamped to
    /// `[increase_factor, max_boost]` — so a tenant 3× over target
    /// converges in one step instead of several (the "parametric
    /// alteration based on profiling" stage of the paper's §III case 2).
    pub increase_factor: f64,
    /// Upper clamp on the latency-proportional boost.
    pub max_boost: f64,
    /// Multiplicative decrease applied to the donor tenant.
    pub decrease_factor: f64,
    /// Minimum per-tenant rate, MB/s.
    pub min_rate: f64,
    /// Maximum per-tenant rate, MB/s.
    pub max_rate: f64,
}

impl Default for QosLoopConfig {
    fn default() -> Self {
        QosLoopConfig {
            target_p99_ms: 2_000.0,
            capacity_mb_s: 1_000.0,
            increase_factor: 1.5,
            max_boost: 4.0,
            decrease_factor: 0.7,
            min_rate: 5.0,
            max_rate: 800.0,
        }
    }
}

/// Typed vocabulary of the I/O-QoS loop.
#[derive(Debug)]
pub struct QosDomain;

/// One tenant's monitored window.
#[derive(Debug, Clone)]
pub struct TenantIo {
    /// Tenant (user) name.
    pub user: String,
    /// p99 latency over the window, ms (`None` if no I/O this window).
    pub p99_ms: Option<f64>,
    /// I/O operations in the window.
    pub ops: usize,
    /// Current allocated rate, MB/s.
    pub rate: f64,
}

/// Tenant pressure classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pressure {
    /// p99 above target: wants more rate.
    Starved,
    /// Active and within target.
    Comfortable,
    /// No I/O this window.
    Idle,
}

/// Assessment per tenant.
#[derive(Debug, Clone)]
pub struct TenantState {
    /// Tenant name.
    pub user: String,
    /// Classification.
    pub pressure: Pressure,
    /// p99 over the window, ms (0 when idle).
    pub p99_ms: f64,
    /// Current rate.
    pub rate: f64,
}

/// Action: set a tenant's sustained rate.
#[derive(Debug, Clone)]
pub struct SetRate {
    /// Tenant name.
    pub user: String,
    /// New rate, MB/s.
    pub rate: f64,
}

impl Domain for QosDomain {
    type Obs = Vec<TenantIo>;
    type Assessment = Vec<TenantState>;
    type Action = SetRate;
    type Outcome = bool;
}

struct QosMonitor {
    world: SharedWorld,
    /// Latency-sample counts seen at the previous tick, per tenant.
    seen: HashMap<String, usize>,
}

impl Monitor<QosDomain> for QosMonitor {
    fn name(&self) -> &str {
        "tenant-io"
    }
    fn observe(&mut self, _now: SimTime) -> Option<Vec<TenantIo>> {
        let w = self.world.borrow();
        let tenants: Vec<String> = w.qos.tenants().map(|s| s.to_string()).collect();
        if tenants.is_empty() {
            return None;
        }
        let mut out = Vec::with_capacity(tenants.len());
        for user in tenants {
            let rate = w.qos.rate(&user).unwrap_or(0.0);
            let (p99, ops) = match w.io_latency(&user) {
                None => (None, 0),
                Some(summary) => {
                    let total = summary.count();
                    let prev = self.seen.get(&user).copied().unwrap_or(0);
                    let new = total.saturating_sub(prev);
                    self.seen.insert(user.clone(), total);
                    if new == 0 {
                        (None, 0)
                    } else {
                        // Window p99 over the new samples only.
                        let samples = summary.samples();
                        let mut window: Vec<f64> = samples[samples.len() - new..].to_vec();
                        window
                            .sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                        let idx = ((window.len() as f64 - 1.0) * 0.99).round() as usize;
                        (Some(window[idx]), new)
                    }
                }
            };
            out.push(TenantIo {
                user,
                p99_ms: p99,
                ops,
                rate,
            });
        }
        Some(out)
    }
}

struct PressureAnalyzer {
    target_p99_ms: f64,
}

impl Analyzer<QosDomain> for PressureAnalyzer {
    fn name(&self) -> &str {
        "tenant-pressure"
    }
    fn analyze(&mut self, _now: SimTime, obs: &Vec<TenantIo>, _k: &Knowledge) -> Vec<TenantState> {
        obs.iter()
            .map(|t| {
                let (pressure, p99) = match t.p99_ms {
                    None => (Pressure::Idle, 0.0),
                    Some(p) if p > self.target_p99_ms => (Pressure::Starved, p),
                    Some(p) => (Pressure::Comfortable, p),
                };
                TenantState {
                    user: t.user.clone(),
                    pressure,
                    p99_ms: p99,
                    rate: t.rate,
                }
            })
            .collect()
    }
}

struct AimdPlanner {
    cfg: QosLoopConfig,
}

impl Planner<QosDomain> for AimdPlanner {
    fn name(&self) -> &str {
        "aimd-rates"
    }
    fn plan(
        &mut self,
        _now: SimTime,
        assessment: &Vec<TenantState>,
        _k: &Knowledge,
    ) -> Plan<SetRate> {
        let mut actions = Vec::new();
        let total_rate: f64 = assessment.iter().map(|t| t.rate).sum();
        let starved: Vec<&TenantState> = assessment
            .iter()
            .filter(|t| t.pressure == Pressure::Starved)
            .collect();
        if starved.is_empty() {
            return Plan::none();
        }
        for t in &starved {
            let boost = (t.p99_ms / self.cfg.target_p99_ms)
                .clamp(self.cfg.increase_factor, self.cfg.max_boost);
            let new_rate = (t.rate * boost).min(self.cfg.max_rate);
            if new_rate <= t.rate {
                continue;
            }
            let extra = new_rate - t.rate;
            // Fund from the fattest comfortable/idle tenant if capacity
            // would be exceeded (decrease-on-interference: the paper's
            // "decrease interference" goal).
            if total_rate + extra > self.cfg.capacity_mb_s {
                if let Some(donor) = assessment
                    .iter()
                    .filter(|d| d.pressure != Pressure::Starved && d.rate > self.cfg.min_rate)
                    .max_by(|a, b| {
                        a.rate
                            .partial_cmp(&b.rate)
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                {
                    let donor_rate = (donor.rate * self.cfg.decrease_factor).max(self.cfg.min_rate);
                    actions.push(
                        PlannedAction::new(
                            SetRate {
                                user: donor.user.clone(),
                                rate: donor_rate,
                            },
                            "qos-decrease",
                            Confidence::new(0.8),
                        )
                        .with_magnitude(donor.rate - donor_rate)
                        .with_rationale(format!(
                            "{}: donating rate ({:.0} → {:.0} MB/s) to relieve interference",
                            donor.user, donor.rate, donor_rate
                        )),
                    );
                }
            }
            actions.push(
                PlannedAction::new(
                    SetRate {
                        user: t.user.clone(),
                        rate: new_rate,
                    },
                    "qos-increase",
                    Confidence::new(0.8),
                )
                .with_magnitude(extra)
                .with_rationale(format!(
                    "{}: p99 {:.0}ms above target {:.0}ms; rate {:.0} → {:.0} MB/s",
                    t.user, t.p99_ms, self.cfg.target_p99_ms, t.rate, new_rate
                )),
            );
        }
        Plan { actions }
    }
}

struct QosExecutor {
    world: SharedWorld,
}

impl Executor<QosDomain> for QosExecutor {
    fn name(&self) -> &str {
        "qos-hook"
    }
    fn execute(&mut self, _now: SimTime, action: &SetRate) -> bool {
        self.world
            .borrow_mut()
            .set_qos_rate(&action.user, action.rate)
    }
}

/// Assemble the I/O-QoS loop.
pub fn build_loop(world: SharedWorld, cfg: QosLoopConfig) -> MapeLoop<QosDomain> {
    let target = cfg.target_p99_ms;
    MapeLoop::new(
        "io-qos-loop",
        Box::new(QosMonitor {
            world: world.clone(),
            seen: HashMap::new(),
        }),
        Box::new(PressureAnalyzer {
            target_p99_ms: target,
        }),
        Box::new(AimdPlanner { cfg }),
        Box::new(QosExecutor { world }),
    )
    .with_gate(ConfidenceGate::new(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{drive, shared};
    use moda_hpc::{AppProfile, World, WorldConfig};
    use moda_scheduler::{JobId, JobRequest};
    use moda_sim::SimDuration;

    fn io_job(id: u64, user: &str, steps: u64, io_mb: f64) -> (JobRequest, AppProfile) {
        (
            JobRequest {
                id: JobId(id),
                user: user.into(),
                app_class: "io".into(),
                submit: SimTime::ZERO,
                nodes: 1,
                walltime: SimDuration::from_hours(12),
            },
            AppProfile {
                app_class: "io".into(),
                total_steps: steps,
                mean_step_s: 2.0,
                step_cv: 0.05,
                io_every: 2,
                io_mb,
                stripe: 1,
                phase_change: None,
                checkpoint_cost_s: 5.0,
                misconfig: None,
                scale: 1.0,
                cores_per_rank: 8,
            },
        )
    }

    fn qos_world(adaptive_seed: u64, starved_rate: f64) -> SharedWorld {
        let mut w = World::new(WorldConfig {
            nodes: 8,
            seed: adaptive_seed,
            power_period: None,
            ..WorldConfig::default()
        });
        // Tenant "lat" is latency-sensitive but under-provisioned;
        // tenant "bulk" holds a fat allocation it barely needs.
        w.register_qos("lat", starved_rate, 100.0);
        w.register_qos("bulk", 400.0, 800.0);
        w.submit_campaign(vec![
            io_job(0, "lat", 400, 100.0),
            io_job(1, "bulk", 200, 50.0),
        ]);
        shared(w)
    }

    #[test]
    fn loop_raises_starved_tenant_rate() {
        let w = qos_world(1, 10.0);
        let mut l = build_loop(w.clone(), QosLoopConfig::default());
        drive(
            &w,
            SimDuration::from_secs(30),
            SimTime::from_hours(6),
            |t| {
                l.tick(t);
            },
        );
        let rate = w.borrow().qos.rate("lat").unwrap();
        assert!(rate > 10.0, "starved tenant rate not raised: {rate}");
    }

    #[test]
    fn adaptation_cuts_tail_latency() {
        let run = |adaptive: bool| {
            let w = qos_world(2, 10.0);
            let mut l = build_loop(w.clone(), QosLoopConfig::default());
            drive(
                &w,
                SimDuration::from_secs(30),
                SimTime::from_hours(6),
                |t| {
                    if adaptive {
                        l.tick(t);
                    }
                },
            );
            let wb = w.borrow();
            let mut p99 = 0.0;
            if let Some(s) = wb.io_latency("lat") {
                // Steady-state tail: the later half of the campaign is
                // what the controller can influence — every reactive
                // controller pays a detection transient on the first
                // writes, in both runs.
                let samples = s.samples();
                let mut tail: Vec<f64> = samples[samples.len() / 2..].to_vec();
                tail.sort_by(|a, b| a.partial_cmp(b).unwrap());
                p99 = tail[((tail.len() as f64 - 1.0) * 0.99) as usize];
            }
            p99
        };
        let p99_static = run(false);
        let p99_adaptive = run(true);
        assert!(
            p99_adaptive < p99_static * 0.5,
            "adaptive steady-state p99 {p99_adaptive:.0}ms vs static {p99_static:.0}ms"
        );
    }

    #[test]
    fn capacity_pressure_decreases_donor() {
        // Tight capacity: increases must be funded by the bulk tenant.
        // 15 MB/s against ~25 MB/s of demand leaves "lat" genuinely
        // starved, and 415 MB/s already allocated against a 420 MB/s cap
        // means no boost can be granted without a donor.
        let w = qos_world(3, 15.0);
        let mut l = build_loop(
            w.clone(),
            QosLoopConfig {
                capacity_mb_s: 420.0,
                ..QosLoopConfig::default()
            },
        );
        drive(
            &w,
            SimDuration::from_secs(30),
            SimTime::from_hours(6),
            |t| {
                l.tick(t);
            },
        );
        let bulk = w.borrow().qos.rate("bulk").unwrap();
        assert!(bulk < 400.0, "donor rate not decreased: {bulk}");
    }

    #[test]
    fn satisfied_tenants_are_left_alone() {
        // Generous allocation from the start: nothing to do.
        let w = qos_world(4, 500.0);
        let mut l = build_loop(w.clone(), QosLoopConfig::default());
        let mut executed = 0;
        drive(
            &w,
            SimDuration::from_secs(30),
            SimTime::from_hours(6),
            |t| {
                executed += l.tick(t).executed;
            },
        );
        assert_eq!(executed, 0);
        assert!((w.borrow().qos.rate("lat").unwrap() - 500.0).abs() < 1e-9);
    }
}
