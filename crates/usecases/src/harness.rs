//! Campaign driver and shared statistics.
//!
//! Loops and the simulated world interleave on simulated time: the
//! driver advances the world to each loop cadence boundary, ticks the
//! loops, and repeats until the campaign drains. Monitors and executors
//! hold [`SharedWorld`] handles (`Rc<RefCell<World>>`) and borrow only
//! inside a phase — the loop engine never holds a borrow across phases,
//! so sensor reads and actuator calls cannot alias.

use moda_hpc::World;
use moda_sim::{SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// Shared handle monitors/executors capture.
pub type SharedWorld = Rc<RefCell<World>>;

/// Wrap a world for loop attachment.
pub fn shared(world: World) -> SharedWorld {
    Rc::new(RefCell::new(world))
}

/// Drive the world to `max_t` (or until drained), calling `on_tick` at
/// every multiple of `period`. The callback is where harnesses tick
/// their MAPE-K loops. Returns the simulated end time.
pub fn drive<F: FnMut(SimTime)>(
    world: &SharedWorld,
    period: SimDuration,
    max_t: SimTime,
    mut on_tick: F,
) -> SimTime {
    assert!(period.as_millis() > 0, "tick period must be positive");
    let mut t = SimTime::ZERO;
    loop {
        t += period;
        if t > max_t {
            break;
        }
        world.borrow_mut().run_until(t);
        on_tick(t);
        if world.borrow().drained() {
            break;
        }
    }
    let end = world.borrow_mut().run_to_completion(max_t);
    end
}

/// The §III.iv–v campaign report: validation metrics (extension accuracy,
/// untaken backfill) and incentive metrics (completions up, resubmissions
/// down), collected from one world after a campaign.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CampaignStats {
    /// Distinct root jobs submitted.
    pub roots_total: u64,
    /// Root jobs whose work completed.
    pub roots_completed: u64,
    /// Job attempts completed.
    pub attempts_completed: u64,
    /// Job attempts killed at the walltime limit.
    pub timed_out: u64,
    /// Job attempts killed by maintenance.
    pub maintenance_killed: u64,
    /// Job attempts killed by injected node failures.
    pub failures: u64,
    /// Resubmissions ("decrease in resubmitted jobs" is the §III.v
    /// administrator incentive).
    pub resubmits: u64,
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Extensions granted (full).
    pub ext_granted: u64,
    /// Extensions granted partially.
    pub ext_partial: u64,
    /// Extensions denied.
    pub ext_denied: u64,
    /// Total extension time granted, seconds.
    pub ext_time_granted_s: f64,
    /// Cumulative reservation delay imposed by extensions, seconds.
    pub reservation_delay_s: f64,
    /// Node-seconds idle while work was queued (untaken-backfill proxy).
    pub idle_queued_node_s: f64,
    /// Cluster utilization `[0, 1]`.
    pub utilization: f64,
    /// Application steps executed (work volume, including redone work).
    pub steps_completed: u64,
    /// Campaign makespan, seconds.
    pub makespan_s: f64,
}

impl CampaignStats {
    /// Collect from a finished world.
    pub fn collect(world: &World) -> CampaignStats {
        let m = &world.metrics;
        let a = world.sched.accounting();
        CampaignStats {
            roots_total: m.roots_total,
            roots_completed: m.roots_completed,
            attempts_completed: m.completed,
            timed_out: m.timed_out,
            maintenance_killed: m.maintenance_killed,
            failures: m.failures,
            resubmits: m.resubmits,
            checkpoints: m.checkpoints,
            ext_granted: a.ext_granted,
            ext_partial: a.ext_partial,
            ext_denied: a.ext_denied_total(),
            ext_time_granted_s: a.ext_time_granted_ms as f64 / 1000.0,
            reservation_delay_s: a.reservation_delay_ms as f64 / 1000.0,
            idle_queued_node_s: a.idle_queued_node_ms as f64 / 1000.0,
            utilization: a.utilization(),
            steps_completed: m.steps_completed,
            makespan_s: world.last_progress().as_secs_f64(),
        }
    }

    /// Completion rate over roots.
    pub fn completion_rate(&self) -> f64 {
        if self.roots_total == 0 {
            0.0
        } else {
            self.roots_completed as f64 / self.roots_total as f64
        }
    }

    /// Render as aligned key/value lines for experiment output.
    pub fn render(&self, label: &str) -> String {
        format!(
            "{label:<24} roots {}/{} ({:.0}%)  timeouts {}  resubmits {}  ckpts {}  ext {}+{}p/-{}d ({:.0}s)  resv-delay {:.0}s  idleq {:.0} node-s  util {:.2}  steps {}  makespan {:.0}s",
            self.roots_completed,
            self.roots_total,
            self.completion_rate() * 100.0,
            self.timed_out,
            self.resubmits,
            self.checkpoints,
            self.ext_granted,
            self.ext_partial,
            self.ext_denied,
            self.ext_time_granted_s,
            self.reservation_delay_s,
            self.idle_queued_node_s,
            self.utilization,
            self.steps_completed,
            self.makespan_s,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moda_hpc::{World, WorldConfig};
    use moda_scheduler::JobId;

    #[test]
    fn drive_ticks_on_cadence_and_drains() {
        let w = shared(World::new(WorldConfig {
            nodes: 4,
            power_period: None,
            ..WorldConfig::default()
        }));
        let mut ticks = Vec::new();
        let end = drive(
            &w,
            SimDuration::from_secs(10),
            SimTime::from_secs(100),
            |t| ticks.push(t.as_millis() / 1000),
        );
        // Empty world drains on the first tick.
        assert_eq!(ticks, vec![10]);
        assert!(end <= SimTime::from_secs(100));
    }

    #[test]
    fn stats_collect_from_world() {
        use moda_hpc::AppProfile;
        use moda_scheduler::JobRequest;
        let mut world = World::new(WorldConfig {
            nodes: 4,
            power_period: None,
            ..WorldConfig::default()
        });
        world.submit_campaign(vec![(
            JobRequest {
                id: JobId(0),
                user: "u".into(),
                app_class: "t".into(),
                submit: SimTime::ZERO,
                nodes: 1,
                walltime: SimDuration::from_secs(100),
            },
            AppProfile {
                app_class: "t".into(),
                total_steps: 5,
                mean_step_s: 2.0,
                step_cv: 0.0,
                io_every: 0,
                io_mb: 0.0,
                stripe: 1,
                phase_change: None,
                checkpoint_cost_s: 1.0,
                misconfig: None,
                scale: 1.0,
                cores_per_rank: 8,
            },
        )]);
        world.run_to_completion(SimTime::from_hours(1));
        let s = CampaignStats::collect(&world);
        assert_eq!(s.roots_total, 1);
        assert_eq!(s.roots_completed, 1);
        assert_eq!(s.completion_rate(), 1.0);
        assert_eq!(s.steps_completed, 5);
        assert!(s.render("test").contains("roots 1/1"));
    }
}
