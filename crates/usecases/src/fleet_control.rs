//! The center-level Feedback/Response loop over the cluster (§II's
//! center-level MODA tier, closed at fleet scale).
//!
//! Node-local use cases ([`crate::scheduler_case`] etc.) close their
//! loops inside one world. This module closes the loop **across**
//! worlds: monitors run coverage-aware fleet queries against the
//! aggregation tier, a [`FleetResponder`] maps persistent alerts to
//! [`ClusterAction`]s under bounded execution (canary-first, cooldowns,
//! rate limits, post-action validation), and every decision is mirrored
//! into the MAPE-K [`AuditLog`] next to the node-level trails.
//!
//! Two analytics-backed monitors extend the fleet crate's threshold and
//! straggler probes:
//!
//! * [`ForecastBreachMonitor`] — fits a linear trend
//!   ([`moda_analytics::LinearFit`]) to the history of a covered fleet
//!   aggregate and alerts when the *forecast* breaches the bound within
//!   a horizon — acting before the limit is hit, the §III scheduler
//!   case's forecasting idea lifted to the center level.
//! * [`FleetAnomalyMonitor`] — cross-sectional robust outlier detection
//!   ([`moda_analytics::mad_outliers`]) over per-node aggregates: flags
//!   the node whose behaviour deviates from the fleet, whatever the
//!   absolute level — the §IV anomaly-detection goal across nodes.
//!
//! Three deterministic chaos scenarios exercise the loop end to end
//! (the CI `fleet-chaos` job replays them and asserts on the certified
//! audit summaries):
//!
//! * [`power_cap_scenario`] — fleet draw over budget → canary cap →
//!   validate → promote → fleet-wide cap → convergence.
//! * [`cascading_failure_scenario`] — one world starts failing hard;
//!   the anomaly monitor picks its queue out of the fleet and the
//!   responder repairs + drains it, canary-first.
//! * [`partition_degradation_scenario`] — half the fleet partitions;
//!   queries degrade to coverage-annotated partial answers, the
//!   responder **holds** actuation (frozen escalation, zero applies),
//!   and actuation resumes only after coverage recovers.

use moda_analytics::{mad_outliers, LinearFit};
use moda_core::{mirror_control_log, mirror_health_transitions, AuditLog};
use moda_fleet::control::{
    AuditSummary, Bound, ControlConfig, FleetAlert, FleetMonitor, FleetResponder, Observation,
    RateLimit, ResponseRule, ThresholdMonitor,
};
use moda_fleet::{FleetAggregator, HealthPolicy, HealthTransitionStats, NodeId, Rank};
use moda_hpc::workload::{generate, WorkloadConfig};
use moda_hpc::{
    Cluster, ClusterAction, ClusterConfig, FailureConfig, FaultKind, NodeFault, WorldConfig,
};
use moda_sim::rng::RngStreams;
use moda_sim::{SimDuration, SimTime};
use moda_telemetry::WindowAgg;

// -------------------------------------------------------------- monitors

/// Trend-forecasting fleet monitor: tracks the history of one
/// coverage-aware fleet aggregate, fits a linear trend, and alerts when
/// the value **forecast at `now + horizon`** breaches the bound — even
/// if the current value is still healthy.
#[derive(Debug, Clone)]
pub struct ForecastBreachMonitor {
    /// Monitor name.
    pub name: String,
    /// Subsystem label.
    pub subsystem: String,
    /// Logical axis (node-local metric name).
    pub metric: String,
    /// Trailing window of the per-tick aggregate.
    pub window: SimDuration,
    /// Pooled aggregate to track.
    pub agg: WindowAgg,
    /// The unhealthy side, evaluated on the forecast value.
    pub bound: Bound,
    /// How far ahead to forecast.
    pub horizon: SimDuration,
    /// Minimum history points before forecasting.
    pub min_points: usize,
    /// Staleness bound for coverage classification.
    pub stale_after: SimDuration,
    /// Confidence at full coverage.
    pub base_confidence: f64,
    /// Observed `(t_seconds, value)` history (internal state; start
    /// empty, bounded to the most recent 512 points).
    pub history: Vec<(f64, f64)>,
}

impl FleetMonitor for ForecastBreachMonitor {
    fn name(&self) -> &str {
        &self.name
    }

    fn subsystem(&self) -> &str {
        &self.subsystem
    }

    fn observe(&mut self, fleet: &FleetAggregator, now: SimTime) -> Observation {
        let cv =
            fleet.covered_window_agg(&self.metric, now, self.window, self.agg, self.stale_after);
        if let Some(v) = cv.value {
            self.history.push((now.as_secs_f64(), v));
            if self.history.len() > 512 {
                self.history.remove(0);
            }
        }
        let mut alerts = Vec::new();
        if self.history.len() >= self.min_points.max(2) {
            if let Some(fit) = LinearFit::fit(&self.history) {
                let predicted = fit.predict((now + self.horizon).as_secs_f64());
                let severity = match self.bound {
                    Bound::Above(limit) if limit > 0.0 && predicted > limit => {
                        Some(predicted / limit)
                    }
                    Bound::Below(limit) if predicted > 0.0 && predicted < limit => {
                        Some(limit / predicted)
                    }
                    _ => None,
                };
                if let Some(severity) = severity {
                    let rank = match self.bound {
                        Bound::Above(_) => Rank::Highest,
                        Bound::Below(_) => Rank::Lowest,
                    };
                    let (ranked, _) = fleet.covered_top_nodes(
                        &self.metric,
                        now,
                        self.window,
                        self.agg,
                        usize::MAX,
                        rank,
                        self.stale_after,
                    );
                    alerts.push(FleetAlert {
                        monitor: self.name.clone(),
                        subsystem: self.subsystem.clone(),
                        detail: format!(
                            "{} forecast {predicted:.2} at +{} breaches {:?} \
                             (slope {:+.5}/s over {} points)",
                            self.metric,
                            self.horizon,
                            self.bound,
                            fit.slope,
                            self.history.len()
                        ),
                        severity,
                        nodes: ranked.into_iter().map(|(n, _)| n).collect(),
                        confidence: self.base_confidence * cv.coverage.fraction(),
                    });
                }
            }
        }
        Observation {
            alerts,
            coverage: cv.coverage,
        }
    }
}

/// Cross-sectional fleet anomaly monitor: computes a per-node window
/// aggregate over the contributing subset and flags robust (MAD)
/// outliers on the high side — "which node is behaving unlike the
/// fleet", independent of the absolute workload level.
#[derive(Debug, Clone)]
pub struct FleetAnomalyMonitor {
    /// Monitor name.
    pub name: String,
    /// Subsystem label.
    pub subsystem: String,
    /// Logical axis (node-local metric name).
    pub metric: String,
    /// Trailing window.
    pub window: SimDuration,
    /// Per-node aggregate to compare.
    pub agg: WindowAgg,
    /// Robust z-score threshold (≈3.5 is the standard cut).
    pub threshold: f64,
    /// Absolute deviation floor: a node must sit at least this far
    /// above the fleet median to be flagged. Suppresses the degenerate
    /// zero-MAD case where any nonzero deviation looks infinite.
    pub min_deviation: f64,
    /// Minimum contributing nodes for the cross-section to mean
    /// anything (also the `mad_outliers` floor of 4).
    pub min_nodes: usize,
    /// Staleness bound for coverage classification.
    pub stale_after: SimDuration,
    /// Confidence at full coverage.
    pub base_confidence: f64,
}

impl FleetMonitor for FleetAnomalyMonitor {
    fn name(&self) -> &str {
        &self.name
    }

    fn subsystem(&self) -> &str {
        &self.subsystem
    }

    fn observe(&mut self, fleet: &FleetAggregator, now: SimTime) -> Observation {
        let (ranked, coverage) = fleet.covered_top_nodes(
            &self.metric,
            now,
            self.window,
            self.agg,
            usize::MAX,
            Rank::Highest,
            self.stale_after,
        );
        let mut alerts = Vec::new();
        if ranked.len() >= self.min_nodes.max(4) {
            let values: Vec<f64> = ranked.iter().map(|&(_, v)| v).collect();
            let mut sorted = values.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            let median = sorted[sorted.len() / 2];
            let mut devs: Vec<f64> = sorted.iter().map(|v| (v - median).abs()).collect();
            devs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            let sigma = 1.4826 * devs[devs.len() / 2];
            // High-side outliers only (deep queues, hot nodes), ranked
            // worst-first because `ranked` already is.
            let mut flagged: Vec<(NodeId, f64)> = Vec::new();
            for &i in &mad_outliers(&values, self.threshold) {
                let v = values[i];
                if v <= median || v - median < self.min_deviation {
                    continue;
                }
                let sev = if sigma > 0.0 {
                    (v - median) / (sigma * self.threshold)
                } else {
                    // Zero-MAD cross-section: the deviant cleared the
                    // absolute floor; report a fixed supra-threshold
                    // severity rather than an infinite z.
                    2.0
                };
                flagged.push((ranked[i].0, sev));
            }
            if let Some(&(_, worst)) = flagged.first() {
                let nodes: Vec<NodeId> = flagged.iter().map(|&(n, _)| n).collect();
                alerts.push(FleetAlert {
                    monitor: self.name.clone(),
                    subsystem: self.subsystem.clone(),
                    detail: format!(
                        "{} {:?} over {}: {} anomalous node(s) vs median {median:.2} \
                         (worst {:?}, robust severity {worst:.3})",
                        self.metric,
                        self.agg,
                        self.window,
                        nodes.len(),
                        nodes[0],
                    ),
                    severity: worst,
                    nodes,
                    confidence: self.base_confidence * coverage.fraction(),
                });
            }
        }
        Observation { alerts, coverage }
    }
}

// ---------------------------------------------------------------- driver

/// One controller tick's outcome, as the scenarios trace it.
#[derive(Debug, Clone)]
pub struct TickTrace {
    /// Controller clock at the tick.
    pub t: SimTime,
    /// Coverage fraction of the traced axis at this tick.
    pub coverage: f64,
    /// Contributing nodes.
    pub contributing: usize,
    /// Nodes excluded as stale/silent (never served as fresh).
    pub excluded: Vec<NodeId>,
    /// Monitors that raised an alert.
    pub alerts: usize,
    /// Actions applied.
    pub applied: usize,
    /// Holds (coverage/confidence/no-target).
    pub held: usize,
    /// Blocks (cooldown/rate/suspension).
    pub blocked: usize,
}

/// Everything a finished scenario hands to its assertions: the
/// machine-certified audit summary, the per-tick trace, and both
/// rendered trails (fleet decision log + mirrored MAPE-K audit).
#[derive(Debug)]
pub struct ControlTrace {
    /// Certified by [`FleetResponder::verify_audit`].
    pub summary: AuditSummary,
    /// Per-tick outcomes, controller order.
    pub ticks: Vec<TickTrace>,
    /// Rendered fleet [`moda_fleet::ControlLog`].
    pub control_trail: String,
    /// Rendered mirrored [`AuditLog`] (decisions + health transitions).
    pub audit_trail: String,
    /// Monitor probes that saw the whole fleet.
    pub complete_observations: u64,
    /// Monitor probes that saw a partial view.
    pub degraded_observations: u64,
    /// Node liveness transitions observed over the run.
    pub health_stats: HealthTransitionStats,
}

/// Scenario driver: advances the cluster on its drain cadence and, at
/// every boundary, tracks node-health transitions, runs one responder
/// tick through [`Cluster::control_parts`], and mirrors both into one
/// [`AuditLog`].
pub struct ClusterControlDriver {
    /// The Response plane under test.
    pub responder: FleetResponder<ClusterAction>,
    /// The human-facing audit trail everything mirrors into.
    pub audit: AuditLog,
    policy: HealthPolicy,
    period: SimDuration,
    /// Axis whose coverage the per-tick trace reports.
    coverage_metric: String,
    cursor: u64,
    last: SimTime,
    ticks: Vec<TickTrace>,
}

impl ClusterControlDriver {
    /// Driver ticking every `period` (align it with the cluster's drain
    /// period), classifying health under `policy`, tracing coverage of
    /// `coverage_metric`.
    pub fn new(
        responder: FleetResponder<ClusterAction>,
        period: SimDuration,
        policy: HealthPolicy,
        coverage_metric: &str,
        start: SimTime,
    ) -> Self {
        ClusterControlDriver {
            responder,
            audit: AuditLog::new(8192),
            policy,
            period,
            coverage_metric: coverage_metric.to_string(),
            cursor: 0,
            last: start,
            ticks: Vec::new(),
        }
    }

    /// Advance the cluster to `until`, one controller tick per period.
    pub fn run(&mut self, c: &mut Cluster, until: SimTime) {
        while self.last.0 < until.0 {
            let t = self.last + self.period;
            c.run_until(t);
            c.aggregator_mut().track_health(t, self.policy);
            let transitions = c.aggregator_mut().take_health_events();
            mirror_health_transitions(&transitions, &mut self.audit, "fleet-control");
            let (members, coverage) =
                c.aggregator()
                    .covered_members(&self.coverage_metric, t, self.policy.stale_after);
            let (agg, mut act) = c.control_parts();
            let report = self.responder.tick(agg, t, &mut act);
            self.cursor = mirror_control_log(
                self.responder.log(),
                self.cursor,
                &mut self.audit,
                "fleet-control",
            );
            self.ticks.push(TickTrace {
                t,
                coverage: coverage.fraction(),
                contributing: members.len(),
                excluded: coverage.excluded.iter().map(|&(n, _)| n).collect(),
                alerts: report.alerts,
                applied: report.applied,
                held: report.held,
                blocked: report.blocked,
            });
            self.last = t;
        }
    }

    /// Certify the trail and package the trace. Returns every audit
    /// violation found if the decision sequence does not check out.
    pub fn finish(self, c: &Cluster) -> Result<ControlTrace, Vec<String>> {
        let summary = self.responder.verify_audit()?;
        let (complete, degraded) = self.responder.observation_stats();
        Ok(ControlTrace {
            summary,
            ticks: self.ticks,
            control_trail: self.responder.log().render(),
            audit_trail: self.audit.render(),
            complete_observations: complete,
            degraded_observations: degraded,
            health_stats: c.aggregator().health_transition_stats(),
        })
    }
}

// -------------------------------------------------------------- scenarios

const DRAIN: SimDuration = SimDuration::from_mins(10);
const STALE_AFTER: SimDuration = SimDuration::from_mins(15);

fn chaos_cluster(seed: u64, worlds: usize, n_jobs: usize) -> Cluster {
    let mut c = Cluster::new(ClusterConfig {
        nodes: worlds,
        world: WorldConfig {
            nodes: 8,
            seed,
            power_period: Some(SimDuration::from_secs(60)),
            ..WorldConfig::default()
        },
        drain_period: DRAIN,
    });
    // A steady arrival stream per world keeps every queue and sensor
    // alive across the scenario horizon.
    for k in 0..worlds {
        let jobs = generate(
            &WorkloadConfig {
                n_jobs,
                mean_interarrival_s: 300.0,
                ..WorkloadConfig::default()
            },
            &RngStreams::new(seed.wrapping_add(1000 + k as u64)),
            0,
        );
        c.world_mut(k).submit_campaign(jobs);
    }
    c
}

fn health_policy() -> HealthPolicy {
    HealthPolicy {
        stale_after: STALE_AFTER,
        silent_after: Some(SimDuration::from_mins(45)),
    }
}

/// Outcome of [`power_cap_scenario`].
#[derive(Debug)]
pub struct PowerCapReport {
    /// Certified trace.
    pub trace: ControlTrace,
    /// Fleet mean facility draw before any response (kW).
    pub uncapped_kw: f64,
    /// The power budget the monitor enforces (kW).
    pub limit_kw: f64,
    /// The cap the response applies per world (kW).
    pub cap_kw: f64,
    /// Fleet mean facility draw over the final window (kW).
    pub final_kw: f64,
    /// Did the canary validate and unlock fleet-wide actuation?
    pub promoted: bool,
}

/// Power-cap response at cluster scale: the fleet's pooled facility
/// draw exceeds a budget, the responder caps the worst world first
/// (canary), validates the improvement against the same fleet query,
/// promotes, caps fleet-wide, and converges below the budget.
pub fn power_cap_scenario(seed: u64) -> Result<PowerCapReport, Vec<String>> {
    let mut c = chaos_cluster(seed, 4, 48);
    // Uncapped warm-up: measure the fleet's natural draw, then set the
    // "budget" below it so the scenario carries a genuine emergency.
    let t0 = SimTime::from_hours(1);
    c.run_until(t0);
    let uncapped = c
        .fleet_window_agg(
            "facility.power_kw",
            SimDuration::from_mins(30),
            WindowAgg::Mean,
        )
        .expect("warm fleet reports power");
    let limit = uncapped * 0.9;
    let cap = uncapped * 0.7;

    let mut responder: FleetResponder<ClusterAction> =
        FleetResponder::new(ControlConfig::default());
    responder.add_monitor(Box::new(ThresholdMonitor {
        name: "fleet-power".into(),
        subsystem: "power".into(),
        metric: "facility.power_kw".into(),
        window: SimDuration::from_mins(30),
        agg: WindowAgg::Mean,
        bound: Bound::Above(limit),
        stale_after: STALE_AFTER,
        base_confidence: 0.95,
    }));
    let mut rule = ResponseRule::new(
        "power-cap",
        "fleet-power",
        "power",
        ClusterAction::PowerCap { kw: cap },
    );
    rule.escalation_gate = 2;
    rule.cooldown = SimDuration::from_mins(20);
    rule.rate_limit = RateLimit {
        window: SimDuration::from_hours(2),
        max: 4,
    };
    rule.settle = SimDuration::from_mins(10);
    rule.validation_deadline = SimDuration::from_mins(40);
    responder.add_rule(rule);

    let mut driver =
        ClusterControlDriver::new(responder, DRAIN, health_policy(), "facility.power_kw", t0);
    driver.run(&mut c, SimTime::from_hours(4));
    let promoted = driver.responder.promoted("power-cap");
    let final_kw = c
        .fleet_window_agg(
            "facility.power_kw",
            SimDuration::from_mins(30),
            WindowAgg::Mean,
        )
        .unwrap_or(0.0);
    let trace = driver.finish(&c)?;
    Ok(PowerCapReport {
        trace,
        uncapped_kw: uncapped,
        limit_kw: limit,
        cap_kw: cap,
        final_kw,
        promoted,
    })
}

/// Outcome of [`cascading_failure_scenario`].
#[derive(Debug)]
pub struct CascadeReport {
    /// Certified trace.
    pub trace: ControlTrace,
    /// The world the scenario broke.
    pub failing_world: usize,
    /// Fail-stop kills injected on it before repair.
    pub failures_injected: u64,
    /// Was the failure process disabled by the response (vs. still
    /// configured at scenario end)?
    pub repaired: bool,
    /// The failing world's 30-min windowed failure count at the tick
    /// the repair was applied.
    pub failure_rate_at_repair: f64,
    /// Same query over the final window — the cascade must be over.
    pub failure_rate_final: f64,
}

/// Cascading node failure: one world's failure process turns
/// aggressive, its queue depth detaches from the fleet, the
/// cross-sectional anomaly monitor flags it, and the responder repairs
/// it (failure process off, checkpoint, drain behind an outage) —
/// canary-first, validated against the same fleet query.
pub fn cascading_failure_scenario(seed: u64) -> Result<CascadeReport, Vec<String>> {
    const SICK: usize = 3;
    let mut c = chaos_cluster(seed, 4, 48);
    let t0 = SimTime::from_mins(40);
    c.run_until(t0);
    // The cascade: node MTBF collapses to 400 s (system MTBF 50 s at 8
    // nodes) — jobs die faster than they finish, resubmits pile up.
    c.world_mut(SICK)
        .set_failure(Some(FailureConfig { node_mtbf_s: 400.0 }));

    let mut responder: FleetResponder<ClusterAction> =
        FleetResponder::new(ControlConfig::default());
    responder.add_monitor(Box::new(FleetAnomalyMonitor {
        name: "failure-anomaly".into(),
        subsystem: "resilience".into(),
        metric: "sched.failures".into(),
        window: SimDuration::from_mins(30),
        agg: WindowAgg::Sum,
        threshold: 3.0,
        min_deviation: 5.0,
        min_nodes: 4,
        stale_after: STALE_AFTER,
        base_confidence: 0.9,
    }));
    let mut rule = ResponseRule::new(
        "repair-world",
        "failure-anomaly",
        "resilience",
        ClusterAction::RepairAndDrain {
            outage: SimDuration::from_mins(10),
        },
    );
    rule.escalation_gate = 2;
    rule.cooldown = SimDuration::from_mins(30);
    rule.rate_limit = RateLimit {
        window: SimDuration::from_hours(2),
        max: 2,
    };
    rule.settle = SimDuration::from_mins(20);
    rule.validation_deadline = SimDuration::from_mins(100);
    responder.add_rule(rule);

    let mut driver =
        ClusterControlDriver::new(responder, DRAIN, health_policy(), "sched.failures", t0);
    driver.run(&mut c, SimTime::from_hours(5));

    let failures_injected = c.world(SICK).metrics.failures;
    let repaired = c.world(SICK).config().failure.is_none();
    let per_node = |at: SimTime| {
        c.aggregator()
            .covered_top_nodes(
                "sched.failures",
                at,
                SimDuration::from_mins(30),
                WindowAgg::Sum,
                usize::MAX,
                Rank::Highest,
                STALE_AFTER,
            )
            .0
            .into_iter()
            .find(|&(n, _)| n.index() == SICK)
            .map(|(_, v)| v)
            .unwrap_or(0.0)
    };
    let failure_rate_final = per_node(c.now());
    let failure_rate_at_repair = driver
        .ticks
        .iter()
        .find(|tt| tt.applied > 0)
        .map(|tt| tt.t)
        .map(per_node)
        .unwrap_or(0.0);
    let trace = driver.finish(&c)?;
    Ok(CascadeReport {
        trace,
        failing_world: SICK,
        failures_injected,
        repaired,
        failure_rate_at_repair,
        failure_rate_final,
    })
}

/// Outcome of [`partition_degradation_scenario`].
#[derive(Debug)]
pub struct PartitionReport {
    /// Certified trace.
    pub trace: ControlTrace,
    /// Partition window start.
    pub from: SimTime,
    /// Partition window end.
    pub until: SimTime,
    /// Actions applied at ticks inside the partition window.
    pub applied_during_partition: usize,
    /// Actions applied at or after heal.
    pub applied_after_heal: usize,
    /// Ticks (after the staleness bound elapsed) at which a partitioned
    /// node was still served as a fresh contributor — must be zero.
    pub stale_served_as_fresh: usize,
    /// Degraded-coverage ticks observed during the partition.
    pub degraded_ticks: usize,
}

/// Graceful degradation under partition: with a persistent alert in
/// flight, half the fleet partitions away. Queries degrade to
/// coverage-annotated partial answers (never counting the dark nodes
/// as fresh), the responder freezes escalation and applies **nothing**
/// on the partial view, and actuation resumes only once the partition
/// heals and coverage recovers.
pub fn partition_degradation_scenario(seed: u64) -> Result<PartitionReport, Vec<String>> {
    let mut c = chaos_cluster(seed, 4, 48);
    let t0 = SimTime::from_hours(1);
    c.run_until(t0);
    let draw = c
        .fleet_window_agg(
            "facility.power_kw",
            SimDuration::from_mins(30),
            WindowAgg::Mean,
        )
        .expect("warm fleet reports power");
    // A budget far below the natural draw: the alert burns the whole
    // scenario, so what gates actuation is *coverage*, nothing else.
    let limit = draw * 0.5;
    let from = SimTime::from_mins(65);
    let until = SimTime::from_mins(150);
    for node in [1usize, 2] {
        c.schedule_fault(NodeFault {
            node,
            kind: FaultKind::Partition,
            from,
            until,
        });
    }

    let mut responder: FleetResponder<ClusterAction> =
        FleetResponder::new(ControlConfig::default());
    responder.add_monitor(Box::new(ThresholdMonitor {
        name: "fleet-power".into(),
        subsystem: "power".into(),
        metric: "facility.power_kw".into(),
        window: SimDuration::from_mins(30),
        agg: WindowAgg::Mean,
        bound: Bound::Above(limit),
        stale_after: STALE_AFTER,
        base_confidence: 0.95,
    }));
    let mut rule = ResponseRule::new(
        "shed-load",
        "fleet-power",
        "power",
        ClusterAction::PowerCap { kw: limit * 0.9 },
    );
    rule.escalation_gate = 2;
    rule.cooldown = SimDuration::from_mins(20);
    rule.rate_limit = RateLimit {
        window: SimDuration::from_hours(2),
        max: 4,
    };
    rule.settle = SimDuration::from_mins(10);
    rule.validation_deadline = SimDuration::from_mins(40);
    responder.add_rule(rule);

    let mut driver =
        ClusterControlDriver::new(responder, DRAIN, health_policy(), "facility.power_kw", t0);
    driver.run(&mut c, SimTime::from_hours(4));

    let dark: Vec<NodeId> = vec![NodeId(1), NodeId(2)];
    let mut applied_during = 0;
    let mut applied_after = 0;
    let mut stale_as_fresh = 0;
    let mut degraded_ticks = 0;
    for tt in &driver.ticks {
        let in_window = from.0 <= tt.t.0 && tt.t.0 < until.0;
        if in_window {
            applied_during += tt.applied;
            if tt.coverage < 1.0 {
                degraded_ticks += 1;
            }
            // Once the staleness bound has elapsed inside the window,
            // the dark nodes must be excluded — anything else would be
            // a stale read served as fresh.
            if tt.t.0 >= from.0 + STALE_AFTER.0 && !dark.iter().all(|n| tt.excluded.contains(n)) {
                stale_as_fresh += 1;
            }
        } else if tt.t.0 >= until.0 {
            applied_after += tt.applied;
        }
    }
    let trace = driver.finish(&c)?;
    Ok(PartitionReport {
        trace,
        from,
        until,
        applied_during_partition: applied_during,
        applied_after_heal: applied_after,
        stale_served_as_fresh: stale_as_fresh,
        degraded_ticks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use moda_fleet::control::ControlEventKind;

    #[test]
    fn power_cap_scenario_converges_canary_first() {
        let r = power_cap_scenario(7).expect("audit certifies");
        assert!(r.uncapped_kw > r.limit_kw, "scenario carries an emergency");
        assert!(
            r.final_kw <= r.limit_kw + 1e-9,
            "fleet draw {:.2} still above budget {:.2}\n{}",
            r.final_kw,
            r.limit_kw,
            r.trace.control_trail
        );
        assert!(
            r.promoted,
            "canary never validated:\n{}",
            r.trace.control_trail
        );
        assert!(r.trace.summary.canary >= 1, "first action must be a canary");
        assert!(
            r.trace.summary.fleet >= 1,
            "promotion never went fleet-wide"
        );
        assert!(r.trace.summary.validations_passed >= 2);
        assert_eq!(r.trace.summary.validations_failed, 0);
        // Bounded execution: the whole convergence fits the rate budget.
        assert!(
            r.trace.summary.applied <= 4,
            "oscillation past the rate limit"
        );
        // The mirrored audit carries the actuation notifications.
        assert!(r.trace.audit_trail.contains("fleet-control"));
    }

    #[test]
    fn cascading_failure_is_detected_and_repaired() {
        let r = cascading_failure_scenario(11).expect("audit certifies");
        assert!(r.failures_injected > 0, "the cascade never started");
        assert!(
            r.repaired,
            "failure process still armed:\n{}",
            r.trace.control_trail
        );
        assert!(r.trace.summary.applied >= 1);
        assert!(r.trace.summary.canary >= 1, "repair must start canary");
        assert!(
            r.failure_rate_final < r.failure_rate_at_repair,
            "failure rate did not recover: {:.2} -> {:.2}\n{}",
            r.failure_rate_at_repair,
            r.failure_rate_final,
            r.trace.control_trail
        );
        assert_eq!(r.trace.summary.validations_failed, 0);
    }

    #[test]
    fn partition_holds_actuation_until_coverage_recovers() {
        let r = partition_degradation_scenario(13).expect("audit certifies");
        assert_eq!(
            r.applied_during_partition, 0,
            "actuated on a partial view:\n{}",
            r.trace.control_trail
        );
        assert!(
            r.applied_after_heal >= 1,
            "never resumed:\n{}",
            r.trace.control_trail
        );
        assert_eq!(r.stale_served_as_fresh, 0, "a dark node was read as fresh");
        assert!(r.degraded_ticks >= 3, "partition never degraded coverage");
        assert!(r.trace.degraded_observations > 0);
        assert!(r.trace.complete_observations > 0);
        // The ladder was walked and mirrored: nodes went stale (and
        // dark), then recovered.
        assert!(r.trace.health_stats.to_stale >= 2);
        assert!(r.trace.health_stats.recovered >= 2);
        assert!(r.trace.audit_trail.contains("-> Stale"));
    }

    #[test]
    fn forecast_monitor_alerts_before_the_breach() {
        // A cluster whose queues grow linearly: submit far more work
        // than the fleet drains. The current mean stays below the
        // limit while the 2 h forecast crosses it.
        let mut c = chaos_cluster(3, 4, 10);
        for k in 0..4 {
            let jobs = generate(
                &WorkloadConfig {
                    n_jobs: 120,
                    mean_interarrival_s: 60.0,
                    ..WorkloadConfig::default()
                },
                &RngStreams::new(500 + k as u64),
                1000,
            );
            c.world_mut(k).submit_campaign(jobs);
        }
        let mut m = ForecastBreachMonitor {
            name: "queue-forecast".into(),
            subsystem: "sched".into(),
            metric: "sched.queue_len".into(),
            window: SimDuration::from_mins(20),
            agg: WindowAgg::Mean,
            bound: Bound::Above(60.0),
            horizon: SimDuration::from_hours(2),
            min_points: 4,
            stale_after: STALE_AFTER,
            base_confidence: 0.9,
            history: Vec::new(),
        };
        let mut alerted_at = None;
        let mut current_at_alert = 0.0;
        for i in 1..=18 {
            let t = SimTime::from_mins(10 * i);
            c.run_until(t);
            let o = m.observe(c.aggregator(), t);
            if let Some(a) = o.alerts.first() {
                alerted_at = Some(t);
                current_at_alert = c
                    .fleet_window_agg(
                        "sched.queue_len",
                        SimDuration::from_mins(20),
                        WindowAgg::Mean,
                    )
                    .unwrap_or(0.0);
                assert!(a.severity > 1.0);
                assert!(!a.nodes.is_empty());
                break;
            }
        }
        let t = alerted_at.expect("growing backlog must trip the forecast");
        assert!(
            current_at_alert < 60.0,
            "forecast should fire before the level breach ({current_at_alert:.1})"
        );
        assert!(t.0 >= SimTime::from_mins(40).0, "needs min_points history");
    }

    #[test]
    fn anomaly_monitor_needs_a_real_deviation() {
        // Healthy fleet: no alert, even with small queue differences.
        let mut c = chaos_cluster(5, 4, 20);
        c.run_until(SimTime::from_hours(1));
        let mut m = FleetAnomalyMonitor {
            name: "queue-anomaly".into(),
            subsystem: "resilience".into(),
            metric: "sched.queue_len".into(),
            window: SimDuration::from_mins(30),
            agg: WindowAgg::Mean,
            threshold: 3.0,
            min_deviation: 2.0,
            min_nodes: 4,
            stale_after: STALE_AFTER,
            base_confidence: 0.9,
        };
        let o = m.observe(c.aggregator(), c.now());
        assert!(o.alerts.is_empty(), "healthy fleet flagged: {:?}", o.alerts);
        assert!(o.coverage.complete());
    }

    #[test]
    fn driver_trace_feeds_the_shared_audit_log() {
        let r = power_cap_scenario(9).expect("audit certifies");
        // Every Applied decision in the fleet log has an Executed mirror
        // (with notification) in the MAPE-K trail.
        assert!(r.trace.audit_trail.contains("canary action"));
        let _ = ControlEventKind::Promoted; // module linkage sanity
    }
}
