//! Proactive checkpointing against node failures (§IV resilience).
//!
//! > *"Resilience is essential in HPC systems where operations must
//! > persist through component and subsystem failures."*
//!
//! The Maintenance case (§III, case 1) checkpoints against *announced*
//! interruptions; this loop generalizes it to *unannounced* fail-stop
//! node faults. With no warning to react to, the Plan phase becomes a
//! cadence policy: checkpoint each job every T seconds, where T comes
//! either from operator configuration or from Young's first-order
//! optimum √(2·C·MTBF) given the cluster's observed failure rate —
//! Knowledge in the MAPE-K sense, refined as failures are observed.
//!
//! * **Monitor** reports each running job's age and last-checkpoint time.
//! * **Analyze** computes per-job checkpoint dueness against the policy
//!   interval.
//! * **Plan** emits a checkpoint action per due job (rate-limited by the
//!   guard so a sick policy cannot checkpoint-storm the filesystem).
//! * **Execute** signals the application checkpoint hook.
//! * **Assess** records the checkpoint time so dueness resets.

use crate::harness::SharedWorld;
use moda_core::{
    Analyzer, Assessor, Confidence, ConfidenceGate, Domain, Executor, Knowledge, MapeLoop, Monitor,
    Plan, PlannedAction, Planner,
};
use moda_hpc::young_interval_s;
use moda_scheduler::JobId;
use moda_sim::SimTime;

/// How the Plan phase chooses the checkpoint cadence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CheckpointCadence {
    /// Fixed interval, seconds.
    Fixed(f64),
    /// Young's optimum from the per-job checkpoint cost and the given
    /// system MTBF (cluster-wide mean time between failures, seconds).
    Young {
        /// Cluster-wide mean time between failures, seconds.
        system_mtbf_s: f64,
    },
}

impl CheckpointCadence {
    /// The interval to apply for a job with the given checkpoint cost.
    pub fn interval_s(&self, checkpoint_cost_s: f64) -> f64 {
        match *self {
            CheckpointCadence::Fixed(t) => t,
            CheckpointCadence::Young { system_mtbf_s } => {
                young_interval_s(checkpoint_cost_s, system_mtbf_s)
            }
        }
    }
}

/// Loop parameters.
#[derive(Debug, Clone)]
pub struct ResilienceLoopConfig {
    /// Cadence policy.
    pub cadence: CheckpointCadence,
}

impl Default for ResilienceLoopConfig {
    fn default() -> Self {
        ResilienceLoopConfig {
            cadence: CheckpointCadence::Fixed(1800.0),
        }
    }
}

/// Typed vocabulary of the resilience loop.
#[derive(Debug)]
pub struct ResilienceDomain;

/// One running job's checkpoint exposure.
#[derive(Debug, Clone)]
pub struct JobExposure {
    /// The job.
    pub id: JobId,
    /// Seconds since the job started.
    pub age_s: f64,
    /// Checkpoint cost, seconds.
    pub checkpoint_cost_s: f64,
}

/// Assessment: jobs due for a checkpoint.
#[derive(Debug, Clone)]
pub struct DueJob {
    /// The job.
    pub id: JobId,
    /// Seconds of unprotected work the job is carrying.
    pub exposure_s: f64,
    /// Checkpoint cost, seconds.
    pub checkpoint_cost_s: f64,
}

impl Domain for ResilienceDomain {
    type Obs = Vec<JobExposure>;
    type Assessment = Vec<DueJob>;
    type Action = JobId;
    type Outcome = bool;
}

struct ExposureMonitor {
    world: SharedWorld,
}

impl Monitor<ResilienceDomain> for ExposureMonitor {
    fn name(&self) -> &str {
        "job-exposure"
    }
    fn observe(&mut self, now: SimTime) -> Option<Vec<JobExposure>> {
        let w = self.world.borrow();
        let jobs = w.running_jobs();
        if jobs.is_empty() {
            return None;
        }
        Some(
            jobs.into_iter()
                .filter_map(|id| {
                    let start = w.sched.job(id)?.start?;
                    let cost = w.ground_truth_profile(id)?.checkpoint_cost_s;
                    Some(JobExposure {
                        id,
                        age_s: now.saturating_since(start).as_secs_f64(),
                        checkpoint_cost_s: cost,
                    })
                })
                .collect(),
        )
    }
}

struct DuenessAnalyzer {
    cadence: CheckpointCadence,
}

impl Analyzer<ResilienceDomain> for DuenessAnalyzer {
    fn name(&self) -> &str {
        "checkpoint-dueness"
    }
    fn analyze(&mut self, now: SimTime, obs: &Vec<JobExposure>, k: &Knowledge) -> Vec<DueJob> {
        let now_s = now.as_secs_f64();
        obs.iter()
            .filter_map(|e| {
                let last = k
                    .fact(&format!("job.{}.last_ckpt_s", e.id.0))
                    .unwrap_or(now_s - e.age_s);
                let exposure = now_s - last;
                let interval = self.cadence.interval_s(e.checkpoint_cost_s);
                // A zero/negative interval means "checkpoint continuously";
                // clamp to the checkpoint cost so the job still progresses.
                let interval = interval.max(e.checkpoint_cost_s);
                (exposure >= interval).then_some(DueJob {
                    id: e.id,
                    exposure_s: exposure,
                    checkpoint_cost_s: e.checkpoint_cost_s,
                })
            })
            .collect()
    }
}

struct CadencePlanner;

impl Planner<ResilienceDomain> for CadencePlanner {
    fn name(&self) -> &str {
        "cadence-planner"
    }
    fn plan(&mut self, _now: SimTime, due: &Vec<DueJob>, _k: &Knowledge) -> Plan<JobId> {
        Plan {
            actions: due
                .iter()
                .map(|d| {
                    PlannedAction::new(d.id, "checkpoint", Confidence::new(0.9))
                        .with_magnitude(d.checkpoint_cost_s)
                        .with_rationale(format!(
                            "{}: {:.0}s of unprotected work (checkpoint costs {:.0}s)",
                            d.id, d.exposure_s, d.checkpoint_cost_s
                        ))
                })
                .collect(),
        }
    }
}

struct CheckpointExecutor {
    world: SharedWorld,
}

impl Executor<ResilienceDomain> for CheckpointExecutor {
    fn name(&self) -> &str {
        "checkpoint-hook"
    }
    fn execute(&mut self, _now: SimTime, id: &JobId) -> bool {
        self.world.borrow_mut().signal_checkpoint(*id)
    }
}

struct CheckpointAssessor;

impl Assessor<ResilienceDomain> for CheckpointAssessor {
    fn assess(
        &mut self,
        now: SimTime,
        action: &PlannedAction<JobId>,
        outcome: &bool,
        k: &mut Knowledge,
    ) {
        if *outcome {
            k.set_fact(
                format!("job.{}.last_ckpt_s", action.action.0),
                now.as_secs_f64(),
            );
        }
        k.assess_latest("resilience-loop", "checkpoint", *outcome, 0.0);
    }
}

/// Assemble the resilience loop.
pub fn build_loop(world: SharedWorld, cfg: ResilienceLoopConfig) -> MapeLoop<ResilienceDomain> {
    MapeLoop::new(
        "resilience-loop",
        Box::new(ExposureMonitor {
            world: world.clone(),
        }),
        Box::new(DuenessAnalyzer {
            cadence: cfg.cadence,
        }),
        Box::new(CadencePlanner),
        Box::new(CheckpointExecutor { world }),
    )
    .with_assessor(Box::new(CheckpointAssessor))
    .with_gate(ConfidenceGate::new(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{drive, shared, CampaignStats};
    use moda_hpc::{AppProfile, FailureConfig, World, WorldConfig};
    use moda_scheduler::JobRequest;
    use moda_sim::SimDuration;

    fn long_job(id: u64, steps: u64) -> (JobRequest, AppProfile) {
        (
            JobRequest {
                id: JobId(id),
                user: "u".into(),
                app_class: "t".into(),
                submit: SimTime::ZERO,
                nodes: 1,
                walltime: SimDuration::from_hours(12),
            },
            AppProfile {
                app_class: "t".into(),
                total_steps: steps,
                mean_step_s: 2.0,
                step_cv: 0.05,
                io_every: 0,
                io_mb: 0.0,
                stripe: 1,
                phase_change: None,
                checkpoint_cost_s: 10.0,
                misconfig: None,
                scale: 1.0,
                cores_per_rank: 8,
            },
        )
    }

    fn failing_world(seed: u64, node_mtbf_s: f64) -> SharedWorld {
        let mut w = World::new(WorldConfig {
            nodes: 4,
            seed,
            power_period: None,
            failure: Some(FailureConfig { node_mtbf_s }),
            resubmit_delay: SimDuration::from_secs(60),
            ..WorldConfig::default()
        });
        w.submit_campaign(vec![long_job(0, 3000), long_job(1, 3000)]);
        shared(w)
    }

    fn run(seed: u64, node_mtbf_s: f64, cadence: Option<CheckpointCadence>) -> CampaignStats {
        let w = failing_world(seed, node_mtbf_s);
        let mut l = cadence.map(|c| build_loop(w.clone(), ResilienceLoopConfig { cadence: c }));
        drive(
            &w,
            SimDuration::from_secs(30),
            SimTime::from_hours(24 * 4),
            |t| {
                if let Some(l) = l.as_mut() {
                    l.tick(t);
                }
            },
        );
        let stats = CampaignStats::collect(&w.borrow());
        stats
    }

    #[test]
    fn failures_kill_and_resubmission_restarts_from_zero() {
        // 4 nodes × MTBF 8000 s ⇒ a failure every ~2000 s; two 6000 s
        // jobs will be hit.
        let s = run(1, 8_000.0, None);
        assert!(s.failures > 0, "failure injection must fire: {s:?}");
        assert!(s.resubmits > 0);
        // Without checkpoints every retry restarts: redone work exceeds
        // the nominal 6000 steps.
        assert!(s.steps_completed > 6000);
        assert_eq!(s.roots_completed, 2);
    }

    #[test]
    fn checkpointing_bounds_redone_work() {
        let unprotected = run(1, 8_000.0, None);
        let protected = run(1, 8_000.0, Some(CheckpointCadence::Fixed(600.0)));
        assert!(protected.checkpoints > 0);
        assert!(
            protected.steps_completed < unprotected.steps_completed,
            "checkpoints must save redone steps: {} vs {}",
            protected.steps_completed,
            unprotected.steps_completed
        );
        assert_eq!(protected.roots_completed, 2);
    }

    #[test]
    fn young_cadence_uses_mtbf() {
        // Young's interval for C=10 s on a 4-node cluster with per-node
        // MTBF 8000 s (system MTBF 2000 s): √(2·10·2000) = 200 s.
        let c = CheckpointCadence::Young {
            system_mtbf_s: 2_000.0,
        };
        assert!((c.interval_s(10.0) - 200.0).abs() < 1e-9);
        let s = run(3, 8_000.0, Some(c));
        assert!(s.checkpoints > 0);
        assert_eq!(s.roots_completed, 2);
    }

    #[test]
    fn no_failures_no_checkpoint_storm() {
        // Healthy cluster, long fixed cadence: a couple of checkpoints
        // per job at most, and zero failures.
        let w = failing_world(5, f64::INFINITY);
        let mut l = build_loop(
            w.clone(),
            ResilienceLoopConfig {
                cadence: CheckpointCadence::Fixed(3600.0),
            },
        );
        drive(
            &w,
            SimDuration::from_secs(30),
            SimTime::from_hours(24),
            |t| {
                l.tick(t);
            },
        );
        let s = CampaignStats::collect(&w.borrow());
        assert_eq!(s.failures, 0);
        assert!(s.checkpoints <= 4, "{} checkpoints", s.checkpoints);
        assert_eq!(s.roots_completed, 2);
    }
}
