//! Chaos acceptance test for the center-level closed loop — the tier-1
//! twin of the `fleet-chaos` CI job.
//!
//! Runs the two fault scenarios end to end and asserts the ISSUE's
//! acceptance clauses:
//!
//! * **cascading failure** — the cascade is detected from fleet queries
//!   alone, the first response is a canary scoped to the implicated
//!   world, every action respects cooldowns and rate limits, post-action
//!   validation passes, and the whole decision sequence is
//!   machine-reconstructible from the audit trail (`verify_audit`).
//! * **partition** — fleet queries degrade to coverage-annotated
//!   answers (zero stale-as-fresh reads, asserted per tick), the
//!   responder holds actuation while coverage is below the floor, and
//!   actuation resumes once the partition heals.
//!
//! Artifacts: set `FLEET_CHAOS_DIR` to pin the rendered control/audit
//! trails and per-tick traces somewhere collectable (the CI job points
//! it into `target/` and uploads on failure). Without it the trails are
//! written to a per-process temp dir and removed on success.

use moda_usecases::{cascading_failure_scenario, partition_degradation_scenario};
use std::path::PathBuf;

fn work_dir() -> (PathBuf, bool) {
    match std::env::var_os("FLEET_CHAOS_DIR") {
        Some(d) => (PathBuf::from(d), true),
        None => (
            std::env::temp_dir().join(format!("moda_fleet_chaos_{}", std::process::id())),
            false,
        ),
    }
}

fn dump(name: &str, trace: &moda_usecases::ControlTrace) -> PathBuf {
    let (dir, _) = work_dir();
    std::fs::create_dir_all(&dir).expect("artifact dir");
    std::fs::write(
        dir.join(format!("{name}-control-trail.txt")),
        &trace.control_trail,
    )
    .expect("write control trail");
    std::fs::write(
        dir.join(format!("{name}-audit-trail.txt")),
        &trace.audit_trail,
    )
    .expect("write audit trail");
    let ticks: String = trace
        .ticks
        .iter()
        .map(|tt| {
            format!(
                "t={} coverage={:.2} contributing={} excluded={:?} \
                 alerts={} applied={} held={} blocked={}\n",
                tt.t,
                tt.coverage,
                tt.contributing,
                tt.excluded,
                tt.alerts,
                tt.applied,
                tt.held,
                tt.blocked
            )
        })
        .collect();
    std::fs::write(dir.join(format!("{name}-ticks.txt")), ticks).expect("write tick trace");
    std::fs::write(
        dir.join(format!("{name}-summary.txt")),
        format!("{:#?}\n{:#?}\n", trace.summary, trace.health_stats),
    )
    .expect("write summary");
    dir
}

#[test]
fn chaos_scenarios_meet_the_acceptance_clauses() {
    // --- cascading failure: detect → canary repair → validate --------
    let cascade = cascading_failure_scenario(11).expect("audit must certify");
    dump("cascade", &cascade.trace);
    assert!(cascade.failures_injected > 0, "the cascade never started");
    assert!(cascade.repaired, "the failure process was never disarmed");
    let s = &cascade.trace.summary;
    assert!(s.applied >= 1, "no response was ever applied");
    assert!(s.canary >= 1, "the first action must be a canary");
    assert_eq!(s.validations_failed, 0, "a response failed validation");
    assert!(s.validations_passed >= 1, "no response was validated");
    // Convergence: no oscillation past the rule's rate budget (2/2h
    // over a 4.3h run).
    assert!(s.applied <= 4, "actuation oscillated past the rate limit");
    assert!(
        cascade.failure_rate_final < cascade.failure_rate_at_repair,
        "the cascade outlived the response: {:.1} -> {:.1}",
        cascade.failure_rate_at_repair,
        cascade.failure_rate_final
    );
    // The trail is complete enough to reconstruct the sequence.
    for needle in ["AlertRaised", "Escalated", "Applied", "ValidationPassed"] {
        assert!(
            cascade.trace.control_trail.contains(needle),
            "decision trail missing {needle}:\n{}",
            cascade.trace.control_trail
        );
    }

    // --- partition: degrade, hold, resume ----------------------------
    let part = partition_degradation_scenario(13).expect("audit must certify");
    let dir = dump("partition", &part.trace);
    assert_eq!(
        part.applied_during_partition, 0,
        "actuated on a partial fleet view"
    );
    assert!(part.applied_after_heal >= 1, "never resumed after heal");
    assert_eq!(
        part.stale_served_as_fresh, 0,
        "a dark node was read as fresh"
    );
    assert!(part.degraded_ticks >= 3, "coverage never degraded");
    assert!(part.trace.degraded_observations > 0);
    assert!(
        part.trace.health_stats.to_stale >= 2,
        "health ladder not walked"
    );
    assert!(
        part.trace.health_stats.recovered >= 2,
        "nodes never recovered"
    );

    let (_, pinned) = work_dir();
    if !pinned {
        let _ = std::fs::remove_dir_all(dir);
    }
}
