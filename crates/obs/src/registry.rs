//! The self-telemetry registry and its instruments.
//!
//! One [`ObsRegistry`] holds every instrument a pipeline registered:
//! counters, gauges, latency recorders, and pull-probes. Components
//! never hold the registry directly — they hold an [`Obs`] handle
//! (cheaply cloneable, possibly disabled) and pre-resolve instruments
//! once, off the hot path. A disabled handle resolves inert
//! instruments: recording through them is one predictable branch and
//! **zero** registry mutations (pinned by tests and the
//! `tsdb_selfobs` bench gate).

use crate::span::{SlowLog, SlowOp, SpanGuard};
use moda_telemetry::QuantileSketch;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How many raw span/record durations a [`LatencyRecorder`] buffers
/// between scrapes. Overflow is counted ([`LatencySnapshot::dropped`]),
/// never reallocated — the recorder's footprint is bounded no matter
/// how far behind the scrape falls.
pub const PENDING_CAPACITY: usize = 4096;

/// One latency instrument's shared cell.
#[derive(Debug)]
pub(crate) struct LatencyCell {
    pub(crate) name: String,
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
    dropped: AtomicU64,
    state: Mutex<LatencyState>,
}

#[derive(Debug)]
struct LatencyState {
    /// Raw durations since the last scrape, ns, bounded.
    pending: Vec<u64>,
    /// Lifetime mergeable quantile sketch over every recorded duration.
    sketch: QuantileSketch,
}

impl LatencyCell {
    fn new(name: &str) -> Self {
        LatencyCell {
            name: name.to_string(),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            state: Mutex::new(LatencyState {
                pending: Vec::with_capacity(64),
                sketch: QuantileSketch::new(),
            }),
        }
    }

    pub(crate) fn record(&self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
        let mut state = self.state.lock();
        if state.pending.len() < PENDING_CAPACITY {
            state.pending.push(ns);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        state.sketch.fold(ns as f64);
    }

    pub(crate) fn snapshot(&self) -> LatencySnapshot {
        LatencySnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
        }
    }

    /// Take the pending raw durations (the scrape's payload).
    pub(crate) fn take_pending(&self) -> Vec<u64> {
        std::mem::take(&mut self.state.lock().pending)
    }

    pub(crate) fn quantile(&self, q: f64) -> Option<f64> {
        let state = self.state.lock();
        if state.sketch.is_empty() {
            None
        } else {
            Some(state.sketch.quantile(q))
        }
    }
}

/// Point-in-time atomic counters of one latency instrument.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySnapshot {
    /// Durations recorded, lifetime.
    pub count: u64,
    /// Sum of recorded durations, ns.
    pub sum_ns: u64,
    /// Longest recorded duration, ns.
    pub max_ns: u64,
    /// Raw durations lost to the bounded pending buffer (the scrape
    /// fell more than [`PENDING_CAPACITY`] records behind). Aggregate
    /// stats and the lifetime sketch still cover them.
    pub dropped: u64,
}

/// One registered instrument.
#[derive(Clone)]
pub(crate) enum Instrument {
    Counter(Arc<AtomicU64>),
    /// f64 stored as raw bits.
    Gauge(Arc<AtomicU64>),
    Latency(Arc<LatencyCell>),
    /// Pull-probe sampled at scrape time (e.g. a store's lifetime
    /// insert counter) — lets stages that cannot depend on this crate
    /// surface their existing atomics without push instrumentation.
    Probe(Arc<dyn Fn() -> f64 + Send + Sync>),
}

impl std::fmt::Debug for Instrument {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Instrument::Counter(_) => f.write_str("Counter"),
            Instrument::Gauge(_) => f.write_str("Gauge"),
            Instrument::Latency(_) => f.write_str("Latency"),
            Instrument::Probe(_) => f.write_str("Probe"),
        }
    }
}

#[derive(Debug, Default)]
struct Instruments {
    by_name: HashMap<String, usize>,
    /// Registration order — the scrape walks this, so scrape output is
    /// deterministic for a deterministic registration order.
    entries: Vec<(String, Instrument)>,
}

/// The self-telemetry registry: every instrument of one pipeline,
/// behind one [`Obs`] handle. See the crate docs for the role it plays;
/// the scrape half lives in [`crate::scrape`].
#[derive(Debug)]
pub struct ObsRegistry {
    instruments: RwLock<Instruments>,
    pub(crate) slow: Mutex<SlowLog>,
    /// Cheap pre-filter for the slow-op log: the smallest duration in
    /// the full top-k set (0 while not full). Spans at or below it skip
    /// the log mutex entirely.
    pub(crate) slow_floor_ns: AtomicU64,
    pub(crate) span_seq: AtomicU64,
}

impl ObsRegistry {
    fn new() -> Self {
        ObsRegistry {
            instruments: RwLock::new(Instruments::default()),
            slow: Mutex::new(SlowLog::new()),
            slow_floor_ns: AtomicU64::new(0),
            span_seq: AtomicU64::new(0),
        }
    }

    /// Get-or-create by name; panics if the name is already registered
    /// as a different instrument kind (a programming error: instrument
    /// names are a per-pipeline taxonomy, see docs/OBSERVABILITY.md).
    fn resolve(&self, name: &str, make: impl FnOnce(&str) -> Instrument) -> Instrument {
        if let Some(inst) = self.lookup(name) {
            return inst;
        }
        let mut reg = self.instruments.write();
        if let Some(&i) = reg.by_name.get(name) {
            return reg.entries[i].1.clone();
        }
        let inst = make(name);
        let idx = reg.entries.len();
        reg.by_name.insert(name.to_string(), idx);
        reg.entries.push((name.to_string(), inst.clone()));
        inst
    }

    pub(crate) fn lookup(&self, name: &str) -> Option<Instrument> {
        let reg = self.instruments.read();
        reg.by_name.get(name).map(|&i| reg.entries[i].1.clone())
    }

    /// Snapshot of `(name, instrument)` pairs in registration order.
    pub(crate) fn entries(&self) -> Vec<(String, Instrument)> {
        self.instruments.read().entries.clone()
    }

    /// Registered instruments (tests assert 0 for disabled paths).
    pub fn instrument_count(&self) -> usize {
        self.instruments.read().entries.len()
    }
}

/// The handle components hold: either a live registry or **disabled**
/// (the default), in which case every resolved instrument is inert and
/// every record call is a single branch. Cloning shares the registry.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    inner: Option<Arc<ObsRegistry>>,
}

impl Obs {
    /// A live handle over a fresh registry.
    pub fn enabled() -> Self {
        Obs {
            inner: Some(Arc::new(ObsRegistry::new())),
        }
    }

    /// The inert handle: all instruments resolved from it are no-ops.
    pub fn disabled() -> Self {
        Obs { inner: None }
    }

    /// Whether this handle records anywhere.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The registry behind an enabled handle.
    pub fn registry(&self) -> Option<&ObsRegistry> {
        self.inner.as_deref()
    }

    /// Resolve (get-or-create) a monotonic counter.
    pub fn counter(&self, name: &str) -> Counter {
        Counter(self.inner.as_ref().map(|reg| {
            match reg.resolve(name, |_| Instrument::Counter(Arc::new(AtomicU64::new(0)))) {
                Instrument::Counter(c) => c,
                other => panic!("obs instrument {name:?} already registered as {other:?}"),
            }
        }))
    }

    /// Resolve (get-or-create) a last-value gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(self.inner.as_ref().map(|reg| {
            match reg.resolve(name, |_| {
                Instrument::Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
            }) {
                Instrument::Gauge(g) => g,
                other => panic!("obs instrument {name:?} already registered as {other:?}"),
            }
        }))
    }

    /// Resolve (get-or-create) a latency recorder. By convention the
    /// name ends in `_ns` — scraped samples are raw nanoseconds.
    pub fn latency(&self, name: &str) -> LatencyRecorder {
        match &self.inner {
            None => LatencyRecorder(None),
            Some(reg) => {
                let cell = match reg
                    .resolve(name, |n| Instrument::Latency(Arc::new(LatencyCell::new(n))))
                {
                    Instrument::Latency(c) => c,
                    other => panic!("obs instrument {name:?} already registered as {other:?}"),
                };
                LatencyRecorder(Some((cell, Arc::clone(reg))))
            }
        }
    }

    /// Register (or replace) a pull-probe sampled at scrape time —
    /// the bridge for counters owned by layers below this crate (store
    /// insert totals, rollup/sketch hit counters, codec counts).
    pub fn probe(&self, name: &str, f: impl Fn() -> f64 + Send + Sync + 'static) {
        let Some(reg) = &self.inner else { return };
        let inst = Instrument::Probe(Arc::new(f));
        let mut instruments = reg.instruments.write();
        match instruments.by_name.get(name) {
            Some(&i) => instruments.entries[i].1 = inst,
            None => {
                let i = instruments.entries.len();
                instruments.by_name.insert(name.to_string(), i);
                instruments.entries.push((name.to_string(), inst));
            }
        }
    }

    /// Current value of a counter, if registered.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        match self.inner.as_ref()?.lookup(name)? {
            Instrument::Counter(c) => Some(c.load(Ordering::Relaxed)),
            _ => None,
        }
    }

    /// Atomic snapshot of a latency recorder, if registered.
    pub fn latency_snapshot(&self, name: &str) -> Option<LatencySnapshot> {
        match self.inner.as_ref()?.lookup(name)? {
            Instrument::Latency(c) => Some(c.snapshot()),
            _ => None,
        }
    }

    /// The `k` slowest completed spans, slowest first (cloned; the log
    /// keeps its contents — use [`Obs::drain_slow_ops`] to consume).
    pub fn slow_ops(&self, k: usize) -> Vec<SlowOp> {
        match &self.inner {
            None => Vec::new(),
            Some(reg) => reg.slow.lock().top(k),
        }
    }

    /// Drain the slow-op log (postmortem hand-off), slowest first.
    pub fn drain_slow_ops(&self) -> Vec<SlowOp> {
        match &self.inner {
            None => Vec::new(),
            Some(reg) => {
                let drained = reg.slow.lock().drain();
                reg.slow_floor_ns.store(0, Ordering::Relaxed);
                drained
            }
        }
    }
}

/// Pre-resolved monotonic counter; inert when resolved from a disabled
/// [`Obs`].
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Increment by `n`. One branch + one relaxed add when enabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 when inert).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// Pre-resolved last-value gauge; inert when resolved from a disabled
/// [`Obs`]. Stores an `f64` as raw bits.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// Set the value.
    #[inline]
    pub fn set(&self, v: f64) {
        if let Some(g) = &self.0 {
            g.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Raise the value to at least `v` (high-water gauges). Valid for
    /// non-negative values, whose IEEE-754 bit patterns order like
    /// integers.
    #[inline]
    pub fn set_max(&self, v: f64) {
        debug_assert!(v >= 0.0, "set_max is defined for non-negative gauges");
        if let Some(g) = &self.0 {
            g.fetch_max(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0.0 when inert).
    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |g| f64::from_bits(g.load(Ordering::Relaxed)))
    }
}

/// Pre-resolved latency instrument: record raw durations or open RAII
/// [`SpanGuard`]s against it. Inert when resolved from a disabled
/// [`Obs`] — [`LatencyRecorder::start`] then costs one branch and
/// constructs no timestamp.
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder(pub(crate) Option<(Arc<LatencyCell>, Arc<ObsRegistry>)>);

impl LatencyRecorder {
    /// Record one duration directly (no span, no slow-op entry).
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        if let Some((cell, _)) = &self.0 {
            cell.record(ns);
        }
    }

    /// Open an RAII span: the drop records the elapsed time and offers
    /// it to the slow-op log with the per-thread nesting depth.
    #[inline]
    pub fn start(&self) -> SpanGuard {
        SpanGuard::open(self)
    }

    /// Atomic snapshot of the aggregate counters.
    pub fn snapshot(&self) -> LatencySnapshot {
        self.0
            .as_ref()
            .map_or(LatencySnapshot::default(), |(cell, _)| cell.snapshot())
    }

    /// Quantile over the lifetime sketch (1 % relative error), `None`
    /// when inert or nothing was recorded.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.0.as_ref().and_then(|(cell, _)| cell.quantile(q))
    }
}
