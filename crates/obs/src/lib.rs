//! # moda-obs
//!
//! Self-telemetry for the pipeline: the monitoring system monitored by
//! its own TSDB. The production-ODA experience this reproduction
//! follows (DCDB Wintermute, the LRZ pipeline) treats per-stage
//! overhead and pipeline-health metrics as prerequisites for running
//! ODA against a real machine — so this crate dogfoods the stack: every
//! hot stage records into an [`ObsRegistry`], and a periodic *scrape*
//! writes that registry into a reserved `__self/` metric namespace of a
//! regular [`moda_telemetry::Tsdb`]/[`moda_telemetry::ShardedTsdb`],
//! from where the self-metrics flow through rollups, sketches, export,
//! fleet aggregation, and the remote query protocol **like any other
//! series** — `fleet_service query … agg __self/wal.fsync_ns … p0.99`
//! answers "p99 WAL fsync latency across the fleet" with zero new wire
//! kinds.
//!
//! The pieces:
//!
//! * [`Obs`] — the cheap-clone handle components hold. A **disabled**
//!   handle (the default) is a `None`: every instrument resolved from
//!   it is inert, every record is a single predictable branch, and the
//!   registry is provably untouched (asserted by tests, bench-gated to
//!   ≤ 10 % overhead on the instrumented insert path).
//! * [`Counter`] / [`Gauge`] — relaxed-atomic instruments, pre-resolved
//!   once (`obs.counter("export.batches")`) and then recorded with no
//!   name lookup on the hot path.
//! * [`LatencyRecorder`] + [`SpanGuard`] — RAII spans:
//!   `recorder.start()` stamps, the drop records the duration into
//!   atomic count/sum/max, a lifetime [`moda_telemetry::QuantileSketch`]
//!   (mergeable p99s for free), a bounded pending buffer the next
//!   scrape drains into the TSDB as raw nanosecond samples, and the
//!   top-k [slow-op log](SlowOp) for postmortems. Nesting depth is
//!   tracked per thread and stored on the slow-op entry.
//! * [`ObsRegistry::scrape_into`] — write every instrument into the
//!   `__self/` namespace of a [`ScrapeTarget`] store at one timestamp.
//!   The scrape is the namespace's **only writer**: user registration
//!   and inserts into `__self/*` are refused by the store with a typed
//!   error ([`moda_telemetry::RegisterError`]).
//! * [`mirror`] — the thin-view bridge over the exporter's
//!   [`DrainStats`](moda_telemetry::DrainStats): the registry is the
//!   single source of truth, the legacy struct is rebuilt from it.
//!
//! Metric names, the span taxonomy, and scrape cadence semantics are
//! documented in `docs/OBSERVABILITY.md`.
//!
//! # Example
//!
//! ```
//! use moda_obs::Obs;
//! use moda_sim::SimTime;
//! use moda_telemetry::{Tsdb, WindowAgg};
//!
//! let obs = Obs::enabled();
//! let drains = obs.counter("export.drains");
//! let fsync = obs.latency("wal.fsync_ns");
//! for _ in 0..100 {
//!     let _span = fsync.start();
//!     drains.add(1);
//! }
//! // Scrape the registry into a reserved namespace of a normal store.
//! let mut db = Tsdb::new();
//! obs.scrape_into(&mut db, SimTime::from_secs(1));
//! let id = db.lookup("__self/export.drains").unwrap();
//! assert_eq!(db.latest_value(id), Some(100.0));
//! // The span durations landed as raw ns samples with sketched rollups.
//! let lat = db.lookup("__self/wal.fsync_ns").unwrap();
//! let n = db
//!     .window_agg(lat, SimTime::from_secs(1), moda_sim::SimDuration::from_secs(10), WindowAgg::Count)
//!     .unwrap();
//! assert_eq!(n, 100.0);
//! // A user writing into the namespace is refused with a typed error.
//! use moda_telemetry::{MetricMeta, SourceDomain};
//! let meta = MetricMeta::gauge("__self/forged", "ns", SourceDomain::Software);
//! assert!(db.try_register(meta).is_err());
//! ```

pub mod mirror;
pub mod registry;
pub mod scrape;
pub mod span;

pub use registry::{Counter, Gauge, LatencyRecorder, LatencySnapshot, Obs, ObsRegistry};
pub use scrape::{ScrapeStats, ScrapeTarget};
pub use span::{SlowOp, SpanGuard, SLOW_OP_CAPACITY};

/// Record an RAII span on an [`Obs`] handle by name, resolving the
/// recorder through the registry: `let _s = span!(obs, "export.drain");`.
///
/// Resolution takes the registry lock, so hot paths should pre-resolve
/// a [`LatencyRecorder`] once and call [`LatencyRecorder::start`]
/// instead; the macro is the ergonomic form for cold/occasional spans.
#[macro_export]
macro_rules! span {
    ($obs:expr, $name:expr) => {
        $obs.latency($name).start()
    };
}
