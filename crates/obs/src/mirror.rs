//! Thin-view bridge between the registry and the legacy stat structs.
//!
//! The exporter's [`DrainStats`] predates the registry; runtimes used to
//! accumulate it in an ad-hoc struct *next to* whatever the registry
//! would say — two copies of the truth that can silently diverge. This
//! module makes the registry the single source: [`record_drain`] folds a
//! drain's stats into `export.*` instruments, and [`drain_view`]
//! rebuilds the legacy struct *from* those instruments for callers that
//! still want the old shape. The numbers a runtime reports and the
//! numbers a `__self/export.*` query serves are now the same cells.

use crate::registry::Obs;
use moda_telemetry::DrainStats;

/// Fold one drain's [`DrainStats`] (the per-call delta returned by
/// `Exporter::drain`, not lifetime totals) into the registry's
/// `export.*` instruments. No-op on a disabled handle.
pub fn record_drain(obs: &Obs, stats: &DrainStats) {
    if !obs.is_enabled() {
        return;
    }
    obs.counter("export.batches").add(stats.batches);
    obs.counter("export.records").add(stats.records);
    obs.counter("export.samples").add(stats.samples);
    obs.counter("export.chunks").add(stats.chunks);
    obs.counter("export.buckets").add(stats.buckets);
    obs.counter("export.sketch_entries")
        .add(stats.sketch_entries);
    obs.counter("export.metas").add(stats.metas);
    obs.counter("export.missed_samples")
        .add(stats.missed_samples);
    obs.counter("export.missed_buckets")
        .add(stats.missed_buckets);
    obs.counter("export.lock_held_ns").add(stats.lock_held_ns);
    obs.counter("export.send_retries").add(stats.send_retries);
    obs.gauge("export.max_lock_held_ns")
        .set_max(stats.max_lock_held_ns as f64);
}

/// Rebuild the legacy [`DrainStats`] shape from the registry's
/// `export.*` instruments — lifetime totals across every
/// [`record_drain`] fold. `None` on a disabled handle (the caller keeps
/// whatever legacy accounting it had).
pub fn drain_view(obs: &Obs) -> Option<DrainStats> {
    if !obs.is_enabled() {
        return None;
    }
    let counter = |name: &str| obs.counter_value(name).unwrap_or(0);
    Some(DrainStats {
        batches: counter("export.batches"),
        records: counter("export.records"),
        samples: counter("export.samples"),
        chunks: counter("export.chunks"),
        buckets: counter("export.buckets"),
        sketch_entries: counter("export.sketch_entries"),
        metas: counter("export.metas"),
        missed_samples: counter("export.missed_samples"),
        missed_buckets: counter("export.missed_buckets"),
        lock_held_ns: counter("export.lock_held_ns"),
        max_lock_held_ns: obs.gauge("export.max_lock_held_ns").get() as u64,
        send_retries: counter("export.send_retries"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Obs;

    fn sample_stats(scale: u64) -> DrainStats {
        DrainStats {
            batches: scale,
            records: 10 * scale,
            samples: 8 * scale,
            chunks: scale / 2,
            buckets: 3 * scale,
            sketch_entries: 5 * scale,
            metas: 2,
            missed_samples: 0,
            missed_buckets: 1,
            lock_held_ns: 1_000 * scale,
            max_lock_held_ns: 400 * scale,
            send_retries: scale % 2,
        }
    }

    #[test]
    fn view_round_trips_accumulated_drains() {
        let obs = Obs::enabled();
        let a = sample_stats(2);
        let b = sample_stats(5);
        record_drain(&obs, &a);
        record_drain(&obs, &b);
        let mut want = a;
        want.merge(&b);
        assert_eq!(drain_view(&obs), Some(want));
    }

    #[test]
    fn disabled_handle_yields_no_view_and_no_instruments() {
        let obs = Obs::disabled();
        record_drain(&obs, &sample_stats(3));
        assert_eq!(drain_view(&obs), None);
    }
}
