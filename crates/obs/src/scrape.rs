//! The self-scrape: write the registry into a store's `__self/` namespace.
//!
//! On a configurable cadence the owner of an [`Obs`] handle calls
//! [`Obs::scrape_into`] with a timestamp; every instrument becomes one
//! series under the reserved [`SELF_NAMESPACE`]:
//!
//! * **counters** — one cumulative sample (lifetime count as `f64`),
//! * **gauges** — one sample of the current value,
//! * **probes** — one sample of the probed value,
//! * **latency recorders** — the *pending* raw durations drained since
//!   the last scrape, each inserted as a nanosecond sample at the scrape
//!   timestamp (the series ring accepts duplicate timestamps), with a
//!   **sketched rollup pyramid** enabled on first registration — so a
//!   fleet-merged `__self/...` p99 is served by the existing sketch
//!   planner with zero new wire kinds. Durations are integer ns well
//!   below 2^53, so the ns → f64 → wire round trip is bit-exact.
//!
//! The scrape goes through the scrape-only store entry points
//! (`register_self` / `insert_self`); it is the namespace's only writer
//! and its samples are accounted under `self_inserts`, never the user
//! insert counters.

use crate::registry::{Instrument, Obs, ObsRegistry};
use moda_sim::SimTime;
use moda_telemetry::metric::SELF_NAMESPACE;
use moda_telemetry::{MetricId, MetricMeta, RollupConfig, ShardedTsdb, SourceDomain, Tsdb};

/// Accounting for one [`Obs::scrape_into`] pass.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ScrapeStats {
    /// Instruments visited (== `__self/` series touched).
    pub instruments: usize,
    /// Samples inserted into the target store.
    pub samples: usize,
    /// Of those, raw latency durations drained from pending buffers.
    pub latency_samples: usize,
}

/// A store the scrape can write self-telemetry into. Implemented for
/// the single-owner [`Tsdb`] (`&mut`) and for `&ShardedTsdb` (shared
/// handle, interior locking).
pub trait ScrapeTarget {
    /// Idempotent scrape-only registration (name must be reserved).
    fn self_register(&mut self, meta: MetricMeta) -> MetricId;
    /// Enable rollups on a self series when it has none yet.
    fn self_ensure_rollups(&mut self, id: MetricId, config: &RollupConfig);
    /// Scrape-only append.
    fn self_insert(&mut self, id: MetricId, t: SimTime, value: f64) -> bool;
}

impl ScrapeTarget for Tsdb {
    fn self_register(&mut self, meta: MetricMeta) -> MetricId {
        self.register_self(meta)
    }

    fn self_ensure_rollups(&mut self, id: MetricId, config: &RollupConfig) {
        self.ensure_rollups(id, config);
    }

    fn self_insert(&mut self, id: MetricId, t: SimTime, value: f64) -> bool {
        self.insert_self(id, t, value)
    }
}

impl ScrapeTarget for &ShardedTsdb {
    fn self_register(&mut self, meta: MetricMeta) -> MetricId {
        self.register_self(meta)
    }

    fn self_ensure_rollups(&mut self, id: MetricId, config: &RollupConfig) {
        self.ensure_rollups(id, config);
    }

    fn self_insert(&mut self, id: MetricId, t: SimTime, value: f64) -> bool {
        self.insert_self(id, t, value)
    }
}

impl ObsRegistry {
    /// Write every instrument into `target`'s `__self/` namespace at
    /// timestamp `t`. Deterministic: instruments are visited in
    /// registration order, pending latency samples in record order.
    pub fn scrape_into<T: ScrapeTarget>(&self, target: &mut T, t: SimTime) -> ScrapeStats {
        let mut stats = ScrapeStats::default();
        for (name, inst) in self.entries() {
            stats.instruments += 1;
            let self_name = format!("{SELF_NAMESPACE}{name}");
            match inst {
                Instrument::Counter(c) => {
                    let id = target.self_register(MetricMeta::counter(
                        self_name,
                        "count",
                        SourceDomain::Software,
                    ));
                    let v = c.load(std::sync::atomic::Ordering::Relaxed) as f64;
                    if target.self_insert(id, t, v) {
                        stats.samples += 1;
                    }
                }
                Instrument::Gauge(g) => {
                    let id = target.self_register(MetricMeta::gauge(
                        self_name,
                        "value",
                        SourceDomain::Software,
                    ));
                    let v = f64::from_bits(g.load(std::sync::atomic::Ordering::Relaxed));
                    if target.self_insert(id, t, v) {
                        stats.samples += 1;
                    }
                }
                Instrument::Probe(f) => {
                    let id = target.self_register(MetricMeta::gauge(
                        self_name,
                        "value",
                        SourceDomain::Software,
                    ));
                    if target.self_insert(id, t, f()) {
                        stats.samples += 1;
                    }
                }
                Instrument::Latency(cell) => {
                    let id = target.self_register(MetricMeta::gauge(
                        self_name,
                        "ns",
                        SourceDomain::Software,
                    ));
                    // Sketched rollups make wide self-p99s plannable —
                    // and fleet-mergeable over the existing sketch wire.
                    target.self_ensure_rollups(id, &RollupConfig::standard().with_sketches());
                    for ns in cell.take_pending() {
                        if target.self_insert(id, t, ns as f64) {
                            stats.samples += 1;
                            stats.latency_samples += 1;
                        }
                    }
                }
            }
        }
        stats
    }
}

impl Obs {
    /// [`ObsRegistry::scrape_into`] through the handle; a disabled
    /// handle scrapes nothing and returns zeroed stats.
    pub fn scrape_into<T: ScrapeTarget>(&self, target: &mut T, t: SimTime) -> ScrapeStats {
        match self.registry() {
            None => ScrapeStats::default(),
            Some(reg) => reg.scrape_into(target, t),
        }
    }

    /// Convenience for the shared store handle:
    /// `obs.scrape_into_shared(&db, t)`.
    pub fn scrape_into_shared(&self, db: &ShardedTsdb, t: SimTime) -> ScrapeStats {
        let mut target = db;
        self.scrape_into(&mut target, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moda_sim::SimDuration;
    use moda_telemetry::WindowAgg;

    #[test]
    fn scrape_writes_all_instrument_kinds() {
        let obs = Obs::enabled();
        obs.counter("ingest.batches").add(7);
        obs.gauge("store.memory_bytes").set(1234.5);
        obs.probe("store.cardinality", || 42.0);
        let lat = obs.latency("wal.fsync_ns");
        lat.record_ns(1_000);
        lat.record_ns(3_000);

        let mut db = Tsdb::new();
        let stats = obs.scrape_into(&mut db, SimTime::from_secs(10));
        assert_eq!(stats.instruments, 4);
        assert_eq!(stats.samples, 5);
        assert_eq!(stats.latency_samples, 2);

        let batches = db.lookup("__self/ingest.batches").unwrap();
        assert_eq!(db.latest_value(batches), Some(7.0));
        let mem = db.lookup("__self/store.memory_bytes").unwrap();
        assert_eq!(db.latest_value(mem), Some(1234.5));
        let card = db.lookup("__self/store.cardinality").unwrap();
        assert_eq!(db.latest_value(card), Some(42.0));
        let fsync = db.lookup("__self/wal.fsync_ns").unwrap();
        assert!(db.rollups(fsync).is_some(), "latency series get rollups");
        let max = db
            .window_agg(
                fsync,
                SimTime::from_secs(10),
                SimDuration::from_secs(60),
                WindowAgg::Max,
            )
            .unwrap();
        assert_eq!(max, 3_000.0);

        // Pending buffer drained: a second scrape adds no latency samples.
        let again = obs.scrape_into(&mut db, SimTime::from_secs(20));
        assert_eq!(again.latency_samples, 0);
        assert_eq!(
            db.self_inserts(),
            stats.samples as u64 + again.samples as u64
        );
        assert_eq!(db.total_inserts(), 0, "scrape never counts as user inserts");
    }

    #[test]
    fn scrape_into_sharded_store() {
        let obs = Obs::enabled();
        obs.counter("c").add(1);
        obs.latency("l_ns").record_ns(500);
        let db = ShardedTsdb::with_config(128, 4);
        let stats = obs.scrape_into_shared(&db, SimTime::from_secs(1));
        assert_eq!(stats.samples, 2);
        let id = db.lookup("__self/l_ns").unwrap();
        assert!(db.rollups_enabled(id));
        assert_eq!(db.latest_value(id), Some(500.0));
        assert_eq!(db.self_inserts(), 2);
    }

    #[test]
    fn disabled_scrape_is_a_no_op() {
        let obs = Obs::disabled();
        obs.counter("c").add(1);
        let mut db = Tsdb::new();
        let stats = obs.scrape_into(&mut db, SimTime::from_secs(1));
        assert_eq!(stats, ScrapeStats::default());
        assert_eq!(db.cardinality(), 0);
    }
}
