//! RAII spans and the bounded slow-op log.
//!
//! A span is opened against a pre-resolved
//! [`LatencyRecorder`] and records on
//! drop: elapsed nanoseconds into the recorder (atomics + pending
//! buffer + lifetime sketch) and, if slow enough, an entry in the
//! registry's top-k [`SlowOp`] log. Nesting depth is tracked with a
//! per-thread counter so a postmortem can tell an outer
//! `export.drain` span from the `chunk.encode` spans it wraps.

use crate::registry::{LatencyCell, LatencyRecorder, ObsRegistry};
use std::cell::Cell;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// Capacity of the slow-op log: the top-k slowest completed spans kept
/// for postmortems (drainable via `fleet_service selfstat`).
pub const SLOW_OP_CAPACITY: usize = 64;

thread_local! {
    /// Open-span nesting depth on this thread (0 = top-level).
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// One completed span retained by the slow-op log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowOp {
    /// The latency instrument the span recorded into.
    pub name: String,
    /// Wall-clock duration of the span, ns.
    pub duration_ns: u64,
    /// Per-thread nesting depth at open (0 = top-level).
    pub depth: u32,
    /// Completion sequence number (process-lifetime, per registry) —
    /// orders entries with equal durations and dates them for drains.
    pub seq: u64,
}

/// Bounded keep-the-slowest log. Insertion is O(k) worst case but the
/// common case never gets here: the registry keeps an atomic floor
/// (smallest retained duration once full) that lets completed spans
/// skip the lock entirely.
#[derive(Debug, Default)]
pub(crate) struct SlowLog {
    entries: Vec<SlowOp>,
}

impl SlowLog {
    pub(crate) fn new() -> Self {
        SlowLog {
            entries: Vec::with_capacity(SLOW_OP_CAPACITY),
        }
    }

    /// Offer a completed span; returns the new floor (smallest retained
    /// duration when full, 0 otherwise).
    pub(crate) fn offer(&mut self, op: SlowOp) -> u64 {
        if self.entries.len() < SLOW_OP_CAPACITY {
            self.entries.push(op);
        } else {
            let (min_idx, min) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.duration_ns)
                .map(|(i, e)| (i, e.duration_ns))
                .expect("slow log is non-empty at capacity");
            if op.duration_ns > min {
                self.entries[min_idx] = op;
            }
        }
        if self.entries.len() < SLOW_OP_CAPACITY {
            0
        } else {
            self.entries
                .iter()
                .map(|e| e.duration_ns)
                .min()
                .unwrap_or(0)
        }
    }

    /// The `k` slowest entries, slowest first (ties broken newest
    /// first), leaving the log intact.
    pub(crate) fn top(&self, k: usize) -> Vec<SlowOp> {
        let mut out = self.entries.clone();
        out.sort_by(|a, b| b.duration_ns.cmp(&a.duration_ns).then(b.seq.cmp(&a.seq)));
        out.truncate(k);
        out
    }

    /// Take everything, slowest first.
    pub(crate) fn drain(&mut self) -> Vec<SlowOp> {
        let mut out = std::mem::take(&mut self.entries);
        out.sort_by(|a, b| b.duration_ns.cmp(&a.duration_ns).then(b.seq.cmp(&a.seq)));
        out
    }
}

/// An open RAII span. Created by [`LatencyRecorder::start`] (or the
/// `span!` macro); the drop records the elapsed time. Inert — a single
/// branch, no clock read — when the recorder came from a disabled
/// [`Obs`](crate::Obs) handle.
#[derive(Debug)]
pub struct SpanGuard {
    live: Option<LiveSpan>,
}

#[derive(Debug)]
struct LiveSpan {
    start: Instant,
    depth: u32,
    cell: Arc<LatencyCell>,
    registry: Arc<ObsRegistry>,
}

impl SpanGuard {
    #[inline]
    pub(crate) fn open(recorder: &LatencyRecorder) -> SpanGuard {
        match &recorder.0 {
            None => SpanGuard { live: None },
            Some((cell, registry)) => {
                let depth = DEPTH.with(|d| {
                    let depth = d.get();
                    d.set(depth + 1);
                    depth
                });
                SpanGuard {
                    live: Some(LiveSpan {
                        start: Instant::now(),
                        depth,
                        cell: Arc::clone(cell),
                        registry: Arc::clone(registry),
                    }),
                }
            }
        }
    }
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        let Some(live) = self.live.take() else { return };
        let ns = live.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        live.cell.record(ns);
        let seq = live.registry.span_seq.fetch_add(1, Ordering::Relaxed);
        // Fast path: once the log is full, spans at or below its floor
        // cannot enter it — skip the mutex.
        let floor = live.registry.slow_floor_ns.load(Ordering::Relaxed);
        if floor > 0 && ns <= floor {
            return;
        }
        let op = SlowOp {
            name: live.cell.name.clone(),
            duration_ns: ns,
            depth: live.depth,
            seq,
        };
        let new_floor = live.registry.slow.lock().offer(op);
        live.registry
            .slow_floor_ns
            .store(new_floor, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Obs;

    #[test]
    fn disabled_spans_are_inert() {
        let obs = Obs::disabled();
        let rec = obs.latency("x_ns");
        {
            let _s = rec.start();
            let _nested = rec.start();
        }
        assert_eq!(rec.snapshot().count, 0);
        assert!(obs.slow_ops(16).is_empty());
    }

    #[test]
    fn spans_record_and_reach_slow_log() {
        let obs = Obs::enabled();
        let rec = obs.latency("stage_ns");
        for _ in 0..5 {
            let _s = rec.start();
        }
        let snap = rec.snapshot();
        assert_eq!(snap.count, 5);
        assert!(
            snap.max_ns >= 1,
            "monotonic clock should tick across a span"
        );
        let ops = obs.slow_ops(16);
        assert_eq!(ops.len(), 5);
        assert!(ops.windows(2).all(|w| w[0].duration_ns >= w[1].duration_ns));
        assert!(ops.iter().all(|o| o.name == "stage_ns" && o.depth == 0));
    }

    #[test]
    fn nesting_depth_is_tracked_per_thread() {
        let obs = Obs::enabled();
        let outer = obs.latency("outer_ns");
        let inner = obs.latency("inner_ns");
        {
            let _o = outer.start();
            let _i = inner.start();
        }
        let ops = obs.drain_slow_ops();
        let inner_op = ops.iter().find(|o| o.name == "inner_ns").unwrap();
        let outer_op = ops.iter().find(|o| o.name == "outer_ns").unwrap();
        assert_eq!(outer_op.depth, 0);
        assert_eq!(inner_op.depth, 1);
        // Depth counter restored: a fresh span is top-level again.
        {
            let _o = outer.start();
        }
        let ops = obs.drain_slow_ops();
        assert_eq!(ops[0].depth, 0);
    }

    #[test]
    fn slow_log_is_bounded_and_keeps_slowest() {
        let obs = Obs::enabled();
        let reg = obs.registry().unwrap();
        let rec = obs.latency("op_ns");
        // Synthetic offers with controlled durations (recording through
        // the cell would use the real clock).
        let cell = rec.0.as_ref().unwrap().0.clone();
        let _ = cell; // keep recorder shape honest
        for i in 0..(SLOW_OP_CAPACITY as u64 + 40) {
            let floor = reg.slow.lock().offer(SlowOp {
                name: "op_ns".into(),
                duration_ns: i,
                depth: 0,
                seq: i,
            });
            reg.slow_floor_ns
                .store(floor, std::sync::atomic::Ordering::Relaxed);
        }
        let ops = obs.slow_ops(SLOW_OP_CAPACITY + 10);
        assert_eq!(ops.len(), SLOW_OP_CAPACITY);
        // The retained set is exactly the slowest CAPACITY durations.
        assert_eq!(ops[0].duration_ns, SLOW_OP_CAPACITY as u64 + 39);
        assert_eq!(ops.last().unwrap().duration_ns, 40);
        // Floor pre-filter reflects the smallest retained duration.
        assert_eq!(
            reg.slow_floor_ns.load(std::sync::atomic::Ordering::Relaxed),
            40
        );
        let drained = obs.drain_slow_ops();
        assert_eq!(drained.len(), SLOW_OP_CAPACITY);
        assert!(obs.slow_ops(4).is_empty());
        assert_eq!(
            reg.slow_floor_ns.load(std::sync::atomic::Ordering::Relaxed),
            0
        );
    }
}
