//! Per-node wire ingest sessions, fleet health, and the in-process
//! batch transport.
//!
//! A [`FleetAggregator`] owns one [`FleetStore`] plus one ingest
//! session per node exporter stream. Ingest enforces the consumption
//! rules of `docs/EXPORT_FORMAT.md` §"Aggregator consumption":
//!
//! * **batch cursor** — `seq` must advance monotonically per node;
//!   a replayed batch (`seq < next`) is rejected whole (samples are not
//!   keyed, so re-applying would double-count them), a skipped range
//!   (`seq > next`) is accepted and the gap counted;
//! * **registry mapping** — `meta` records bind node-local wire ids to
//!   fleet metrics (`node/name`); data records arriving before their
//!   meta are dropped and counted (`unmapped_records`);
//! * **column framing** — a `sketch` column must follow its bucket (or
//!   a sibling column) within the batch, per the wire spec; orphans are
//!   dropped and counted rather than absorbed into the wrong slot;
//! * **monotonic samples** — per-metric out-of-order raw samples are
//!   rejected by the fleet ring and counted (this is also what makes a
//!   restarted node exporter re-shipping its retained tail safe: the
//!   already-seen prefix bounces off the monotonic guard, buckets
//!   overwrite by key);
//! * **compressed chunks** — a `chunk` record (wire spec revision 1.1)
//!   decodes on absorb and bulk-appends into the fleet ring; an
//!   overlapping re-ship falls back to per-sample pushes so the
//!   monotonic guard keeps exact duplicate accounting, and an
//!   undecodable payload is dropped whole and counted.
//!
//! Health ([`FleetAggregator::health`]) classifies each node by **drain
//! lag** — how far the node's newest ingested data sits behind a
//! reference clock — and folds in the out-of-band
//! [`DrainStats`] a co-located exporter reports
//! ([`FleetAggregator::report_drain`]), so missed/evicted node-side
//! accounting surfaces at the fleet level next to the wire-level
//! duplicate/gap/orphan counters.

use crate::store::{FleetStore, NodeId};
use crossbeam::channel::Sender;
use moda_obs::{Counter, LatencyRecorder, Obs};
use moda_sim::{SimDuration, SimTime};
use moda_telemetry::export::{ExportBatch, ExportRecord};
use moda_telemetry::{DrainStats, MetricId, Sink};
use std::io;

/// Lifetime wire counters of one node's ingest session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeCounters {
    /// Batches applied.
    pub batches: u64,
    /// Batches rejected as duplicates (`seq` already covered).
    pub duplicate_batches: u64,
    /// Times the sequence jumped forward (exporter restarted mid-stream
    /// or transport dropped batches).
    pub gaps: u64,
    /// Batches known missing across those gaps (sum of jump widths).
    pub missing_batches: u64,
    /// Records applied (all kinds).
    pub records: u64,
    /// Raw samples accepted into the fleet store (per-sample records
    /// plus the samples decoded out of compressed chunk records).
    pub samples: u64,
    /// Raw samples rejected by the per-metric monotonic guard.
    pub rejected_samples: u64,
    /// Compressed raw-chunk records applied (their decoded samples are
    /// counted in `samples`/`rejected_samples`).
    pub chunks: u64,
    /// Chunk records dropped because the payload failed to decode.
    pub corrupt_chunks: u64,
    /// Sealed buckets applied.
    pub buckets: u64,
    /// Sketch columns applied.
    pub sketch_entries: u64,
    /// Sketch columns dropped for violating the follows-its-bucket
    /// framing rule.
    pub orphan_sketches: u64,
    /// Data records dropped because no `meta` had mapped their wire id.
    pub unmapped_records: u64,
}

/// What one [`FleetAggregator::ingest`] call did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// The batch was applied (false: rejected as a duplicate).
    pub applied: bool,
    /// The batch was a duplicate (`seq` below the cursor).
    pub duplicate: bool,
    /// Batches skipped between the cursor and this batch's `seq`.
    pub gap: u64,
    /// Records applied from this batch.
    pub records: u64,
}

/// Liveness classification of one node, by drain lag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeLiveness {
    /// Lag within the staleness bound.
    Live,
    /// Data is older than the staleness bound.
    Stale,
    /// The session has never ingested any data.
    Silent,
}

/// Point-in-time health of one node's ingest session.
#[derive(Debug, Clone)]
pub struct NodeHealth {
    /// The node.
    pub node: NodeId,
    /// Its registered name.
    pub name: String,
    /// Wire counters so far.
    pub counters: NodeCounters,
    /// Newest data timestamp ingested (sample time or bucket end);
    /// `SimTime::ZERO` when silent.
    pub high_water: SimTime,
    /// `now − high_water`: how far the node's ingested view lags the
    /// reference clock (full window when silent).
    pub drain_lag: SimDuration,
    /// Classification of that lag.
    pub liveness: NodeLiveness,
    /// Node-side exporter totals reported out-of-band
    /// ([`FleetAggregator::report_drain`]); zero when never reported.
    /// `missed_samples`/`missed_buckets` here are the node-side
    /// eviction-before-export counters — the fleet's view of telemetry
    /// the wire never carried.
    pub drain: DrainStats,
}

/// Liveness-classification policy for [`FleetAggregator::health_with`]
/// and [`FleetAggregator::track_health`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthPolicy {
    /// Drain lag beyond which an ingesting node is [`NodeLiveness::Stale`].
    pub stale_after: SimDuration,
    /// Drain lag beyond which even a previously-ingesting node is
    /// demoted to [`NodeLiveness::Silent`] — the "gone dark" bound that
    /// lets a node walk the full live→stale→silent ladder (and climb
    /// back when its stream resumes). `None` keeps the original
    /// semantics: silent means *never* ingested.
    pub silent_after: Option<SimDuration>,
}

impl HealthPolicy {
    /// Staleness-only policy (the [`FleetAggregator::health`] behaviour).
    pub fn stale_only(stale_after: SimDuration) -> Self {
        HealthPolicy {
            stale_after,
            silent_after: None,
        }
    }
}

/// One observed liveness change of one node
/// ([`FleetAggregator::track_health`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthTransition {
    /// Reference clock at which the change was observed.
    pub t: SimTime,
    /// The node.
    pub node: NodeId,
    /// Classification before.
    pub from: NodeLiveness,
    /// Classification after.
    pub to: NodeLiveness,
}

/// Lifetime counters over observed liveness transitions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HealthTransitionStats {
    /// All transitions observed (sum of the buckets below).
    pub transitions: u64,
    /// Degradations into [`NodeLiveness::Stale`].
    pub to_stale: u64,
    /// Degradations into [`NodeLiveness::Silent`] (a node going dark
    /// under a [`HealthPolicy::silent_after`] bound).
    pub to_silent: u64,
    /// Recoveries back to [`NodeLiveness::Live`].
    pub recovered: u64,
}

/// Fleet-level health rollup.
#[derive(Debug, Clone)]
pub struct FleetHealth {
    /// Per-node health, node order.
    pub nodes: Vec<NodeHealth>,
    /// Nodes classified [`NodeLiveness::Live`].
    pub live: usize,
    /// Nodes classified [`NodeLiveness::Stale`].
    pub stale: usize,
    /// Nodes classified [`NodeLiveness::Silent`].
    pub silent: usize,
    /// Newest data timestamp ingested across the fleet.
    pub observed_now: SimTime,
}

/// One node's ingest session state. Crate-visible so `persist` can
/// snapshot and restore sessions field-for-field.
#[derive(Debug)]
pub(crate) struct NodeSession {
    pub(crate) name: String,
    pub(crate) next_seq: u64,
    /// Node-local wire id → fleet metric id.
    pub(crate) wire_map: Vec<Option<MetricId>>,
    pub(crate) counters: NodeCounters,
    pub(crate) high_water: SimTime,
    pub(crate) ever_ingested: bool,
    pub(crate) drain: DrainStats,
}

/// The fleet aggregation tier: a [`FleetStore`] fed by per-node wire
/// ingest sessions. See the crate docs for the end-to-end shape and
/// `tests/props.rs` for the merge-algebra guarantees.
#[derive(Debug, Default)]
pub struct FleetAggregator {
    store: FleetStore,
    sessions: Vec<NodeSession>,
    /// Last classification seen by [`FleetAggregator::track_health`],
    /// per node. Monitoring state, not persisted: a recovered
    /// aggregator re-baselines on its first tracked health pass.
    last_liveness: Vec<Option<NodeLiveness>>,
    /// Bounded ring of observed transitions, oldest first.
    health_events: std::collections::VecDeque<HealthTransition>,
    transition_stats: HealthTransitionStats,
    /// Self-telemetry handle (disabled by default) and the ingest
    /// instruments pre-resolved against it by
    /// [`FleetAggregator::set_obs`].
    obs: Obs,
    obs_ingest: IngestObs,
}

/// Pre-resolved `fleet.ingest.*` instruments — resolved once in
/// [`FleetAggregator::set_obs`] so the hot ingest path never touches
/// the registry's name map. All inert on a disabled handle.
#[derive(Debug, Default, Clone)]
struct IngestObs {
    /// `fleet.ingest.batches` — applied batches.
    batches: Counter,
    /// `fleet.ingest.duplicate_batches` — replays rejected whole.
    duplicates: Counter,
    /// `fleet.ingest.records` — records applied from accepted batches.
    records: Counter,
    /// `fleet.ingest.samples` — raw samples absorbed into the store.
    samples: Counter,
    /// `fleet.ingest.rejected_samples` — bounced off the monotonic guard.
    rejected: Counter,
    /// `fleet.ingest.sessions` — node sessions ever opened.
    sessions: Counter,
    /// `fleet.ingest_ns` — wall time of one [`FleetAggregator::ingest`].
    ingest_ns: LatencyRecorder,
}

/// Retained [`HealthTransition`] events per aggregator — enough for any
/// scenario-length audit mirror; long-running services drain them via
/// [`FleetAggregator::take_health_events`].
const HEALTH_EVENT_CAPACITY: usize = 1024;

impl FleetAggregator {
    /// Aggregator with default store sizing.
    pub fn new() -> Self {
        Self::default()
    }

    /// Aggregator over a custom-sized store (e.g. bounded raw rings for
    /// high-cardinality fleets).
    pub fn with_store(store: FleetStore) -> Self {
        FleetAggregator {
            store,
            ..FleetAggregator::default()
        }
    }

    /// Open an ingest session for one node exporter stream. One session
    /// consumes **one** logical stream: if a node's exporter restarts
    /// from scratch (its `seq` resets to 0), open a fresh session via
    /// [`FleetAggregator::reset_session`] — metric mappings and store
    /// data persist; only the batch cursor resets.
    pub fn add_node(&mut self, name: &str) -> NodeId {
        let id = NodeId(self.sessions.len() as u32);
        self.sessions.push(NodeSession {
            name: name.to_string(),
            next_seq: 0,
            wire_map: Vec::new(),
            counters: NodeCounters::default(),
            high_water: SimTime::ZERO,
            ever_ingested: false,
            drain: DrainStats::default(),
        });
        self.obs_ingest.sessions.add(1);
        id
    }

    /// Registered nodes.
    pub fn node_count(&self) -> usize {
        self.sessions.len()
    }

    /// Name a node was registered under.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.sessions[node.index()].name
    }

    /// The cluster store (all queries live there).
    pub fn store(&self) -> &FleetStore {
        &self.store
    }

    /// Attach a self-telemetry handle. Resolves every `fleet.ingest.*`
    /// instrument once, up front — the ingest hot path then works on
    /// pre-resolved atomics (or inert no-ops when `obs` is disabled).
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs_ingest = IngestObs {
            batches: obs.counter("fleet.ingest.batches"),
            duplicates: obs.counter("fleet.ingest.duplicate_batches"),
            records: obs.counter("fleet.ingest.records"),
            samples: obs.counter("fleet.ingest.samples"),
            rejected: obs.counter("fleet.ingest.rejected_samples"),
            sessions: obs.counter("fleet.ingest.sessions"),
            ingest_ns: obs.latency("fleet.ingest_ns"),
        };
        self.obs = obs;
    }

    /// The attached self-telemetry handle (disabled unless
    /// [`FleetAggregator::set_obs`] was called).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Session list, for snapshot/restore.
    pub(crate) fn sessions(&self) -> &[NodeSession] {
        &self.sessions
    }

    /// Mutable session list, for snapshot restore.
    pub(crate) fn sessions_mut(&mut self) -> &mut Vec<NodeSession> {
        &mut self.sessions
    }

    /// Next batch `seq` this node's session expects — the cursor a
    /// reconnecting exporter resumes from (see `transport`).
    pub fn next_seq(&self, node: NodeId) -> u64 {
        self.sessions[node.index()].next_seq
    }

    /// Look up a node session by its registered name (the transport
    /// hello carries the name, not the id).
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.sessions
            .iter()
            .position(|s| s.name == name)
            .map(|i| NodeId(i as u32))
    }

    /// Reset a node's batch cursor to 0 — the "node exporter restarted
    /// with a fresh stream" handshake. Store data and metric mappings
    /// persist; the restarted exporter's re-shipped retained tail
    /// deduplicates via the monotonic sample guard and bucket
    /// overwrite-by-key.
    pub fn reset_session(&mut self, node: NodeId) {
        self.sessions[node.index()].next_seq = 0;
    }

    /// Wire counters of one node.
    pub fn counters(&self, node: NodeId) -> NodeCounters {
        self.sessions[node.index()].counters
    }

    /// Node-side exporter totals last reported for `node`.
    pub fn drain_stats(&self, node: NodeId) -> DrainStats {
        self.sessions[node.index()].drain
    }

    /// Fold a co-located node exporter's [`DrainStats`] into the node's
    /// health (out-of-band: the wire itself does not carry drain
    /// accounting). Call with per-drain stats (accumulates) or once
    /// with `Exporter::totals` — the fleet keeps the running sum.
    pub fn report_drain(&mut self, node: NodeId, stats: &DrainStats) {
        self.sessions[node.index()].drain.merge(stats);
    }

    /// Ingest one wire batch from `node`'s stream. Returns what
    /// happened; all counters accumulate on the session.
    pub fn ingest(&mut self, node: NodeId, batch: &ExportBatch) -> IngestReport {
        let _span = self.obs_ingest.ingest_ns.start();
        let session = &mut self.sessions[node.index()];
        let (samples0, rejected0) = (session.counters.samples, session.counters.rejected_samples);
        let mut report = IngestReport::default();
        if batch.seq < session.next_seq {
            session.counters.duplicate_batches += 1;
            report.duplicate = true;
            self.obs_ingest.duplicates.add(1);
            return report;
        }
        if batch.seq > session.next_seq {
            report.gap = batch.seq - session.next_seq;
            session.counters.gaps += 1;
            session.counters.missing_batches += report.gap;
        }
        session.next_seq = batch.seq + 1;
        session.counters.batches += 1;
        report.applied = true;

        // The follows-its-bucket framing cursor: the key of the bucket
        // whose columns may legally arrive next. Cleared by any
        // non-tier record and at batch end (columns never split across
        // batches).
        let mut open_bucket: Option<(MetricId, u64, u64)> = None;
        for r in &batch.records {
            match r {
                ExportRecord::Meta { id, meta } => {
                    open_bucket = None;
                    let widx = id.index();
                    if session.wire_map.len() <= widx {
                        session.wire_map.resize(widx + 1, None);
                    }
                    let fleet_id = self.store.register(node, &session.name, meta);
                    session.wire_map[widx] = Some(fleet_id);
                    session.counters.records += 1;
                    report.records += 1;
                }
                ExportRecord::Sample { id, t, value } => {
                    open_bucket = None;
                    let Some(fleet_id) = session.wire_map.get(id.index()).copied().flatten() else {
                        session.counters.unmapped_records += 1;
                        continue;
                    };
                    if self.store.push_sample(fleet_id, *t, *value) {
                        session.counters.samples += 1;
                    } else {
                        session.counters.rejected_samples += 1;
                    }
                    session.counters.records += 1;
                    report.records += 1;
                    session.high_water = session.high_water.max(*t);
                    session.ever_ingested = true;
                }
                ExportRecord::Chunk {
                    id,
                    count,
                    first_t,
                    last_t,
                    bytes,
                } => {
                    open_bucket = None;
                    let Some(fleet_id) = session.wire_map.get(id.index()).copied().flatten() else {
                        session.counters.unmapped_records += 1;
                        continue;
                    };
                    let (accepted, rejected) =
                        self.store.push_chunk(fleet_id, *first_t, *count, bytes);
                    if accepted == 0 && rejected == 0 {
                        // Undecodable payload: dropped whole, counted,
                        // and not treated as ingested data.
                        session.counters.corrupt_chunks += 1;
                        continue;
                    }
                    session.counters.chunks += 1;
                    session.counters.samples += accepted;
                    session.counters.rejected_samples += rejected;
                    session.counters.records += 1;
                    report.records += 1;
                    session.high_water = session.high_water.max(*last_t);
                    session.ever_ingested = true;
                }
                ExportRecord::Bucket {
                    id,
                    res,
                    start,
                    count,
                    sum,
                    min,
                    max,
                    last,
                } => {
                    let Some(fleet_id) = session.wire_map.get(id.index()).copied().flatten() else {
                        open_bucket = None;
                        session.counters.unmapped_records += 1;
                        continue;
                    };
                    self.store
                        .apply_bucket(fleet_id, *res, *start, *count, *sum, *min, *max, *last);
                    open_bucket = Some((fleet_id, res.0, start.0));
                    session.counters.buckets += 1;
                    session.counters.records += 1;
                    report.records += 1;
                    session.high_water = session
                        .high_water
                        .max(SimTime(start.0.saturating_add(res.0)));
                    session.ever_ingested = true;
                }
                ExportRecord::Sketch {
                    id,
                    res,
                    start,
                    entry,
                } => {
                    let Some(fleet_id) = session.wire_map.get(id.index()).copied().flatten() else {
                        session.counters.unmapped_records += 1;
                        continue;
                    };
                    if open_bucket != Some((fleet_id, res.0, start.0)) {
                        session.counters.orphan_sketches += 1;
                        continue;
                    }
                    self.store.apply_sketch(fleet_id, *res, *start, *entry);
                    session.counters.sketch_entries += 1;
                    session.counters.records += 1;
                    report.records += 1;
                }
            }
        }
        self.obs_ingest.batches.add(1);
        self.obs_ingest.records.add(report.records);
        self.obs_ingest
            .samples
            .add(session.counters.samples - samples0);
        self.obs_ingest
            .rejected
            .add(session.counters.rejected_samples - rejected0);
        report
    }

    /// Newest data timestamp ingested across all nodes.
    pub fn observed_now(&self) -> SimTime {
        self.sessions
            .iter()
            .map(|s| s.high_water)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Classify every node's drain lag against `now` (pass the
    /// harness/simulation clock, or [`FleetAggregator::observed_now`]
    /// to measure lag behind the most-live node): lag within
    /// `stale_after` is [`NodeLiveness::Live`], beyond it
    /// [`NodeLiveness::Stale`]; sessions that never ingested data are
    /// [`NodeLiveness::Silent`].
    pub fn health(&self, now: SimTime, stale_after: SimDuration) -> FleetHealth {
        self.health_with(now, HealthPolicy::stale_only(stale_after))
    }

    /// [`FleetAggregator::health`] under an explicit [`HealthPolicy`]:
    /// with a `silent_after` bound, a node whose lag crosses it is
    /// demoted all the way to [`NodeLiveness::Silent`] even though it
    /// ingested in the past — the full live→stale→silent ladder.
    pub fn health_with(&self, now: SimTime, policy: HealthPolicy) -> FleetHealth {
        let mut nodes = Vec::with_capacity(self.sessions.len());
        let (mut live, mut stale, mut silent) = (0, 0, 0);
        for (i, s) in self.sessions.iter().enumerate() {
            let drain_lag = now.saturating_since(s.high_water);
            let liveness = classify(s, drain_lag, policy);
            match liveness {
                NodeLiveness::Live => live += 1,
                NodeLiveness::Stale => stale += 1,
                NodeLiveness::Silent => silent += 1,
            }
            nodes.push(NodeHealth {
                node: NodeId(i as u32),
                name: s.name.clone(),
                counters: s.counters,
                high_water: s.high_water,
                drain_lag,
                liveness,
                drain: s.drain,
            });
        }
        FleetHealth {
            nodes,
            live,
            stale,
            silent,
            observed_now: self.observed_now(),
        }
    }

    /// [`FleetAggregator::health_with`] plus **transition tracking**:
    /// every node whose classification changed since the previous
    /// tracked pass emits a [`HealthTransition`] event and bumps the
    /// lifetime [`HealthTransitionStats`] — so live→stale→silent walks
    /// (and recoveries) surface as counters and an event feed instead
    /// of being observable only by diffing polls. The first tracked
    /// pass baselines without emitting.
    pub fn track_health(&mut self, now: SimTime, policy: HealthPolicy) -> FleetHealth {
        let h = self.health_with(now, policy);
        if self.last_liveness.len() < h.nodes.len() {
            self.last_liveness.resize(h.nodes.len(), None);
        }
        for n in &h.nodes {
            let slot = &mut self.last_liveness[n.node.index()];
            match *slot {
                Some(prev) if prev != n.liveness => {
                    self.transition_stats.transitions += 1;
                    match n.liveness {
                        NodeLiveness::Live => self.transition_stats.recovered += 1,
                        NodeLiveness::Stale => self.transition_stats.to_stale += 1,
                        NodeLiveness::Silent => self.transition_stats.to_silent += 1,
                    }
                    if self.health_events.len() == HEALTH_EVENT_CAPACITY {
                        self.health_events.pop_front();
                    }
                    self.health_events.push_back(HealthTransition {
                        t: now,
                        node: n.node,
                        from: prev,
                        to: n.liveness,
                    });
                }
                _ => {}
            }
            *slot = Some(n.liveness);
        }
        h
    }

    /// Retained transition events, oldest first.
    pub fn health_events(&self) -> impl Iterator<Item = &HealthTransition> {
        self.health_events.iter()
    }

    /// Drain the retained transition events (for mirroring into an
    /// audit log without re-reporting on the next pass).
    pub fn take_health_events(&mut self) -> Vec<HealthTransition> {
        self.health_events.drain(..).collect()
    }

    /// Lifetime transition counters.
    pub fn health_transition_stats(&self) -> HealthTransitionStats {
        self.transition_stats
    }
}

/// Apply a [`HealthPolicy`] to one session's drain lag.
fn classify(s: &NodeSession, drain_lag: SimDuration, policy: HealthPolicy) -> NodeLiveness {
    if !s.ever_ingested {
        return NodeLiveness::Silent;
    }
    if let Some(silent_after) = policy.silent_after {
        if drain_lag.0 > silent_after.0 {
            return NodeLiveness::Silent;
        }
    }
    if drain_lag.0 <= policy.stale_after.0 {
        NodeLiveness::Live
    } else {
        NodeLiveness::Stale
    }
}

// ----------------------------------------------------------- transport

/// What flows from a node exporter to the aggregator thread.
#[derive(Debug)]
pub enum FleetMsg {
    /// One wire batch from one node's export stream.
    Batch(NodeId, ExportBatch),
    /// A node exporter's drain totals (out-of-band health feed).
    Drain(NodeId, DrainStats),
}

/// The in-process node→aggregator transport: a [`Sink`] that forwards
/// every batch over a crossbeam channel, tagged with the node id — the
/// K-exporters→one-aggregator topology without serialization. A
/// disconnected aggregator surfaces as a sink error, which the exporter
/// turns into a cursor rollback (nothing is lost; the next drain
/// re-stages).
#[derive(Clone)]
pub struct ChannelSink {
    node: NodeId,
    tx: Sender<FleetMsg>,
}

impl std::fmt::Debug for ChannelSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The vendored channel Sender carries no Debug; the node id is
        // the informative part anyway.
        f.debug_struct("ChannelSink")
            .field("node", &self.node)
            .finish()
    }
}

impl ChannelSink {
    /// Sink forwarding `node`'s batches over `tx`.
    pub fn new(node: NodeId, tx: Sender<FleetMsg>) -> Self {
        ChannelSink { node, tx }
    }

    /// Forward drain totals to the aggregator's health feed.
    pub fn send_drain(&self, stats: DrainStats) -> io::Result<()> {
        self.tx
            .send(FleetMsg::Drain(self.node, stats))
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "aggregator disconnected"))
    }
}

impl Sink for ChannelSink {
    fn write_batch(&mut self, batch: &ExportBatch) -> io::Result<()> {
        self.tx
            .send(FleetMsg::Batch(self.node, batch.clone()))
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "aggregator disconnected"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moda_telemetry::export::MemorySink;
    use moda_telemetry::{
        Exporter, MetricMeta, QuantileSketch, RollupConfig, RollupTier, SourceDomain, Tsdb,
        WindowAgg,
    };

    /// One node store with a tiny sketched pyramid and `n` 1 Hz samples.
    fn node_db(n: u64, offset: f64) -> Tsdb {
        let mut db = Tsdb::with_retention(1 << 12);
        let id = db.register(MetricMeta::gauge("m", "u", SourceDomain::Hardware));
        db.enable_rollups(
            id,
            &RollupConfig::new(vec![
                RollupTier::new(SimDuration::from_secs(10), 256),
                RollupTier::new(SimDuration::from_secs(60), 64),
            ])
            .with_sketches(),
        );
        for s in 0..n {
            db.insert(id, SimTime::from_secs(s), offset + (s % 20) as f64);
        }
        db
    }

    fn batches_of(db: &Tsdb, batch_records: usize) -> Vec<ExportBatch> {
        let mut sink = MemorySink::new();
        Exporter::new()
            .with_batch_records(batch_records)
            .drain(db, &mut sink)
            .unwrap();
        sink.batches
    }

    #[test]
    fn ingest_maps_metrics_and_tracks_high_water() {
        let mut agg = FleetAggregator::new();
        let n0 = agg.add_node("node00");
        let n1 = agg.add_node("node01");
        let db0 = node_db(300, 0.0);
        let db1 = node_db(200, 100.0);
        for b in batches_of(&db0, 64) {
            let r = agg.ingest(n0, &b);
            assert!(r.applied && !r.duplicate && r.gap == 0);
        }
        for b in batches_of(&db1, 64) {
            agg.ingest(n1, &b);
        }
        let store = agg.store();
        assert_eq!(store.cardinality(), 2);
        assert!(store.lookup("node00/m").is_some());
        assert_eq!(store.logical_members("m").len(), 2);
        let c0 = agg.counters(n0);
        assert_eq!(c0.samples, 300);
        assert_eq!(c0.orphan_sketches, 0);
        assert_eq!(c0.unmapped_records, 0);
        assert!(c0.buckets > 0 && c0.sketch_entries > 0);
        // High water = newest sample beats the last sealed bucket end.
        assert_eq!(agg.observed_now(), SimTime::from_secs(299));
        // Fleet query spans both nodes.
        let mean = store
            .fleet_window_agg(
                "m",
                SimTime::from_secs(299),
                SimDuration::from_secs(100),
                WindowAgg::Count,
            )
            .unwrap();
        assert_eq!(mean, 100.0, "only node00 has data in the last 100 s");
    }

    #[test]
    fn compressed_chunks_ingest_natively_and_reships_deduplicate() {
        let mut agg = FleetAggregator::new();
        let n = agg.add_node("node00");
        // 1500 one-Hz samples: two sealed 512-sample chunks plus a
        // 476-sample tail on the node store.
        let db = node_db(1500, 0.0);
        for b in batches_of(&db, 256) {
            agg.ingest(n, &b);
        }
        let c = agg.counters(n);
        assert_eq!(c.chunks, 2, "sealed regions ship as chunk records");
        assert_eq!(c.samples, 1500, "chunk-decoded + per-sample tail");
        assert_eq!(c.rejected_samples, 0);
        assert_eq!(c.corrupt_chunks, 0);
        assert_eq!(agg.store().stats().corrupt_chunks, 0);
        assert_eq!(agg.observed_now(), SimTime::from_secs(1499));
        // The decoded samples are bit-identical to the node's.
        let id = agg.store().lookup("node00/m").unwrap();
        let got = agg.store().raw(id).last_n(1500);
        assert_eq!(got.len(), 1500);
        for (i, s) in got.iter().enumerate() {
            assert_eq!(s.t, SimTime::from_secs(i as u64));
            assert_eq!(s.value.to_bits(), ((i % 20) as f64).to_bits());
        }
        // A restarted exporter re-ships the retained tail from scratch:
        // the overlapping chunks fall back to per-sample pushes and the
        // monotonic guard rejects every already-seen sample.
        agg.reset_session(n);
        for b in batches_of(&db, 256) {
            agg.ingest(n, &b);
        }
        let c = agg.counters(n);
        assert_eq!(c.samples, 1500 + 1, "only the newest sample re-lands");
        assert_eq!(c.rejected_samples, 1499);
        assert_eq!(agg.store().raw(id).len(), 1501);
        // A corrupted chunk payload is dropped whole and counted.
        let bad = ExportBatch {
            seq: agg.counters(n).batches,
            records: vec![ExportRecord::Chunk {
                id: MetricId(0),
                count: 100,
                first_t: SimTime::from_secs(2000),
                last_t: SimTime::from_secs(2099),
                bytes: vec![0xFF, 0x00, 0x12],
            }],
        };
        agg.ingest(n, &bad);
        assert_eq!(agg.counters(n).corrupt_chunks, 1);
        assert_eq!(agg.store().stats().corrupt_chunks, 1);
        assert_eq!(agg.store().raw(id).len(), 1501, "store untouched");
    }

    #[test]
    fn duplicate_batches_are_rejected_whole_and_gaps_counted() {
        let mut agg = FleetAggregator::new();
        let n = agg.add_node("node00");
        let batches = batches_of(&node_db(100, 0.0), 32);
        assert!(batches.len() >= 3, "need several batches");
        for b in &batches {
            agg.ingest(n, b);
        }
        let samples_before = agg.counters(n).samples;
        // Replay of an already-covered batch: rejected, nothing applied.
        let r = agg.ingest(n, &batches[1]);
        assert!(!r.applied && r.duplicate);
        assert_eq!(agg.counters(n).samples, samples_before);
        assert_eq!(agg.counters(n).duplicate_batches, 1);
        // A forward jump is accepted and the missing range counted.
        let jumped = ExportBatch {
            seq: batches.len() as u64 + 5,
            records: vec![],
        };
        let r = agg.ingest(n, &jumped);
        assert!(r.applied);
        assert_eq!(r.gap, 5);
        assert_eq!(agg.counters(n).gaps, 1);
        assert_eq!(agg.counters(n).missing_batches, 5);
        // After reset_session, a fresh stream restarting at 0 is legal.
        agg.reset_session(n);
        let r = agg.ingest(
            n,
            &ExportBatch {
                seq: 0,
                records: vec![],
            },
        );
        assert!(r.applied && !r.duplicate);
    }

    #[test]
    fn orphan_and_unmapped_records_are_dropped_and_counted() {
        let mut agg = FleetAggregator::new();
        let n = agg.add_node("node00");
        let entry = QuantileSketch::new().wire_entries().next();
        assert!(entry.is_none());
        let mut sk = QuantileSketch::new();
        sk.fold(5.0);
        let entry = sk.wire_entries().next().unwrap();
        // Sample before its meta → unmapped; sketch with no preceding
        // bucket → orphan (after the meta maps the id).
        let meta = MetricMeta::gauge("m", "u", SourceDomain::Hardware);
        let batch = ExportBatch {
            seq: 0,
            records: vec![
                ExportRecord::Sample {
                    id: MetricId(0),
                    t: SimTime::from_secs(1),
                    value: 1.0,
                },
                ExportRecord::Meta {
                    id: MetricId(0),
                    meta: meta.clone(),
                },
                ExportRecord::Sketch {
                    id: MetricId(0),
                    res: SimDuration::from_secs(60),
                    start: SimTime::ZERO,
                    entry,
                },
            ],
        };
        agg.ingest(n, &batch);
        let c = agg.counters(n);
        assert_eq!(c.unmapped_records, 1);
        assert_eq!(c.orphan_sketches, 1);
        assert_eq!(c.samples, 0);
        assert_eq!(c.sketch_entries, 0);
        // The orphan column did not corrupt the store.
        let id = agg.store().lookup("node00/m").unwrap();
        assert_eq!(
            agg.store().buckets(id, SimDuration::from_secs(60)).count(),
            0
        );
    }

    #[test]
    fn health_classifies_liveness_and_carries_drain_stats() {
        let mut agg = FleetAggregator::new();
        let fresh = agg.add_node("fresh");
        let lagging = agg.add_node("lagging");
        let silent = agg.add_node("silent");
        for b in batches_of(&node_db(600, 0.0), 1024) {
            agg.ingest(fresh, &b);
        }
        for b in batches_of(&node_db(100, 0.0), 1024) {
            agg.ingest(lagging, &b);
        }
        agg.report_drain(
            lagging,
            &DrainStats {
                missed_samples: 7,
                ..DrainStats::default()
            },
        );
        let h = agg.health(SimTime::from_secs(600), SimDuration::from_secs(120));
        assert_eq!((h.live, h.stale, h.silent), (1, 1, 1));
        assert_eq!(h.observed_now, SimTime::from_secs(599));
        assert_eq!(h.nodes[fresh.index()].liveness, NodeLiveness::Live);
        let lag = &h.nodes[lagging.index()];
        assert_eq!(lag.liveness, NodeLiveness::Stale);
        assert_eq!(lag.drain_lag, SimDuration::from_secs(600 - 99));
        assert_eq!(lag.drain.missed_samples, 7);
        assert_eq!(h.nodes[silent.index()].liveness, NodeLiveness::Silent);
    }

    #[test]
    fn track_health_emits_transitions_and_counters() {
        let mut agg = FleetAggregator::new();
        let n = agg.add_node("node00");
        let policy = HealthPolicy {
            stale_after: SimDuration::from_secs(120),
            silent_after: Some(SimDuration::from_secs(600)),
        };
        // Baseline pass: silent (never ingested), no event emitted.
        let h = agg.track_health(SimTime::from_secs(0), policy);
        assert_eq!(h.silent, 1);
        assert_eq!(agg.health_events().count(), 0);
        assert_eq!(agg.health_transition_stats().transitions, 0);
        // Data arrives → silent→live recovery.
        for b in batches_of(&node_db(100, 0.0), 1024) {
            agg.ingest(n, &b);
        }
        agg.track_health(SimTime::from_secs(100), policy);
        let stats = agg.health_transition_stats();
        assert_eq!((stats.transitions, stats.recovered), (1, 1));
        // The clock runs ahead → live→stale, then past the silent
        // bound → stale→silent: the full ladder down.
        agg.track_health(SimTime::from_secs(300), policy);
        agg.track_health(SimTime::from_secs(800), policy);
        let stats = agg.health_transition_stats();
        assert_eq!(stats.transitions, 3);
        assert_eq!(stats.to_stale, 1);
        assert_eq!(stats.to_silent, 1);
        let walk: Vec<(NodeLiveness, NodeLiveness)> =
            agg.health_events().map(|e| (e.from, e.to)).collect();
        assert_eq!(
            walk,
            vec![
                (NodeLiveness::Silent, NodeLiveness::Live),
                (NodeLiveness::Live, NodeLiveness::Stale),
                (NodeLiveness::Stale, NodeLiveness::Silent),
            ]
        );
        // Unchanged classification emits nothing.
        agg.track_health(SimTime::from_secs(900), policy);
        assert_eq!(agg.health_transition_stats().transitions, 3);
        // Draining hands the events over exactly once.
        assert_eq!(agg.take_health_events().len(), 3);
        assert_eq!(agg.health_events().count(), 0);
        // Plain health() keeps the original semantics: silent only when
        // never ingested.
        let h = agg.health(SimTime::from_secs(900), SimDuration::from_secs(120));
        assert_eq!(h.nodes[n.index()].liveness, NodeLiveness::Stale);
    }

    #[test]
    fn channel_sink_forwards_batches_and_drain_totals() {
        let (tx, rx) = crossbeam::channel::unbounded();
        let db = node_db(50, 0.0);
        let mut exporter = Exporter::new();
        let mut sink = ChannelSink::new(NodeId(0), tx);
        let stats = exporter.drain(&db, &mut sink).unwrap();
        sink.send_drain(exporter.totals()).unwrap();
        drop(sink);
        let mut agg = FleetAggregator::new();
        let n = agg.add_node("node00");
        let mut drains = 0;
        while let Ok(msg) = rx.recv() {
            match msg {
                FleetMsg::Batch(node, batch) => {
                    agg.ingest(node, &batch);
                }
                FleetMsg::Drain(node, d) => {
                    agg.report_drain(node, &d);
                    drains += 1;
                }
            }
        }
        assert_eq!(drains, 1);
        assert_eq!(agg.counters(n).samples, stats.samples);
        assert_eq!(agg.drain_stats(n).samples, stats.samples);
    }
}
