//! Durability for the fleet tier: periodic snapshots plus an
//! append-only log of ingested wire batches.
//!
//! The fleet knowledge base is a *service* in the paper's center-level
//! deployment (ODA-in-Practice, DCDB Wintermute): it must survive a
//! restart without replaying every node from `seq 0`. This module makes
//! [`FleetAggregator`] restartable with two artifacts in a state
//! directory:
//!
//! * **`snapshot.bin`** — the full aggregator state (metric registry,
//!   wire-fed `WireTiers` pyramids, raw rings with their sealed
//!   Gorilla chunks shipped as `chunk` records, store counters, and
//!   every node session's cursor + wire counters), written atomically:
//!   `snapshot.tmp` + fsync + rename. A reader never observes a
//!   half-written snapshot.
//! * **`wal-<epoch>.log`** — every mutation since that snapshot, in
//!   arrival order, each entry one CRC-framed record (see
//!   `moda_telemetry::export::write_frame`): batches in the
//!   `export-wire-v1.1` binary encoding, node registrations, and
//!   out-of-band drain reports. The **epoch** number pairs log and
//!   snapshot: a snapshot stores the epoch of the log that follows it,
//!   so rotation (write snapshot `N+1` → create `wal-(N+1).log` →
//!   rename → delete `wal-N.log`) is crash-safe at every step — the
//!   surviving snapshot always names exactly one log file, and stray
//!   files from an interrupted rotation are ignored and cleaned up.
//!
//! **Discipline: log, then apply.** [`DurableFleet::ingest`] appends
//! the batch to the log (and flushes it to the OS) *before* applying it
//! to the in-memory aggregator. A `kill -9` therefore loses at most a
//! torn tail entry that was never applied; recovery
//! ([`DurableFleet::recover`]) restores the snapshot, replays the log
//! tail — re-delivered batches bounce off the existing per-session
//! duplicate guard — truncates any torn/corrupt tail (counted in
//! [`RecoveryStats`]), and resumes every node session at its persisted
//! cursor. A reconnecting exporter learns that cursor from the
//! transport handshake (see [`crate::transport`]) and ships only what
//! the server has not durably applied: zero re-ingest from `seq 0`.
//!
//! Durability scope: the log is flushed (`write(2)`) per entry, so
//! process crashes (`kill -9`) lose nothing that was acknowledged;
//! surviving a *machine* crash would additionally need `fsync` per
//! entry, which this tier deliberately trades away (snapshots *are*
//! fsynced).

use crate::aggregator::{FleetAggregator, IngestReport, NodeSession};
use crate::store::{FleetStore, FleetStoreStats, NodeId};
use moda_obs::{Counter, LatencyRecorder, Obs};
use moda_sim::{SimDuration, SimTime};
use moda_telemetry::export::{
    decode_batch, decode_drain_stats, encode_batch, encode_drain_stats, read_frame, write_frame,
    ExportBatch, ExportRecord, FrameEnd,
};
use moda_telemetry::{DrainStats, MetricId, MetricKind, MetricMeta, SourceDomain};
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

use crate::aggregator::NodeCounters;

// ---------------------------------------------------------- frame tags

/// Log entry: one ingested wire batch (`[node u32][batch bytes]`).
pub(crate) const FRAME_LOG_BATCH: u8 = 33;
/// Log entry: a node session was opened (`[name]`).
pub(crate) const FRAME_LOG_NODE: u8 = 32;
/// Log entry: an out-of-band exporter drain report
/// (`[node u32][drain stats]`).
pub(crate) const FRAME_LOG_DRAIN: u8 = 34;
/// The single frame inside `snapshot.bin`.
pub(crate) const FRAME_SNAPSHOT: u8 = 40;

/// Leading magic of `snapshot.bin` (version-suffixed).
const SNAPSHOT_MAGIC: &[u8; 8] = b"MODAFS02";

const SNAPSHOT_FILE: &str = "snapshot.bin";
const SNAPSHOT_TMP: &str = "snapshot.tmp";

fn wal_name(epoch: u64) -> String {
    format!("wal-{epoch}.log")
}

// ------------------------------------------------- byte-buffer helpers
//
// Tiny LE put/get helpers shared by the snapshot codec and the
// transport framing (`crate::transport`). The wire *records* themselves
// ride the canonical `export-wire-v1.1` binary codec in
// `moda_telemetry::export`; these cover the fleet-side envelopes
// (session state, handshake payloads, log entry prefixes).

pub(crate) fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    debug_assert!(s.len() <= u16::MAX as usize);
    put_u16(out, s.len() as u16);
    out.extend_from_slice(s.as_bytes());
}

/// LEB128 unsigned varint — the snapshot's tier section is dominated by
/// small integers (bucket deltas, counts, sketch keys), and recovery
/// cost is proportional to snapshot bytes (checksum + read), so the
/// bulk section earns a compact encoding.
pub(crate) fn put_uv(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Zigzag-fold a signed value so small magnitudes stay small varints.
pub(crate) fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

pub(crate) fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

pub(crate) fn bad_data(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("fleet decode: {what}"))
}

/// Bounds-checked cursor over a decode buffer.
pub(crate) struct Rd<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Rd<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Rd { buf, pos: 0 }
    }

    pub(crate) fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| bad_data("truncated field"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> io::Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub(crate) fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn f64(&mut self) -> io::Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// LEB128 unsigned varint (see [`put_uv`]).
    pub(crate) fn uv(&mut self) -> io::Result<u64> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            if shift >= 64 || (shift == 63 && b > 1) {
                return Err(bad_data("varint overflow"));
            }
            v |= u64::from(b & 0x7F) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    pub(crate) fn str(&mut self) -> io::Result<String> {
        let n = self.u16()? as usize;
        String::from_utf8(self.take(n)?.to_vec()).map_err(|_| bad_data("non-UTF-8 string"))
    }

    pub(crate) fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }

    pub(crate) fn done(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Bytes left to read — the sanity bound element-count prefixes are
    /// checked against before pre-allocating.
    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

// -------------------------------------------------------------- config

/// Tuning for [`DurableFleet`].
#[derive(Debug, Clone, Copy)]
pub struct DurabilityConfig {
    /// Take a snapshot (and truncate the log) every this many applied
    /// batches. The log between snapshots is the recovery replay bound.
    pub snapshot_every_batches: u64,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            snapshot_every_batches: 1024,
        }
    }
}

/// What [`DurableFleet::recover`] found and did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Log epoch the snapshot named (and the live log resumed on).
    pub epoch: u64,
    /// Node sessions restored from the snapshot.
    pub snapshot_nodes: usize,
    /// Fleet metrics restored from the snapshot.
    pub snapshot_metrics: usize,
    /// Intact log-tail batches replayed after the snapshot.
    pub replayed_batches: u64,
    /// Replayed batches the duplicate guard rejected (the batch was
    /// already covered by the snapshot's session cursor).
    pub replayed_duplicates: u64,
    /// Node registrations replayed from the log.
    pub replayed_nodes: u64,
    /// Drain reports replayed from the log.
    pub replayed_drains: u64,
    /// Bytes of torn tail truncated off the log (an append interrupted
    /// by the crash; never applied, so nothing was lost).
    pub torn_tail_bytes: u64,
    /// Fully-present log frames discarded for CRC mismatch (corruption
    /// rather than truncation); everything after them is dropped too.
    pub corrupt_frames: u64,
}

// ------------------------------------------------------- durable fleet

/// A [`FleetAggregator`] wrapped in snapshot + append-log durability.
///
/// All mutations go through this wrapper so they hit the log before the
/// in-memory state (see the module docs for the crash-safety argument).
/// Queries go straight to [`DurableFleet::store`].
#[derive(Debug)]
pub struct DurableFleet {
    agg: FleetAggregator,
    dir: PathBuf,
    log: BufWriter<File>,
    epoch: u64,
    snapshot_every: u64,
    batches_since_snapshot: u64,
    recovery: RecoveryStats,
    frame_buf: Vec<u8>,
    wal_obs: WalObs,
}

/// Pre-resolved durability instruments — resolved once in
/// [`DurableFleet::set_obs`]; all inert on a disabled handle.
#[derive(Debug, Default, Clone)]
struct WalObs {
    /// `wal.appends` — log frames appended.
    appends: Counter,
    /// `wal.bytes` — payload bytes appended to the log.
    bytes: Counter,
    /// `wal.fsync_ns` — wall time of the post-append OS flush (the
    /// durability cost every mutation pays).
    fsync_ns: LatencyRecorder,
    /// `snapshot.write_ns` — wall time of one snapshot write + rotate.
    snapshot_ns: LatencyRecorder,
}

impl DurableFleet {
    /// Open the state directory: recover if a snapshot exists there,
    /// otherwise initialize a fresh durable fleet (writing an empty
    /// epoch-0 snapshot so the directory is always recoverable).
    pub fn open(dir: impl AsRef<Path>, cfg: DurabilityConfig) -> io::Result<Self> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        if dir.join(SNAPSHOT_FILE).exists() {
            Self::recover_with(dir, cfg)
        } else {
            Self::create(dir, cfg)
        }
    }

    /// Initialize a fresh state directory (fails over to truncating any
    /// stray log files from a previous life without a snapshot).
    fn create(dir: &Path, cfg: DurabilityConfig) -> io::Result<Self> {
        let agg = FleetAggregator::new();
        let mut fleet = DurableFleet {
            log: BufWriter::new(open_log(dir, 0)?),
            agg,
            dir: dir.to_path_buf(),
            epoch: 0,
            snapshot_every: cfg.snapshot_every_batches.max(1),
            batches_since_snapshot: 0,
            recovery: RecoveryStats::default(),
            frame_buf: Vec::new(),
            wal_obs: WalObs::default(),
        };
        // An empty snapshot makes the directory self-describing from
        // the first byte: recovery never needs a "no snapshot" case.
        fleet.write_snapshot(0)?;
        Ok(fleet)
    }

    /// Restore from `dir`: snapshot, then intact log tail; truncate any
    /// torn tail; resume sessions at their persisted cursors.
    pub fn recover(dir: impl AsRef<Path>) -> io::Result<Self> {
        Self::recover_with(dir.as_ref(), DurabilityConfig::default())
    }

    fn recover_with(dir: &Path, cfg: DurabilityConfig) -> io::Result<Self> {
        let snap = fs::read(dir.join(SNAPSHOT_FILE))?;
        let (agg, epoch, nodes, metrics) = decode_snapshot(&snap)?;
        let mut recovery = RecoveryStats {
            epoch,
            snapshot_nodes: nodes,
            snapshot_metrics: metrics,
            ..RecoveryStats::default()
        };
        let mut fleet = DurableFleet {
            agg,
            dir: dir.to_path_buf(),
            log: BufWriter::new(open_log(dir, epoch)?),
            epoch,
            snapshot_every: cfg.snapshot_every_batches.max(1),
            batches_since_snapshot: 0,
            recovery: RecoveryStats::default(),
            frame_buf: Vec::new(),
            wal_obs: WalObs::default(),
        };
        fleet.replay_log(&mut recovery)?;
        fleet.recovery = recovery;
        fleet.cleanup_strays();
        Ok(fleet)
    }

    /// Replay the intact prefix of `wal-<epoch>.log` into the restored
    /// aggregator, then truncate the file to that prefix so new appends
    /// continue on a clean boundary.
    fn replay_log(&mut self, recovery: &mut RecoveryStats) -> io::Result<()> {
        let path = self.dir.join(wal_name(self.epoch));
        let bytes = fs::read(&path)?;
        let mut r: &[u8] = &bytes;
        let mut good = 0usize;
        loop {
            let remaining_before = r.len();
            match read_frame(&mut r)? {
                Ok((tag, payload)) => {
                    match self.apply_log_entry(tag, &payload, recovery) {
                        Ok(()) => {}
                        Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                            // CRC-valid but undecodable: corruption that
                            // happens to checksum; stop at the last good
                            // boundary like any other corrupt frame.
                            recovery.corrupt_frames += 1;
                            break;
                        }
                        Err(e) => return Err(e),
                    }
                    good += remaining_before - r.len();
                }
                Err(FrameEnd::Clean) => break,
                Err(FrameEnd::Torn) => break,
                Err(FrameEnd::Corrupt) => {
                    recovery.corrupt_frames += 1;
                    break;
                }
            }
        }
        recovery.torn_tail_bytes = (bytes.len() - good) as u64;
        if good < bytes.len() {
            // Drop the torn/corrupt tail on disk too, so the next
            // append does not interleave with garbage.
            let f = OpenOptions::new().write(true).open(&path)?;
            f.set_len(good as u64)?;
            f.sync_all()?;
            self.log = BufWriter::new(open_log(&self.dir, self.epoch)?);
        }
        Ok(())
    }

    fn apply_log_entry(
        &mut self,
        tag: u8,
        payload: &[u8],
        recovery: &mut RecoveryStats,
    ) -> io::Result<()> {
        match tag {
            FRAME_LOG_NODE => {
                let mut r = Rd::new(payload);
                let name = r.str()?;
                if !r.done() {
                    return Err(bad_data("trailing bytes in node entry"));
                }
                if self.agg.find_node(&name).is_none() {
                    self.agg.add_node(&name);
                }
                recovery.replayed_nodes += 1;
            }
            FRAME_LOG_BATCH => {
                let mut r = Rd::new(payload);
                let node = NodeId(r.u32()?);
                if node.index() >= self.agg.node_count() {
                    return Err(bad_data("batch entry names an unknown node"));
                }
                let (batch, _unknown) = decode_batch(r.rest())?;
                let report = self.agg.ingest(node, &batch);
                recovery.replayed_batches += 1;
                if report.duplicate {
                    recovery.replayed_duplicates += 1;
                }
                self.batches_since_snapshot += 1;
            }
            FRAME_LOG_DRAIN => {
                let mut r = Rd::new(payload);
                let node = NodeId(r.u32()?);
                if node.index() >= self.agg.node_count() {
                    return Err(bad_data("drain entry names an unknown node"));
                }
                let stats = decode_drain_stats(r.rest())?;
                self.agg.report_drain(node, &stats);
                recovery.replayed_drains += 1;
            }
            _ => return Err(bad_data("unknown log entry tag")),
        }
        Ok(())
    }

    /// Best-effort removal of files an interrupted rotation left
    /// behind: the tmp snapshot and any log not named by the snapshot.
    fn cleanup_strays(&self) {
        let _ = fs::remove_file(self.dir.join(SNAPSHOT_TMP));
        if let Ok(entries) = fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                if name.starts_with("wal-") && name != wal_name(self.epoch) {
                    let _ = fs::remove_file(entry.path());
                }
            }
        }
    }

    // ----- mutations (log, then apply) ----------------------------------

    /// Open (or look up) a node ingest session. New sessions are logged
    /// so recovery rebuilds the node table in registration order.
    pub fn add_node(&mut self, name: &str) -> io::Result<NodeId> {
        if let Some(id) = self.agg.find_node(name) {
            return Ok(id);
        }
        let mut payload = Vec::new();
        put_str(&mut payload, name);
        self.append_log(FRAME_LOG_NODE, &payload)?;
        Ok(self.agg.add_node(name))
    }

    /// Ingest one wire batch durably: append it to the log, flush, then
    /// apply. Takes a snapshot (truncating the log) every
    /// [`DurabilityConfig::snapshot_every_batches`] applied batches.
    pub fn ingest(&mut self, node: NodeId, batch: &ExportBatch) -> io::Result<IngestReport> {
        let mut payload = std::mem::take(&mut self.frame_buf);
        payload.clear();
        put_u32(&mut payload, node.0);
        encode_batch(batch, &mut payload);
        let res = self.append_log(FRAME_LOG_BATCH, &payload);
        self.frame_buf = payload;
        res?;
        let report = self.agg.ingest(node, batch);
        self.batches_since_snapshot += 1;
        if self.batches_since_snapshot >= self.snapshot_every {
            self.snapshot()?;
        }
        Ok(report)
    }

    /// Durably record an out-of-band exporter drain report.
    pub fn report_drain(&mut self, node: NodeId, stats: &DrainStats) -> io::Result<()> {
        let mut payload = Vec::new();
        put_u32(&mut payload, node.0);
        encode_drain_stats(stats, &mut payload);
        self.append_log(FRAME_LOG_DRAIN, &payload)?;
        self.agg.report_drain(node, stats);
        Ok(())
    }

    fn append_log(&mut self, tag: u8, payload: &[u8]) -> io::Result<()> {
        write_frame(&mut self.log, tag, payload)?;
        self.wal_obs.appends.add(1);
        self.wal_obs.bytes.add(payload.len() as u64);
        // Flush to the OS: `kill -9` cannot lose it once this returns.
        let _span = self.wal_obs.fsync_ns.start();
        self.log.flush()
    }

    // ----- snapshot -----------------------------------------------------

    /// Take a snapshot now and truncate the log (atomic rotation; see
    /// the module docs for the crash analysis of each step).
    pub fn snapshot(&mut self) -> io::Result<()> {
        // Anything buffered belongs to the old epoch; make sure it is
        // on disk before the snapshot that supersedes it.
        self.log.flush()?;
        let next = self.epoch + 1;
        self.write_snapshot(next)?;
        let _ = fs::remove_file(self.dir.join(wal_name(self.epoch)));
        self.epoch = next;
        self.batches_since_snapshot = 0;
        Ok(())
    }

    /// Write `snapshot.bin` naming log `epoch`, and leave `self.log`
    /// pointing at that (fresh, empty) log.
    fn write_snapshot(&mut self, epoch: u64) -> io::Result<()> {
        let _span = self.wal_obs.snapshot_ns.start();
        let mut payload = Vec::new();
        encode_snapshot(&self.agg, epoch, &mut payload);
        let tmp = self.dir.join(SNAPSHOT_TMP);
        {
            let mut f = File::create(&tmp)?;
            f.write_all(SNAPSHOT_MAGIC)?;
            write_frame(&mut f, FRAME_SNAPSHOT, &payload)?;
            f.sync_all()?;
        }
        // New log first, then the rename that makes it live: a crash
        // between the two leaves a stray (ignored) log, never a
        // snapshot pointing at a missing one.
        let new_log = open_log(&self.dir, epoch)?;
        fs::rename(&tmp, self.dir.join(SNAPSHOT_FILE))?;
        self.log = BufWriter::new(new_log);
        Ok(())
    }

    // ----- access -------------------------------------------------------

    /// Attach a self-telemetry handle: resolves the durability
    /// instruments (`wal.*`, `snapshot.write_ns`) and hands the handle
    /// down to the aggregator's ingest instruments. Observation state
    /// is process-local — it is *not* persisted or recovered.
    pub fn set_obs(&mut self, obs: Obs) {
        self.wal_obs = WalObs {
            appends: obs.counter("wal.appends"),
            bytes: obs.counter("wal.bytes"),
            fsync_ns: obs.latency("wal.fsync_ns"),
            snapshot_ns: obs.latency("snapshot.write_ns"),
        };
        self.agg.set_obs(obs);
    }

    /// The attached self-telemetry handle (disabled unless
    /// [`DurableFleet::set_obs`] was called).
    pub fn obs(&self) -> &Obs {
        self.agg.obs()
    }

    /// The wrapped aggregator (sessions, health, counters).
    pub fn aggregator(&self) -> &FleetAggregator {
        &self.agg
    }

    /// The cluster store (all queries).
    pub fn store(&self) -> &FleetStore {
        self.agg.store()
    }

    /// Next batch `seq` a node's session expects (transport handshake).
    pub fn next_seq(&self, node: NodeId) -> u64 {
        self.agg.next_seq(node)
    }

    /// Look up a node by registered name.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.agg.find_node(name)
    }

    /// What the last [`DurableFleet::recover`] found (zeros for a fresh
    /// directory).
    pub fn recovery(&self) -> &RecoveryStats {
        &self.recovery
    }

    /// State directory this fleet persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current log epoch (advances on every snapshot).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Unwrap into the in-memory aggregator (e.g. after a final
    /// [`DurableFleet::snapshot`] at clean shutdown).
    pub fn into_aggregator(self) -> FleetAggregator {
        self.agg
    }
}

impl FleetStore {
    /// Recover a durable fleet tier from its state directory — the
    /// restored store rides inside the returned [`DurableFleet`]
    /// (sessions resume at their persisted cursors; queries via
    /// [`DurableFleet::store`]).
    pub fn recover(dir: impl AsRef<Path>) -> io::Result<DurableFleet> {
        DurableFleet::recover(dir)
    }
}

fn open_log(dir: &Path, epoch: u64) -> io::Result<File> {
    OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.join(wal_name(epoch)))
}

// ------------------------------------------------------ snapshot codec

fn kind_tag(kind: MetricKind) -> u8 {
    match kind {
        MetricKind::Gauge => 0,
        MetricKind::Counter => 1,
    }
}

fn domain_tag(domain: SourceDomain) -> u8 {
    match domain {
        SourceDomain::Facility => 0,
        SourceDomain::Hardware => 1,
        SourceDomain::Software => 2,
        SourceDomain::Application => 3,
    }
}

fn kind_from_tag(tag: u8) -> io::Result<MetricKind> {
    match tag {
        0 => Ok(MetricKind::Gauge),
        1 => Ok(MetricKind::Counter),
        _ => Err(bad_data("unknown metric kind")),
    }
}

fn domain_from_tag(tag: u8) -> io::Result<SourceDomain> {
    match tag {
        0 => Ok(SourceDomain::Facility),
        1 => Ok(SourceDomain::Hardware),
        2 => Ok(SourceDomain::Software),
        3 => Ok(SourceDomain::Application),
        _ => Err(bad_data("unknown source domain")),
    }
}

fn put_node_counters(out: &mut Vec<u8>, c: &NodeCounters) {
    for v in [
        c.batches,
        c.duplicate_batches,
        c.gaps,
        c.missing_batches,
        c.records,
        c.samples,
        c.rejected_samples,
        c.chunks,
        c.corrupt_chunks,
        c.buckets,
        c.sketch_entries,
        c.orphan_sketches,
        c.unmapped_records,
    ] {
        put_u64(out, v);
    }
}

fn read_node_counters(r: &mut Rd<'_>) -> io::Result<NodeCounters> {
    Ok(NodeCounters {
        batches: r.u64()?,
        duplicate_batches: r.u64()?,
        gaps: r.u64()?,
        missing_batches: r.u64()?,
        records: r.u64()?,
        samples: r.u64()?,
        rejected_samples: r.u64()?,
        chunks: r.u64()?,
        corrupt_chunks: r.u64()?,
        buckets: r.u64()?,
        sketch_entries: r.u64()?,
        orphan_sketches: r.u64()?,
        unmapped_records: r.u64()?,
    })
}

/// Re-encode one raw ring as `export-wire-v1.1` records: sealed chunks
/// ship whole (compressed bytes, no decode), an evicted-prefix chunk
/// decodes just its retained suffix, and the uncompressed tail ships
/// per-sample — exactly the exporter's chunked rendering, reused as the
/// snapshot's raw section.
fn raw_ring_records(store: &FleetStore, id: MetricId) -> Vec<ExportRecord> {
    let raw = store.raw(id);
    let total = raw.total_appends();
    let mut cursor = total - raw.len() as u64;
    let mut records = Vec::new();
    for c in raw.sealed_chunks() {
        if c.end_append() <= cursor {
            continue;
        }
        if c.skip() == 0 && c.start_append() == cursor {
            records.push(ExportRecord::Chunk {
                id,
                count: c.count(),
                first_t: SimTime(c.first_t()),
                last_t: SimTime(c.last_t()),
                bytes: c.bytes().to_vec(),
            });
            cursor = c.end_append();
        } else {
            let already = (cursor - c.retained_start_append()) as usize;
            for (t, value) in c.decode().skip(already) {
                records.push(ExportRecord::Sample {
                    id,
                    t: SimTime(t),
                    value,
                });
                cursor += 1;
            }
        }
    }
    let tail = (total - cursor) as usize;
    for s in raw.last_n_view(tail).into_iter() {
        records.push(ExportRecord::Sample {
            id,
            t: s.t,
            value: s.value,
        });
    }
    records
}

/// Serialize the whole aggregator. Layout (all LE; strings `u16`-len
/// prefixed) — see `docs/FLEET_SERVICE.md` for the normative spec:
///
/// ```text
/// epoch u64 · raw_retention u64 · store counters 7×u64
/// session count u32 · per session:
///   name · next_seq u64 · wire_map u32-len + u32 entries (MAX=None)
///   counters 13×u64 · high_water u64 · ever_ingested u8 · drain 11×u64
/// metric count u32 · per metric:
///   node u32 · meta(name · kind u8 · unit · domain u8)
///   raw section: batch bytes u32-len + encode_batch(seq 0, records)
///   tier count u32 · per tier: res u64 · bucket count uv · per bucket:
///     start-delta uv (from previous bucket; first is absolute) ·
///     count uv · sum/min/max/last f64 ·
///     sketch entry count uv · entries (sign u8 · zigzag(key) uv · count uv)
/// ```
///
/// `uv` is LEB128; the tier section is the bulk of a snapshot and
/// recovery cost is byte-proportional (checksum + decode), so it uses
/// delta + varint packing while the small header stays fixed-width.
fn encode_snapshot(agg: &FleetAggregator, epoch: u64, out: &mut Vec<u8>) {
    let store = agg.store();
    put_u64(out, epoch);
    put_u64(out, store.raw_retention() as u64);
    let stats = store.stats();
    for v in [
        stats.rollup_hits,
        stats.sketch_hits,
        stats.raw_fallbacks,
        stats.raw_values_read,
        stats.samples,
        stats.rejected_samples,
        stats.corrupt_chunks,
    ] {
        put_u64(out, v);
    }
    let sessions = agg.sessions();
    put_u32(out, sessions.len() as u32);
    for s in sessions {
        put_str(out, &s.name);
        put_u64(out, s.next_seq);
        put_u32(out, s.wire_map.len() as u32);
        for entry in &s.wire_map {
            put_u32(out, entry.map_or(u32::MAX, |id| id.0));
        }
        put_node_counters(out, &s.counters);
        put_u64(out, s.high_water.0);
        out.push(s.ever_ingested as u8);
        // Length-prefixed (format `MODAFS02`) so the drain block can
        // grow fields without another snapshot format bump.
        let mut drain_bytes = Vec::new();
        encode_drain_stats(&s.drain, &mut drain_bytes);
        put_u32(out, drain_bytes.len() as u32);
        out.extend_from_slice(&drain_bytes);
    }
    put_u32(out, store.cardinality() as u32);
    for idx in 0..store.cardinality() {
        let id = MetricId(idx as u32);
        let info = store.info(id);
        put_u32(out, info.node.0);
        put_str(out, &info.meta.name);
        out.push(kind_tag(info.meta.kind));
        put_str(out, &info.meta.unit);
        out.push(domain_tag(info.meta.domain));
        // Raw ring, as a pseudo-batch of wire records.
        let batch = ExportBatch {
            seq: 0,
            records: raw_ring_records(store, id),
        };
        let mut raw_bytes = Vec::new();
        encode_batch(&batch, &mut raw_bytes);
        put_u32(out, raw_bytes.len() as u32);
        out.extend_from_slice(&raw_bytes);
        // Wire-fed tiers: buckets oldest-first, each with its sketch
        // column entries.
        let rings: Vec<_> = store
            .tiers()
            .set(id)
            .map(|set| set.rings().iter().collect())
            .unwrap_or_default();
        put_u32(out, rings.len() as u32);
        for ring in rings {
            put_u64(out, ring.res().0);
            let buckets: Vec<_> = ring.buckets().collect();
            put_uv(out, buckets.len() as u64);
            // Buckets are start-ordered, so consecutive starts delta
            // down to one or two varint bytes (usually the resolution).
            let mut prev_start = 0u64;
            for b in buckets {
                put_uv(out, b.start.0.wrapping_sub(prev_start));
                prev_start = b.start.0;
                put_uv(out, b.count);
                put_f64(out, b.sum);
                put_f64(out, b.min);
                put_f64(out, b.max);
                put_f64(out, b.last);
                let entries: Vec<_> = b
                    .sketch
                    .as_ref()
                    .map(|s| s.wire_entries().collect())
                    .unwrap_or_default();
                put_uv(out, entries.len() as u64);
                for e in entries {
                    out.push(e.sign as u8);
                    put_uv(out, zigzag(e.key as i64));
                    put_uv(out, e.count);
                }
            }
        }
    }
}

/// Rebuild an aggregator from snapshot bytes. Returns
/// `(aggregator, epoch, session count, metric count)`.
fn decode_snapshot(bytes: &[u8]) -> io::Result<(FleetAggregator, u64, usize, usize)> {
    if bytes.len() < SNAPSHOT_MAGIC.len() || &bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Err(bad_data("snapshot magic mismatch"));
    }
    let mut framed: &[u8] = &bytes[SNAPSHOT_MAGIC.len()..];
    let payload = match read_frame(&mut framed)? {
        Ok((FRAME_SNAPSHOT, payload)) => payload,
        Ok(_) => return Err(bad_data("unexpected snapshot frame tag")),
        // The snapshot is written atomically (tmp + rename), so a torn
        // or corrupt one is real damage, not an interrupted write.
        Err(_) => return Err(bad_data("snapshot frame torn or corrupt")),
    };
    let mut r = Rd::new(&payload);
    let epoch = r.u64()?;
    let raw_retention = r.u64()? as usize;
    let stats = FleetStoreStats {
        rollup_hits: r.u64()?,
        sketch_hits: r.u64()?,
        raw_fallbacks: r.u64()?,
        raw_values_read: r.u64()?,
        samples: r.u64()?,
        rejected_samples: r.u64()?,
        corrupt_chunks: r.u64()?,
    };
    // Sessions first: metric registration needs node names.
    let n_sessions = r.u32()? as usize;
    let mut sessions = Vec::with_capacity(n_sessions);
    for _ in 0..n_sessions {
        let name = r.str()?;
        let next_seq = r.u64()?;
        let n_map = r.u32()? as usize;
        let mut wire_map = Vec::with_capacity(n_map);
        for _ in 0..n_map {
            let v = r.u32()?;
            wire_map.push(if v == u32::MAX {
                None
            } else {
                Some(MetricId(v))
            });
        }
        let counters = read_node_counters(&mut r)?;
        let high_water = SimTime(r.u64()?);
        let ever_ingested = r.u8()? != 0;
        let drain_len = r.u32()? as usize;
        let drain = decode_drain_stats(r.take(drain_len)?)?;
        sessions.push(NodeSession {
            name,
            next_seq,
            wire_map,
            counters,
            high_water,
            ever_ingested,
            drain,
        });
    }
    let mut store = FleetStore::with_raw_retention(raw_retention);
    // One scratch column reused across every bucket: the per-bucket
    // entry lists are small and restoring is byte-proportional work, so
    // this loop avoids per-bucket allocation.
    let mut column: Vec<moda_telemetry::SketchEntry> = Vec::new();
    let n_metrics = r.u32()? as usize;
    for idx in 0..n_metrics {
        let node = NodeId(r.u32()?);
        let name = r.str()?;
        let kind = kind_from_tag(r.u8()?)?;
        let unit = r.str()?;
        let domain = domain_from_tag(r.u8()?)?;
        let node_name = sessions
            .get(node.index())
            .map(|s: &NodeSession| s.name.as_str())
            .ok_or_else(|| bad_data("metric names an unknown node"))?;
        let meta = MetricMeta {
            name,
            kind,
            unit,
            domain,
        };
        let id = store.register(node, node_name, &meta);
        if id.0 as usize != idx {
            return Err(bad_data("metric registration order diverged"));
        }
        // Raw ring.
        let raw_len = r.u32()? as usize;
        let (raw_batch, _) = decode_batch(r.take(raw_len)?)?;
        for record in &raw_batch.records {
            match record {
                ExportRecord::Chunk {
                    first_t,
                    count,
                    bytes,
                    ..
                } => {
                    let (_accepted, _rejected) = store.push_chunk(id, *first_t, *count, bytes);
                }
                ExportRecord::Sample { t, value, .. } => {
                    store.push_sample(id, *t, *value);
                }
                _ => return Err(bad_data("unexpected record kind in raw section")),
            }
        }
        // Tiers: each bucket carries its scalars and its whole sketch
        // column, restored together against a single slot lookup
        // (`restore_bucket`) — snapshot restore is the hot path a fast
        // restart rides on, and the layout stores columns contiguously
        // exactly so this is possible. Starts are delta-coded from the
        // previous bucket; the wire-fed slot path keeps the ring
        // ordered, so deltas decode back with a running add.
        let n_rings = r.u32()? as usize;
        for _ in 0..n_rings {
            let res = SimDuration(r.u64()?);
            let n_buckets = r.uv()? as usize;
            let mut prev_start = 0u64;
            for _ in 0..n_buckets {
                prev_start = prev_start.wrapping_add(r.uv()?);
                let start = SimTime(prev_start);
                let count = r.uv()?;
                let sum = r.f64()?;
                let min = r.f64()?;
                let max = r.f64()?;
                let last = r.f64()?;
                let n_entries = r.uv()? as usize;
                column.clear();
                column.reserve(n_entries);
                for _ in 0..n_entries {
                    column.push(moda_telemetry::SketchEntry {
                        sign: r.u8()? as i8,
                        key: unzigzag(r.uv()?) as i32,
                        count: r.uv()?,
                    });
                }
                if count > 0 || !column.is_empty() {
                    store.restore_bucket(id, res, start, count, sum, min, max, last, &column);
                }
            }
        }
    }
    if !r.done() {
        return Err(bad_data("trailing bytes in snapshot"));
    }
    // Counters last: the content restore above bumped them.
    store.restore_stats(&stats);
    let mut agg = FleetAggregator::with_store(store);
    *agg.sessions_mut() = sessions;
    Ok((agg, epoch, n_sessions, n_metrics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use moda_telemetry::export::MemorySink;
    use moda_telemetry::{
        Exporter, MetricMeta, RollupConfig, RollupTier, SourceDomain, Tsdb, WindowAgg,
    };

    fn test_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("moda_fleet_persist_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    /// One node's wire stream off a real sketched store.
    fn node_batches(n: usize, offset: f64, batch_records: usize) -> Vec<ExportBatch> {
        let cfg = RollupConfig::new(vec![
            RollupTier::new(SimDuration::from_secs(10), 256),
            RollupTier::new(SimDuration::from_secs(60), 64),
        ])
        .with_sketches();
        let mut db = Tsdb::with_retention(1 << 12);
        let id = db.register(MetricMeta::gauge("m", "u", SourceDomain::Hardware));
        db.enable_rollups(id, &cfg);
        for s in 0..n as u64 {
            db.insert(
                id,
                SimTime::from_secs(1 + s),
                offset + ((s * 31) % 997) as f64,
            );
        }
        let mut sink = MemorySink::new();
        Exporter::new()
            .with_batch_records(batch_records)
            .drain(&db, &mut sink)
            .unwrap();
        sink.batches
    }

    /// Everything observable about an aggregator, as comparable data
    /// (same spirit as tests/props.rs::fingerprint, plus health).
    fn fingerprint(agg: &FleetAggregator, nodes: usize, now: SimTime) -> Vec<String> {
        let store = agg.store();
        let mut out = Vec::new();
        for k in 0..nodes {
            let name = format!("node{k:02}");
            let id = store.lookup(&format!("{name}/m")).expect("mapped");
            let raw: Vec<String> = store
                .raw(id)
                .iter()
                .map(|s| format!("{}:{}", s.t.0, s.value.to_bits()))
                .collect();
            out.push(format!("raw[{k}]={raw:?}"));
            for res in [SimDuration::from_secs(10), SimDuration::from_secs(60)] {
                let buckets: Vec<String> = store
                    .buckets(id, res)
                    .map(|b| {
                        format!(
                            "{}:{}:{}:{}:{}:{}:{:?}",
                            b.start.0, b.count, b.sum, b.min, b.max, b.last, b.sketch
                        )
                    })
                    .collect();
                out.push(format!("tier[{k},{}]={buckets:?}", res.0));
            }
            out.push(format!(
                "counters[{k}]={:?}",
                agg.counters(NodeId(k as u32))
            ));
        }
        let w = SimDuration(now.0);
        for agg_kind in [
            WindowAgg::Count,
            WindowAgg::Sum,
            WindowAgg::Min,
            WindowAgg::Max,
            WindowAgg::Mean,
            WindowAgg::Percentile(0.99),
        ] {
            out.push(format!(
                "{agg_kind:?}={:?}",
                store.fleet_window_agg("m", now, w, agg_kind)
            ));
        }
        out.push(format!(
            "top={:?}",
            store.top_nodes("m", now, w, WindowAgg::Mean, 3, crate::store::Rank::Highest)
        ));
        out.push(format!(
            "health={:?}",
            agg.health(now, SimDuration::from_secs(120))
        ));
        out.push(format!("stats={:?}", store.stats()));
        out
    }

    fn ingest_all(fleet: &mut DurableFleet, streams: &[Vec<ExportBatch>]) {
        for (k, stream) in streams.iter().enumerate() {
            let node = fleet.add_node(&format!("node{k:02}")).unwrap();
            for batch in stream {
                fleet.ingest(node, batch).unwrap();
            }
        }
    }

    #[test]
    fn snapshot_then_recover_is_bit_identical() {
        let dir = test_dir("roundtrip");
        let streams = vec![
            node_batches(3000, 0.0, 256),
            node_batches(3000, 1000.0, 256),
            node_batches(2500, 2000.0, 256),
        ];
        let now = SimTime::from_secs(3001);
        // Uninterrupted reference (plain in-memory aggregator).
        let mut reference = FleetAggregator::new();
        for (k, stream) in streams.iter().enumerate() {
            let node = reference.add_node(&format!("node{k:02}"));
            for batch in stream {
                reference.ingest(node, batch);
            }
            reference.report_drain(node, &Exporter::new().totals());
        }
        // Durable run: snapshot mid-stream (small cadence), then
        // recover and compare observables.
        let mut fleet = DurableFleet::open(
            &dir,
            DurabilityConfig {
                snapshot_every_batches: 7,
            },
        )
        .unwrap();
        ingest_all(&mut fleet, &streams);
        for k in 0..streams.len() {
            fleet
                .report_drain(NodeId(k as u32), &Exporter::new().totals())
                .unwrap();
        }
        let live_fp = fingerprint(fleet.aggregator(), streams.len(), now);
        assert_eq!(
            live_fp,
            fingerprint(&reference, streams.len(), now),
            "durable wrapper must not change ingest semantics"
        );
        drop(fleet); // no clean shutdown snapshot: recovery replays the tail
        let recovered = DurableFleet::recover(&dir).unwrap();
        let rec = *recovered.recovery();
        assert!(rec.epoch > 0, "snapshots must have rotated: {rec:?}");
        assert_eq!(rec.torn_tail_bytes, 0);
        assert_eq!(rec.corrupt_frames, 0);
        assert!(
            rec.replayed_batches < 7 + 1,
            "log truncation at snapshot bounds the replay: {rec:?}"
        );
        assert_eq!(
            fingerprint(recovered.aggregator(), streams.len(), now),
            live_fp,
            "recovered state must be bit-identical to the live state"
        );
        // Sessions resumed at their persisted cursors.
        for (k, stream) in streams.iter().enumerate() {
            assert_eq!(
                recovered.next_seq(NodeId(k as u32)),
                stream.len() as u64,
                "cursor must resume past everything ingested"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovered_fleet_keeps_ingesting_and_deduplicates_redelivery() {
        let dir = test_dir("resume");
        let stream = node_batches(2000, 0.0, 128);
        let split = stream.len() / 2;
        let mut fleet = DurableFleet::open(
            &dir,
            DurabilityConfig {
                snapshot_every_batches: 5,
            },
        )
        .unwrap();
        let node = fleet.add_node("node00").unwrap();
        for batch in &stream[..split] {
            fleet.ingest(node, batch).unwrap();
        }
        drop(fleet);
        let mut recovered = DurableFleet::recover(&dir).unwrap();
        let node = recovered.find_node("node00").unwrap();
        let cursor = recovered.next_seq(node);
        assert_eq!(cursor, split as u64);
        // Re-delivering covered batches bounces off the duplicate guard…
        for batch in &stream[..2.min(split)] {
            let report = recovered.ingest(node, batch).unwrap();
            assert!(report.duplicate);
        }
        // …and the stream resumes from the persisted cursor.
        for batch in &stream[split..] {
            assert!(recovered.ingest(node, batch).unwrap().applied);
        }
        // Final state equals a clean one-shot run.
        let mut reference = FleetAggregator::new();
        let rnode = reference.add_node("node00");
        for batch in &stream {
            reference.ingest(rnode, batch);
        }
        let now = SimTime::from_secs(2001);
        let ref_fp = fingerprint(&reference, 1, now);
        let mut got_fp = fingerprint(recovered.aggregator(), 1, now);
        // The two deliberate duplicates above are the only divergence.
        let patched: Vec<String> = got_fp
            .iter()
            .map(|line| line.replace("duplicate_batches: 2", "duplicate_batches: 0"))
            .collect();
        got_fp = patched;
        assert_eq!(got_fp, ref_fp);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_directory_opens_fresh_and_recovers_empty() {
        let dir = test_dir("fresh");
        let fleet = DurableFleet::open(&dir, DurabilityConfig::default()).unwrap();
        assert_eq!(fleet.aggregator().node_count(), 0);
        drop(fleet);
        let recovered = DurableFleet::recover(&dir).unwrap();
        assert_eq!(recovered.aggregator().node_count(), 0);
        assert_eq!(recovered.store().cardinality(), 0);
        let _ = fs::remove_dir_all(&dir);
    }
}
