//! The center-level Feedback/Response plane: coverage-aware fleet
//! queries, fleet monitors, and a guarded responder with **bounded
//! execution**.
//!
//! The paper's loop is Monitoring → ODA → Feedback → Response at
//! *cluster* scale; this module closes it over the aggregation tier.
//! Production ODA experience (DCDB Wintermute, LRZ) says center-level
//! analytics only pay off when responses are bounded and auditable, so
//! the responder is built KLoROS/PM-1000 style:
//!
//! * **graceful degradation** — every control-plane query runs through
//!   [`FleetAggregator::covered_window_agg`] and friends, which exclude
//!   stale/silent nodes from the answer and return explicit
//!   [`Coverage`] metadata instead of silently serving stale data. A
//!   partitioned node can *never* be served as fresh: contribution
//!   requires its ingest session to be live at query time.
//! * **widened confidence on partial views** — monitors derate their
//!   confidence by the coverage fraction, and the responder
//!   additionally holds actuation outright while coverage sits below
//!   [`ControlConfig::min_coverage`] ([`HoldReason::Coverage`]).
//! * **bounded execution** — the first action of every rule is
//!   canary-only (one node); only after post-action validation against
//!   the same fleet metrics does the rule get *promoted* to fleet-wide
//!   targets. Per-subsystem cooldowns and sliding-window rate limits
//!   bound actuation frequency; escalation gates require an alert to
//!   persist across consecutive observations before anything fires; a
//!   failed validation demotes the rule back to canary and suspends it.
//! * **machine-checkable audit** — every decision (observation, alert,
//!   hold, block, apply, validation, promotion) lands in a
//!   [`ControlLog`], and [`FleetResponder::verify_audit`] replays the
//!   trail against the configured bounds — the CI chaos scenarios
//!   assert on it.
//!
//! The actuation side is deliberately abstract ([`FleetActuator`]):
//! this crate knows nothing about the managed system. `moda-hpc`'s
//! `Cluster` provides the concrete actuator over its simulated worlds,
//! and `moda-core` mirrors the [`ControlLog`] into the MAPE-K audit
//! trail (`moda_core::control_link`).

use crate::aggregator::{FleetAggregator, NodeLiveness};
use crate::store::{FleetServed, NodeId, Rank};
use moda_obs::{Counter, LatencyRecorder, Obs};
use moda_sim::{SimDuration, SimTime};
use moda_telemetry::{MetricId, WindowAgg};
use std::collections::{HashMap, VecDeque};
use std::fmt::Debug;

// ------------------------------------------------------------- coverage

/// Node-coverage metadata attached to every control-plane query: which
/// part of the fleet the answer actually represents.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Coverage {
    /// Registered aggregator sessions (the whole fleet, as known).
    pub total: usize,
    /// Nodes whose data contributed to the answer (live ingest session
    /// *and* a member series on the queried axis).
    pub contributing: usize,
    /// Nodes excluded because their ingest lag crossed the staleness
    /// bound.
    pub stale: usize,
    /// Nodes excluded because their session has never ingested data.
    pub silent: usize,
    /// Live nodes that simply don't export the queried metric.
    pub missing: usize,
    /// The excluded nodes, with why (stale/silent), node order.
    pub excluded: Vec<(NodeId, NodeLiveness)>,
}

impl Coverage {
    /// Contributing fraction of the registered fleet (0 when no nodes
    /// are registered).
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.contributing as f64 / self.total as f64
        }
    }

    /// Every registered node contributed.
    pub fn complete(&self) -> bool {
        self.total > 0 && self.contributing == self.total
    }
}

/// A coverage-annotated fleet query answer.
#[derive(Debug, Clone, PartialEq)]
pub struct CoveredValue {
    /// The pooled answer over the contributing subset (`None` when no
    /// contributing node had data in the window).
    pub value: Option<f64>,
    /// How the store served it (members/buckets/raw accounting).
    pub served: FleetServed,
    /// What part of the fleet it represents.
    pub coverage: Coverage,
}

impl FleetAggregator {
    /// Classify every member of the logical axis `local_name` against
    /// `stale_after` and return the **contributing** members (live
    /// sessions only) plus the full [`Coverage`] picture. Stale and
    /// silent nodes are excluded — their data can never be served as
    /// fresh by the covered queries built on this.
    pub fn covered_members(
        &self,
        local_name: &str,
        now: SimTime,
        stale_after: SimDuration,
    ) -> (Vec<MetricId>, Coverage) {
        let store = self.store();
        let mut by_node: HashMap<NodeId, MetricId> = HashMap::new();
        for &id in store.logical_members(local_name) {
            by_node.insert(store.info(id).node, id);
        }
        let mut cov = Coverage {
            total: self.node_count(),
            ..Coverage::default()
        };
        let mut members = Vec::new();
        let health = self.health(now, stale_after);
        for n in &health.nodes {
            match n.liveness {
                NodeLiveness::Live => match by_node.get(&n.node) {
                    Some(&id) => {
                        cov.contributing += 1;
                        members.push(id);
                    }
                    None => cov.missing += 1,
                },
                NodeLiveness::Stale => {
                    cov.stale += 1;
                    cov.excluded.push((n.node, NodeLiveness::Stale));
                }
                NodeLiveness::Silent => {
                    cov.silent += 1;
                    cov.excluded.push((n.node, NodeLiveness::Silent));
                }
            }
        }
        (members, cov)
    }

    /// Coverage-aware fleet window aggregate: pools **only** nodes whose
    /// ingest session is live at `now` (lag within `stale_after`), and
    /// says so. The answer equals exactly what the plain fleet query
    /// would return on a fleet containing only the contributing nodes —
    /// pinned by the coverage property test in `tests/props.rs`.
    pub fn covered_window_agg(
        &self,
        local_name: &str,
        now: SimTime,
        window: SimDuration,
        agg: WindowAgg,
        stale_after: SimDuration,
    ) -> CoveredValue {
        let (members, coverage) = self.covered_members(local_name, now, stale_after);
        let (value, served) = self
            .store()
            .fleet_subset_window_agg_served(&members, now, window, agg);
        CoveredValue {
            value,
            served,
            coverage,
        }
    }

    /// Coverage-aware per-node ranking over the contributing subset
    /// (see [`FleetAggregator::covered_window_agg`]).
    #[allow(clippy::too_many_arguments)]
    pub fn covered_top_nodes(
        &self,
        local_name: &str,
        now: SimTime,
        window: SimDuration,
        agg: WindowAgg,
        k: usize,
        rank: Rank,
        stale_after: SimDuration,
    ) -> (Vec<(NodeId, f64)>, Coverage) {
        let (members, coverage) = self.covered_members(local_name, now, stale_after);
        let ranked = self
            .store()
            .top_nodes_of(&members, now, window, agg, k, rank);
        (ranked, coverage)
    }
}

// -------------------------------------------------------------- monitors

/// One alert a monitor raised this observation pass.
#[derive(Debug, Clone)]
pub struct FleetAlert {
    /// Monitor that raised it (rules bind on this).
    pub monitor: String,
    /// Subsystem the alert concerns (cooldown/rate-limit domain).
    pub subsystem: String,
    /// Human-readable explanation.
    pub detail: String,
    /// Breach magnitude, normalized so `1.0` is "exactly at the bound"
    /// and larger is worse. Post-action validation compares severities.
    pub severity: f64,
    /// Implicated nodes, worst first — `nodes[0]` is the canary target.
    pub nodes: Vec<NodeId>,
    /// Detection confidence, already derated by the coverage fraction
    /// (a partial view widens uncertainty).
    pub confidence: f64,
}

/// What one monitor saw in one observation pass.
#[derive(Debug, Clone)]
pub struct Observation {
    /// Alerts raised (empty: nothing to report).
    pub alerts: Vec<FleetAlert>,
    /// Coverage of the probe — reported even when healthy, so the
    /// responder can distinguish "no alert" from "couldn't see".
    pub coverage: Coverage,
}

/// A monitor bound to fleet queries: observe the aggregation tier,
/// raise coverage-annotated alerts.
pub trait FleetMonitor {
    /// Stable name (rules bind on it).
    fn name(&self) -> &str;
    /// Subsystem this monitor watches.
    fn subsystem(&self) -> &str;
    /// Run the probe at `now`.
    fn observe(&mut self, fleet: &FleetAggregator, now: SimTime) -> Observation;
}

/// Which side of a threshold is unhealthy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Bound {
    /// Alert when the aggregate exceeds the limit (power, queue depth).
    Above(f64),
    /// Alert when the aggregate falls below the limit (throughput).
    Below(f64),
}

/// Fleet-wide threshold monitor: a coverage-aware window aggregate over
/// one logical axis, compared against a bound. Severity is the breach
/// ratio (`value/limit` or `limit/value`), so validation can ask "did
/// the response shrink it?".
#[derive(Debug, Clone)]
pub struct ThresholdMonitor {
    /// Monitor name.
    pub name: String,
    /// Subsystem label.
    pub subsystem: String,
    /// Logical axis (node-local metric name).
    pub metric: String,
    /// Trailing window.
    pub window: SimDuration,
    /// Pooled aggregate to evaluate.
    pub agg: WindowAgg,
    /// The unhealthy side.
    pub bound: Bound,
    /// Staleness bound for coverage classification.
    pub stale_after: SimDuration,
    /// Confidence at full coverage (derated linearly below that).
    pub base_confidence: f64,
}

impl FleetMonitor for ThresholdMonitor {
    fn name(&self) -> &str {
        &self.name
    }

    fn subsystem(&self) -> &str {
        &self.subsystem
    }

    fn observe(&mut self, fleet: &FleetAggregator, now: SimTime) -> Observation {
        let cv =
            fleet.covered_window_agg(&self.metric, now, self.window, self.agg, self.stale_after);
        let mut alerts = Vec::new();
        if let Some(v) = cv.value {
            let severity = match self.bound {
                Bound::Above(limit) if limit > 0.0 && v > limit => Some(v / limit),
                Bound::Below(limit) if v > 0.0 && v < limit => Some(limit / v),
                _ => None,
            };
            if let Some(severity) = severity {
                // Worst contributors first: the canary target is the
                // node pushing hardest against the bound.
                let rank = match self.bound {
                    Bound::Above(_) => Rank::Highest,
                    Bound::Below(_) => Rank::Lowest,
                };
                let (ranked, _) = fleet.covered_top_nodes(
                    &self.metric,
                    now,
                    self.window,
                    self.agg,
                    usize::MAX,
                    rank,
                    self.stale_after,
                );
                let nodes: Vec<NodeId> = ranked.into_iter().map(|(n, _)| n).collect();
                alerts.push(FleetAlert {
                    monitor: self.name.clone(),
                    subsystem: self.subsystem.clone(),
                    detail: format!(
                        "{} {:?} over {} = {v:.2} breaches {:?} (severity {severity:.3})",
                        self.metric, self.agg, self.window, self.bound
                    ),
                    severity,
                    nodes,
                    confidence: self.base_confidence * cv.coverage.fraction(),
                });
            }
        }
        Observation {
            alerts,
            coverage: cv.coverage,
        }
    }
}

/// Cross-node straggler/outlier monitor: ranks the contributing nodes
/// on a per-node window aggregate and flags the ones deviating from the
/// fleet median by more than `ratio` — robust relative detection, so it
/// works whatever the absolute workload level is.
#[derive(Debug, Clone)]
pub struct StragglerMonitor {
    /// Monitor name.
    pub name: String,
    /// Subsystem label.
    pub subsystem: String,
    /// Logical axis (node-local metric name).
    pub metric: String,
    /// Trailing window.
    pub window: SimDuration,
    /// Per-node aggregate to rank on.
    pub agg: WindowAgg,
    /// Which tail is unhealthy: `Highest` flags nodes far *above* the
    /// median (deep queues, hot power), `Lowest` far below (slow
    /// progress).
    pub rank: Rank,
    /// Deviation factor against the median (e.g. `2.0` = twice the
    /// median is a straggler).
    pub ratio: f64,
    /// Minimum contributing nodes for the median to mean anything.
    pub min_nodes: usize,
    /// Staleness bound for coverage classification.
    pub stale_after: SimDuration,
    /// Confidence at full coverage.
    pub base_confidence: f64,
}

impl FleetMonitor for StragglerMonitor {
    fn name(&self) -> &str {
        &self.name
    }

    fn subsystem(&self) -> &str {
        &self.subsystem
    }

    fn observe(&mut self, fleet: &FleetAggregator, now: SimTime) -> Observation {
        let (ranked, coverage) = fleet.covered_top_nodes(
            &self.metric,
            now,
            self.window,
            self.agg,
            usize::MAX,
            self.rank,
            self.stale_after,
        );
        let mut alerts = Vec::new();
        if ranked.len() >= self.min_nodes.max(2) {
            let mut values: Vec<f64> = ranked.iter().map(|&(_, v)| v).collect();
            values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            let median = values[values.len() / 2];
            // Per-node breach ratio vs. the median-derived bound; the
            // ranking already put the worst node first.
            let mut flagged: Vec<(NodeId, f64)> = Vec::new();
            for &(node, v) in &ranked {
                let sev = match self.rank {
                    Rank::Highest if median > 0.0 => v / (median * self.ratio),
                    Rank::Lowest if v > 0.0 => median / (v * self.ratio),
                    _ => 0.0,
                };
                if sev > 1.0 {
                    flagged.push((node, sev));
                }
            }
            if let Some(&(_, worst)) = flagged.first() {
                let nodes: Vec<NodeId> = flagged.iter().map(|&(n, _)| n).collect();
                alerts.push(FleetAlert {
                    monitor: self.name.clone(),
                    subsystem: self.subsystem.clone(),
                    detail: format!(
                        "{} {:?} over {}: {} node(s) deviate >{}x from median {median:.2} \
                         (worst {:?} severity {worst:.3})",
                        self.metric,
                        self.agg,
                        self.window,
                        nodes.len(),
                        self.ratio,
                        nodes[0],
                    ),
                    severity: worst,
                    nodes,
                    confidence: self.base_confidence * coverage.fraction(),
                });
            }
        }
        Observation { alerts, coverage }
    }
}

// ------------------------------------------------------------- actuation

/// Who an action is applied to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ActionTarget {
    /// Bounded first action: exactly one node.
    Canary(NodeId),
    /// Post-promotion action over the implicated nodes (empty = whole
    /// fleet, actuator's choice).
    Fleet(Vec<NodeId>),
}

impl ActionTarget {
    /// Nodes covered by this target (0 means "whole fleet").
    pub fn node_count(&self) -> usize {
        match self {
            ActionTarget::Canary(_) => 1,
            ActionTarget::Fleet(nodes) => nodes.len(),
        }
    }
}

/// The Response half's actuation surface: how decisions reach the
/// managed system. `moda-hpc::Cluster` implements this over its worlds.
pub trait FleetActuator {
    /// Action vocabulary of the managed system.
    type Action: Clone + std::fmt::Debug;

    /// Apply `action` to `target`. `Ok` carries a human-readable
    /// receipt for the audit trail; `Err` a reason (logged, counted,
    /// and subject to the same rate limits as successes).
    fn apply(
        &mut self,
        now: SimTime,
        target: &ActionTarget,
        action: &Self::Action,
    ) -> Result<String, String>;
}

/// Sliding-window actuation budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateLimit {
    /// Window the budget applies over.
    pub window: SimDuration,
    /// Max actions inside any such window.
    pub max: u32,
}

/// One guarded response: which monitor triggers it, what it does, and
/// the bounded-execution knobs.
#[derive(Debug, Clone)]
pub struct ResponseRule<A> {
    /// Rule name (audit key).
    pub name: String,
    /// Monitor whose alerts trigger it.
    pub monitor: String,
    /// Subsystem whose cooldown/rate budget it draws from.
    pub subsystem: String,
    /// The action to apply.
    pub action: A,
    /// Consecutive adequate-coverage observations with the alert
    /// present before the rule may fire.
    pub escalation_gate: u32,
    /// Minimum gap between actions on this subsystem.
    pub cooldown: SimDuration,
    /// Sliding-window budget for this subsystem.
    pub rate_limit: RateLimit,
    /// Settle time after an action before validation may conclude.
    pub settle: SimDuration,
    /// Deadline after an action by which validation must have passed,
    /// else it fails (demotes + suspends the rule). Paused while
    /// coverage is inadequate — a partial view concludes nothing.
    pub validation_deadline: SimDuration,
    /// Fraction the alert severity must drop for validation to pass
    /// while the alert persists (`0.0`: any improvement or clearance).
    pub min_improvement: f64,
}

impl<A> ResponseRule<A> {
    /// Rule with conservative defaults: escalation gate 2, 30 min
    /// cooldown, 3 actions per 6 h, 10 min settle, 1 h validation
    /// deadline, any improvement validates.
    pub fn new(name: &str, monitor: &str, subsystem: &str, action: A) -> Self {
        ResponseRule {
            name: name.to_string(),
            monitor: monitor.to_string(),
            subsystem: subsystem.to_string(),
            action,
            escalation_gate: 2,
            cooldown: SimDuration::from_mins(30),
            rate_limit: RateLimit {
                window: SimDuration::from_hours(6),
                max: 3,
            },
            settle: SimDuration::from_mins(10),
            validation_deadline: SimDuration::from_hours(1),
            min_improvement: 0.0,
        }
    }
}

// ------------------------------------------------------------ audit log

/// Why actuation was held (not an error: the loop waits).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HoldReason {
    /// Fleet coverage below the floor: partial views don't actuate.
    Coverage {
        /// Observed contributing fraction.
        fraction: f64,
        /// Configured floor.
        min: f64,
    },
    /// Detection confidence below the floor.
    Confidence {
        /// Derated alert confidence.
        confidence: f64,
        /// Configured floor.
        min: f64,
    },
    /// The alert implicated no nodes (nothing to canary).
    NoTarget,
}

/// Why actuation was blocked by the execution bounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BlockCause {
    /// Subsystem cooldown still running.
    Cooldown {
        /// Time until the cooldown expires.
        remaining: SimDuration,
    },
    /// Subsystem (or global) sliding-window budget exhausted.
    RateLimit {
        /// The budget window.
        window: SimDuration,
        /// Its max.
        max: u32,
    },
    /// The rule is suspended after a failed validation.
    Suspended {
        /// When the suspension lifts.
        until: SimTime,
    },
}

/// One control-plane decision record.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlEventKind {
    /// A monitor ran its probe.
    Observed {
        /// Alerts it raised.
        alerts: u32,
        /// Coverage fraction of the probe.
        coverage: f64,
    },
    /// An alert was (still) present this pass.
    AlertRaised {
        /// Breach severity.
        severity: f64,
        /// Coverage-derated confidence.
        confidence: f64,
        /// Coverage fraction behind it.
        coverage: f64,
    },
    /// Alert present but the escalation gate not yet satisfied.
    Escalated {
        /// Consecutive qualifying observations so far.
        consecutive: u32,
        /// The gate.
        gate: u32,
    },
    /// Actuation held (coverage/confidence/no-target) — waits, not an
    /// error.
    Held(HoldReason),
    /// Actuation blocked by the execution bounds.
    Blocked(BlockCause),
    /// An action was applied.
    Applied {
        /// Canary (pre-promotion) or fleet-wide.
        canary: bool,
        /// Nodes targeted (1 for canary).
        nodes: u32,
        /// Escalation count at apply time.
        escalation: u32,
        /// The rule's gate (so the trail self-certifies `escalation >=
        /// gate`).
        gate: u32,
        /// Coverage fraction at apply time.
        coverage: f64,
        /// Alert confidence at apply time.
        confidence: f64,
    },
    /// The actuator refused or failed the action.
    ActionFailed,
    /// Post-action validation passed against the same fleet metrics.
    ValidationPassed {
        /// Alert severity when the action fired.
        before: f64,
        /// Severity at validation (0 = cleared).
        after: f64,
    },
    /// Post-action validation failed by the deadline.
    ValidationFailed {
        /// Alert severity when the action fired.
        before: f64,
        /// Severity at validation.
        after: f64,
    },
    /// Canary validated: the rule may now target the fleet.
    Promoted,
    /// Validation failed: back to canary-only, suspended.
    Demoted {
        /// When the suspension lifts.
        until: SimTime,
    },
}

/// One entry of the [`ControlLog`].
#[derive(Debug, Clone)]
pub struct ControlEvent {
    /// Monotonic sequence number (gap-free unless the ring dropped).
    pub seq: u64,
    /// When.
    pub t: SimTime,
    /// Rule name (or monitor name for `Observed`).
    pub rule: String,
    /// Subsystem.
    pub subsystem: String,
    /// What happened.
    pub kind: ControlEventKind,
    /// Free-text explanation.
    pub detail: String,
}

/// Bounded ring of control-plane decisions. Unlike a free-text log this
/// is typed, so the trail can be *verified*, not just read
/// ([`FleetResponder::verify_audit`]).
#[derive(Debug)]
pub struct ControlLog {
    events: VecDeque<ControlEvent>,
    capacity: usize,
    total: u64,
    dropped: u64,
}

impl ControlLog {
    /// Ring retaining `capacity` events.
    pub fn new(capacity: usize) -> Self {
        ControlLog {
            events: VecDeque::new(),
            capacity: capacity.max(16),
            total: 0,
            dropped: 0,
        }
    }

    fn record(
        &mut self,
        t: SimTime,
        rule: &str,
        subsystem: &str,
        kind: ControlEventKind,
        detail: String,
    ) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ControlEvent {
            seq: self.total,
            t,
            rule: rule.to_string(),
            subsystem: subsystem.to_string(),
            kind,
            detail,
        });
        self.total += 1;
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &ControlEvent> {
        self.events.iter()
    }

    /// Lifetime events recorded (including any the ring dropped).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Events the ring evicted (non-zero means the retained trail is a
    /// suffix, and [`FleetResponder::verify_audit`] refuses to certify).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Count retained events matching a predicate.
    pub fn count(&self, pred: impl Fn(&ControlEventKind) -> bool) -> usize {
        self.events.iter().filter(|e| pred(&e.kind)).count()
    }

    /// Render the retained trail, one line per decision.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for e in &self.events {
            let _ = writeln!(
                out,
                "#{} [{}] {}/{} {:?}: {}",
                e.seq, e.t, e.subsystem, e.rule, e.kind, e.detail
            );
        }
        out
    }
}

// ------------------------------------------------------------ responder

/// Global responder knobs.
#[derive(Debug, Clone)]
pub struct ControlConfig {
    /// Minimum alert confidence to actuate (alerts arrive already
    /// coverage-derated, so a partial view lowers this naturally).
    pub min_confidence: f64,
    /// Minimum coverage fraction to actuate — below it the responder
    /// holds until coverage recovers.
    pub min_coverage: f64,
    /// Optional whole-responder actuation budget on top of the
    /// per-subsystem ones.
    pub global_rate: Option<RateLimit>,
    /// Audit ring capacity.
    pub log_capacity: usize,
    /// Record an `Observed` event per monitor per tick (turn off for
    /// very long campaigns where only decisions matter).
    pub log_observations: bool,
}

impl Default for ControlConfig {
    fn default() -> Self {
        ControlConfig {
            min_confidence: 0.5,
            min_coverage: 0.75,
            global_rate: None,
            log_capacity: 8192,
            log_observations: true,
        }
    }
}

/// What one [`FleetResponder::tick`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TickReport {
    /// Monitors that raised at least one alert.
    pub alerts: usize,
    /// Actions applied.
    pub applied: usize,
    /// Actions the actuator failed.
    pub failed: usize,
    /// Actuations held (coverage/confidence/no-target).
    pub held: usize,
    /// Actuations blocked (cooldown/rate/suspension).
    pub blocked: usize,
    /// Validations concluded passed.
    pub validations_passed: usize,
    /// Validations concluded failed.
    pub validations_failed: usize,
}

/// Summary [`FleetResponder::verify_audit`] returns when the trail is
/// consistent with the configured bounds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AuditSummary {
    /// Events examined.
    pub events: u64,
    /// Actions applied.
    pub applied: u64,
    /// Of which canary-targeted.
    pub canary: u64,
    /// Of which fleet-wide (post-promotion).
    pub fleet: u64,
    /// Holds.
    pub held: u64,
    /// Blocks.
    pub blocked: u64,
    /// Validations passed.
    pub validations_passed: u64,
    /// Validations failed.
    pub validations_failed: u64,
    /// Promotions.
    pub promotions: u64,
    /// Demotions.
    pub demotions: u64,
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    applied_at: SimTime,
    canary: bool,
    baseline: f64,
}

#[derive(Debug, Clone, Copy, Default)]
struct RuleState {
    consecutive: u32,
    promoted: bool,
    suspended_until: Option<SimTime>,
    pending: Option<Pending>,
}

/// The guarded Response plane: monitors feed it observations, rules map
/// persistent alerts to actuator actions under bounded execution, and
/// every decision lands in the [`ControlLog`]. See the module docs for
/// the contract.
///
/// Parameterized by the **action** type, not the actuator: actuators
/// typically borrow the managed system mutably and are rebuilt per
/// tick (e.g. a borrow split over a cluster), so [`FleetResponder::tick`]
/// accepts any actuator whose `Action` matches.
pub struct FleetResponder<Act: Clone + Debug> {
    cfg: ControlConfig,
    monitors: Vec<Box<dyn FleetMonitor>>,
    rules: Vec<ResponseRule<Act>>,
    state: Vec<RuleState>,
    subsystem_last: HashMap<String, SimTime>,
    subsystem_hist: HashMap<String, VecDeque<SimTime>>,
    global_hist: VecDeque<SimTime>,
    log: ControlLog,
    complete_observations: u64,
    degraded_observations: u64,
    /// Pre-resolved `control.*` self-telemetry instruments (inert until
    /// [`FleetResponder::set_obs`]).
    tick_ns: LatencyRecorder,
    actuations: Counter,
}

impl<Act: Clone + Debug> FleetResponder<Act> {
    /// Empty responder.
    pub fn new(cfg: ControlConfig) -> Self {
        let log = ControlLog::new(cfg.log_capacity);
        FleetResponder {
            cfg,
            monitors: Vec::new(),
            rules: Vec::new(),
            state: Vec::new(),
            subsystem_last: HashMap::new(),
            subsystem_hist: HashMap::new(),
            global_hist: VecDeque::new(),
            log,
            complete_observations: 0,
            degraded_observations: 0,
            tick_ns: LatencyRecorder::default(),
            actuations: Counter::default(),
        }
    }

    /// Attach a self-telemetry handle: `control.tick_ns` spans every
    /// [`FleetResponder::tick`], `control.actuations` counts applied
    /// actions.
    pub fn set_obs(&mut self, obs: &Obs) {
        self.tick_ns = obs.latency("control.tick_ns");
        self.actuations = obs.counter("control.actuations");
    }

    /// Register a monitor.
    pub fn add_monitor(&mut self, m: Box<dyn FleetMonitor>) -> &mut Self {
        self.monitors.push(m);
        self
    }

    /// Register a response rule.
    pub fn add_rule(&mut self, r: ResponseRule<Act>) -> &mut Self {
        assert!(
            r.escalation_gate >= 1,
            "an escalation gate below 1 is meaningless"
        );
        self.rules.push(r);
        self.state.push(RuleState::default());
        self
    }

    /// The audit trail.
    pub fn log(&self) -> &ControlLog {
        &self.log
    }

    /// Whether a rule has been promoted past canary-only execution.
    pub fn promoted(&self, rule: &str) -> bool {
        self.rules
            .iter()
            .position(|r| r.name == rule)
            .map(|i| self.state[i].promoted)
            .unwrap_or(false)
    }

    /// `(complete, degraded)` observation counts: how many monitor
    /// probes saw the whole fleet vs. a partial view. The chaos
    /// scenarios assert `degraded > 0` under partition *and* that no
    /// action fired from a degraded view.
    pub fn observation_stats(&self) -> (u64, u64) {
        (self.complete_observations, self.degraded_observations)
    }

    /// One Monitor→Analyze→(guard)→Execute→Validate pass at `now`.
    pub fn tick<A: FleetActuator<Action = Act>>(
        &mut self,
        fleet: &FleetAggregator,
        now: SimTime,
        actuator: &mut A,
    ) -> TickReport {
        let _span = self.tick_ns.start();
        let mut report = TickReport::default();
        // Monitor: run every probe once; keep the worst alert per
        // monitor (rules bind per monitor).
        let mut obs: HashMap<String, (f64, Option<FleetAlert>)> = HashMap::new();
        for m in &mut self.monitors {
            let o = m.observe(fleet, now);
            let frac = o.coverage.fraction();
            if o.coverage.complete() {
                self.complete_observations += 1;
            } else {
                self.degraded_observations += 1;
            }
            if self.cfg.log_observations {
                self.log.record(
                    now,
                    m.name(),
                    m.subsystem(),
                    ControlEventKind::Observed {
                        alerts: o.alerts.len() as u32,
                        coverage: frac,
                    },
                    format!(
                        "coverage {}/{} ({} stale, {} silent)",
                        o.coverage.contributing,
                        o.coverage.total,
                        o.coverage.stale,
                        o.coverage.silent
                    ),
                );
            }
            let best = o.alerts.into_iter().max_by(|a, b| {
                a.severity
                    .partial_cmp(&b.severity)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            if best.is_some() {
                report.alerts += 1;
            }
            obs.insert(m.name().to_string(), (frac, best));
        }

        // Validate: conclude pending post-action checks against the
        // same fleet metrics that triggered them.
        for i in 0..self.rules.len() {
            let rule = &self.rules[i];
            let Some(p) = self.state[i].pending else {
                continue;
            };
            if now.0 < p.applied_at.0 + rule.settle.0 {
                continue;
            }
            let Some((frac, alert)) = obs.get(&rule.monitor) else {
                continue;
            };
            if *frac < self.cfg.min_coverage {
                // A partial view concludes nothing; the deadline is
                // effectively paused until coverage recovers.
                continue;
            }
            let after = alert.as_ref().map(|a| a.severity).unwrap_or(0.0);
            let passed = match alert {
                None => true,
                Some(a) => a.severity <= p.baseline * (1.0 - rule.min_improvement) - 1e-12,
            };
            if passed {
                self.log.record(
                    now,
                    &rule.name,
                    &rule.subsystem,
                    ControlEventKind::ValidationPassed {
                        before: p.baseline,
                        after,
                    },
                    format!("severity {:.3} -> {after:.3}", p.baseline),
                );
                report.validations_passed += 1;
                if p.canary && !self.state[i].promoted {
                    self.state[i].promoted = true;
                    self.log.record(
                        now,
                        &rule.name,
                        &rule.subsystem,
                        ControlEventKind::Promoted,
                        "canary validated; fleet-wide targets unlocked".to_string(),
                    );
                }
                self.state[i].pending = None;
            } else if now.0 >= p.applied_at.0 + rule.validation_deadline.0 {
                self.log.record(
                    now,
                    &rule.name,
                    &rule.subsystem,
                    ControlEventKind::ValidationFailed {
                        before: p.baseline,
                        after,
                    },
                    format!("severity {:.3} -> {after:.3} past deadline", p.baseline),
                );
                report.validations_failed += 1;
                let until = now + rule.cooldown;
                self.state[i].promoted = false;
                self.state[i].suspended_until = Some(until);
                self.state[i].pending = None;
                self.log.record(
                    now,
                    &rule.name,
                    &rule.subsystem,
                    ControlEventKind::Demoted { until },
                    "validation failed: canary-only again, suspended".to_string(),
                );
            }
        }

        // Plan/Execute under the guards.
        for i in 0..self.rules.len() {
            let rule = &self.rules[i];
            let Some((frac, alert)) = obs.get(&rule.monitor) else {
                continue;
            };
            let adequate = *frac >= self.cfg.min_coverage;
            let Some(alert) = alert else {
                if adequate {
                    // A healthy, well-covered observation resets the
                    // escalation run; a degraded one proves nothing and
                    // freezes it.
                    self.state[i].consecutive = 0;
                }
                continue;
            };
            if adequate {
                self.state[i].consecutive = self.state[i].consecutive.saturating_add(1);
            }
            self.log.record(
                now,
                &rule.name,
                &rule.subsystem,
                ControlEventKind::AlertRaised {
                    severity: alert.severity,
                    confidence: alert.confidence,
                    coverage: *frac,
                },
                alert.detail.clone(),
            );
            if self.state[i].pending.is_some() {
                // One action in flight per rule; validate before more.
                continue;
            }
            let consecutive = self.state[i].consecutive;
            if consecutive < rule.escalation_gate {
                self.log.record(
                    now,
                    &rule.name,
                    &rule.subsystem,
                    ControlEventKind::Escalated {
                        consecutive,
                        gate: rule.escalation_gate,
                    },
                    "alert persists; gate not yet satisfied".to_string(),
                );
                continue;
            }
            if !adequate {
                self.log.record(
                    now,
                    &rule.name,
                    &rule.subsystem,
                    ControlEventKind::Held(HoldReason::Coverage {
                        fraction: *frac,
                        min: self.cfg.min_coverage,
                    }),
                    "partial fleet view: holding actuation until coverage recovers".to_string(),
                );
                report.held += 1;
                continue;
            }
            if alert.confidence < self.cfg.min_confidence {
                self.log.record(
                    now,
                    &rule.name,
                    &rule.subsystem,
                    ControlEventKind::Held(HoldReason::Confidence {
                        confidence: alert.confidence,
                        min: self.cfg.min_confidence,
                    }),
                    "confidence below floor".to_string(),
                );
                report.held += 1;
                continue;
            }
            if let Some(until) = self.state[i].suspended_until {
                if now.0 < until.0 {
                    self.log.record(
                        now,
                        &rule.name,
                        &rule.subsystem,
                        ControlEventKind::Blocked(BlockCause::Suspended { until }),
                        "suspended after failed validation".to_string(),
                    );
                    report.blocked += 1;
                    continue;
                }
                self.state[i].suspended_until = None;
            }
            if let Some(&last) = self.subsystem_last.get(&rule.subsystem) {
                let since = now.saturating_since(last);
                if since.0 < rule.cooldown.0 {
                    self.log.record(
                        now,
                        &rule.name,
                        &rule.subsystem,
                        ControlEventKind::Blocked(BlockCause::Cooldown {
                            remaining: SimDuration(rule.cooldown.0 - since.0),
                        }),
                        "subsystem cooldown running".to_string(),
                    );
                    report.blocked += 1;
                    continue;
                }
            }
            let hist = self
                .subsystem_hist
                .entry(rule.subsystem.clone())
                .or_default();
            while matches!(hist.front(), Some(t0) if now.saturating_since(*t0).0 >= rule.rate_limit.window.0)
            {
                hist.pop_front();
            }
            if hist.len() as u32 >= rule.rate_limit.max {
                self.log.record(
                    now,
                    &rule.name,
                    &rule.subsystem,
                    ControlEventKind::Blocked(BlockCause::RateLimit {
                        window: rule.rate_limit.window,
                        max: rule.rate_limit.max,
                    }),
                    "subsystem rate budget exhausted".to_string(),
                );
                report.blocked += 1;
                continue;
            }
            if let Some(g) = self.cfg.global_rate {
                while matches!(self.global_hist.front(), Some(t0) if now.saturating_since(*t0).0 >= g.window.0)
                {
                    self.global_hist.pop_front();
                }
                if self.global_hist.len() as u32 >= g.max {
                    self.log.record(
                        now,
                        &rule.name,
                        &rule.subsystem,
                        ControlEventKind::Blocked(BlockCause::RateLimit {
                            window: g.window,
                            max: g.max,
                        }),
                        "global rate budget exhausted".to_string(),
                    );
                    report.blocked += 1;
                    continue;
                }
            }
            if alert.nodes.is_empty() {
                self.log.record(
                    now,
                    &rule.name,
                    &rule.subsystem,
                    ControlEventKind::Held(HoldReason::NoTarget),
                    "alert implicated no nodes".to_string(),
                );
                report.held += 1;
                continue;
            }
            let canary = !self.state[i].promoted;
            let target = if canary {
                ActionTarget::Canary(alert.nodes[0])
            } else {
                ActionTarget::Fleet(alert.nodes.clone())
            };
            match actuator.apply(now, &target, &rule.action) {
                Ok(receipt) => {
                    self.log.record(
                        now,
                        &rule.name,
                        &rule.subsystem,
                        ControlEventKind::Applied {
                            canary,
                            nodes: target.node_count() as u32,
                            escalation: consecutive,
                            gate: rule.escalation_gate,
                            coverage: *frac,
                            confidence: alert.confidence,
                        },
                        format!("{:?} on {target:?}: {receipt}", rule.action),
                    );
                    report.applied += 1;
                    self.actuations.add(1);
                    self.subsystem_last.insert(rule.subsystem.clone(), now);
                    self.subsystem_hist
                        .get_mut(&rule.subsystem)
                        .expect("entry created above")
                        .push_back(now);
                    self.global_hist.push_back(now);
                    self.state[i].pending = Some(Pending {
                        applied_at: now,
                        canary,
                        baseline: alert.severity,
                    });
                    self.state[i].consecutive = 0;
                }
                Err(reason) => {
                    self.log.record(
                        now,
                        &rule.name,
                        &rule.subsystem,
                        ControlEventKind::ActionFailed,
                        reason,
                    );
                    report.failed += 1;
                    // A refused action still draws from the budget:
                    // hammering a failing actuator is its own hazard.
                    self.subsystem_last.insert(rule.subsystem.clone(), now);
                    self.subsystem_hist
                        .get_mut(&rule.subsystem)
                        .expect("entry created above")
                        .push_back(now);
                    self.global_hist.push_back(now);
                }
            }
        }
        report
    }

    /// Replay the retained audit trail against the configured bounds
    /// and certify it: canary-first ordering, escalation gates,
    /// coverage/confidence floors at apply time, per-subsystem
    /// cooldowns and rate budgets, validation-before-promotion, and
    /// apply→validation completeness. Returns the summary, or every
    /// violation found.
    pub fn verify_audit(&self) -> Result<AuditSummary, Vec<String>> {
        let mut errors = Vec::new();
        if self.log.dropped() > 0 {
            errors.push(format!(
                "trail truncated: ring dropped {} events",
                self.log.dropped()
            ));
        }
        let rule_of = |name: &str| self.rules.iter().find(|r| r.name == name);
        let mut summary = AuditSummary::default();
        let mut promoted: HashMap<&str, bool> = HashMap::new();
        let mut last_validation: HashMap<&str, (bool, bool)> = HashMap::new(); // (passed, was_canary)
        let mut pending: HashMap<&str, (SimTime, bool)> = HashMap::new(); // applied_at, canary
        let mut sub_applied: HashMap<&str, Vec<SimTime>> = HashMap::new();
        let mut end_t = SimTime::ZERO;
        for e in self.log.events() {
            summary.events += 1;
            end_t = end_t.max(e.t);
            match &e.kind {
                ControlEventKind::Applied {
                    canary,
                    escalation,
                    gate,
                    coverage,
                    confidence,
                    ..
                } => {
                    summary.applied += 1;
                    if *canary {
                        summary.canary += 1;
                    } else {
                        summary.fleet += 1;
                    }
                    let Some(rule) = rule_of(&e.rule) else {
                        errors.push(format!("#{}: apply from unknown rule {}", e.seq, e.rule));
                        continue;
                    };
                    if !*canary && !promoted.get(e.rule.as_str()).copied().unwrap_or(false) {
                        errors.push(format!(
                            "#{}: fleet-wide apply of {} without prior promotion",
                            e.seq, e.rule
                        ));
                    }
                    if escalation < gate {
                        errors.push(format!(
                            "#{}: {} applied below its escalation gate ({escalation} < {gate})",
                            e.seq, e.rule
                        ));
                    }
                    if *coverage < self.cfg.min_coverage - 1e-9 {
                        errors.push(format!(
                            "#{}: {} applied at coverage {coverage:.3} below floor {:.3}",
                            e.seq, e.rule, self.cfg.min_coverage
                        ));
                    }
                    if *confidence < self.cfg.min_confidence - 1e-9 {
                        errors.push(format!(
                            "#{}: {} applied at confidence {confidence:.3} below floor {:.3}",
                            e.seq, e.rule, self.cfg.min_confidence
                        ));
                    }
                    let hist = sub_applied.entry(e.subsystem.as_str()).or_default();
                    if let Some(&prev) = hist.last() {
                        if e.t.saturating_since(prev).0 < rule.cooldown.0 {
                            errors.push(format!(
                                "#{}: {} applied {} after the previous {} action (cooldown {})",
                                e.seq,
                                e.rule,
                                e.t.saturating_since(prev),
                                e.subsystem,
                                rule.cooldown
                            ));
                        }
                    }
                    hist.push(e.t);
                    let in_window = hist
                        .iter()
                        .filter(|&&t0| e.t.saturating_since(t0).0 < rule.rate_limit.window.0)
                        .count() as u32;
                    if in_window > rule.rate_limit.max {
                        errors.push(format!(
                            "#{}: {} exceeded the {} rate budget ({} in {})",
                            e.seq, e.rule, e.subsystem, in_window, rule.rate_limit.window
                        ));
                    }
                    if pending.contains_key(e.rule.as_str()) {
                        errors.push(format!(
                            "#{}: {} applied while a prior action was still unvalidated",
                            e.seq, e.rule
                        ));
                    }
                    pending.insert(e.rule.as_str(), (e.t, *canary));
                }
                ControlEventKind::ValidationPassed { .. }
                | ControlEventKind::ValidationFailed { .. } => {
                    let passed = matches!(e.kind, ControlEventKind::ValidationPassed { .. });
                    if passed {
                        summary.validations_passed += 1;
                    } else {
                        summary.validations_failed += 1;
                    }
                    match pending.remove(e.rule.as_str()) {
                        Some((_, was_canary)) => {
                            last_validation.insert(e.rule.as_str(), (passed, was_canary));
                        }
                        None => errors.push(format!(
                            "#{}: validation for {} without a pending action",
                            e.seq, e.rule
                        )),
                    }
                    if !passed {
                        promoted.insert(e.rule.as_str(), false);
                    }
                }
                ControlEventKind::Promoted => {
                    summary.promotions += 1;
                    match last_validation.get(e.rule.as_str()) {
                        Some((true, true)) => {
                            promoted.insert(e.rule.as_str(), true);
                        }
                        _ => errors.push(format!(
                            "#{}: {} promoted without a passed canary validation",
                            e.seq, e.rule
                        )),
                    }
                }
                ControlEventKind::Demoted { .. } => {
                    summary.demotions += 1;
                    promoted.insert(e.rule.as_str(), false);
                }
                ControlEventKind::Held(_) => summary.held += 1,
                ControlEventKind::Blocked(_) => summary.blocked += 1,
                _ => {}
            }
        }
        for (rule, (applied_at, _)) in &pending {
            if let Some(r) = rule_of(rule) {
                if end_t.0 >= applied_at.0 + r.settle.0 + r.validation_deadline.0 {
                    errors.push(format!(
                        "{rule}: action at {applied_at} never concluded validation by the trail's end"
                    ));
                }
            }
        }
        if errors.is_empty() {
            Ok(summary)
        } else {
            Err(errors)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moda_telemetry::{MetricMeta, SourceDomain};

    /// Fleet of `n` nodes exporting one gauge `m`; node `k` holds 1 Hz
    /// samples at value `base + k*spread` up to `until_s`, so staleness
    /// per node is controlled by the caller's `now`.
    fn fleet(n: u32, until_s: &[u64], base: f64, spread: f64) -> FleetAggregator {
        let mut agg = FleetAggregator::new();
        for k in 0..n {
            let node = agg.add_node(&format!("node{k:02}"));
            let until = until_s[k as usize];
            if until == 0 {
                continue; // silent: session open, nothing ingested
            }
            let mut db = moda_telemetry::Tsdb::with_retention(1 << 12);
            let id = db.register(MetricMeta::gauge("m", "u", SourceDomain::Hardware));
            for s in 1..=until {
                db.insert(id, SimTime::from_secs(s), base + k as f64 * spread);
            }
            let mut sink = moda_telemetry::export::MemorySink::new();
            moda_telemetry::Exporter::new()
                .drain(&db, &mut sink)
                .unwrap();
            for b in &sink.batches {
                agg.ingest(node, b);
            }
        }
        agg
    }

    #[test]
    fn covered_queries_exclude_stale_and_silent_nodes() {
        // node0 live to 600 s, node1 stale (stops at 100 s), node2 silent.
        let agg = fleet(3, &[600, 100, 0], 10.0, 10.0);
        let now = SimTime::from_secs(600);
        let stale_after = SimDuration::from_secs(120);
        let cv = agg.covered_window_agg(
            "m",
            now,
            SimDuration::from_secs(600),
            WindowAgg::Count,
            stale_after,
        );
        // Only node0 contributes: 600 samples — node1's 100 in-window
        // samples are stale and must not leak in.
        assert_eq!(cv.value, Some(600.0));
        assert_eq!(cv.coverage.total, 3);
        assert_eq!(cv.coverage.contributing, 1);
        assert_eq!(cv.coverage.stale, 1);
        assert_eq!(cv.coverage.silent, 1);
        assert!(!cv.coverage.complete());
        assert!((cv.coverage.fraction() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(
            cv.coverage.excluded,
            vec![
                (NodeId(1), NodeLiveness::Stale),
                (NodeId(2), NodeLiveness::Silent)
            ]
        );
        // The plain (uncovered) query would have pooled the stale data.
        let naive = agg
            .store()
            .fleet_window_agg("m", now, SimDuration::from_secs(600), WindowAgg::Count)
            .unwrap();
        assert_eq!(naive, 700.0);
        // Ranking likewise only sees the contributing subset.
        let (ranked, cov) = agg.covered_top_nodes(
            "m",
            now,
            SimDuration::from_secs(600),
            WindowAgg::Max,
            10,
            Rank::Highest,
            stale_after,
        );
        assert_eq!(ranked, vec![(NodeId(0), 10.0)]);
        assert_eq!(cov.contributing, 1);
    }

    #[test]
    fn threshold_monitor_derates_confidence_by_coverage() {
        let agg = fleet(2, &[600, 0], 50.0, 0.0);
        let mut m = ThresholdMonitor {
            name: "power".into(),
            subsystem: "power".into(),
            metric: "m".into(),
            window: SimDuration::from_secs(60),
            agg: WindowAgg::Mean,
            bound: Bound::Above(40.0),
            stale_after: SimDuration::from_secs(120),
            base_confidence: 0.9,
        };
        let o = m.observe(&agg, SimTime::from_secs(600));
        assert_eq!(o.alerts.len(), 1);
        let a = &o.alerts[0];
        assert!((a.severity - 50.0 / 40.0).abs() < 1e-9);
        // Half the fleet is silent: confidence is halved.
        assert!((a.confidence - 0.45).abs() < 1e-9, "{}", a.confidence);
        assert_eq!(a.nodes, vec![NodeId(0)]);
    }

    #[test]
    fn straggler_monitor_flags_the_deviant_node() {
        // Nodes at 10, 10, 10, 35: node3 is 3.5x the median.
        let agg = fleet(4, &[600, 600, 600, 600], 10.0, 0.0);
        // Overwrite node3's value by rebuilding: use spread on last
        // node via a dedicated fleet.
        let mut agg2 = FleetAggregator::new();
        for (k, v) in [10.0, 10.0, 10.0, 35.0].iter().enumerate() {
            let node = agg2.add_node(&format!("node{k:02}"));
            let mut db = moda_telemetry::Tsdb::with_retention(1 << 12);
            let id = db.register(MetricMeta::gauge("m", "u", SourceDomain::Hardware));
            for s in 1..=600u64 {
                db.insert(id, SimTime::from_secs(s), *v);
            }
            let mut sink = moda_telemetry::export::MemorySink::new();
            moda_telemetry::Exporter::new()
                .drain(&db, &mut sink)
                .unwrap();
            for b in &sink.batches {
                agg2.ingest(node, b);
            }
        }
        drop(agg);
        let mut m = StragglerMonitor {
            name: "straggler".into(),
            subsystem: "nodes".into(),
            metric: "m".into(),
            window: SimDuration::from_secs(300),
            agg: WindowAgg::Mean,
            rank: Rank::Highest,
            ratio: 2.0,
            min_nodes: 3,
            stale_after: SimDuration::from_secs(120),
            base_confidence: 0.9,
        };
        let o = m.observe(&agg2, SimTime::from_secs(600));
        assert_eq!(o.alerts.len(), 1);
        let a = &o.alerts[0];
        assert_eq!(a.nodes, vec![NodeId(3)]);
        assert!((a.severity - 35.0 / 20.0).abs() < 1e-9);
        assert!(o.coverage.complete());
    }

    // A scripted actuator for responder tests.
    struct ScriptedActuator {
        applies: Vec<(SimTime, ActionTarget, &'static str)>,
        fail_next: bool,
    }

    impl FleetActuator for ScriptedActuator {
        type Action = &'static str;

        fn apply(
            &mut self,
            now: SimTime,
            target: &ActionTarget,
            action: &Self::Action,
        ) -> Result<String, String> {
            if self.fail_next {
                self.fail_next = false;
                return Err("actuator refused".into());
            }
            self.applies.push((now, target.clone(), action));
            Ok(format!("did {action}"))
        }
    }

    /// A monitor driven by a script: (severity, coverage_fraction) per
    /// tick; severity 0 = healthy.
    struct ScriptMonitor {
        script: Vec<(f64, f64)>,
        i: usize,
    }

    impl FleetMonitor for ScriptMonitor {
        fn name(&self) -> &str {
            "scripted"
        }

        fn subsystem(&self) -> &str {
            "sub"
        }

        fn observe(&mut self, _fleet: &FleetAggregator, _now: SimTime) -> Observation {
            let (sev, frac) = self.script[self.i.min(self.script.len() - 1)];
            self.i += 1;
            let total = 4;
            let contributing = (frac * total as f64).round() as usize;
            let coverage = Coverage {
                total,
                contributing,
                stale: total - contributing,
                excluded: (contributing..total)
                    .map(|k| (NodeId(k as u32), NodeLiveness::Stale))
                    .collect(),
                ..Coverage::default()
            };
            let alerts = if sev > 1.0 {
                vec![FleetAlert {
                    monitor: "scripted".into(),
                    subsystem: "sub".into(),
                    detail: format!("sev {sev}"),
                    severity: sev,
                    nodes: vec![NodeId(0), NodeId(1)],
                    confidence: 0.9 * frac,
                }]
            } else {
                vec![]
            };
            Observation { alerts, coverage }
        }
    }

    fn responder(script: Vec<(f64, f64)>) -> FleetResponder<&'static str> {
        let mut r = FleetResponder::new(ControlConfig {
            min_confidence: 0.5,
            min_coverage: 0.75,
            ..ControlConfig::default()
        });
        r.add_monitor(Box::new(ScriptMonitor { script, i: 0 }));
        let mut rule = ResponseRule::new("fix", "scripted", "sub", "remediate");
        rule.escalation_gate = 2;
        rule.cooldown = SimDuration::from_mins(10);
        rule.rate_limit = RateLimit {
            window: SimDuration::from_hours(1),
            max: 2,
        };
        rule.settle = SimDuration::from_mins(5);
        rule.validation_deadline = SimDuration::from_mins(30);
        rule.min_improvement = 0.0;
        r.add_rule(rule);
        r
    }

    fn tick_n(
        r: &mut FleetResponder<&'static str>,
        act: &mut ScriptedActuator,
        n: usize,
        period_s: u64,
    ) -> Vec<TickReport> {
        let agg = FleetAggregator::new();
        (0..n)
            .map(|i| r.tick(&agg, SimTime::from_secs((i as u64 + 1) * period_s), act))
            .collect()
    }

    #[test]
    fn canary_first_then_promoted_fleet_action() {
        // Alert persists; after the canary the severity improves and
        // the alert later clears, then returns — the second action is
        // fleet-wide.
        let mut r = responder(vec![
            (2.0, 1.0), // escalation 1/2
            (2.0, 1.0), // gate satisfied -> canary apply
            (1.5, 1.0), // validation (improved) -> promoted
            (0.0, 1.0),
            (2.0, 1.0), // escalation 1/2
            (2.0, 1.0), // fleet apply (cooldown: 10 min, ticks 5 min apart... )
            (0.0, 1.0), // validation passes (cleared)
            (0.0, 1.0),
        ]);
        let mut act = ScriptedActuator {
            applies: vec![],
            fail_next: false,
        };
        let reports = tick_n(&mut r, &mut act, 8, 600);
        assert_eq!(reports.iter().map(|t| t.applied).sum::<usize>(), 2);
        assert_eq!(act.applies.len(), 2);
        assert!(matches!(act.applies[0].1, ActionTarget::Canary(NodeId(0))));
        assert!(matches!(&act.applies[1].1, ActionTarget::Fleet(nodes) if nodes.len() == 2));
        assert!(r.promoted("fix"));
        let summary = r.verify_audit().expect("trail certifies");
        assert_eq!(summary.applied, 2);
        assert_eq!(summary.canary, 1);
        assert_eq!(summary.fleet, 1);
        assert_eq!(summary.promotions, 1);
        assert_eq!(summary.validations_passed, 2);
    }

    #[test]
    fn escalation_gate_and_cooldown_bound_execution() {
        // A one-tick blip never fires (gate 2); a persistent alert
        // fires once, then the cooldown blocks the immediate retry.
        let mut r = responder(vec![
            (2.0, 1.0),
            (0.0, 1.0), // blip: reset
            (2.0, 1.0),
            (2.0, 1.0), // apply (canary)
            (2.0, 1.0), // pending validation -> no second apply
        ]);
        let mut act = ScriptedActuator {
            applies: vec![],
            fail_next: false,
        };
        // 2-minute ticks: validation settle (5 min) keeps the rule
        // pending through the last tick.
        tick_n(&mut r, &mut act, 5, 120);
        assert_eq!(act.applies.len(), 1);
        let esc = r
            .log()
            .count(|k| matches!(k, ControlEventKind::Escalated { .. }));
        assert!(esc >= 2, "gate progress is audited ({esc})");
    }

    #[test]
    fn coverage_hold_keeps_the_loop_from_acting_on_partial_views() {
        // The alert rages on, but 2/4 nodes are out: every pass holds.
        let mut r = responder(vec![(3.0, 0.5); 6]);
        let mut act = ScriptedActuator {
            applies: vec![],
            fail_next: false,
        };
        let reports = tick_n(&mut r, &mut act, 6, 600);
        assert_eq!(act.applies.len(), 0);
        // Gate freezes below adequate coverage, so the rule parks in
        // escalation, never reaching the coverage hold... unless the
        // gate was already satisfied. Either way: zero actions, and the
        // trail shows only Escalated/Held.
        assert_eq!(reports.iter().map(|t| t.applied).sum::<usize>(), 0);
        let (complete, degraded) = r.observation_stats();
        assert_eq!(complete, 0);
        assert_eq!(degraded, 6);
        r.verify_audit().expect("no-action trail certifies");
    }

    #[test]
    fn coverage_recovery_releases_held_actuation() {
        // Partition first (coverage 0.5), then recovery: the action
        // fires only after coverage returns.
        let mut r = responder(vec![
            (3.0, 0.5),
            (3.0, 0.5),
            (3.0, 0.5),
            (3.0, 1.0), // escalation 1/2
            (3.0, 1.0), // apply
            (1.0, 1.0),
        ]);
        let mut act = ScriptedActuator {
            applies: vec![],
            fail_next: false,
        };
        tick_n(&mut r, &mut act, 6, 600);
        assert_eq!(act.applies.len(), 1);
        assert_eq!(act.applies[0].0, SimTime::from_secs(5 * 600));
        let summary = r.verify_audit().expect("trail certifies");
        assert_eq!(summary.applied, 1);
    }

    #[test]
    fn failed_validation_demotes_and_suspends() {
        let mut r = responder(vec![
            (2.0, 1.0),
            (2.0, 1.0), // canary apply at t=2
            (2.5, 1.0), // worse...
            (2.5, 1.0),
            (2.5, 1.0), // deadline (30 min) passes -> failed, demoted
            (2.5, 1.0), // suspended
            (2.5, 1.0),
        ]);
        let mut act = ScriptedActuator {
            applies: vec![],
            fail_next: false,
        };
        tick_n(&mut r, &mut act, 7, 600);
        assert!(!r.promoted("fix"));
        let summary = r.verify_audit().expect("trail certifies");
        assert_eq!(summary.validations_failed, 1);
        assert_eq!(summary.demotions, 1);
        assert!(summary.blocked >= 1, "suspension shows in the trail");
        // The canary fired once at t=2; while suspended (t=5..6) the
        // rule is blocked; once the suspension lifts, a re-fire is
        // allowed but must be canary-only again — the demotion stuck.
        assert!(!act.applies.is_empty());
        assert!(matches!(act.applies[0].1, ActionTarget::Canary(_)));
        assert_eq!(act.applies[0].0, SimTime::from_secs(2 * 600));
        for (t, target, _) in &act.applies[1..] {
            assert!(*t >= SimTime::from_secs(6 * 600), "suspension held: {t}");
            assert!(matches!(target, ActionTarget::Canary(_)));
        }
    }

    #[test]
    fn verify_audit_catches_a_doctored_trail() {
        let mut r = responder(vec![(2.0, 1.0); 3]);
        let mut act = ScriptedActuator {
            applies: vec![],
            fail_next: false,
        };
        tick_n(&mut r, &mut act, 3, 600);
        // Forge a fleet-wide apply without promotion.
        r.log.record(
            SimTime::from_hours(2),
            "fix",
            "sub",
            ControlEventKind::Applied {
                canary: false,
                nodes: 4,
                escalation: 0,
                gate: 2,
                coverage: 0.5,
                confidence: 0.1,
            },
            "forged".into(),
        );
        let errors = r.verify_audit().expect_err("forgery detected");
        assert!(errors.iter().any(|e| e.contains("without prior promotion")));
        assert!(errors.iter().any(|e| e.contains("escalation gate")));
        assert!(errors.iter().any(|e| e.contains("coverage")));
        assert!(errors.iter().any(|e| e.contains("confidence")));
    }

    #[test]
    fn actuator_failure_is_audited_and_draws_budget() {
        let mut r = responder(vec![(2.0, 1.0); 4]);
        let mut act = ScriptedActuator {
            applies: vec![],
            fail_next: true,
        };
        let reports = tick_n(&mut r, &mut act, 4, 120);
        assert_eq!(reports.iter().map(|t| t.failed).sum::<usize>(), 1);
        assert_eq!(
            r.log()
                .count(|k| matches!(k, ControlEventKind::ActionFailed)),
            1
        );
        // The failure started the cooldown: the immediate retry blocks.
        assert!(reports.iter().map(|t| t.blocked).sum::<usize>() >= 1);
    }
}
