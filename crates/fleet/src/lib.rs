//! # moda-fleet
//!
//! The **fleet aggregation tier**: the center-level half of the paper's
//! monitoring/ODA stack. The autonomy loops in the paper are
//! fleet-scale — monitoring and operational data analytics span the
//! whole machine, not one node — and deployed ODA stacks (DCDB
//! Wintermute, LRZ's production pipeline) are built around exactly this
//! shape: node-local collection, a wire protocol, and a central
//! aggregation tier that answers holistic queries. This crate is that
//! tier for the `moda` stack:
//!
//! * [`FleetStore`] — the namespaced cluster store. Every node-local
//!   metric lands as `node/name` (one fleet metric per node×name pair)
//!   and simultaneously joins a cross-node **logical axis** keyed by its
//!   node-local name, so "power of node 7" and "power across the fleet"
//!   are both first-class. Per fleet metric it keeps a short raw ring
//!   and a **wire-fed rollup pyramid**
//!   ([`moda_telemetry::WireTiers`]) rebuilt from the export stream's
//!   sealed buckets and sketch columns, so cluster queries run through
//!   the **same rollup planner** as node-local ones
//!   ([`moda_telemetry::rollup::fold_span_into`]) — a fleet-wide p99
//!   over N nodes merges sealed-bucket sketches additively and never
//!   touches raw samples (asserted via the store's hit counters).
//! * [`FleetAggregator`] — per-node [`ingest`](FleetAggregator::ingest)
//!   sessions over wire-format v1
//!   [`ExportBatch`](moda_telemetry::ExportBatch)es: monotonic batch
//!   cursors (duplicate batches rejected, gaps counted), strict
//!   bucket/sketch framing (orphan columns dropped and counted),
//!   node-local→fleet metric-id remapping off `meta` records, and
//!   per-node liveness/staleness + drain-lag health
//!   ([`FleetAggregator::health`]).
//! * [`ChannelSink`] — the in-process transport: a
//!   [`moda_telemetry::Sink`] that forwards batches over a crossbeam
//!   channel to an aggregator thread (the K-exporters→one-aggregator
//!   topology `moda_core::runtime::run_multinode_fleet` wires up).
//! * [`query`] + [`FleetClient`] — the serving front end: versioned
//!   request/response query frames over the same socket envelope the
//!   ingest sessions use, answering window aggregates, merged fleet
//!   percentiles, top-k rankings, health, and coverage-annotated
//!   variants **bit-identically** to the in-process planner (pinned by
//!   `tests/query.rs` and the golden exchange in `tests/golden/`).
//!
//! The wire contract this crate consumes — cursor validation,
//! staleness, duplicate-batch rejection — is specified in the
//! "aggregator consumption" section of `docs/EXPORT_FORMAT.md`; the
//! merge algebra (ingest order independence, the fleet percentile's
//! 1 % relative-error bound against the exact pooled order statistic)
//! is pinned by the property tests in `tests/props.rs`.
//!
//! # Example
//!
//! ```
//! use moda_fleet::FleetAggregator;
//! use moda_sim::{SimDuration, SimTime};
//! use moda_telemetry::export::MemorySink;
//! use moda_telemetry::{Exporter, MetricMeta, RollupConfig, SourceDomain, Tsdb, WindowAgg};
//!
//! // Two node-local stores with sketched rollups, exported...
//! let mut agg = FleetAggregator::new();
//! for node in 0..2u64 {
//!     let mut db = Tsdb::with_retention(512);
//!     let id = db.register(MetricMeta::gauge("power_w", "W", SourceDomain::Hardware));
//!     db.enable_rollups(id, &RollupConfig::standard().with_sketches());
//!     for s in 0..7200u64 {
//!         db.insert(id, SimTime::from_secs(s), (100 * (node + 1)) as f64 + (s % 50) as f64);
//!     }
//!     let mut sink = MemorySink::new();
//!     Exporter::new().drain(&db, &mut sink).unwrap();
//!     // ...and ingested into the aggregation tier.
//!     let n = agg.add_node(&format!("node{node:02}"));
//!     for batch in &sink.batches {
//!         agg.ingest(n, batch);
//!     }
//! }
//!
//! // Cluster-wide queries over the logical axis: pooled scalars and a
//! // fleet p99 merged purely from the nodes' sealed-bucket sketches.
//! let store = agg.store();
//! let now = SimTime::from_secs(7199);
//! let hour = SimDuration::from_hours(1);
//! let count = store.fleet_window_agg("power_w", now, hour, WindowAgg::Count).unwrap();
//! assert_eq!(count, 2.0 * 3600.0);
//! let (p99, served) =
//!     store.fleet_window_agg_served("power_w", now, hour, WindowAgg::Percentile(0.99));
//! assert!(served.sketch && served.buckets > 0);
//! assert!((p99.unwrap() - 249.0).abs() < 5.0);
//! ```

pub mod aggregator;
pub mod control;
pub mod persist;
pub mod query;
pub mod selfobs;
pub mod store;
pub mod transport;

pub use aggregator::{
    ChannelSink, FleetAggregator, FleetHealth, FleetMsg, HealthPolicy, HealthTransition,
    HealthTransitionStats, IngestReport, NodeCounters, NodeHealth, NodeLiveness,
};
pub use control::{
    ActionTarget, AuditSummary, BlockCause, Bound, ControlConfig, ControlEvent, ControlEventKind,
    ControlLog, Coverage, CoveredValue, FleetActuator, FleetAlert, FleetMonitor, FleetResponder,
    HoldReason, Observation, RateLimit, ResponseRule, StragglerMonitor, ThresholdMonitor,
    TickReport,
};
pub use persist::{DurabilityConfig, DurableFleet, RecoveryStats};
pub use query::{
    CoveredAnswer, CoveredTopNodesAnswer, HealthAnswer, MetricsAnswer, NodeHealthAnswer,
    QueryError, QueryErrorCode, QueryRequest, QueryResponse, ScalarAnswer, SelfStatAnswer,
    TopNodeEntry, QUERY_PROTOCOL_VERSION,
};
pub use selfobs::{SelfScrapeTick, SelfScraper, SELF_NODE};
pub use store::{FleetMetricInfo, FleetServed, FleetStore, FleetStoreStats, NodeId, Rank};
pub use transport::{
    ChaosConfig, ChaosSink, ChaosStats, FleetClient, FleetListener, SocketSink, TransportConfig,
};
