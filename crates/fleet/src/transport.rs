//! Socket-framed wire transport: `export-wire-v1.1` batches over plain
//! `std::net` TCP (hermetic — no async runtime, no TLS, no new deps).
//!
//! Replaces the in-process [`crate::ChannelSink`] for deployments where
//! node exporters and the fleet tier live in different processes.
//! Framing is the CRC-protected envelope from
//! `moda_telemetry::export::write_frame`; on top of it the ingest
//! protocol (tags 1–5) and, sharing the same listener, the read-only
//! query protocol (tags 6–9, codec in [`crate::query`]):
//!
//! | tag | dir | payload |
//! |-----|-----|---------|
//! | `HELLO` (1) | node → fleet | auth token · node name |
//! | `HELLO_ACK` (2) | fleet → node | status `u8` (0 ok, 1 bad token) · `next_seq u64` |
//! | `BATCH` (3) | node → fleet | one encoded [`ExportBatch`] |
//! | `ACK` (4) | fleet → node | cumulative `next_seq u64` after applying |
//! | `DRAIN` (5) | node → fleet | encoded exporter [`DrainStats`] |
//! | `QUERY_HELLO` (6) | client → fleet | auth token |
//! | `QUERY_HELLO_ACK` (7) | fleet → client | status `u8` · protocol version `u16` |
//! | `QUERY` (8) | client → fleet | request id `u64` · encoded [`crate::query::QueryRequest`] |
//! | `QUERY_RESP` (9) | fleet → client | request id `u64` · encoded [`crate::query::QueryResponse`] |
//!
//! A connection picks its role with its first frame: `HELLO` opens an
//! ingest session (registers the node), `QUERY_HELLO` opens a
//! **read-only** query session — it never registers a node, so a
//! dashboard can never surface as a silent node in health or coverage
//! answers, and ingest frames on it close the connection. Malformed
//! *query payloads* inside a valid envelope are answered with a typed
//! `Error` response and the session survives; a corrupt envelope
//! (CRC mismatch, absurd length) closes the connection — there is no
//! way to resynchronize a byte stream after a broken length prefix.
//!
//! `BATCH` and `DRAIN` are both acknowledged with `ACK`, and only
//! after the server has made the payload durable (logged + flushed) —
//! so [`SocketSink::wait_idle`] and [`SocketSink::send_drain`]
//! returning means a `kill -9` of the server cannot lose that data.
//!
//! **Resume contract.** The server's `HELLO_ACK` carries the node
//! session's *persisted* cursor ([`crate::DurableFleet::next_seq`]).
//! A reconnecting [`SocketSink`] drops every buffered batch below that
//! cursor (the server has them durably), re-sends the rest, and
//! continues — the exporter side never rewinds to `seq 0`, and
//! anything the server already applied bounces off the duplicate
//! guard. This handshake is also the node-re-registration policy: a
//! node is its stable name; a re-imaged node that reconnects resumes
//! the same session at the server's cursor.
//!
//! **Backpressure.** The sink keeps at most
//! [`TransportConfig::window`] unacknowledged batches in flight; past
//! that, `write_batch` blocks reading `ACK`s. The buffer exists for
//! durability, not just pacing: the exporter commits its cursors the
//! moment `write_batch` returns `Ok`, so the sink must be able to
//! re-deliver anything the server might not have persisted yet.

use crate::persist::{bad_data, put_str, put_u16, put_u64, DurableFleet, Rd};
use crate::query::{
    decode_request, decode_response, encode_request, encode_response, execute, CoveredAnswer,
    CoveredTopNodesAnswer, HealthAnswer, MetricsAnswer, QueryError, QueryErrorCode, QueryRequest,
    QueryResponse, ScalarAnswer, SelfStatAnswer, TopNodeEntry, QUERY_PROTOCOL_VERSION,
};
use crate::store::{NodeId, Rank};
use moda_obs::Obs;
use moda_sim::{SimDuration, SimTime};
use moda_telemetry::export::{
    crc32, decode_batch, decode_drain_stats, encode_batch, encode_drain_stats, frame_tag,
    read_frame, write_frame, ExportBatch, ExportRecord, Sink, MAX_FRAME_LEN,
};
use moda_telemetry::DrainStats;
use moda_telemetry::WindowAgg;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Session hello: auth token + node name.
pub(crate) const FRAME_HELLO: u8 = frame_tag::HELLO;
/// Hello response: status + persisted session cursor.
pub(crate) const FRAME_HELLO_ACK: u8 = frame_tag::HELLO_ACK;
/// One wire batch.
pub(crate) const FRAME_BATCH: u8 = frame_tag::BATCH;
/// Cumulative apply acknowledgement.
pub(crate) const FRAME_ACK: u8 = frame_tag::ACK;
/// Out-of-band exporter drain report.
pub(crate) const FRAME_DRAIN: u8 = frame_tag::DRAIN;
/// Query session hello: auth token only (read-only, no registration).
pub(crate) const FRAME_QUERY_HELLO: u8 = frame_tag::QUERY_HELLO;
/// Query hello response: status + protocol version.
pub(crate) const FRAME_QUERY_HELLO_ACK: u8 = frame_tag::QUERY_HELLO_ACK;
/// One query request (request id + encoded request).
pub(crate) const FRAME_QUERY: u8 = frame_tag::QUERY;
/// One query response (request id + encoded response).
pub(crate) const FRAME_QUERY_RESP: u8 = frame_tag::QUERY_RESP;

/// Exporter-side transport tuning.
#[derive(Debug, Clone)]
pub struct TransportConfig {
    /// Max unacknowledged batches in flight before `write_batch`
    /// blocks on acks (bounded memory, natural backpressure).
    pub window: usize,
    /// Reconnect attempts before a send reports failure to the
    /// exporter (which rolls its cursors back and retries later).
    pub reconnect_attempts: u32,
    /// Base pause before the *second* reconnect attempt; later attempts
    /// back off exponentially (doubling, jittered) up to
    /// [`TransportConfig::backoff_cap`].
    pub reconnect_pause: Duration,
    /// Ceiling on the backoff pause, so a long outage settles into a
    /// bounded polling cadence instead of runaway waits.
    pub backoff_cap: Duration,
    /// Socket connect/read/write timeout. Without one, a peer that
    /// accepts the dial and then goes silent (half-open connection,
    /// frozen server) blocks the sender forever; with it, the stalled
    /// call errors and the normal reconnect-with-resume path takes
    /// over. `None` restores unbounded blocking I/O.
    pub io_timeout: Option<Duration>,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            window: 64,
            reconnect_attempts: 25,
            reconnect_pause: Duration::from_millis(200),
            backoff_cap: Duration::from_secs(5),
            io_timeout: Some(Duration::from_secs(5)),
        }
    }
}

impl TransportConfig {
    /// Backoff pause before reconnect attempt `attempt` (1-based):
    /// `reconnect_pause * 2^(attempt-1)`, capped at
    /// [`TransportConfig::backoff_cap`], plus up to 25 % deterministic
    /// jitter derived from `salt` — so a fleet of senders knocked out
    /// by one server restart doesn't re-dial in lockstep.
    fn backoff(&self, attempt: u32, salt: u64) -> Duration {
        let base = self.reconnect_pause.as_nanos() as u64;
        let capped = base
            .saturating_mul(1u64 << attempt.saturating_sub(1).min(20))
            .min(self.backoff_cap.as_nanos() as u64)
            .max(1);
        // Cheap splitmix64 on the salt: good enough spread for jitter.
        let mut h = salt.wrapping_add(0x9e3779b97f4a7c15);
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94d049bb133111eb);
        h ^= h >> 31;
        let jitter = (capped / 4).min(u64::MAX / 2) * (h % 1024) / 1024;
        Duration::from_nanos(capped + jitter)
    }
}

// ---------------------------------------------------------- socket sink

/// Exporter-side [`Sink`] that ships batches over TCP with handshake,
/// bounded in-flight window, and reconnect-with-resume (module docs).
#[derive(Debug)]
pub struct SocketSink {
    addr: String,
    token: String,
    node_name: String,
    cfg: TransportConfig,
    conn: Option<TcpStream>,
    /// Sent but not yet acknowledged, oldest first: `(seq, payload)`.
    unacked: VecDeque<(u64, Vec<u8>)>,
    /// The server's cumulative cursor from the latest ack/handshake.
    server_next_seq: u64,
    reconnects: u64,
    /// `next_seq` the server reported at the most recent handshake.
    last_resume_seq: u64,
    /// Batches re-sent from the replay buffer across all reconnects.
    resent_batches: u64,
    /// Retry work (`reconnects + resent_batches`) already folded into a
    /// delivered drain report — `send_drain` ships only the delta, so
    /// the server (which merges drain payloads additively) never
    /// double-counts.
    retries_reported: u64,
}

impl SocketSink {
    /// Connect and handshake. `node_name` identifies the session on the
    /// server; `token` must match the listener's.
    pub fn connect(addr: &str, node_name: &str, token: &str) -> io::Result<Self> {
        Self::connect_with(addr, node_name, token, TransportConfig::default())
    }

    /// [`SocketSink::connect`] with explicit tuning.
    pub fn connect_with(
        addr: &str,
        node_name: &str,
        token: &str,
        cfg: TransportConfig,
    ) -> io::Result<Self> {
        let mut sink = SocketSink {
            addr: addr.to_string(),
            token: token.to_string(),
            node_name: node_name.to_string(),
            cfg,
            conn: None,
            unacked: VecDeque::new(),
            server_next_seq: 0,
            reconnects: 0,
            last_resume_seq: 0,
            resent_batches: 0,
            retries_reported: 0,
        };
        sink.handshake()?;
        Ok(sink)
    }

    /// Re-point the sink at a moved server (e.g. a fleet tier that
    /// restarted on a new port). The live connection is dropped; the
    /// next send reconnects, handshakes, and resumes from the new
    /// server's persisted cursor — buffered unacked batches replay
    /// exactly like any other reconnect.
    pub fn redirect(&mut self, addr: &str) {
        self.addr = addr.to_string();
        self.conn = None;
    }

    /// Dial, authenticate, learn the server's persisted cursor, and
    /// re-send any buffered batches it has not applied.
    fn handshake(&mut self) -> io::Result<()> {
        let mut stream = match self.cfg.io_timeout {
            Some(timeout) => {
                // `connect_timeout` needs a resolved address; try each
                // candidate like `TcpStream::connect` would.
                let mut last = None;
                let mut stream = None;
                for addr in self.addr.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&addr, timeout) {
                        Ok(s) => {
                            stream = Some(s);
                            break;
                        }
                        Err(e) => last = Some(e),
                    }
                }
                stream.ok_or_else(|| {
                    last.unwrap_or_else(|| bad_data("address resolved to nothing"))
                })?
            }
            None => TcpStream::connect(&self.addr)?,
        };
        stream.set_nodelay(true).ok();
        // Bound every read/write on the session: a half-open peer must
        // surface as an error (and a reconnect), not a hang.
        stream.set_read_timeout(self.cfg.io_timeout).ok();
        stream.set_write_timeout(self.cfg.io_timeout).ok();
        let mut hello = Vec::new();
        put_str(&mut hello, &self.token);
        put_str(&mut hello, &self.node_name);
        write_frame(&mut stream, FRAME_HELLO, &hello)?;
        stream.flush()?;
        let (tag, payload) = match read_frame(&mut stream)? {
            Ok(frame) => frame,
            Err(_) => return Err(bad_data("connection closed during handshake")),
        };
        if tag != FRAME_HELLO_ACK {
            return Err(bad_data("unexpected handshake response tag"));
        }
        let mut r = Rd::new(&payload);
        let status = r.u8()?;
        let next_seq = r.u64()?;
        if status != 0 {
            return Err(io::Error::new(
                io::ErrorKind::PermissionDenied,
                "fleet listener rejected the auth token",
            ));
        }
        self.server_next_seq = next_seq;
        self.last_resume_seq = next_seq;
        // Drop what the server has durably applied; replay the rest.
        while matches!(self.unacked.front(), Some((seq, _)) if *seq < next_seq) {
            self.unacked.pop_front();
        }
        for (_, payload) in &self.unacked {
            write_frame(&mut stream, FRAME_BATCH, payload)?;
            self.resent_batches += 1;
        }
        stream.flush()?;
        self.conn = Some(stream);
        Ok(())
    }

    /// Re-dial with bounded retries (server restarts take a moment),
    /// pausing with capped exponential backoff + jitter between
    /// attempts (see [`TransportConfig::backoff`]).
    fn reconnect(&mut self) -> io::Result<()> {
        self.conn = None;
        let mut last = None;
        // Jitter salt: stable per sink identity, different per dial
        // attempt and per reconnect episode.
        let mut salt = self.node_name.bytes().fold(self.reconnects, |h, b| {
            h.wrapping_mul(31).wrapping_add(b as u64)
        });
        for attempt in 0..self.cfg.reconnect_attempts.max(1) {
            if attempt > 0 {
                salt = salt.wrapping_add(attempt as u64);
                std::thread::sleep(self.cfg.backoff(attempt, salt));
            }
            match self.handshake() {
                Ok(()) => {
                    self.reconnects += 1;
                    return Ok(());
                }
                // A bad token never heals by retrying.
                Err(e) if e.kind() == io::ErrorKind::PermissionDenied => return Err(e),
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| bad_data("reconnect failed")))
    }

    /// Read acks until at most `allowed` batches remain unacknowledged.
    /// Reconnects (and replays) if the connection drops mid-wait.
    fn pump_acks(&mut self, allowed: usize) -> io::Result<()> {
        while self.unacked.len() > allowed {
            let res = {
                let stream = self
                    .conn
                    .as_mut()
                    .ok_or_else(|| bad_data("not connected"))?;
                read_frame(stream)
            };
            match res {
                Ok(Ok((FRAME_ACK, payload))) => {
                    let mut r = Rd::new(&payload);
                    let next = r.u64()?;
                    self.server_next_seq = self.server_next_seq.max(next);
                    while matches!(
                        self.unacked.front(),
                        Some((seq, _)) if *seq < self.server_next_seq
                    ) {
                        self.unacked.pop_front();
                    }
                }
                Ok(Ok(_)) => return Err(bad_data("unexpected frame while awaiting ack")),
                Ok(Err(_)) | Err(_) => self.reconnect()?,
            }
        }
        Ok(())
    }

    /// Block until the server has acknowledged every sent batch — the
    /// exporter-side drain barrier before shutdown.
    pub fn wait_idle(&mut self) -> io::Result<()> {
        self.pump_acks(0)
    }

    /// Read exactly `n` `ACK` frames, folding each cumulative cursor
    /// into the replay buffer. Unlike [`SocketSink::pump_acks`] this
    /// does not auto-reconnect: the caller is counting acks for a frame
    /// it just sent, and a reconnect means that frame must be resent
    /// before any further acks are owed.
    fn read_acks_counted(&mut self, mut n: usize) -> io::Result<()> {
        while n > 0 {
            let stream = self
                .conn
                .as_mut()
                .ok_or_else(|| bad_data("not connected"))?;
            match read_frame(stream)? {
                Ok((FRAME_ACK, payload)) => {
                    let mut r = Rd::new(&payload);
                    let next = r.u64()?;
                    self.server_next_seq = self.server_next_seq.max(next);
                    while matches!(
                        self.unacked.front(),
                        Some((seq, _)) if *seq < self.server_next_seq
                    ) {
                        self.unacked.pop_front();
                    }
                    n -= 1;
                }
                Ok(_) => return Err(bad_data("unexpected frame while awaiting ack")),
                Err(_) => return Err(bad_data("torn frame while awaiting ack")),
            }
        }
        Ok(())
    }

    /// Ship the exporter's drain totals out-of-band and block until the
    /// server acknowledges them durable — the same ack-after-durable
    /// contract batches get, so a `kill -9` right after this returns
    /// cannot lose the totals. Totals overwrite idempotently, which is
    /// what makes redelivery after a mid-call reconnect safe.
    pub fn send_drain(&mut self, stats: &DrainStats) -> io::Result<()> {
        let mut last = None;
        for _ in 0..3 {
            if self.conn.is_none() {
                match self.reconnect() {
                    Ok(()) => {}
                    Err(e) if e.kind() == io::ErrorKind::PermissionDenied => return Err(e),
                    Err(e) => {
                        last = Some(e);
                        continue;
                    }
                }
            }
            // Piggyback this sink's *unreported* retry work onto the
            // drain report. The server merges drain payloads
            // additively, so only the delta since the last delivered
            // report goes out — committed below once the server acks.
            // Re-derived per attempt: a reconnect inside this loop
            // grows the delta.
            let retries_total = self.reconnects + self.resent_batches;
            let mut out = *stats;
            out.send_retries += retries_total - self.retries_reported;
            let mut payload = Vec::new();
            encode_drain_stats(&out, &mut payload);
            // The server acks in frame order: one ack per in-flight
            // batch ahead of the drain, then the drain's own ack.
            let pending = self.unacked.len();
            let res = {
                let stream = self.conn.as_mut().expect("connected");
                write_frame(stream, FRAME_DRAIN, &payload).and_then(|()| stream.flush())
            }
            .and_then(|()| self.read_acks_counted(pending + 1));
            match res {
                Ok(()) => {
                    self.retries_reported = retries_total;
                    return Ok(());
                }
                Err(e) => {
                    self.conn = None;
                    last = Some(e);
                }
            }
        }
        Err(last.unwrap_or_else(|| bad_data("drain delivery failed")))
    }

    /// Times the sink re-dialed and resumed from the server's cursor.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// The persisted cursor the server reported at the last handshake
    /// — nonzero after a resume proves nothing replayed from `seq 0`.
    pub fn last_resume_seq(&self) -> u64 {
        self.last_resume_seq
    }

    /// Batches re-delivered from the replay buffer across reconnects.
    pub fn resent_batches(&self) -> u64 {
        self.resent_batches
    }

    /// Batches sent but not yet acknowledged.
    pub fn unacked_len(&self) -> usize {
        self.unacked.len()
    }
}

impl Sink for SocketSink {
    fn write_batch(&mut self, batch: &ExportBatch) -> io::Result<()> {
        let mut payload = Vec::new();
        encode_batch(batch, &mut payload);
        // Two passes: the live connection, then one reconnect cycle.
        // Only on success does the batch enter the replay buffer — on
        // Err the exporter rolls back and will re-stage these records
        // under the same seq later.
        let mut attempt = 0;
        loop {
            if self.conn.is_none() {
                self.reconnect()?;
            }
            let stream = self.conn.as_mut().expect("connected");
            match write_frame(stream, FRAME_BATCH, &payload).and_then(|()| stream.flush()) {
                Ok(()) => break,
                Err(e) => {
                    self.conn = None;
                    attempt += 1;
                    if attempt >= 2 {
                        return Err(e);
                    }
                }
            }
        }
        self.unacked.push_back((batch.seq, payload));
        // Bounded in-flight window: block on acks past it.
        let window = self.cfg.window.max(1);
        self.pump_acks(window.saturating_sub(1))
    }
}

// ----------------------------------------------------- fault injection

/// Fault-injection probabilities for a [`ChaosSink`]. All default to
/// zero; the seed makes every fault schedule reproducible.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Deterministic RNG seed (runs with equal seeds inject the same
    /// fault sequence).
    pub seed: u64,
    /// Probability a batch is silently discarded after `Ok` — permanent
    /// frame loss the exporter will *not* re-stage, surfacing as a
    /// cursor gap at the aggregator.
    pub drop_prob: f64,
    /// Probability a batch is delivered twice — exercises the
    /// duplicate-batch guard.
    pub dup_prob: f64,
    /// Probability a batch is held back and delivered *after* the next
    /// one — frame delay/reordering; the late frame bounces off the
    /// session cursor (gap, then duplicate).
    pub delay_prob: f64,
    /// Probability one byte of a chunk payload is flipped in flight —
    /// payload corruption below the frame CRC's reach (the CRC covers
    /// the socket hop, not a buggy middlebox re-framing batches).
    pub corrupt_prob: f64,
    /// Probability the write fails with `BrokenPipe` — a mid-frame
    /// disconnect; the exporter rolls back and re-stages the same
    /// records under the same seq, so this is *recoverable* loss.
    pub fail_prob: f64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 1,
            drop_prob: 0.0,
            dup_prob: 0.0,
            delay_prob: 0.0,
            corrupt_prob: 0.0,
            fail_prob: 0.0,
        }
    }
}

/// Faults a [`ChaosSink`] has injected so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Batches delivered unharmed.
    pub passed: u64,
    /// Batches discarded after `Ok` (permanent loss).
    pub dropped: u64,
    /// Batches delivered twice.
    pub duplicated: u64,
    /// Batches delivered out of order.
    pub delayed: u64,
    /// Batches with a flipped payload byte.
    pub corrupted: u64,
    /// Writes failed with `BrokenPipe` (recoverable: exporter rolls
    /// back), including every write while partitioned.
    pub failed: u64,
}

/// A [`Sink`] adapter that injects transport faults between an exporter
/// and the real sink: frame drop, duplication, delay/reorder, payload
/// corruption, write failure, and an explicit partition switch
/// ([`ChaosSink::set_partitioned`]) for link-level node isolation. The
/// chaos scenarios in `moda-hpc`/`moda-usecases` wrap each node's
/// transport in one of these to prove the fleet tier degrades
/// gracefully instead of serving corrupt or stale answers.
#[derive(Debug)]
pub struct ChaosSink<S> {
    inner: S,
    cfg: ChaosConfig,
    rng: u64,
    held: Option<ExportBatch>,
    partitioned: bool,
    stats: ChaosStats,
}

impl<S: Sink> ChaosSink<S> {
    /// Wrap `inner` with the given fault schedule.
    pub fn new(inner: S, cfg: ChaosConfig) -> Self {
        ChaosSink {
            inner,
            rng: cfg.seed.max(1),
            cfg,
            held: None,
            partitioned: false,
            stats: ChaosStats::default(),
        }
    }

    /// Sever (or heal) the link. While partitioned every write fails —
    /// the exporter rolls back its cursors each drain and the node's
    /// data catches up after the heal, exactly like a real network
    /// partition.
    pub fn set_partitioned(&mut self, partitioned: bool) {
        self.partitioned = partitioned;
    }

    /// Whether the link is currently severed.
    pub fn partitioned(&self) -> bool {
        self.partitioned
    }

    /// Faults injected so far.
    pub fn stats(&self) -> ChaosStats {
        self.stats
    }

    /// The wrapped sink.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The wrapped sink, mutably (e.g. to take a `MemorySink`'s
    /// delivered batches).
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Unwrap.
    pub fn into_inner(self) -> S {
        self.inner
    }

    fn next(&mut self) -> u64 {
        // xorshift64 — deterministic, dependency-free.
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    fn roll(&mut self, p: f64) -> bool {
        p > 0.0 && ((self.next() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<S: Sink> Sink for ChaosSink<S> {
    fn write_batch(&mut self, batch: &ExportBatch) -> io::Result<()> {
        if self.partitioned || self.roll(self.cfg.fail_prob) {
            self.stats.failed += 1;
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "chaos: link down",
            ));
        }
        if self.held.is_none() && self.roll(self.cfg.delay_prob) {
            // Hold this frame; it goes out (late) behind the next one.
            self.held = Some(batch.clone());
            self.stats.delayed += 1;
            return Ok(());
        }
        if self.roll(self.cfg.drop_prob) {
            self.stats.dropped += 1;
        } else {
            let out = if self.roll(self.cfg.corrupt_prob) {
                let mut out = batch.clone();
                let mut flipped = false;
                for rec in &mut out.records {
                    if let ExportRecord::Chunk { bytes, .. } = rec {
                        if !bytes.is_empty() {
                            let at = bytes.len() / 2;
                            bytes[at] ^= 0x40;
                            flipped = true;
                            break;
                        }
                    }
                }
                if flipped {
                    self.stats.corrupted += 1;
                }
                std::borrow::Cow::Owned(out)
            } else {
                std::borrow::Cow::Borrowed(batch)
            };
            self.inner.write_batch(&out)?;
            self.stats.passed += 1;
            if self.roll(self.cfg.dup_prob) {
                self.stats.duplicated += 1;
                self.inner.write_batch(&out)?;
            }
        }
        if let Some(late) = self.held.take() {
            // The delayed frame lands after a newer seq: the aggregator
            // sees a gap, then rejects it as a duplicate.
            self.inner.write_batch(&late)?;
        }
        Ok(())
    }
}

// ------------------------------------------------------------- listener

/// Accept-loop server: framed TCP connections feeding a shared
/// [`DurableFleet`]. Every applied batch is durable (logged) before its
/// `ACK` goes out, which is what makes the resume contract sound.
#[derive(Debug)]
pub struct FleetListener {
    local_addr: SocketAddr,
    fleet: Arc<Mutex<DurableFleet>>,
    stop: Arc<AtomicBool>,
    auth_failures: Arc<AtomicU64>,
    queries_served: Arc<AtomicU64>,
    accept_thread: Option<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl FleetListener {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and start accepting sessions
    /// authenticated by `token`.
    pub fn bind(
        addr: impl ToSocketAddrs,
        fleet: Arc<Mutex<DurableFleet>>,
        token: &str,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let auth_failures = Arc::new(AtomicU64::new(0));
        let queries_served = Arc::new(AtomicU64::new(0));
        let conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_thread = {
            let fleet = Arc::clone(&fleet);
            let stop = Arc::clone(&stop);
            let auth_failures = Arc::clone(&auth_failures);
            let queries_served = Arc::clone(&queries_served);
            let conn_threads = Arc::clone(&conn_threads);
            let token = token.to_string();
            std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let fleet = Arc::clone(&fleet);
                    let stop = Arc::clone(&stop);
                    let auth_failures = Arc::clone(&auth_failures);
                    let queries_served = Arc::clone(&queries_served);
                    let token = token.clone();
                    let handle = std::thread::spawn(move || {
                        let _ = serve_connection(
                            stream,
                            &fleet,
                            &token,
                            &stop,
                            &auth_failures,
                            &queries_served,
                        );
                    });
                    conn_threads.lock().unwrap().push(handle);
                }
            })
        };
        Ok(FleetListener {
            local_addr,
            fleet,
            stop,
            auth_failures,
            queries_served,
            accept_thread: Some(accept_thread),
            conn_threads,
        })
    }

    /// The bound address (with the real port when bound to `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared fleet this listener feeds.
    pub fn fleet(&self) -> Arc<Mutex<DurableFleet>> {
        Arc::clone(&self.fleet)
    }

    /// Sessions rejected for a bad auth token.
    pub fn auth_failures(&self) -> u64 {
        self.auth_failures.load(Ordering::SeqCst)
    }

    /// Query frames answered (including typed refusals) across every
    /// query session this listener has served.
    pub fn queries_served(&self) -> u64 {
        self.queries_served.load(Ordering::SeqCst)
    }

    /// Stop accepting, drain connection threads, and hand back the
    /// shared fleet.
    pub fn shutdown(mut self) -> Arc<Mutex<DurableFleet>> {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway dial.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        let handles: Vec<_> = std::mem::take(&mut *self.conn_threads.lock().unwrap());
        for handle in handles {
            let _ = handle.join();
        }
        Arc::clone(&self.fleet)
    }
}

/// Incremental frame parser over a growing receive buffer — connection
/// reads use short timeouts (so shutdown is prompt) and a timeout must
/// never drop partially-received bytes.
struct FrameBuffer {
    buf: Vec<u8>,
}

enum Parsed {
    Frame(u8, Vec<u8>),
    NeedMore,
    Corrupt,
}

impl FrameBuffer {
    fn new() -> Self {
        FrameBuffer { buf: Vec::new() }
    }

    fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    fn next_frame(&mut self) -> Parsed {
        if self.buf.len() < 4 {
            return Parsed::NeedMore;
        }
        let len = u32::from_le_bytes(self.buf[..4].try_into().unwrap()) as usize;
        if len == 0 || len > MAX_FRAME_LEN {
            return Parsed::Corrupt;
        }
        let total = 4 + len + 4;
        if self.buf.len() < total {
            return Parsed::NeedMore;
        }
        let body = &self.buf[4..4 + len];
        let crc = u32::from_le_bytes(self.buf[4 + len..total].try_into().unwrap());
        if crc32(body) != crc {
            return Parsed::Corrupt;
        }
        let tag = body[0];
        let payload = body[1..].to_vec();
        self.buf.drain(..total);
        Parsed::Frame(tag, payload)
    }
}

/// What a connection's first frame committed it to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SessionRole {
    /// No hello yet.
    Pending,
    /// Ingest session for one registered node.
    Ingest(NodeId),
    /// Authenticated read-only query session.
    Query,
}

/// One authenticated session: the first frame picks the role (`HELLO`
/// → ingest, `QUERY_HELLO` → read-only query), then the matching
/// request loop runs. Returns when the peer disconnects, corrupts the
/// envelope, crosses roles (ingest frames on a query session and vice
/// versa), or the listener shuts down. Malformed query *payloads*
/// inside a valid envelope do **not** end the session — they are
/// answered with a typed `Error` response.
fn serve_connection(
    mut stream: TcpStream,
    fleet: &Arc<Mutex<DurableFleet>>,
    token: &str,
    stop: &Arc<AtomicBool>,
    auth_failures: &Arc<AtomicU64>,
    queries_served: &Arc<AtomicU64>,
) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .ok();
    let mut frames = FrameBuffer::new();
    let mut tmp = [0u8; 64 * 1024];
    let mut role = SessionRole::Pending;
    loop {
        loop {
            match frames.next_frame() {
                Parsed::NeedMore => break,
                Parsed::Corrupt => return Err(bad_data("corrupt frame on ingest connection")),
                Parsed::Frame(tag, payload) => match (tag, role) {
                    (FRAME_HELLO, SessionRole::Pending) => {
                        let mut r = Rd::new(&payload);
                        let peer_token = r.str()?;
                        let name = r.str()?;
                        let mut ack = Vec::new();
                        if peer_token != token {
                            auth_failures.fetch_add(1, Ordering::SeqCst);
                            ack.push(1u8);
                            put_u64(&mut ack, 0);
                            write_frame(&mut stream, FRAME_HELLO_ACK, &ack)?;
                            stream.flush()?;
                            return Err(io::Error::new(
                                io::ErrorKind::PermissionDenied,
                                "bad auth token",
                            ));
                        }
                        let next_seq = {
                            let mut fleet = fleet.lock().unwrap();
                            let id = fleet.add_node(&name)?;
                            role = SessionRole::Ingest(id);
                            fleet.next_seq(id)
                        };
                        ack.push(0u8);
                        put_u64(&mut ack, next_seq);
                        write_frame(&mut stream, FRAME_HELLO_ACK, &ack)?;
                        stream.flush()?;
                    }
                    (FRAME_QUERY_HELLO, SessionRole::Pending) => {
                        let mut r = Rd::new(&payload);
                        let peer_token = r.str()?;
                        let mut ack = Vec::new();
                        if peer_token != token {
                            auth_failures.fetch_add(1, Ordering::SeqCst);
                            ack.push(1u8);
                            put_u16(&mut ack, QUERY_PROTOCOL_VERSION);
                            write_frame(&mut stream, FRAME_QUERY_HELLO_ACK, &ack)?;
                            stream.flush()?;
                            return Err(io::Error::new(
                                io::ErrorKind::PermissionDenied,
                                "bad auth token",
                            ));
                        }
                        // Read-only role: no node registration, so a
                        // query client never shows up in health or
                        // coverage answers.
                        role = SessionRole::Query;
                        ack.push(0u8);
                        put_u16(&mut ack, QUERY_PROTOCOL_VERSION);
                        write_frame(&mut stream, FRAME_QUERY_HELLO_ACK, &ack)?;
                        stream.flush()?;
                    }
                    (FRAME_QUERY, SessionRole::Query) => {
                        // Count before the answer is written: a client
                        // that has read response N must observe the
                        // counter at >= N.
                        queries_served.fetch_add(1, Ordering::SeqCst);
                        answer_query(&mut stream, fleet, &payload)?;
                    }
                    (FRAME_QUERY, _) => {
                        // A query without the handshake gets the typed
                        // refusal — and then the connection closes:
                        // nothing else is legal on it.
                        let refusal = QueryResponse::Error(QueryError::new(
                            QueryErrorCode::Unauthorized,
                            "query before query hello",
                        ));
                        let mut out = Vec::new();
                        put_u64(&mut out, request_id_of(&payload));
                        encode_response(&refusal, &mut out);
                        write_frame(&mut stream, FRAME_QUERY_RESP, &out)?;
                        stream.flush()?;
                        return Err(bad_data("query frame on an unauthenticated session"));
                    }
                    (FRAME_BATCH, SessionRole::Ingest(id)) => {
                        let (batch, _unknown) = decode_batch(&payload)?;
                        let next_seq = {
                            let mut fleet = fleet.lock().unwrap();
                            // Durable (logged + flushed) before the ack
                            // below — the resume contract.
                            fleet.ingest(id, &batch)?;
                            fleet.next_seq(id)
                        };
                        let mut ack = Vec::new();
                        put_u64(&mut ack, next_seq);
                        write_frame(&mut stream, FRAME_ACK, &ack)?;
                        stream.flush()?;
                    }
                    (FRAME_DRAIN, SessionRole::Ingest(id)) => {
                        let stats = decode_drain_stats(&payload)?;
                        let next_seq = {
                            let mut fleet = fleet.lock().unwrap();
                            // Durable (logged + flushed) before the ack,
                            // same contract as batches — `send_drain`
                            // blocks on this ack, so totals survive a
                            // `kill -9` the moment it returns.
                            fleet.report_drain(id, &stats)?;
                            fleet.next_seq(id)
                        };
                        let mut ack = Vec::new();
                        put_u64(&mut ack, next_seq);
                        write_frame(&mut stream, FRAME_ACK, &ack)?;
                        stream.flush()?;
                    }
                    _ => return Err(bad_data("frame before hello or unknown tag")),
                },
            }
        }
        match stream.read(&mut tmp) {
            Ok(0) => return Ok(()), // peer closed
            Ok(n) => frames.extend(&tmp[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::SeqCst) {
                    return Ok(());
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// The request id leading a `QUERY`/`QUERY_RESP` payload, or
/// `u64::MAX` when the payload is too short to carry one — the
/// sentinel a client can at least log against.
fn request_id_of(payload: &[u8]) -> u64 {
    match payload.get(..8) {
        Some(bytes) => u64::from_le_bytes(bytes.try_into().unwrap()),
        None => u64::MAX,
    }
}

/// Answer one `QUERY` frame on an authenticated query session. Every
/// outcome — including a payload that fails to decode — is a
/// `QUERY_RESP` frame; the session survives anything the envelope's
/// CRC let through. The planner runs under the fleet lock, so each
/// answer is a consistent snapshot even while ingest sessions stream.
fn answer_query(
    stream: &mut TcpStream,
    fleet: &Arc<Mutex<DurableFleet>>,
    payload: &[u8],
) -> io::Result<()> {
    let started = std::time::Instant::now();
    let id = request_id_of(payload);
    let mut obs = Obs::disabled();
    let mut kind = "malformed";
    let resp = if payload.len() < 8 {
        QueryResponse::Error(QueryError::new(
            QueryErrorCode::Malformed,
            "query frame shorter than its request id",
        ))
    } else {
        match decode_request(&payload[8..]) {
            Ok(req) => {
                kind = request_kind(&req);
                let fleet = fleet.lock().unwrap();
                obs = fleet.obs().clone();
                execute(fleet.aggregator(), &req)
            }
            Err(e) => QueryResponse::Error(e),
        }
    };
    let mut out = Vec::new();
    put_u64(&mut out, id);
    encode_response(&resp, &mut out);
    write_frame(stream, FRAME_QUERY_RESP, &out)?;
    stream.flush()?;
    // Serve latency: decode + planner-under-lock + respond. Recorded
    // overall (the fleet-mergeable `__self/query.serve_ns` axis) and
    // per request kind; no-ops unless the service attached an enabled
    // handle via `DurableFleet::set_obs`.
    if obs.is_enabled() {
        let ns = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        obs.latency("query.serve_ns").record_ns(ns);
        obs.latency(&format!("query.serve.{kind}_ns")).record_ns(ns);
    }
    Ok(())
}

/// Stable per-kind label for the `query.serve.<kind>_ns` instruments.
fn request_kind(req: &QueryRequest) -> &'static str {
    match req {
        QueryRequest::WindowAgg { .. } => "window_agg",
        QueryRequest::TopNodes { .. } => "top_nodes",
        QueryRequest::Health { .. } => "health",
        QueryRequest::CoveredWindowAgg { .. } => "covered_window_agg",
        QueryRequest::CoveredTopNodes { .. } => "covered_top_nodes",
        QueryRequest::Metrics => "metrics",
        QueryRequest::SelfStat { .. } => "selfstat",
    }
}

// -------------------------------------------------------------- client

/// Typed client for the read-only query protocol: dial + authenticate
/// ([`frame_tag::QUERY_HELLO`]), then pipelined request/response over
/// the same CRC frame envelope the ingest sessions use. Requests are
/// idempotent reads, so the convenience entry ([`FleetClient::request`]
/// and the typed helpers on top of it) transparently reconnects with
/// the [`TransportConfig`] backoff schedule and retries once — the
/// same policy [`SocketSink`] applies to writes, minus the replay
/// buffer it doesn't need.
///
/// Responses arrive in request order; [`FleetClient::recv`] verifies
/// each echoed request id against the pipeline head and fails closed
/// on any mismatch (a server that reorders or invents responses is
/// indistinguishable from a corrupt one).
#[derive(Debug)]
pub struct FleetClient {
    addr: String,
    token: String,
    cfg: TransportConfig,
    conn: Option<TcpStream>,
    next_id: u64,
    /// Request ids sent but not yet answered, oldest first.
    in_flight: VecDeque<u64>,
    reconnects: u64,
    server_version: u16,
}

impl FleetClient {
    /// Connect and authenticate with default transport tuning.
    pub fn connect(addr: &str, token: &str) -> io::Result<Self> {
        Self::connect_with(addr, token, TransportConfig::default())
    }

    /// [`FleetClient::connect`] with explicit tuning (timeouts,
    /// reconnect budget, backoff).
    pub fn connect_with(addr: &str, token: &str, cfg: TransportConfig) -> io::Result<Self> {
        let mut client = FleetClient {
            addr: addr.to_string(),
            token: token.to_string(),
            cfg,
            conn: None,
            next_id: 0,
            in_flight: VecDeque::new(),
            reconnects: 0,
            server_version: 0,
        };
        client.handshake()?;
        Ok(client)
    }

    /// Re-point the client at a moved server; the next request
    /// reconnects and re-authenticates (see [`SocketSink::redirect`]).
    pub fn redirect(&mut self, addr: &str) {
        self.addr = addr.to_string();
        self.conn = None;
    }

    /// Times the client re-dialed after losing its connection.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// The protocol version the server reported at the last handshake.
    pub fn server_version(&self) -> u16 {
        self.server_version
    }

    fn handshake(&mut self) -> io::Result<()> {
        // Any response still owed on the old connection is gone; the
        // retrying caller re-sends its request on the new one.
        self.in_flight.clear();
        let mut stream = match self.cfg.io_timeout {
            Some(timeout) => {
                let mut last = None;
                let mut stream = None;
                for addr in self.addr.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&addr, timeout) {
                        Ok(s) => {
                            stream = Some(s);
                            break;
                        }
                        Err(e) => last = Some(e),
                    }
                }
                stream.ok_or_else(|| {
                    last.unwrap_or_else(|| bad_data("address resolved to nothing"))
                })?
            }
            None => TcpStream::connect(&self.addr)?,
        };
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(self.cfg.io_timeout).ok();
        stream.set_write_timeout(self.cfg.io_timeout).ok();
        let mut hello = Vec::new();
        put_str(&mut hello, &self.token);
        write_frame(&mut stream, FRAME_QUERY_HELLO, &hello)?;
        stream.flush()?;
        let (tag, payload) = match read_frame(&mut stream)? {
            Ok(frame) => frame,
            Err(_) => return Err(bad_data("connection closed during query handshake")),
        };
        if tag != FRAME_QUERY_HELLO_ACK {
            return Err(bad_data("unexpected query handshake response tag"));
        }
        let mut r = Rd::new(&payload);
        let status = r.u8()?;
        let version = r.u16()?;
        if status != 0 {
            return Err(io::Error::new(
                io::ErrorKind::PermissionDenied,
                "fleet listener rejected the auth token",
            ));
        }
        self.server_version = version;
        self.conn = Some(stream);
        Ok(())
    }

    /// Re-dial with the [`TransportConfig`] backoff schedule; a bad
    /// token fails immediately (retrying never heals it).
    fn reconnect(&mut self) -> io::Result<()> {
        self.conn = None;
        let mut last = None;
        let mut salt = self.addr.bytes().fold(self.reconnects, |h, b| {
            h.wrapping_mul(31).wrapping_add(b as u64)
        });
        for attempt in 0..self.cfg.reconnect_attempts.max(1) {
            if attempt > 0 {
                salt = salt.wrapping_add(attempt as u64);
                std::thread::sleep(self.cfg.backoff(attempt, salt));
            }
            match self.handshake() {
                Ok(()) => {
                    self.reconnects += 1;
                    return Ok(());
                }
                Err(e) if e.kind() == io::ErrorKind::PermissionDenied => return Err(e),
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| bad_data("reconnect failed")))
    }

    /// Send one request without waiting for its answer (pipelining).
    /// Returns the request id to match against [`FleetClient::recv`].
    pub fn send(&mut self, req: &QueryRequest) -> io::Result<u64> {
        if self.conn.is_none() {
            self.reconnect()?;
        }
        let id = self.next_id;
        let mut out = Vec::new();
        put_u64(&mut out, id);
        encode_request(req, &mut out);
        let res = {
            let stream = self.conn.as_mut().expect("connected");
            write_frame(stream, FRAME_QUERY, &out).and_then(|()| stream.flush())
        };
        if let Err(e) = res {
            self.conn = None;
            return Err(e);
        }
        self.next_id += 1;
        self.in_flight.push_back(id);
        Ok(id)
    }

    /// Receive the next pipelined answer. The echoed request id must
    /// match the oldest in-flight request — responses are strictly
    /// ordered — or the connection is dropped as corrupt.
    pub fn recv(&mut self) -> io::Result<(u64, QueryResponse)> {
        let expect = *self
            .in_flight
            .front()
            .ok_or_else(|| bad_data("recv with no request in flight"))?;
        let res = (|| {
            let stream = self
                .conn
                .as_mut()
                .ok_or_else(|| bad_data("not connected"))?;
            let (tag, payload) = match read_frame(stream)? {
                Ok(frame) => frame,
                Err(_) => return Err(bad_data("connection closed awaiting query response")),
            };
            if tag != FRAME_QUERY_RESP {
                return Err(bad_data("unexpected frame tag awaiting query response"));
            }
            if payload.len() < 8 {
                return Err(bad_data("query response shorter than its request id"));
            }
            let id = request_id_of(&payload);
            if id != expect {
                return Err(bad_data("query response id out of order"));
            }
            Ok((id, decode_response(&payload[8..])?))
        })();
        match res {
            Ok(ok) => {
                self.in_flight.pop_front();
                Ok(ok)
            }
            Err(e) => {
                // Fail closed: a response we couldn't trust poisons the
                // whole pipeline on this connection.
                self.conn = None;
                Err(e)
            }
        }
    }

    /// Send one request and wait for its answer. With an empty
    /// pipeline this retries once across a reconnect (queries are
    /// idempotent reads); with requests already in flight it cannot —
    /// their answers would be lost — so the first error surfaces.
    pub fn request(&mut self, req: &QueryRequest) -> io::Result<QueryResponse> {
        let retries = if self.in_flight.is_empty() { 2 } else { 1 };
        let mut last = None;
        for _ in 0..retries {
            match self.send(req).and_then(|_| self.recv()) {
                Ok((_, resp)) => return Ok(resp),
                Err(e) if e.kind() == io::ErrorKind::PermissionDenied => return Err(e),
                Err(e) => {
                    self.conn = None;
                    last = Some(e);
                }
            }
        }
        Err(last.unwrap_or_else(|| bad_data("query failed")))
    }

    /// Typed [`QueryRequest::WindowAgg`]: cluster-wide window aggregate
    /// over a logical axis. Server-side refusals surface as `Err`.
    pub fn window_agg(
        &mut self,
        metric: &str,
        now: SimTime,
        window: SimDuration,
        agg: WindowAgg,
    ) -> io::Result<ScalarAnswer> {
        match self.request(&QueryRequest::WindowAgg {
            metric: metric.to_string(),
            now,
            window,
            agg,
        })? {
            QueryResponse::Scalar(a) => Ok(a),
            QueryResponse::Error(e) => Err(e.into()),
            _ => Err(bad_data("mismatched response kind")),
        }
    }

    /// Typed [`QueryRequest::TopNodes`]: per-node ranking.
    pub fn top_nodes(
        &mut self,
        metric: &str,
        now: SimTime,
        window: SimDuration,
        agg: WindowAgg,
        k: u32,
        rank: Rank,
    ) -> io::Result<Vec<TopNodeEntry>> {
        match self.request(&QueryRequest::TopNodes {
            metric: metric.to_string(),
            now,
            window,
            agg,
            k,
            rank,
        })? {
            QueryResponse::TopNodes(entries) => Ok(entries),
            QueryResponse::Error(e) => Err(e.into()),
            _ => Err(bad_data("mismatched response kind")),
        }
    }

    /// Typed [`QueryRequest::Health`]: the fleet health rollup.
    pub fn health(&mut self, now: SimTime, stale_after: SimDuration) -> io::Result<HealthAnswer> {
        match self.request(&QueryRequest::Health { now, stale_after })? {
            QueryResponse::Health(h) => Ok(h),
            QueryResponse::Error(e) => Err(e.into()),
            _ => Err(bad_data("mismatched response kind")),
        }
    }

    /// Typed [`QueryRequest::CoveredWindowAgg`]: coverage-annotated
    /// window aggregate.
    pub fn covered_window_agg(
        &mut self,
        metric: &str,
        now: SimTime,
        window: SimDuration,
        agg: WindowAgg,
        stale_after: SimDuration,
    ) -> io::Result<CoveredAnswer> {
        match self.request(&QueryRequest::CoveredWindowAgg {
            metric: metric.to_string(),
            now,
            window,
            agg,
            stale_after,
        })? {
            QueryResponse::Covered(a) => Ok(a),
            QueryResponse::Error(e) => Err(e.into()),
            _ => Err(bad_data("mismatched response kind")),
        }
    }

    /// Typed [`QueryRequest::CoveredTopNodes`]: coverage-annotated
    /// ranking.
    #[allow(clippy::too_many_arguments)]
    pub fn covered_top_nodes(
        &mut self,
        metric: &str,
        now: SimTime,
        window: SimDuration,
        agg: WindowAgg,
        k: u32,
        rank: Rank,
        stale_after: SimDuration,
    ) -> io::Result<CoveredTopNodesAnswer> {
        match self.request(&QueryRequest::CoveredTopNodes {
            metric: metric.to_string(),
            now,
            window,
            agg,
            k,
            rank,
            stale_after,
        })? {
            QueryResponse::CoveredTopNodes(a) => Ok(a),
            QueryResponse::Error(e) => Err(e.into()),
            _ => Err(bad_data("mismatched response kind")),
        }
    }

    /// Typed [`QueryRequest::Metrics`]: the sorted logical-axes
    /// listing.
    pub fn metrics(&mut self) -> io::Result<MetricsAnswer> {
        match self.request(&QueryRequest::Metrics)? {
            QueryResponse::Metrics(m) => Ok(m),
            QueryResponse::Error(e) => Err(e.into()),
            _ => Err(bad_data("mismatched response kind")),
        }
    }

    /// Typed [`QueryRequest::SelfStat`]: the service's slowest internal
    /// spans, slowest first. `drain` also clears the server-side log.
    pub fn selfstat(&mut self, k: u32, drain: bool) -> io::Result<SelfStatAnswer> {
        match self.request(&QueryRequest::SelfStat { k, drain })? {
            QueryResponse::SelfStat(a) => Ok(a),
            QueryResponse::Error(e) => Err(e.into()),
            _ => Err(bad_data("mismatched response kind")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::{DurabilityConfig, DurableFleet};
    use moda_sim::{SimDuration, SimTime};
    use moda_telemetry::export::MemorySink;
    use moda_telemetry::{
        Exporter, MetricMeta, RollupConfig, RollupTier, SourceDomain, Tsdb, WindowAgg,
    };
    use std::fs;
    use std::path::PathBuf;

    fn test_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("moda_fleet_transport_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn node_batches(n: usize, offset: f64) -> Vec<ExportBatch> {
        let cfg = RollupConfig::new(vec![RollupTier::new(SimDuration::from_secs(10), 256)])
            .with_sketches();
        let mut db = Tsdb::with_retention(1 << 12);
        let id = db.register(MetricMeta::gauge("m", "u", SourceDomain::Hardware));
        db.enable_rollups(id, &cfg);
        for s in 0..n as u64 {
            db.insert(
                id,
                SimTime::from_secs(1 + s),
                offset + ((s * 17) % 251) as f64,
            );
        }
        let mut sink = MemorySink::new();
        Exporter::new()
            .with_batch_records(64)
            .drain(&db, &mut sink)
            .unwrap();
        sink.batches
    }

    #[test]
    fn socket_ingest_round_trips_and_authenticates() {
        let dir = test_dir("roundtrip");
        let fleet = DurableFleet::open(&dir, DurabilityConfig::default()).unwrap();
        let listener =
            FleetListener::bind("127.0.0.1:0", Arc::new(Mutex::new(fleet)), "sesame").unwrap();
        let addr = listener.local_addr().to_string();

        // Wrong token is rejected and counted.
        assert_eq!(
            SocketSink::connect(&addr, "intruder", "wrong")
                .err()
                .map(|e| e.kind()),
            Some(io::ErrorKind::PermissionDenied)
        );

        let batches = node_batches(1500, 0.0);
        let mut sink = SocketSink::connect(&addr, "node00", "sesame").unwrap();
        for batch in &batches {
            sink.write_batch(batch).unwrap();
        }
        sink.send_drain(&Exporter::new().totals()).unwrap();
        sink.wait_idle().unwrap();
        assert_eq!(sink.unacked_len(), 0);
        assert_eq!(sink.reconnects(), 0);
        drop(sink);

        assert_eq!(listener.auth_failures(), 1);
        let shared = listener.shutdown();
        let fleet = shared.lock().unwrap();
        let node = fleet.find_node("node00").expect("session opened");
        assert_eq!(fleet.next_seq(node), batches.len() as u64);
        let counters = fleet.aggregator().counters(node);
        assert_eq!(counters.batches, batches.len() as u64);
        assert_eq!(counters.duplicate_batches, 0);
        assert_eq!(counters.gaps, 0);
        let store = fleet.store();
        let id = store.lookup("node00/m").unwrap();
        assert_eq!(store.raw(id).len().min(1500), store.raw(id).len());
        let got = store
            .fleet_window_agg(
                "m",
                SimTime::from_secs(1501),
                SimDuration::from_secs(1501),
                WindowAgg::Count,
            )
            .unwrap();
        assert_eq!(got, 1500.0);
        drop(fleet);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn backoff_is_capped_exponential_with_bounded_jitter() {
        let cfg = TransportConfig {
            reconnect_pause: Duration::from_millis(100),
            backoff_cap: Duration::from_millis(400),
            ..TransportConfig::default()
        };
        for salt in 0..64u64 {
            let d1 = cfg.backoff(1, salt);
            let d2 = cfg.backoff(2, salt);
            let d4 = cfg.backoff(4, salt);
            assert!(d1 >= Duration::from_millis(100) && d1 < Duration::from_millis(126));
            assert!(d2 >= Duration::from_millis(200) && d2 < Duration::from_millis(251));
            // 100ms * 2^3 = 800ms, capped at 400ms (+25% jitter).
            assert!(d4 >= Duration::from_millis(400) && d4 < Duration::from_millis(501));
        }
        // Determinism: same salt, same pause.
        assert_eq!(cfg.backoff(3, 7), cfg.backoff(3, 7));
        // Jitter spreads: not every salt lands on the same pause.
        assert!((0..64).any(|s| cfg.backoff(1, s) != cfg.backoff(1, s + 64)));
    }

    #[test]
    fn io_timeout_fails_fast_on_a_silent_peer() {
        // A listener that accepts (kernel backlog) but never speaks the
        // protocol: without timeouts the handshake read would hang
        // forever.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let t0 = std::time::Instant::now();
        let res = SocketSink::connect_with(
            &addr,
            "node00",
            "tok",
            TransportConfig {
                io_timeout: Some(Duration::from_millis(100)),
                ..TransportConfig::default()
            },
        );
        assert!(res.is_err(), "silent peer must not look connected");
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "timeout must bound the stall"
        );
        drop(listener);
    }

    #[test]
    fn chaos_sink_faults_are_deterministic_and_ingest_safe() {
        use crate::aggregator::FleetAggregator;

        let batches = node_batches(2000, 0.0);
        assert!(batches.len() >= 20, "need a real stream to fault");
        let cfg = ChaosConfig {
            seed: 42,
            drop_prob: 0.2,
            dup_prob: 0.2,
            delay_prob: 0.1,
            ..ChaosConfig::default()
        };
        let mut chaos = ChaosSink::new(MemorySink::new(), cfg.clone());
        for b in &batches {
            chaos.write_batch(b).unwrap();
        }
        let stats = chaos.stats();
        assert!(stats.dropped > 0 && stats.duplicated > 0 && stats.delayed > 0);

        // Same seed, same fault schedule.
        let mut chaos2 = ChaosSink::new(MemorySink::new(), cfg);
        for b in &batches {
            chaos2.write_batch(b).unwrap();
        }
        assert_eq!(stats, chaos2.stats());

        // The faulted stream ingests without panic: duplicates and
        // late frames bounce off the cursor, drops surface as gaps.
        let mut agg = FleetAggregator::new();
        let node = agg.add_node("node00");
        for b in &chaos.inner().batches {
            agg.ingest(node, b);
        }
        let c = agg.counters(node);
        assert!(c.duplicate_batches >= stats.duplicated);
        assert!(c.gaps >= 1, "permanent frame loss must be visible");

        // Partition: every write fails until healed (exporter-side
        // rollback path), then traffic flows again.
        chaos.set_partitioned(true);
        assert!(chaos.write_batch(&batches[0]).is_err());
        chaos.set_partitioned(false);
        chaos.write_batch(&batches[0]).unwrap();
    }

    #[test]
    fn reconnect_resumes_from_server_cursor_without_seq0_replay() {
        let dir = test_dir("reconnect");
        let batches = node_batches(1200, 10.0);
        let split = batches.len() / 2;

        let fleet = DurableFleet::open(
            &dir,
            DurabilityConfig {
                snapshot_every_batches: 4,
            },
        )
        .unwrap();
        let listener =
            FleetListener::bind("127.0.0.1:0", Arc::new(Mutex::new(fleet)), "tok").unwrap();
        let addr = listener.local_addr().to_string();
        let mut sink = SocketSink::connect_with(
            &addr,
            "node00",
            "tok",
            TransportConfig {
                window: 8,
                reconnect_attempts: 50,
                reconnect_pause: Duration::from_millis(50),
                ..TransportConfig::default()
            },
        )
        .unwrap();
        for batch in &batches[..split] {
            sink.write_batch(batch).unwrap();
        }
        sink.wait_idle().unwrap();

        // Hard-stop the listener (connections die), recover the fleet
        // from disk — the paranoid path, as if the process was killed —
        // and serve again on a fresh port.
        let shared = listener.shutdown();
        drop(shared);
        let recovered = DurableFleet::recover(&dir).unwrap();
        assert_eq!(
            recovered.next_seq(recovered.find_node("node00").unwrap()),
            split as u64
        );
        let listener2 =
            FleetListener::bind("127.0.0.1:0", Arc::new(Mutex::new(recovered)), "tok").unwrap();
        // The sink still dials the *old* address: point it at the new
        // one the way a service discovery layer would.
        sink.redirect(&listener2.local_addr().to_string());
        for batch in &batches[split..] {
            sink.write_batch(batch).unwrap();
        }
        sink.wait_idle().unwrap();
        assert!(sink.reconnects() >= 1, "must have re-dialed");
        assert_eq!(
            sink.last_resume_seq(),
            split as u64,
            "server resumed at its persisted cursor, not 0"
        );

        // The retry work surfaces in the server's drain accounting:
        // the first report carries the full redelivery delta, a second
        // immediately after carries none (no double-count).
        sink.send_drain(&DrainStats::default()).unwrap();
        sink.send_drain(&DrainStats::default()).unwrap();
        let expected_retries = sink.reconnects() + sink.resent_batches();

        let shared = listener2.shutdown();
        let fleet = shared.lock().unwrap();
        let node = fleet.find_node("node00").unwrap();
        assert_eq!(fleet.next_seq(node), batches.len() as u64);
        // Zero duplicate ingests: the resume cursor excluded everything
        // durably applied, so nothing was re-sent that was already in.
        assert_eq!(fleet.aggregator().counters(node).duplicate_batches, 0);
        let health = fleet
            .aggregator()
            .health(SimTime::from_secs(1), SimDuration::from_secs(1 << 20));
        assert!(expected_retries >= 1);
        assert_eq!(
            health.nodes[node.index()].drain.send_retries,
            expected_retries,
            "retry delta folded exactly once into the drain accounting"
        );
        drop(fleet);
        let _ = fs::remove_dir_all(&dir);
    }
}
