//! The fleet's self-telemetry loop: scrape → export → ingest.
//!
//! A [`SelfScraper`] closes the observability loop for a fleet service.
//! It owns a small private [`Tsdb`] and an incremental [`Exporter`];
//! each [`tick`](SelfScraper::tick):
//!
//! 1. **scrapes** the service's [`Obs`] registry into the private store
//!    (reserved `__self/` series, sketched rollups on latency series),
//! 2. **drains** the store through the stock exporter into in-memory
//!    wire batches — the same format v1.1 every node exporter ships,
//! 3. **ingests** those batches into the [`DurableFleet`] under a
//!    dedicated service node session.
//!
//! After one tick, `__self/wal.fsync_ns` and friends are ordinary fleet
//! logical axes: rollup-planned, sketch-merged, durable, and served
//! over the remote query wire with **zero new wire kinds** for the p99
//! path. The store namespaces fleet metrics by node, but logical axes
//! key on the node-local metric name — so the self series stay
//! addressable as `__self/...` no matter what the service node is
//! called.
//!
//! The loop observes itself one step behind: the WAL appends and ingest
//! spans caused by shipping a scrape are recorded against the registry
//! and surface in the *next* scrape. That lag is inherent (and
//! harmless: counters are cumulative, latency samples are batched).

use crate::persist::DurableFleet;
use crate::store::NodeId;
use moda_obs::{mirror, LatencyRecorder, Obs, ScrapeStats};
use moda_sim::SimTime;
use moda_telemetry::export::MemorySink;
use moda_telemetry::{Exporter, Tsdb};
use std::io;

/// Default session name for the scraper's service node.
pub const SELF_NODE: &str = "__svc";

/// Accounting for one [`SelfScraper::tick`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SelfScrapeTick {
    /// What the registry scrape wrote into the private store.
    pub scrape: ScrapeStats,
    /// Wire batches shipped into the fleet this tick.
    pub batches: usize,
    /// Records the fleet applied from those batches.
    pub records: u64,
}

/// Scrapes an [`Obs`] registry into a [`DurableFleet`] through the
/// stock export pipeline. See the module docs for the loop shape.
#[derive(Debug)]
pub struct SelfScraper {
    obs: Obs,
    node: NodeId,
    db: Tsdb,
    exporter: Exporter,
    drain_ns: LatencyRecorder,
    ticks: u64,
}

impl SelfScraper {
    /// Attach self-telemetry to `fleet`: installs `obs` as the fleet's
    /// handle (WAL, ingest, and query-serve instruments start
    /// recording) and opens the scraper's service node session under
    /// [`SELF_NODE`].
    pub fn attach(fleet: &mut DurableFleet, obs: Obs) -> io::Result<Self> {
        Self::attach_as(fleet, obs, SELF_NODE)
    }

    /// [`SelfScraper::attach`] under an explicit service node name
    /// (logical axes are keyed by metric name, so the choice only
    /// affects the per-node namespace).
    pub fn attach_as(fleet: &mut DurableFleet, obs: Obs, node_name: &str) -> io::Result<Self> {
        fleet.set_obs(obs.clone());
        let node = fleet.add_node(node_name)?;
        let drain_ns = obs.latency("export.drain_ns");
        Ok(SelfScraper {
            obs,
            node,
            db: Tsdb::new(),
            exporter: Exporter::new(),
            drain_ns,
            ticks: 0,
        })
    }

    /// One pass of the loop: scrape the registry at timestamp `t`,
    /// drain the delta as wire batches, ingest them into the fleet.
    pub fn tick(&mut self, fleet: &mut DurableFleet, t: SimTime) -> io::Result<SelfScrapeTick> {
        let scrape = self.obs.scrape_into(&mut self.db, t);
        let mut sink = MemorySink::new();
        let drain = {
            let _span = self.drain_ns.start();
            self.exporter.drain(&self.db, &mut sink)?
        };
        // The self-exporter's own drain accounting folds into the same
        // `export.*` cells a runtime exporter would use.
        mirror::record_drain(&self.obs, &drain);
        let mut out = SelfScrapeTick {
            scrape,
            batches: sink.batches.len(),
            records: 0,
        };
        for batch in &sink.batches {
            out.records += fleet.ingest(self.node, batch)?.records;
        }
        self.ticks += 1;
        Ok(out)
    }

    /// The service node session this scraper ships into.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Ticks completed.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// The scraper's private node-local store (inspection/tests).
    pub fn db(&self) -> &Tsdb {
        &self.db
    }

    /// The attached handle.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::DurabilityConfig;
    use moda_sim::SimDuration;
    use moda_telemetry::WindowAgg;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("moda_selfobs_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    #[test]
    fn scrape_ships_self_axes_into_the_fleet() {
        let dir = tmp_dir("ship");
        let mut fleet = DurableFleet::open(&dir, DurabilityConfig::default()).unwrap();
        let obs = Obs::enabled();
        obs.latency("test.op_ns").record_ns(2_500);
        obs.counter("fleet.ingest.batches").add(3);
        let mut scraper = SelfScraper::attach(&mut fleet, obs.clone()).unwrap();

        let t1 = SimTime::from_secs(10);
        let tick = scraper.tick(&mut fleet, t1).unwrap();
        assert!(tick.scrape.samples >= 2);
        assert!(tick.batches > 0 && tick.records > 0);

        // The latency series is a fleet logical axis with a sketch-fed
        // pyramid: a wide percentile is plannable immediately.
        let store = fleet.store();
        let p99 = store.fleet_window_agg(
            "__self/test.op_ns",
            t1,
            SimDuration::from_secs(60),
            WindowAgg::Percentile(0.99),
        );
        assert_eq!(p99, Some(2_500.0));
        // attach() itself logged a node frame, so the real
        // `wal.fsync_ns` axis already carries at least one span.
        assert!(
            store
                .fleet_window_agg(
                    "__self/wal.fsync_ns",
                    t1,
                    SimDuration::from_secs(60),
                    WindowAgg::Count,
                )
                .unwrap()
                >= 1.0
        );
        assert!(store
            .fleet_window_agg(
                "__self/fleet.ingest.batches",
                t1,
                SimDuration::from_secs(60),
                WindowAgg::Max,
            )
            .is_some());

        // Tick 2 observes tick 1's own durability cost: the WAL appends
        // from shipping the first scrape were recorded on the registry.
        obs.latency("wal.fsync_ns"); // pre-resolve is idempotent
        let t2 = SimTime::from_secs(20);
        scraper.tick(&mut fleet, t2).unwrap();
        let store = fleet.store();
        let appends = store.fleet_window_agg(
            "__self/wal.appends",
            t2,
            SimDuration::from_secs(60),
            WindowAgg::Max,
        );
        assert!(appends.unwrap() > 0.0, "the loop observes itself");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn self_axes_survive_recovery() {
        let dir = tmp_dir("recover");
        {
            let mut fleet = DurableFleet::open(&dir, DurabilityConfig::default()).unwrap();
            let obs = Obs::enabled();
            obs.latency("query.serve_ns").record_ns(9_000);
            let mut scraper = SelfScraper::attach(&mut fleet, obs).unwrap();
            scraper.tick(&mut fleet, SimTime::from_secs(5)).unwrap();
        }
        let fleet = DurableFleet::recover(&dir).unwrap();
        let p = fleet.store().fleet_window_agg(
            "__self/query.serve_ns",
            SimTime::from_secs(5),
            SimDuration::from_secs(60),
            WindowAgg::Percentile(0.99),
        );
        assert_eq!(p, Some(9_000.0));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
