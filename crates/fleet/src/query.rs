//! `export-wire-v1.1` query frames: the serving front end's
//! request/response codec, executed against the fleet planner.
//!
//! The ingest half of the socket protocol ([`crate::transport`]) moves
//! node telemetry *into* the fleet tier; this module defines the frames
//! that move planner answers *out* — window aggregates, merged fleet
//! percentiles, top-k node rankings, per-node health, and the
//! coverage-annotated variants from [`crate::control`]. Both halves
//! share the length-prefixed CRC frame envelope
//! ([`moda_telemetry::export::write_frame`]) and one tag registry
//! ([`moda_telemetry::export::frame_tag`]).
//!
//! # Contract
//!
//! * **Bit-identical serving.** [`execute`] answers straight off the
//!   in-process planner ([`crate::FleetStore`] /
//!   [`crate::FleetAggregator`]), and every `f64` crosses the wire as
//!   its raw IEEE-754 bits — a remote [`crate::FleetClient`] answer is
//!   the in-process answer, bit for bit, including served/coverage
//!   metadata. Pinned by `tests/query.rs` and the recorded exchange in
//!   `tests/golden/query_wire_v1.bin`.
//! * **Fail closed.** [`decode_request`] accepts exactly the documented
//!   encoding: unknown version, unknown kind, truncation, trailing
//!   bytes, or an invalid field value all yield a typed
//!   [`QueryError`] (which the server ships back as an `Error`
//!   response), never a guess and never a panic. The client-side
//!   [`decode_response`] is equally strict.
//! * **Additive evolution.** New request/response kinds get new kind
//!   bytes; new fields on an existing kind require a version bump —
//!   except inside the explicitly length-prefixed blocks (per-node
//!   counters, drain totals), which may *grow* additively: decoders
//!   read the fields they know and skip the rest. Removing or reusing
//!   anything is a new protocol version.
//!
//! # Request encoding
//!
//! `[version u16][kind u8][fields…]`, little-endian throughout, strings
//! length-prefixed (`u16` + UTF-8), `f64` as raw bits. Responses carry
//! the same version/kind preamble. See `docs/FLEET_SERVICE.md` ("Query
//! protocol") for the full field tables.

use crate::aggregator::{FleetAggregator, FleetHealth, NodeCounters, NodeHealth, NodeLiveness};
use crate::control::Coverage;
use crate::persist::{put_str, put_u16, put_u32, put_u64, Rd};
use crate::store::{FleetServed, NodeId, Rank};
use moda_obs::SlowOp;
use moda_sim::{SimDuration, SimTime};
use moda_telemetry::export::{decode_drain_stats, encode_drain_stats};
use moda_telemetry::{DrainStats, WindowAgg};
use std::io;

/// Version every request and response leads with. Kinds are additive
/// within a version; field changes outside the length-prefixed blocks
/// bump it.
pub const QUERY_PROTOCOL_VERSION: u16 = 1;

// Request kinds.
const REQ_WINDOW_AGG: u8 = 1;
const REQ_TOP_NODES: u8 = 2;
const REQ_HEALTH: u8 = 3;
const REQ_COVERED_WINDOW_AGG: u8 = 4;
const REQ_COVERED_TOP_NODES: u8 = 5;
const REQ_METRICS: u8 = 6;
const REQ_SELF_STAT: u8 = 7;

// Response kinds.
const RESP_SCALAR: u8 = 1;
const RESP_TOP_NODES: u8 = 2;
const RESP_HEALTH: u8 = 3;
const RESP_COVERED: u8 = 4;
const RESP_COVERED_TOP_NODES: u8 = 5;
const RESP_METRICS: u8 = 6;
const RESP_ERROR: u8 = 7;
const RESP_SELF_STAT: u8 = 8;

// ------------------------------------------------------------ requests

/// One planner query, addressed to a fleet tier's logical axis (the
/// node-local metric name) or to the fleet as a whole.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryRequest {
    /// Cluster-wide trailing-window aggregate over a logical axis
    /// ([`crate::FleetStore::fleet_window_agg_served`]). Percentiles
    /// merge the nodes' sealed-bucket sketches; [`WindowAgg::Last`] is
    /// rejected (meaningless across nodes).
    WindowAgg {
        /// Logical axis (node-local metric name).
        metric: String,
        /// Query reference clock.
        now: SimTime,
        /// Trailing window ending at `now`.
        window: SimDuration,
        /// Aggregate to pool.
        agg: WindowAgg,
    },
    /// Per-node ranking over a logical axis
    /// ([`crate::FleetStore::top_nodes`]). `Last` *is* allowed here —
    /// each node's member folds in time order.
    TopNodes {
        /// Logical axis (node-local metric name).
        metric: String,
        /// Query reference clock.
        now: SimTime,
        /// Trailing window ending at `now`.
        window: SimDuration,
        /// Aggregate computed per node before ranking.
        agg: WindowAgg,
        /// Keep the top `k` nodes.
        k: u32,
        /// Ranking direction.
        rank: Rank,
    },
    /// Fleet health rollup ([`crate::FleetAggregator::health`]).
    Health {
        /// Query reference clock.
        now: SimTime,
        /// Drain lag beyond which a node is stale.
        stale_after: SimDuration,
    },
    /// Coverage-annotated window aggregate
    /// ([`crate::FleetAggregator::covered_window_agg`]).
    CoveredWindowAgg {
        /// Logical axis (node-local metric name).
        metric: String,
        /// Query reference clock.
        now: SimTime,
        /// Trailing window ending at `now`.
        window: SimDuration,
        /// Aggregate to pool over the contributing subset.
        agg: WindowAgg,
        /// Staleness bound for the coverage classification.
        stale_after: SimDuration,
    },
    /// Coverage-annotated ranking
    /// ([`crate::FleetAggregator::covered_top_nodes`]).
    CoveredTopNodes {
        /// Logical axis (node-local metric name).
        metric: String,
        /// Query reference clock.
        now: SimTime,
        /// Trailing window ending at `now`.
        window: SimDuration,
        /// Aggregate computed per node before ranking.
        agg: WindowAgg,
        /// Keep the top `k` nodes.
        k: u32,
        /// Ranking direction.
        rank: Rank,
        /// Staleness bound for the coverage classification.
        stale_after: SimDuration,
    },
    /// List the logical axes the store serves (sorted names + member
    /// counts) — the discovery query a dashboard starts with.
    Metrics,
    /// The service's slow-op log ([`crate::FleetAggregator::obs`] →
    /// top-k slowest spans) — the postmortem query behind
    /// `fleet_service selfstat`. With `drain` the server empties the
    /// log after answering, so repeated polls see fresh entries only.
    SelfStat {
        /// Keep the `k` slowest entries.
        k: u32,
        /// Consume the log instead of peeking.
        drain: bool,
    },
}

impl QueryRequest {
    /// Check field-level validity — the rules [`decode_request`] and
    /// [`execute`] both enforce, so a hostile or buggy client can never
    /// reach a planner entry point with arguments it would panic on.
    pub fn validate(&self) -> Result<(), QueryError> {
        match self {
            QueryRequest::WindowAgg { agg, .. } | QueryRequest::CoveredWindowAgg { agg, .. } => {
                if matches!(agg, WindowAgg::Last) {
                    return Err(QueryError::new(
                        QueryErrorCode::UnsupportedAggregate,
                        "Last is per-node; rank with TopNodes instead",
                    ));
                }
                check_percentile(agg)
            }
            QueryRequest::TopNodes { agg, .. } | QueryRequest::CoveredTopNodes { agg, .. } => {
                check_percentile(agg)
            }
            QueryRequest::Health { .. } | QueryRequest::Metrics | QueryRequest::SelfStat { .. } => {
                Ok(())
            }
        }
    }
}

fn check_percentile(agg: &WindowAgg) -> Result<(), QueryError> {
    if let WindowAgg::Percentile(q) = agg {
        if !q.is_finite() || !(0.0..=1.0).contains(q) {
            return Err(QueryError::new(
                QueryErrorCode::BadField,
                "percentile rank must be finite in [0, 1]",
            ));
        }
    }
    Ok(())
}

// ----------------------------------------------------------- responses

/// One ranked node in a [`QueryResponse::TopNodes`] answer.
#[derive(Debug, Clone, PartialEq)]
pub struct TopNodeEntry {
    /// The node's id within the serving aggregator.
    pub node: NodeId,
    /// Its registered name.
    pub name: String,
    /// The per-node aggregate it ranked on.
    pub value: f64,
}

/// A scalar planner answer plus its serving metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalarAnswer {
    /// The pooled aggregate (`None`: no member had data in the window).
    pub value: Option<f64>,
    /// How the store served it (members/buckets/sketch accounting).
    pub served: FleetServed,
}

/// A coverage-annotated scalar answer — the wire twin of
/// [`crate::CoveredValue`].
#[derive(Debug, Clone, PartialEq)]
pub struct CoveredAnswer {
    /// The pooled aggregate over the contributing subset.
    pub value: Option<f64>,
    /// How the store served it.
    pub served: FleetServed,
    /// What part of the fleet the answer represents.
    pub coverage: Coverage,
}

/// A coverage-annotated ranking answer.
#[derive(Debug, Clone, PartialEq)]
pub struct CoveredTopNodesAnswer {
    /// Ranked contributing nodes, best first.
    pub entries: Vec<TopNodeEntry>,
    /// What part of the fleet the ranking represents.
    pub coverage: Coverage,
}

/// The wire form of one node's health record — field-for-field what
/// [`crate::NodeHealth`] holds, kept as a distinct type so the wire
/// layout is explicit about its additive (length-prefixed) blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeHealthAnswer {
    /// The node.
    pub node: NodeId,
    /// Its registered name.
    pub name: String,
    /// Liveness classification at the queried clock.
    pub liveness: NodeLiveness,
    /// Newest data timestamp ingested.
    pub high_water: SimTime,
    /// `now − high_water` under the queried staleness policy.
    pub drain_lag: SimDuration,
    /// Wire ingest counters (additive block on the wire).
    pub counters: NodeCounters,
    /// Node-side exporter totals (additive block on the wire).
    pub drain: DrainStats,
}

/// The wire form of a [`crate::FleetHealth`] rollup.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthAnswer {
    /// Newest data timestamp ingested across the fleet.
    pub observed_now: SimTime,
    /// Nodes classified live.
    pub live: u32,
    /// Nodes classified stale.
    pub stale: u32,
    /// Nodes classified silent.
    pub silent: u32,
    /// Per-node records, node order.
    pub nodes: Vec<NodeHealthAnswer>,
}

impl HealthAnswer {
    /// Project an in-process health rollup into its wire form — the
    /// same conversion [`execute`] applies, so equivalence tests can
    /// build the expected answer from [`crate::FleetAggregator::health`]
    /// directly.
    pub fn from_fleet(h: &FleetHealth) -> Self {
        HealthAnswer {
            observed_now: h.observed_now,
            live: h.live as u32,
            stale: h.stale as u32,
            silent: h.silent as u32,
            nodes: h.nodes.iter().map(NodeHealthAnswer::from_node).collect(),
        }
    }
}

impl NodeHealthAnswer {
    /// Project one in-process node record into its wire form.
    pub fn from_node(n: &NodeHealth) -> Self {
        NodeHealthAnswer {
            node: n.node,
            name: n.name.clone(),
            liveness: n.liveness,
            high_water: n.high_water,
            drain_lag: n.drain_lag,
            counters: n.counters,
            drain: n.drain,
        }
    }
}

/// The axes listing answering [`QueryRequest::Metrics`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsAnswer {
    /// `(logical axis name, member count)`, sorted by name.
    pub axes: Vec<(String, u32)>,
}

/// The slow-op dump answering [`QueryRequest::SelfStat`] — the wire
/// form carries [`moda_obs::SlowOp`] verbatim (name, duration, nesting
/// depth, completion sequence), slowest first.
#[derive(Debug, Clone, PartialEq)]
pub struct SelfStatAnswer {
    /// Slowest completed spans, slowest first.
    pub ops: Vec<SlowOp>,
}

/// Why a request was refused. Codes are part of the wire contract
/// (`docs/FLEET_SERVICE.md`); the detail string is advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryErrorCode {
    /// The request bytes did not parse (truncated, trailing bytes,
    /// or a frame too short to carry its request id).
    Malformed = 1,
    /// The request led with a protocol version this server does not
    /// speak.
    UnsupportedVersion = 2,
    /// The kind byte named no known request.
    UnknownKind = 3,
    /// A field carried an invalid value (e.g. a NaN percentile rank).
    BadField = 4,
    /// The frame arrived on a session that never completed the query
    /// handshake.
    Unauthorized = 5,
    /// The aggregate is valid per-node but meaningless for this query
    /// (fleet-wide `Last`).
    UnsupportedAggregate = 6,
}

impl QueryErrorCode {
    fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            1 => QueryErrorCode::Malformed,
            2 => QueryErrorCode::UnsupportedVersion,
            3 => QueryErrorCode::UnknownKind,
            4 => QueryErrorCode::BadField,
            5 => QueryErrorCode::Unauthorized,
            6 => QueryErrorCode::UnsupportedAggregate,
            _ => return None,
        })
    }
}

/// A refused request: reason code + advisory detail. Travels as the
/// `Error` response kind, so a server can reject one request without
/// tearing down the session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryError {
    /// Machine-readable reason.
    pub code: QueryErrorCode,
    /// Human-readable detail (not part of the stability contract).
    pub detail: String,
}

impl QueryError {
    /// Build an error with the given code and detail.
    pub fn new(code: QueryErrorCode, detail: impl Into<String>) -> Self {
        QueryError {
            code,
            detail: detail.into(),
        }
    }

    fn malformed(e: &io::Error) -> Self {
        QueryError::new(QueryErrorCode::Malformed, e.to_string())
    }
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "query refused ({:?}): {}", self.code, self.detail)
    }
}

impl From<QueryError> for io::Error {
    fn from(e: QueryError) -> io::Error {
        let kind = match e.code {
            QueryErrorCode::Unauthorized => io::ErrorKind::PermissionDenied,
            _ => io::ErrorKind::InvalidData,
        };
        io::Error::new(kind, e.to_string())
    }
}

/// One planner answer (or refusal), matched to its request by the
/// request id the transport layer carries alongside.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResponse {
    /// Answer to [`QueryRequest::WindowAgg`].
    Scalar(ScalarAnswer),
    /// Answer to [`QueryRequest::TopNodes`].
    TopNodes(Vec<TopNodeEntry>),
    /// Answer to [`QueryRequest::Health`].
    Health(HealthAnswer),
    /// Answer to [`QueryRequest::CoveredWindowAgg`].
    Covered(CoveredAnswer),
    /// Answer to [`QueryRequest::CoveredTopNodes`].
    CoveredTopNodes(CoveredTopNodesAnswer),
    /// Answer to [`QueryRequest::Metrics`].
    Metrics(MetricsAnswer),
    /// Answer to [`QueryRequest::SelfStat`].
    SelfStat(SelfStatAnswer),
    /// The request was refused; the session stays up.
    Error(QueryError),
}

// -------------------------------------------------------------- codec

// Aggregate encoding: `[tag u8]` + rank bits for percentiles. `Last`
// is encodable (tag 6) so a client can send it and receive the typed
// refusal — the reject lives in `validate`, not in the codec.
const AGG_MEAN: u8 = 0;
const AGG_MIN: u8 = 1;
const AGG_MAX: u8 = 2;
const AGG_SUM: u8 = 3;
const AGG_COUNT: u8 = 4;
const AGG_PERCENTILE: u8 = 5;
const AGG_LAST: u8 = 6;

fn put_agg(out: &mut Vec<u8>, agg: &WindowAgg) {
    match agg {
        WindowAgg::Mean => out.push(AGG_MEAN),
        WindowAgg::Min => out.push(AGG_MIN),
        WindowAgg::Max => out.push(AGG_MAX),
        WindowAgg::Sum => out.push(AGG_SUM),
        WindowAgg::Count => out.push(AGG_COUNT),
        WindowAgg::Percentile(q) => {
            out.push(AGG_PERCENTILE);
            put_u64(out, q.to_bits());
        }
        WindowAgg::Last => out.push(AGG_LAST),
    }
}

fn read_agg(r: &mut Rd<'_>) -> Result<WindowAgg, QueryError> {
    let tag = r.u8().map_err(|e| QueryError::malformed(&e))?;
    Ok(match tag {
        AGG_MEAN => WindowAgg::Mean,
        AGG_MIN => WindowAgg::Min,
        AGG_MAX => WindowAgg::Max,
        AGG_SUM => WindowAgg::Sum,
        AGG_COUNT => WindowAgg::Count,
        AGG_PERCENTILE => {
            let bits = r.u64().map_err(|e| QueryError::malformed(&e))?;
            WindowAgg::Percentile(f64::from_bits(bits))
        }
        AGG_LAST => WindowAgg::Last,
        _ => {
            return Err(QueryError::new(
                QueryErrorCode::BadField,
                "unknown aggregate tag",
            ))
        }
    })
}

fn put_rank(out: &mut Vec<u8>, rank: Rank) {
    out.push(match rank {
        Rank::Highest => 0,
        Rank::Lowest => 1,
    });
}

fn read_rank(r: &mut Rd<'_>) -> Result<Rank, QueryError> {
    match r.u8().map_err(|e| QueryError::malformed(&e))? {
        0 => Ok(Rank::Highest),
        1 => Ok(Rank::Lowest),
        _ => Err(QueryError::new(
            QueryErrorCode::BadField,
            "unknown rank direction",
        )),
    }
}

fn put_liveness(out: &mut Vec<u8>, l: NodeLiveness) {
    out.push(match l {
        NodeLiveness::Live => 0,
        NodeLiveness::Stale => 1,
        NodeLiveness::Silent => 2,
    });
}

fn read_liveness(r: &mut Rd<'_>) -> io::Result<NodeLiveness> {
    match r.u8()? {
        0 => Ok(NodeLiveness::Live),
        1 => Ok(NodeLiveness::Stale),
        2 => Ok(NodeLiveness::Silent),
        _ => Err(bad_resp("unknown liveness tag")),
    }
}

fn bad_resp(what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("query response: {what}"),
    )
}

/// Encode one request (version + kind + fields). Total: every
/// [`QueryRequest`] value encodes, including ones [`validate`]
/// rejects — the refusal is the server's typed answer, not a client
/// panic.
///
/// [`validate`]: QueryRequest::validate
pub fn encode_request(req: &QueryRequest, out: &mut Vec<u8>) {
    put_u16(out, QUERY_PROTOCOL_VERSION);
    match req {
        QueryRequest::WindowAgg {
            metric,
            now,
            window,
            agg,
        } => {
            out.push(REQ_WINDOW_AGG);
            put_str(out, metric);
            put_u64(out, now.0);
            put_u64(out, window.0);
            put_agg(out, agg);
        }
        QueryRequest::TopNodes {
            metric,
            now,
            window,
            agg,
            k,
            rank,
        } => {
            out.push(REQ_TOP_NODES);
            put_str(out, metric);
            put_u64(out, now.0);
            put_u64(out, window.0);
            put_agg(out, agg);
            put_u32(out, *k);
            put_rank(out, *rank);
        }
        QueryRequest::Health { now, stale_after } => {
            out.push(REQ_HEALTH);
            put_u64(out, now.0);
            put_u64(out, stale_after.0);
        }
        QueryRequest::CoveredWindowAgg {
            metric,
            now,
            window,
            agg,
            stale_after,
        } => {
            out.push(REQ_COVERED_WINDOW_AGG);
            put_str(out, metric);
            put_u64(out, now.0);
            put_u64(out, window.0);
            put_agg(out, agg);
            put_u64(out, stale_after.0);
        }
        QueryRequest::CoveredTopNodes {
            metric,
            now,
            window,
            agg,
            k,
            rank,
            stale_after,
        } => {
            out.push(REQ_COVERED_TOP_NODES);
            put_str(out, metric);
            put_u64(out, now.0);
            put_u64(out, window.0);
            put_agg(out, agg);
            put_u32(out, *k);
            put_rank(out, *rank);
            put_u64(out, stale_after.0);
        }
        QueryRequest::Metrics => out.push(REQ_METRICS),
        QueryRequest::SelfStat { k, drain } => {
            out.push(REQ_SELF_STAT);
            put_u32(out, *k);
            out.push(*drain as u8);
        }
    }
}

/// Decode one request, strictly: unknown version/kind, truncation,
/// trailing bytes, and invalid field values all fail closed with a
/// typed reason. A decoded request has already passed
/// [`QueryRequest::validate`].
pub fn decode_request(buf: &[u8]) -> Result<QueryRequest, QueryError> {
    let mut r = Rd::new(buf);
    let version = r.u16().map_err(|e| QueryError::malformed(&e))?;
    if version != QUERY_PROTOCOL_VERSION {
        return Err(QueryError::new(
            QueryErrorCode::UnsupportedVersion,
            format!("version {version}, this server speaks {QUERY_PROTOCOL_VERSION}"),
        ));
    }
    let kind = r.u8().map_err(|e| QueryError::malformed(&e))?;
    let mal = |e: io::Error| QueryError::malformed(&e);
    let req = match kind {
        REQ_WINDOW_AGG => QueryRequest::WindowAgg {
            metric: r.str().map_err(mal)?,
            now: SimTime(r.u64().map_err(mal)?),
            window: SimDuration(r.u64().map_err(mal)?),
            agg: read_agg(&mut r)?,
        },
        REQ_TOP_NODES => QueryRequest::TopNodes {
            metric: r.str().map_err(mal)?,
            now: SimTime(r.u64().map_err(mal)?),
            window: SimDuration(r.u64().map_err(mal)?),
            agg: read_agg(&mut r)?,
            k: r.u32().map_err(mal)?,
            rank: read_rank(&mut r)?,
        },
        REQ_HEALTH => QueryRequest::Health {
            now: SimTime(r.u64().map_err(mal)?),
            stale_after: SimDuration(r.u64().map_err(mal)?),
        },
        REQ_COVERED_WINDOW_AGG => QueryRequest::CoveredWindowAgg {
            metric: r.str().map_err(mal)?,
            now: SimTime(r.u64().map_err(mal)?),
            window: SimDuration(r.u64().map_err(mal)?),
            agg: read_agg(&mut r)?,
            stale_after: SimDuration(r.u64().map_err(mal)?),
        },
        REQ_COVERED_TOP_NODES => QueryRequest::CoveredTopNodes {
            metric: r.str().map_err(mal)?,
            now: SimTime(r.u64().map_err(mal)?),
            window: SimDuration(r.u64().map_err(mal)?),
            agg: read_agg(&mut r)?,
            k: r.u32().map_err(mal)?,
            rank: read_rank(&mut r)?,
            stale_after: SimDuration(r.u64().map_err(mal)?),
        },
        REQ_METRICS => QueryRequest::Metrics,
        REQ_SELF_STAT => QueryRequest::SelfStat {
            k: r.u32().map_err(mal)?,
            drain: match r.u8().map_err(mal)? {
                0 => false,
                1 => true,
                _ => {
                    return Err(QueryError::new(
                        QueryErrorCode::BadField,
                        "selfstat drain flag out of range",
                    ))
                }
            },
        },
        other => {
            return Err(QueryError::new(
                QueryErrorCode::UnknownKind,
                format!("request kind {other}"),
            ))
        }
    };
    if !r.done() {
        return Err(QueryError::new(
            QueryErrorCode::Malformed,
            "trailing bytes after request",
        ));
    }
    req.validate()?;
    Ok(req)
}

fn put_served(out: &mut Vec<u8>, s: &FleetServed) {
    put_u32(out, s.members as u32);
    put_u32(out, s.buckets as u32);
    put_u64(out, s.raw_values);
    out.push(s.sketch as u8);
}

fn read_served(r: &mut Rd<'_>) -> io::Result<FleetServed> {
    Ok(FleetServed {
        members: r.u32()? as usize,
        buckets: r.u32()? as usize,
        raw_values: r.u64()?,
        sketch: match r.u8()? {
            0 => false,
            1 => true,
            _ => return Err(bad_resp("served.sketch out of range")),
        },
    })
}

fn put_opt_f64(out: &mut Vec<u8>, v: Option<f64>) {
    match v {
        Some(v) => {
            out.push(1);
            put_u64(out, v.to_bits());
        }
        None => out.push(0),
    }
}

fn read_opt_f64(r: &mut Rd<'_>) -> io::Result<Option<f64>> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(f64::from_bits(r.u64()?))),
        _ => Err(bad_resp("option discriminant out of range")),
    }
}

fn put_coverage(out: &mut Vec<u8>, c: &Coverage) {
    put_u32(out, c.total as u32);
    put_u32(out, c.contributing as u32);
    put_u32(out, c.stale as u32);
    put_u32(out, c.silent as u32);
    put_u32(out, c.missing as u32);
    put_u32(out, c.excluded.len() as u32);
    for (node, liveness) in &c.excluded {
        put_u32(out, node.0);
        put_liveness(out, *liveness);
    }
}

fn read_coverage(r: &mut Rd<'_>) -> io::Result<Coverage> {
    let total = r.u32()? as usize;
    let contributing = r.u32()? as usize;
    let stale = r.u32()? as usize;
    let silent = r.u32()? as usize;
    let missing = r.u32()? as usize;
    let n = r.u32()? as usize;
    if n > r.remaining() {
        return Err(bad_resp("excluded-node count exceeds payload"));
    }
    let mut excluded = Vec::with_capacity(n);
    for _ in 0..n {
        let node = NodeId(r.u32()?);
        excluded.push((node, read_liveness(r)?));
    }
    Ok(Coverage {
        total,
        contributing,
        stale,
        silent,
        missing,
        excluded,
    })
}

fn put_entries(out: &mut Vec<u8>, entries: &[TopNodeEntry]) {
    put_u32(out, entries.len() as u32);
    for e in entries {
        put_u32(out, e.node.0);
        put_str(out, &e.name);
        put_u64(out, e.value.to_bits());
    }
}

fn read_entries(r: &mut Rd<'_>) -> io::Result<Vec<TopNodeEntry>> {
    let n = r.u32()? as usize;
    if n > r.remaining() {
        return Err(bad_resp("ranking length exceeds payload"));
    }
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        entries.push(TopNodeEntry {
            node: NodeId(r.u32()?),
            name: r.str()?,
            value: f64::from_bits(r.u64()?),
        });
    }
    Ok(entries)
}

// The two additive blocks: length-prefixed so a newer server can
// append counters without a version bump — an older client reads the
// fields it knows and skips the rest; a shorter-than-known block is a
// decode error (fields never get removed within a version).
fn put_counters(out: &mut Vec<u8>, c: &NodeCounters) {
    let fields = [
        c.batches,
        c.duplicate_batches,
        c.gaps,
        c.missing_batches,
        c.records,
        c.samples,
        c.rejected_samples,
        c.chunks,
        c.corrupt_chunks,
        c.buckets,
        c.sketch_entries,
        c.orphan_sketches,
        c.unmapped_records,
    ];
    put_u32(out, (fields.len() * 8) as u32);
    for f in fields {
        put_u64(out, f);
    }
}

fn read_counters(r: &mut Rd<'_>) -> io::Result<NodeCounters> {
    let len = r.u32()? as usize;
    let block = r.take(len)?;
    let mut b = Rd::new(block);
    Ok(NodeCounters {
        batches: b.u64()?,
        duplicate_batches: b.u64()?,
        gaps: b.u64()?,
        missing_batches: b.u64()?,
        records: b.u64()?,
        samples: b.u64()?,
        rejected_samples: b.u64()?,
        chunks: b.u64()?,
        corrupt_chunks: b.u64()?,
        buckets: b.u64()?,
        sketch_entries: b.u64()?,
        orphan_sketches: b.u64()?,
        unmapped_records: b.u64()?,
    })
}

fn put_drain(out: &mut Vec<u8>, d: &DrainStats) {
    let mut block = Vec::new();
    encode_drain_stats(d, &mut block);
    put_u32(out, block.len() as u32);
    out.extend_from_slice(&block);
}

fn read_drain(r: &mut Rd<'_>) -> io::Result<DrainStats> {
    let len = r.u32()? as usize;
    let block = r.take(len)?;
    decode_drain_stats(block)
}

/// Encode one response (version + kind + fields).
pub fn encode_response(resp: &QueryResponse, out: &mut Vec<u8>) {
    put_u16(out, QUERY_PROTOCOL_VERSION);
    match resp {
        QueryResponse::Scalar(a) => {
            out.push(RESP_SCALAR);
            put_opt_f64(out, a.value);
            put_served(out, &a.served);
        }
        QueryResponse::TopNodes(entries) => {
            out.push(RESP_TOP_NODES);
            put_entries(out, entries);
        }
        QueryResponse::Health(h) => {
            out.push(RESP_HEALTH);
            put_u64(out, h.observed_now.0);
            put_u32(out, h.live);
            put_u32(out, h.stale);
            put_u32(out, h.silent);
            put_u32(out, h.nodes.len() as u32);
            for n in &h.nodes {
                put_u32(out, n.node.0);
                put_str(out, &n.name);
                put_liveness(out, n.liveness);
                put_u64(out, n.high_water.0);
                put_u64(out, n.drain_lag.0);
                put_counters(out, &n.counters);
                put_drain(out, &n.drain);
            }
        }
        QueryResponse::Covered(a) => {
            out.push(RESP_COVERED);
            put_opt_f64(out, a.value);
            put_served(out, &a.served);
            put_coverage(out, &a.coverage);
        }
        QueryResponse::CoveredTopNodes(a) => {
            out.push(RESP_COVERED_TOP_NODES);
            put_entries(out, &a.entries);
            put_coverage(out, &a.coverage);
        }
        QueryResponse::Metrics(m) => {
            out.push(RESP_METRICS);
            put_u32(out, m.axes.len() as u32);
            for (name, members) in &m.axes {
                put_str(out, name);
                put_u32(out, *members);
            }
        }
        QueryResponse::SelfStat(a) => {
            out.push(RESP_SELF_STAT);
            put_u32(out, a.ops.len() as u32);
            for op in &a.ops {
                put_str(out, &op.name);
                put_u64(out, op.duration_ns);
                put_u32(out, op.depth);
                put_u64(out, op.seq);
            }
        }
        QueryResponse::Error(e) => {
            out.push(RESP_ERROR);
            out.push(e.code as u8);
            put_str(out, &e.detail);
        }
    }
}

/// Decode one response, strictly — the client-side mirror of
/// [`decode_request`]'s fail-closed rules. A hostile or corrupt
/// response yields `Err`, never a panic and never a partial answer.
pub fn decode_response(buf: &[u8]) -> io::Result<QueryResponse> {
    let mut r = Rd::new(buf);
    let version = r.u16()?;
    if version != QUERY_PROTOCOL_VERSION {
        return Err(bad_resp("unsupported protocol version"));
    }
    let resp = match r.u8()? {
        RESP_SCALAR => QueryResponse::Scalar(ScalarAnswer {
            value: read_opt_f64(&mut r)?,
            served: read_served(&mut r)?,
        }),
        RESP_TOP_NODES => QueryResponse::TopNodes(read_entries(&mut r)?),
        RESP_HEALTH => {
            let observed_now = SimTime(r.u64()?);
            let live = r.u32()?;
            let stale = r.u32()?;
            let silent = r.u32()?;
            let n = r.u32()? as usize;
            if n > r.remaining() {
                return Err(bad_resp("node count exceeds payload"));
            }
            let mut nodes = Vec::with_capacity(n);
            for _ in 0..n {
                nodes.push(NodeHealthAnswer {
                    node: NodeId(r.u32()?),
                    name: r.str()?,
                    liveness: read_liveness(&mut r)?,
                    high_water: SimTime(r.u64()?),
                    drain_lag: SimDuration(r.u64()?),
                    counters: read_counters(&mut r)?,
                    drain: read_drain(&mut r)?,
                });
            }
            QueryResponse::Health(HealthAnswer {
                observed_now,
                live,
                stale,
                silent,
                nodes,
            })
        }
        RESP_COVERED => QueryResponse::Covered(CoveredAnswer {
            value: read_opt_f64(&mut r)?,
            served: read_served(&mut r)?,
            coverage: read_coverage(&mut r)?,
        }),
        RESP_COVERED_TOP_NODES => QueryResponse::CoveredTopNodes(CoveredTopNodesAnswer {
            entries: read_entries(&mut r)?,
            coverage: read_coverage(&mut r)?,
        }),
        RESP_METRICS => {
            let n = r.u32()? as usize;
            if n > r.remaining() {
                return Err(bad_resp("axis count exceeds payload"));
            }
            let mut axes = Vec::with_capacity(n);
            for _ in 0..n {
                let name = r.str()?;
                axes.push((name, r.u32()?));
            }
            QueryResponse::Metrics(MetricsAnswer { axes })
        }
        RESP_SELF_STAT => {
            let n = r.u32()? as usize;
            if n > r.remaining() {
                return Err(bad_resp("slow-op count exceeds payload"));
            }
            let mut ops = Vec::with_capacity(n);
            for _ in 0..n {
                ops.push(SlowOp {
                    name: r.str()?,
                    duration_ns: r.u64()?,
                    depth: r.u32()?,
                    seq: r.u64()?,
                });
            }
            QueryResponse::SelfStat(SelfStatAnswer { ops })
        }
        RESP_ERROR => {
            let code =
                QueryErrorCode::from_u8(r.u8()?).ok_or_else(|| bad_resp("unknown error code"))?;
            QueryResponse::Error(QueryError {
                code,
                detail: r.str()?,
            })
        }
        _ => return Err(bad_resp("unknown response kind")),
    };
    if !r.done() {
        return Err(bad_resp("trailing bytes after response"));
    }
    Ok(resp)
}

// ------------------------------------------------------------ execute

/// Answer one request off the in-process planner. Never panics:
/// [`QueryRequest::validate`] runs first (defense in depth behind
/// [`decode_request`]'s own call), so arguments the planner would
/// panic on — a fleet-wide `Last`, a NaN percentile rank — come back
/// as typed refusals instead.
pub fn execute(fleet: &FleetAggregator, req: &QueryRequest) -> QueryResponse {
    if let Err(e) = req.validate() {
        return QueryResponse::Error(e);
    }
    let store = fleet.store();
    match req {
        QueryRequest::WindowAgg {
            metric,
            now,
            window,
            agg,
        } => {
            let (value, served) = store.fleet_window_agg_served(metric, *now, *window, *agg);
            QueryResponse::Scalar(ScalarAnswer { value, served })
        }
        QueryRequest::TopNodes {
            metric,
            now,
            window,
            agg,
            k,
            rank,
        } => {
            let ranked = store.top_nodes(metric, *now, *window, *agg, *k as usize, *rank);
            QueryResponse::TopNodes(rank_entries(fleet, ranked))
        }
        QueryRequest::Health { now, stale_after } => {
            QueryResponse::Health(HealthAnswer::from_fleet(&fleet.health(*now, *stale_after)))
        }
        QueryRequest::CoveredWindowAgg {
            metric,
            now,
            window,
            agg,
            stale_after,
        } => {
            let cv = fleet.covered_window_agg(metric, *now, *window, *agg, *stale_after);
            QueryResponse::Covered(CoveredAnswer {
                value: cv.value,
                served: cv.served,
                coverage: cv.coverage,
            })
        }
        QueryRequest::CoveredTopNodes {
            metric,
            now,
            window,
            agg,
            k,
            rank,
            stale_after,
        } => {
            let (ranked, coverage) = fleet.covered_top_nodes(
                metric,
                *now,
                *window,
                *agg,
                *k as usize,
                *rank,
                *stale_after,
            );
            QueryResponse::CoveredTopNodes(CoveredTopNodesAnswer {
                entries: rank_entries(fleet, ranked),
                coverage,
            })
        }
        QueryRequest::Metrics => QueryResponse::Metrics(MetricsAnswer {
            axes: store
                .logical_axes()
                .into_iter()
                .map(|(name, members)| (name, members as u32))
                .collect(),
        }),
        QueryRequest::SelfStat { k, drain } => {
            let obs = fleet.obs();
            let ops = if *drain {
                let mut ops = obs.drain_slow_ops();
                ops.truncate(*k as usize);
                ops
            } else {
                obs.slow_ops(*k as usize)
            };
            QueryResponse::SelfStat(SelfStatAnswer { ops })
        }
    }
}

fn rank_entries(fleet: &FleetAggregator, ranked: Vec<(NodeId, f64)>) -> Vec<TopNodeEntry> {
    ranked
        .into_iter()
        .map(|(node, value)| TopNodeEntry {
            node,
            name: fleet.node_name(node).to_string(),
            value,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_requests() -> Vec<QueryRequest> {
        vec![
            QueryRequest::WindowAgg {
                metric: "power_w".into(),
                now: SimTime::from_secs(600),
                window: SimDuration::from_secs(60),
                agg: WindowAgg::Percentile(0.99),
            },
            QueryRequest::TopNodes {
                metric: "power_w".into(),
                now: SimTime::from_secs(600),
                window: SimDuration::from_secs(60),
                agg: WindowAgg::Mean,
                k: 5,
                rank: Rank::Lowest,
            },
            QueryRequest::Health {
                now: SimTime::from_secs(600),
                stale_after: SimDuration::from_secs(120),
            },
            QueryRequest::CoveredWindowAgg {
                metric: "power_w".into(),
                now: SimTime::from_secs(600),
                window: SimDuration::from_secs(60),
                agg: WindowAgg::Sum,
                stale_after: SimDuration::from_secs(120),
            },
            QueryRequest::CoveredTopNodes {
                metric: "power_w".into(),
                now: SimTime::from_secs(600),
                window: SimDuration::from_secs(60),
                agg: WindowAgg::Max,
                k: 3,
                rank: Rank::Highest,
                stale_after: SimDuration::from_secs(120),
            },
            QueryRequest::Metrics,
            QueryRequest::SelfStat { k: 16, drain: true },
        ]
    }

    #[test]
    fn requests_round_trip() {
        for req in all_requests() {
            let mut buf = Vec::new();
            encode_request(&req, &mut buf);
            assert_eq!(decode_request(&buf).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn responses_round_trip() {
        let responses = vec![
            QueryResponse::Scalar(ScalarAnswer {
                value: Some(42.5),
                served: FleetServed {
                    members: 3,
                    buckets: 17,
                    raw_values: 4,
                    sketch: true,
                },
            }),
            QueryResponse::Scalar(ScalarAnswer {
                value: None,
                served: FleetServed::default(),
            }),
            QueryResponse::TopNodes(vec![TopNodeEntry {
                node: NodeId(2),
                name: "node02".into(),
                value: -0.0,
            }]),
            QueryResponse::Health(HealthAnswer {
                observed_now: SimTime::from_secs(600),
                live: 1,
                stale: 1,
                silent: 1,
                nodes: vec![NodeHealthAnswer {
                    node: NodeId(0),
                    name: "node00".into(),
                    liveness: NodeLiveness::Stale,
                    high_water: SimTime::from_secs(500),
                    drain_lag: SimDuration::from_secs(100),
                    counters: NodeCounters {
                        batches: 7,
                        samples: 999,
                        ..NodeCounters::default()
                    },
                    drain: DrainStats {
                        records: 12,
                        send_retries: 2,
                        ..DrainStats::default()
                    },
                }],
            }),
            QueryResponse::Covered(CoveredAnswer {
                value: Some(f64::NAN.to_bits() as f64),
                served: FleetServed::default(),
                coverage: Coverage {
                    total: 4,
                    contributing: 2,
                    stale: 1,
                    silent: 1,
                    missing: 0,
                    excluded: vec![
                        (NodeId(1), NodeLiveness::Stale),
                        (NodeId(3), NodeLiveness::Silent),
                    ],
                },
            }),
            QueryResponse::CoveredTopNodes(CoveredTopNodesAnswer {
                entries: vec![],
                coverage: Coverage::default(),
            }),
            QueryResponse::Metrics(MetricsAnswer {
                axes: vec![("power_w".into(), 16), ("temp_c".into(), 3)],
            }),
            QueryResponse::SelfStat(SelfStatAnswer {
                ops: vec![
                    SlowOp {
                        name: "export.drain_ns".into(),
                        duration_ns: 123_456,
                        depth: 0,
                        seq: 42,
                    },
                    SlowOp {
                        name: "chunk.encode_ns".into(),
                        duration_ns: 99,
                        depth: 1,
                        seq: 43,
                    },
                ],
            }),
            QueryResponse::Error(QueryError::new(QueryErrorCode::BadField, "nope")),
        ];
        for resp in responses {
            let mut buf = Vec::new();
            encode_response(&resp, &mut buf);
            assert_eq!(decode_response(&buf).unwrap(), resp, "{resp:?}");
        }
    }

    #[test]
    fn decode_request_fails_closed() {
        let mut buf = Vec::new();
        encode_request(&all_requests()[0], &mut buf);

        // Every strict prefix is a typed refusal, never a panic.
        for cut in 0..buf.len() {
            assert!(decode_request(&buf[..cut]).is_err(), "prefix {cut}");
        }
        // Trailing bytes are refused.
        let mut long = buf.clone();
        long.push(0);
        assert_eq!(
            decode_request(&long).unwrap_err().code,
            QueryErrorCode::Malformed
        );
        // Unknown version.
        let mut wrong = buf.clone();
        wrong[0] = 0xFF;
        assert_eq!(
            decode_request(&wrong).unwrap_err().code,
            QueryErrorCode::UnsupportedVersion
        );
        // Unknown kind.
        let mut wrong = buf.clone();
        wrong[2] = 0xEE;
        assert_eq!(
            decode_request(&wrong).unwrap_err().code,
            QueryErrorCode::UnknownKind
        );
    }

    #[test]
    fn invalid_field_values_are_typed_refusals() {
        let mk = |agg| QueryRequest::WindowAgg {
            metric: "m".into(),
            now: SimTime::from_secs(1),
            window: SimDuration::from_secs(1),
            agg,
        };
        for (agg, code) in [
            (WindowAgg::Last, QueryErrorCode::UnsupportedAggregate),
            (WindowAgg::Percentile(f64::NAN), QueryErrorCode::BadField),
            (WindowAgg::Percentile(1.5), QueryErrorCode::BadField),
            (WindowAgg::Percentile(-0.1), QueryErrorCode::BadField),
        ] {
            let req = mk(agg);
            let mut buf = Vec::new();
            encode_request(&req, &mut buf);
            assert_eq!(decode_request(&buf).unwrap_err().code, code);
            // execute's own guard (defense in depth for in-process
            // callers that never hit the codec).
            let fleet = FleetAggregator::new();
            match execute(&fleet, &req) {
                QueryResponse::Error(e) => assert_eq!(e.code, code),
                other => panic!("expected refusal, got {other:?}"),
            }
        }
        // Last stays valid for per-node ranking.
        let req = QueryRequest::TopNodes {
            metric: "m".into(),
            now: SimTime::from_secs(1),
            window: SimDuration::from_secs(1),
            agg: WindowAgg::Last,
            k: 2,
            rank: Rank::Highest,
        };
        let mut buf = Vec::new();
        encode_request(&req, &mut buf);
        assert_eq!(decode_request(&buf).unwrap(), req);
    }

    #[test]
    fn decode_response_fails_closed() {
        let resp = QueryResponse::Metrics(MetricsAnswer {
            axes: vec![("power_w".into(), 16)],
        });
        let mut buf = Vec::new();
        encode_response(&resp, &mut buf);
        for cut in 0..buf.len() {
            assert!(decode_response(&buf[..cut]).is_err(), "prefix {cut}");
        }
        let mut long = buf.clone();
        long.push(7);
        assert!(decode_response(&long).is_err());
        // An absurd element count must not pre-allocate unbounded
        // memory or panic.
        let mut bomb = Vec::new();
        put_u16(&mut bomb, QUERY_PROTOCOL_VERSION);
        bomb.push(RESP_METRICS);
        put_u32(&mut bomb, u32::MAX);
        assert!(decode_response(&bomb).is_err());
    }
}
