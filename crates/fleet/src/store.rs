//! The namespaced fleet store and its cluster-wide query layer.
//!
//! One [`FleetStore`] holds the aggregation tier's view of every node's
//! exported telemetry: per `node×name` fleet metric a short raw ring
//! (the spliceable recent tail) plus a wire-fed rollup pyramid
//! ([`WireTiers`]) rebuilt from sealed `bucket`/`sketch` records, and a
//! cross-node **logical axis** grouping the same node-local metric name
//! across nodes. Queries pool one accumulator across a logical group
//! through the node-local planner's cascade
//! ([`moda_telemetry::rollup::fold_span_into`]): scalar aggregates
//! (`Count`/`Sum`/`Mean`/`Min`/`Max`) combine exactly, and percentiles
//! merge the nodes' sealed-bucket quantile sketches additively — the
//! export wire's sketch-merge contract — so a fleet-wide p99 over N
//! nodes costs O(N · window/res) sketch merges and **zero raw-sample
//! reads** on an aligned sealed window. Every query reports how it was
//! served ([`FleetServed`]), and the store keeps lifetime hit counters
//! ([`FleetStoreStats`]) including the exact number of raw values
//! spliced — the counter the zero-raw-read acceptance tests assert on.

use moda_sim::{SimDuration, SimTime};
use moda_telemetry::rollup::{fold_span_into, RollupAcc, SketchAcc, SpanFold};
use moda_telemetry::sketch::SketchEntry;
use moda_telemetry::{MetricId, MetricMeta, RollupBucket, TimeSeries, WindowAgg, WireTiers};
use std::cell::Cell;
use std::collections::HashMap;

/// Default raw-ring retention per fleet metric. The aggregation tier's
/// raw samples are only the spliceable recent tail (long horizon lives
/// in the wire-fed bucket tiers), so this stays small.
pub const DEFAULT_RAW_RETENTION: usize = 4096;

/// A node's identity within one aggregator (dense, assigned by
/// [`crate::FleetAggregator::add_node`] in call order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Dense index shape for direct vector addressing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identity of one fleet metric: which node it came from, its
/// node-local name (the logical-axis key), and the node's original
/// metadata.
#[derive(Debug, Clone)]
pub struct FleetMetricInfo {
    /// Source node.
    pub node: NodeId,
    /// Node-local metric name (`meta.name` as the node exported it).
    pub local_name: String,
    /// The node's registry entry, as received off the wire.
    pub meta: MetricMeta,
}

/// How a fleet query was served — the per-call accounting behind
/// [`FleetStoreStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetServed {
    /// Logical-axis members (node metrics) the query pooled.
    pub members: usize,
    /// Sealed rollup buckets merged across those members.
    pub buckets: usize,
    /// Raw samples spliced at ragged edges/unsealed tails. Zero on an
    /// aligned sealed window — the "served purely from merged sketches"
    /// assertion.
    pub raw_values: u64,
    /// The answer was a percentile merged from bucket sketches.
    pub sketch: bool,
}

/// Lifetime query/ingest counters of one [`FleetStore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetStoreStats {
    /// Queries that merged at least one sealed rollup bucket.
    pub rollup_hits: u64,
    /// Percentile queries served by merging bucket sketches (subset of
    /// `rollup_hits`).
    pub sketch_hits: u64,
    /// Queries that fell back to pooling raw samples entirely (no
    /// sealed bucket intersected, or a percentile over sketch-free
    /// tiers) — exact, but bounded by raw retention.
    pub raw_fallbacks: u64,
    /// Raw sample values folded into query answers (splices and
    /// fallbacks). A sketch-served fleet percentile over an aligned
    /// sealed window adds **zero** here.
    pub raw_values_read: u64,
    /// Raw samples accepted into fleet raw rings.
    pub samples: u64,
    /// Raw samples rejected as out-of-order (a node stream violating
    /// per-metric time order, or a restarted node exporter re-shipping
    /// its retained tail).
    pub rejected_samples: u64,
    /// Compressed chunk records whose payload failed to decode
    /// (truncated or corrupted in transport); dropped whole.
    pub corrupt_chunks: u64,
}

/// Direction of a per-node ranking ([`FleetStore::top_nodes`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rank {
    /// Largest values first (e.g. hottest nodes by p99 power).
    Highest,
    /// Smallest values first (e.g. slowest nodes by progress rate —
    /// the per-node "laggards" view).
    Lowest,
}

/// The cluster-level store: fleet metrics (node×name), the cross-node
/// logical axis, wire-fed bucket tiers, and pooled query serving. See
/// the module docs for the data model.
#[derive(Debug)]
pub struct FleetStore {
    infos: Vec<FleetMetricInfo>,
    raw: Vec<TimeSeries>,
    /// Fleet-qualified `node/name` → fleet metric id.
    by_name: HashMap<String, MetricId>,
    /// Node-local name → fleet metric ids, in node-registration order.
    logical: HashMap<String, Vec<MetricId>>,
    tiers: WireTiers,
    raw_retention: usize,
    rollup_hits: Cell<u64>,
    sketch_hits: Cell<u64>,
    raw_fallbacks: Cell<u64>,
    raw_values_read: Cell<u64>,
    samples: u64,
    rejected_samples: u64,
    corrupt_chunks: u64,
    /// Store-owned chunk-decode scratch, reused across `push_chunk`
    /// calls so steady-state chunk ingest stays allocation-free.
    chunk_scratch_ts: Vec<u64>,
    chunk_scratch_vals: Vec<f64>,
}

impl Default for FleetStore {
    fn default() -> Self {
        Self::new()
    }
}

impl FleetStore {
    /// Empty store with [`DEFAULT_RAW_RETENTION`] and unbounded wire
    /// tiers.
    pub fn new() -> Self {
        Self::with_raw_retention(DEFAULT_RAW_RETENTION)
    }

    /// Empty store retaining `retention` raw samples per fleet metric.
    pub fn with_raw_retention(retention: usize) -> Self {
        FleetStore {
            infos: Vec::new(),
            raw: Vec::new(),
            by_name: HashMap::new(),
            logical: HashMap::new(),
            tiers: WireTiers::new(),
            raw_retention: retention.max(1),
            rollup_hits: Cell::new(0),
            sketch_hits: Cell::new(0),
            raw_fallbacks: Cell::new(0),
            raw_values_read: Cell::new(0),
            samples: 0,
            rejected_samples: 0,
            corrupt_chunks: 0,
            chunk_scratch_ts: Vec::new(),
            chunk_scratch_vals: Vec::new(),
        }
    }

    /// Register (or find) the fleet metric for `node_name`'s metric
    /// `meta`. Idempotent per `(node, name)` — a node re-announcing its
    /// registry after an exporter restart maps back onto the same fleet
    /// metric.
    pub fn register(&mut self, node: NodeId, node_name: &str, meta: &MetricMeta) -> MetricId {
        let fleet_name = format!("{node_name}/{}", meta.name);
        if let Some(&id) = self.by_name.get(&fleet_name) {
            return id;
        }
        let id = MetricId(self.infos.len() as u32);
        self.infos.push(FleetMetricInfo {
            node,
            local_name: meta.name.clone(),
            meta: meta.clone(),
        });
        self.raw.push(TimeSeries::new(self.raw_retention));
        self.by_name.insert(fleet_name, id);
        self.logical.entry(meta.name.clone()).or_default().push(id);
        id
    }

    /// Append one raw wire sample. Returns whether it was accepted
    /// (rejects out-of-order per metric, like any node-local ring).
    pub fn push_sample(&mut self, id: MetricId, t: SimTime, value: f64) -> bool {
        let ok = self.raw[id.index()].push(t, value);
        if ok {
            self.samples += 1;
        } else {
            self.rejected_samples += 1;
        }
        ok
    }

    /// Ingest one compressed raw-chunk record (wire spec revision 1.1):
    /// decode the Gorilla payload into store-owned scratch, then
    /// bulk-append via [`TimeSeries::append_block`] — one ordering check
    /// and a straight extend on the clean path. A block that overlaps
    /// already-ingested samples (a restarted node exporter re-shipping a
    /// sealed chunk) falls back to per-sample pushes so the monotonic
    /// guard rejects exactly the already-seen prefix. Returns
    /// `(accepted, rejected)` sample counts; a payload that fails to
    /// decode is dropped whole and counted in
    /// [`FleetStoreStats::corrupt_chunks`].
    pub fn push_chunk(
        &mut self,
        id: MetricId,
        first_t: SimTime,
        count: u32,
        bytes: &[u8],
    ) -> (u64, u64) {
        self.chunk_scratch_ts.clear();
        self.chunk_scratch_vals.clear();
        if moda_telemetry::chunk::decode_exact(
            first_t.0,
            count,
            bytes,
            &mut self.chunk_scratch_ts,
            &mut self.chunk_scratch_vals,
        )
        .is_err()
        {
            self.corrupt_chunks += 1;
            return (0, 0);
        }
        let series = &mut self.raw[id.index()];
        let total = self.chunk_scratch_ts.len() as u64;
        let accepted = if series.append_block(&self.chunk_scratch_ts, &self.chunk_scratch_vals) {
            total
        } else {
            let mut acc = 0u64;
            for (&t, &v) in self.chunk_scratch_ts.iter().zip(&self.chunk_scratch_vals) {
                if series.push(SimTime(t), v) {
                    acc += 1;
                }
            }
            acc
        };
        self.samples += accepted;
        self.rejected_samples += total - accepted;
        (accepted, total - accepted)
    }

    /// Apply one sealed bucket record (see [`WireTiers::apply_bucket`]).
    #[allow(clippy::too_many_arguments)]
    pub fn apply_bucket(
        &mut self,
        id: MetricId,
        res: SimDuration,
        start: SimTime,
        count: u64,
        sum: f64,
        min: f64,
        max: f64,
        last: f64,
    ) -> bool {
        self.tiers
            .apply_bucket(id, res, start, count, sum, min, max, last)
    }

    /// Apply one sketch column (see [`WireTiers::apply_sketch`]).
    pub fn apply_sketch(
        &mut self,
        id: MetricId,
        res: SimDuration,
        start: SimTime,
        entry: SketchEntry,
    ) -> bool {
        self.tiers.apply_sketch(id, res, start, entry)
    }

    /// Apply a whole sketch column against one slot lookup (see
    /// [`WireTiers::apply_sketch_column`]) — the snapshot-restore fast
    /// path.
    pub fn apply_sketch_column<I>(
        &mut self,
        id: MetricId,
        res: SimDuration,
        start: SimTime,
        entries: I,
    ) -> u64
    where
        I: IntoIterator<Item = SketchEntry>,
    {
        self.tiers.apply_sketch_column(id, res, start, entries)
    }

    /// Restore one sealed bucket — scalars plus its sketch column —
    /// against a single slot lookup (see [`WireTiers::restore_bucket`]).
    #[allow(clippy::too_many_arguments)]
    pub fn restore_bucket(
        &mut self,
        id: MetricId,
        res: SimDuration,
        start: SimTime,
        count: u64,
        sum: f64,
        min: f64,
        max: f64,
        last: f64,
        entries: &[SketchEntry],
    ) -> bool {
        self.tiers
            .restore_bucket(id, res, start, count, sum, min, max, last, entries)
    }

    // ----- registry / axes ----------------------------------------------

    /// Number of fleet metrics (node×name pairs).
    pub fn cardinality(&self) -> usize {
        self.infos.len()
    }

    /// Identity of a fleet metric.
    pub fn info(&self, id: MetricId) -> &FleetMetricInfo {
        &self.infos[id.index()]
    }

    /// Look up a fleet metric by its qualified `node/name`.
    pub fn lookup(&self, fleet_name: &str) -> Option<MetricId> {
        self.by_name.get(fleet_name).copied()
    }

    /// The logical axis: every node's fleet metric for one node-local
    /// name, in node-registration order. Empty when no node exported it.
    pub fn logical_members(&self, local_name: &str) -> &[MetricId] {
        self.logical
            .get(local_name)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Iterate the logical axis names (unordered).
    pub fn logical_names(&self) -> impl Iterator<Item = &str> {
        self.logical.keys().map(String::as_str)
    }

    /// Snapshot of the logical axes as `(name, member count)` pairs,
    /// sorted by name — the deterministic listing the query protocol's
    /// discovery request serves, so remote and in-process callers see
    /// the same order regardless of hash-map iteration.
    pub fn logical_axes(&self) -> Vec<(String, usize)> {
        let mut out: Vec<(String, usize)> = self
            .logical
            .iter()
            .map(|(name, members)| (name.clone(), members.len()))
            .collect();
        out.sort();
        out
    }

    /// One fleet metric's raw ring.
    pub fn raw(&self, id: MetricId) -> &TimeSeries {
        &self.raw[id.index()]
    }

    /// The wire-fed bucket tiers (planner-ready per-metric pyramids).
    pub fn tiers(&self) -> &WireTiers {
        &self.tiers
    }

    /// Retained sealed buckets of one fleet metric's tier, start-ordered.
    pub fn buckets(&self, id: MetricId, res: SimDuration) -> impl Iterator<Item = &RollupBucket> {
        self.tiers.buckets(id, res)
    }

    /// Lifetime store counters.
    pub fn stats(&self) -> FleetStoreStats {
        FleetStoreStats {
            rollup_hits: self.rollup_hits.get(),
            sketch_hits: self.sketch_hits.get(),
            raw_fallbacks: self.raw_fallbacks.get(),
            raw_values_read: self.raw_values_read.get(),
            samples: self.samples,
            rejected_samples: self.rejected_samples,
            corrupt_chunks: self.corrupt_chunks,
        }
    }

    /// Raw-ring retention this store was built with (snapshot metadata).
    pub fn raw_retention(&self) -> usize {
        self.raw_retention
    }

    /// Overwrite every counter with snapshotted values — the last step
    /// of a snapshot restore, after re-applying content (which bumps
    /// `samples` etc. as a side effect) so recovered stats read exactly
    /// as they did at snapshot time.
    pub(crate) fn restore_stats(&mut self, s: &FleetStoreStats) {
        self.rollup_hits.set(s.rollup_hits);
        self.sketch_hits.set(s.sketch_hits);
        self.raw_fallbacks.set(s.raw_fallbacks);
        self.raw_values_read.set(s.raw_values_read);
        self.samples = s.samples;
        self.rejected_samples = s.rejected_samples;
        self.corrupt_chunks = s.corrupt_chunks;
    }

    // ----- queries -------------------------------------------------------

    /// Trailing-window aggregate of **one** fleet metric (one node's
    /// series), served through the same cascade as the cluster-wide
    /// queries — a single-member pool, so it shares their tolerance
    /// (a sealed bucket that lost its sketch columns to framing errors
    /// degrades a percentile to the exact raw fallback instead of
    /// corrupting it) and their raw-read accounting.
    pub fn window_agg(
        &self,
        id: MetricId,
        now: SimTime,
        window: SimDuration,
        agg: WindowAgg,
    ) -> Option<f64> {
        let lo = SimTime(now.0.saturating_sub(window.0).saturating_add(1));
        let hi = SimTime(now.0.saturating_add(1));
        let mut served = FleetServed {
            members: 1,
            ..FleetServed::default()
        };
        let out = if let WindowAgg::Percentile(q) = agg {
            self.fleet_percentile_pooled(&[id], lo, hi, q, &mut served)
        } else {
            // `Last` is meaningful here — one metric's buckets and raw
            // splices fold in time order — unlike across nodes.
            let mut audit = AuditedScalar {
                acc: RollupAcc::new(),
                raw_values: 0,
            };
            served.buckets += fold_span_into(
                &self.raw[id.index()],
                self.tiers.set(id),
                lo,
                hi,
                &mut audit,
            );
            served.raw_values = audit.raw_values;
            audit.acc.finish(agg)
        };
        self.account(&served);
        out
    }

    /// Cluster-wide trailing-window aggregate over the logical axis
    /// `local_name`: one accumulator pooled across every node's fleet
    /// metric. `Count`/`Sum`/`Mean`/`Min`/`Max` combine exactly;
    /// `Percentile` merges the nodes' sealed-bucket sketches (1 %
    /// relative error against the exact pooled order statistic) and
    /// falls back to an exact pooled raw selection when no sealed
    /// bucket intersects the window or the tiers carry no sketches.
    ///
    /// # Panics
    /// On [`WindowAgg::Last`]: "last across nodes" has no
    /// arrival-order-independent meaning — rank nodes with
    /// [`FleetStore::top_nodes`] instead.
    pub fn fleet_window_agg(
        &self,
        local_name: &str,
        now: SimTime,
        window: SimDuration,
        agg: WindowAgg,
    ) -> Option<f64> {
        self.fleet_window_agg_served(local_name, now, window, agg).0
    }

    /// [`FleetStore::fleet_window_agg`] plus how the answer was served.
    pub fn fleet_window_agg_served(
        &self,
        local_name: &str,
        now: SimTime,
        window: SimDuration,
        agg: WindowAgg,
    ) -> (Option<f64>, FleetServed) {
        self.fleet_subset_window_agg_served(self.logical_members(local_name), now, window, agg)
    }

    /// Pool a trailing-window aggregate over an **explicit member
    /// subset** instead of a whole logical axis — the entry the
    /// coverage-aware control-plane queries ([`crate::control`]) use to
    /// exclude stale/silent nodes. Members outside the slice contribute
    /// nothing: the answer is exactly what the full fleet query would
    /// return on a fleet containing only those members.
    pub fn fleet_subset_window_agg_served(
        &self,
        members: &[MetricId],
        now: SimTime,
        window: SimDuration,
        agg: WindowAgg,
    ) -> (Option<f64>, FleetServed) {
        assert!(
            !matches!(agg, WindowAgg::Last),
            "Last is per-node (arrival order across nodes is meaningless); \
             use top_nodes or window_agg per member"
        );
        // (t0, now] == [t0 + 1, now + 1) on integer-millisecond time —
        // the same span convention as the node-local planner.
        let lo = SimTime(now.0.saturating_sub(window.0).saturating_add(1));
        let hi = SimTime(now.0.saturating_add(1));
        let mut served = FleetServed {
            members: members.len(),
            ..FleetServed::default()
        };
        if members.is_empty() {
            return (None, served);
        }
        let out = if let WindowAgg::Percentile(q) = agg {
            self.fleet_percentile_pooled(members, lo, hi, q, &mut served)
        } else {
            let mut audit = AuditedScalar {
                acc: RollupAcc::new(),
                raw_values: 0,
            };
            for &id in members {
                served.buckets += fold_span_into(
                    &self.raw[id.index()],
                    self.tiers.set(id),
                    lo,
                    hi,
                    &mut audit,
                );
            }
            served.raw_values = audit.raw_values;
            audit.acc.finish(agg)
        };
        self.account(&served);
        (out, served)
    }

    /// Pooled percentile path: merge every member's sealed-bucket
    /// sketches (plus raw splices) into one accumulator; fall back to
    /// the exact pooled raw selection when nothing sketch-served
    /// intersected the window or any member's buckets lack sketches.
    fn fleet_percentile_pooled(
        &self,
        members: &[MetricId],
        lo: SimTime,
        hi: SimTime,
        q: f64,
        served: &mut FleetServed,
    ) -> Option<f64> {
        let sketchable = members
            .iter()
            .all(|&id| self.tiers.set(id).is_none_or(|s| s.sketched()));
        if sketchable {
            let mut audit = AuditedSketch {
                acc: SketchAcc::new(),
                raw: Vec::new(),
                unsketched_buckets: 0,
            };
            let mut buckets = 0;
            for &id in members {
                buckets += fold_span_into(
                    &self.raw[id.index()],
                    self.tiers.set(id),
                    lo,
                    hi,
                    &mut audit,
                );
            }
            if buckets > 0 && audit.unsketched_buckets == 0 {
                served.buckets = buckets;
                served.raw_values = audit.raw.len() as u64;
                served.sketch = true;
                return audit.acc.finish(q);
            }
            if audit.unsketched_buckets == 0 {
                // No sealed bucket intersected the window at all, so
                // the cascade bottomed out at raw everywhere — the
                // audit pass already holds every in-window value;
                // finish exactly without re-scanning the rings.
                let mut vals = audit.raw;
                served.raw_values = vals.len() as u64;
                return (!vals.is_empty()).then(|| WindowAgg::Percentile(q).apply_mut(&mut vals));
            }
            // A sealed bucket without sketch columns (a stream that
            // lost columns to framing errors, or a node that rebuilt
            // its pyramid sketch-free): the merged answer would be
            // silently incomplete, so degrade to the exact raw rescan.
        }
        // Exact pooled fallback over whatever raw the fleet retains —
        // the same semantics as a node-local raw percentile fallback.
        let mut vals: Vec<f64> = Vec::new();
        for &id in members {
            vals.extend(self.raw[id.index()].range_view(lo, hi).values());
        }
        served.raw_values = vals.len() as u64;
        if vals.is_empty() {
            return None;
        }
        Some(WindowAgg::Percentile(q).apply_mut(&mut vals))
    }

    /// Rank the logical axis per node and keep the top `k`:
    /// `Rank::Lowest` is the "top-k laggards" view (slowest progress,
    /// lowest throughput), `Rank::Highest` the hot-spot view (highest
    /// p99 power/latency). Nodes whose member answers `None` (no data
    /// in the window) are omitted; ties keep node-registration order.
    pub fn top_nodes(
        &self,
        local_name: &str,
        now: SimTime,
        window: SimDuration,
        agg: WindowAgg,
        k: usize,
        rank: Rank,
    ) -> Vec<(NodeId, f64)> {
        self.top_nodes_of(self.logical_members(local_name), now, window, agg, k, rank)
    }

    /// [`FleetStore::top_nodes`] over an explicit member subset — the
    /// coverage-aware ranking entry (see
    /// [`FleetStore::fleet_subset_window_agg_served`]).
    pub fn top_nodes_of(
        &self,
        members: &[MetricId],
        now: SimTime,
        window: SimDuration,
        agg: WindowAgg,
        k: usize,
        rank: Rank,
    ) -> Vec<(NodeId, f64)> {
        let mut out: Vec<(NodeId, f64)> = members
            .iter()
            .filter_map(|&id| {
                self.window_agg(id, now, window, agg)
                    .map(|v| (self.info(id).node, v))
            })
            .collect();
        out.sort_by(|a, b| {
            let ord = a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal);
            match rank {
                Rank::Highest => ord.reverse(),
                Rank::Lowest => ord,
            }
        });
        out.truncate(k);
        out
    }

    fn account(&self, served: &FleetServed) {
        if served.buckets > 0 {
            self.rollup_hits.set(self.rollup_hits.get() + 1);
            if served.sketch {
                self.sketch_hits.set(self.sketch_hits.get() + 1);
            }
        } else {
            self.raw_fallbacks.set(self.raw_fallbacks.get() + 1);
        }
        self.raw_values_read
            .set(self.raw_values_read.get() + served.raw_values);
    }
}

/// Scalar pooling accumulator that counts every raw value spliced in.
struct AuditedScalar {
    acc: RollupAcc,
    raw_values: u64,
}

impl SpanFold for AuditedScalar {
    #[inline]
    fn push_value(&mut self, v: f64) {
        self.raw_values += 1;
        self.acc.push_value(v);
    }

    #[inline]
    fn merge_bucket(&mut self, b: &RollupBucket) {
        self.acc.merge_bucket(b);
    }
}

/// Sketch pooling accumulator: collects raw splices (for counting, and
/// so a bucket-free window can finish exactly without a second ring
/// scan) and tolerates — by counting, so the caller can fall back —
/// sealed buckets that arrived without sketch columns: a mixed stream
/// the strict node-side planner never produces but a lenient
/// aggregation tier must not crash on.
struct AuditedSketch {
    acc: SketchAcc,
    raw: Vec<f64>,
    unsketched_buckets: u64,
}

impl SpanFold for AuditedSketch {
    #[inline]
    fn push_value(&mut self, v: f64) {
        self.raw.push(v);
        self.acc.push_value(v);
    }

    fn merge_bucket(&mut self, b: &RollupBucket) {
        if b.sketch.is_some() {
            self.acc.merge_bucket(b);
        } else {
            self.unsketched_buckets += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moda_telemetry::SourceDomain;

    fn meta(name: &str) -> MetricMeta {
        MetricMeta::gauge(name, "u", SourceDomain::Hardware)
    }

    /// Feed `nodes` fleet metrics under one logical name with sealed
    /// minute buckets `1..=sealed` (count 60 each, values = node+slot).
    fn sealed_fleet(nodes: u32, sealed: u64) -> FleetStore {
        let mut store = FleetStore::new();
        let res = SimDuration::from_secs(60);
        for n in 0..nodes {
            let id = store.register(NodeId(n), &format!("node{n:02}"), &meta("m"));
            for slot in 1..=sealed {
                let v = (n as u64 + slot) as f64;
                store.apply_bucket(id, res, SimTime(slot * 60_000), 60, 60.0 * v, v, v, v);
                let mut sk = moda_telemetry::QuantileSketch::new();
                for _ in 0..60 {
                    sk.fold(v);
                }
                for e in sk.wire_entries() {
                    store.apply_sketch(id, res, SimTime(slot * 60_000), e);
                }
            }
        }
        store
    }

    #[test]
    fn registry_is_namespaced_and_idempotent() {
        let mut store = FleetStore::new();
        let a = store.register(NodeId(0), "node00", &meta("power"));
        let b = store.register(NodeId(1), "node01", &meta("power"));
        assert_ne!(a, b);
        assert_eq!(store.register(NodeId(0), "node00", &meta("power")), a);
        assert_eq!(store.cardinality(), 2);
        assert_eq!(store.lookup("node01/power"), Some(b));
        assert_eq!(store.logical_members("power"), &[a, b]);
        assert_eq!(store.info(a).node, NodeId(0));
        assert_eq!(store.info(b).local_name, "power");
    }

    #[test]
    fn pooled_scalars_are_exact_across_nodes() {
        let store = sealed_fleet(4, 10);
        let now = SimTime(11 * 60_000 - 1);
        let w = SimDuration::from_secs(600);
        let count = store
            .fleet_window_agg("m", now, w, WindowAgg::Count)
            .unwrap();
        assert_eq!(count, 4.0 * 10.0 * 60.0);
        // min over nodes 0..4, slots 1..=10: node 0, slot 1 → 1.
        let min = store.fleet_window_agg("m", now, w, WindowAgg::Min).unwrap();
        assert_eq!(min, 1.0);
        let max = store.fleet_window_agg("m", now, w, WindowAgg::Max).unwrap();
        assert_eq!(max, 13.0);
        // Aligned sealed window: zero raw reads.
        let (_, served) = store.fleet_window_agg_served("m", now, w, WindowAgg::Sum);
        assert_eq!(served.raw_values, 0);
        assert_eq!(served.buckets, 40);
        assert_eq!(served.members, 4);
    }

    #[test]
    fn fleet_percentile_merges_sketches_with_zero_raw_reads() {
        let store = sealed_fleet(4, 10);
        let now = SimTime(11 * 60_000 - 1);
        let w = SimDuration::from_secs(600);
        let (p, served) = store.fleet_window_agg_served("m", now, w, WindowAgg::Percentile(0.99));
        assert!(served.sketch);
        assert_eq!(served.raw_values, 0, "purely merged from sketches");
        assert_eq!(served.buckets, 40);
        // Exact pooled p99 of the 2400 values (60 copies of n+slot):
        // rank 0.99·2399 ≈ 2375 → value 12 or 13; sketch is within 1 %.
        let p = p.unwrap();
        assert!((11.8..=13.2).contains(&p), "{p}");
        let stats = store.stats();
        assert_eq!(stats.sketch_hits, 1);
        assert_eq!(stats.raw_values_read, 0);
    }

    #[test]
    fn unsealed_tail_splices_raw_and_is_counted() {
        let mut store = sealed_fleet(2, 5);
        let ids: Vec<MetricId> = store.logical_members("m").to_vec();
        // Raw samples beyond the sealed region (the unsealed tail).
        for &id in &ids {
            for s in 0..30u64 {
                assert!(store.push_sample(id, SimTime(6 * 60_000 + s * 1000), 100.0));
            }
        }
        let now = SimTime(6 * 60_000 + 29_000);
        let w = SimDuration::from_secs(389); // 5 sealed minutes + 29s tail
        let (count, served) = store.fleet_window_agg_served("m", now, w, WindowAgg::Count);
        assert_eq!(count, Some(2.0 * (5.0 * 60.0 + 30.0)));
        assert_eq!(served.raw_values, 60);
        assert!(served.buckets > 0);
        assert!(store.stats().raw_values_read > 0);
    }

    #[test]
    fn percentile_without_sketches_falls_back_to_exact_pooled_raw() {
        let mut store = FleetStore::new();
        let a = store.register(NodeId(0), "n0", &meta("m"));
        let b = store.register(NodeId(1), "n1", &meta("m"));
        for s in 1..=100u64 {
            store.push_sample(a, SimTime::from_secs(s), s as f64);
            store.push_sample(b, SimTime::from_secs(s), (s + 100) as f64);
        }
        let (p, served) = store.fleet_window_agg_served(
            "m",
            SimTime::from_secs(100),
            SimDuration::from_secs(100),
            WindowAgg::Percentile(0.5),
        );
        assert!(!served.sketch);
        assert_eq!(served.raw_values, 200);
        // Exact pooled median of 1..=200.
        assert_eq!(p, Some(100.5));
        assert_eq!(store.stats().raw_fallbacks, 1);
    }

    #[test]
    fn percentile_tolerates_buckets_that_lost_their_sketch_columns() {
        // A sealed bucket whose sketch columns were dropped (framing
        // errors) inside an otherwise-sketched tier: percentiles must
        // degrade to the exact raw fallback — never panic, never
        // silently drop the bucket's values from the answer.
        let mut store = sealed_fleet(2, 5);
        let ids: Vec<MetricId> = store.logical_members("m").to_vec();
        let res = SimDuration::from_secs(60);
        // Slot 6 arrives as a bare bucket, no columns.
        store.apply_bucket(ids[0], res, SimTime(6 * 60_000), 60, 60.0, 1.0, 1.0, 1.0);
        let now = SimTime(7 * 60_000 - 1);
        let w = SimDuration::from_secs(360);
        // Pooled and single-member percentile both fall back cleanly.
        let (p, served) = store.fleet_window_agg_served("m", now, w, WindowAgg::Percentile(0.9));
        assert!(!served.sketch, "{served:?}");
        // The raw rings are empty here, so the exact fallback has
        // nothing — honest None beats a silently incomplete estimate.
        assert_eq!(p, None);
        assert_eq!(
            store.window_agg(ids[0], now, w, WindowAgg::Percentile(0.9)),
            None
        );
        // Scalars still serve from buckets, bare one included.
        let count = store
            .fleet_window_agg("m", now, w, WindowAgg::Count)
            .unwrap();
        assert_eq!(count, 2.0 * 5.0 * 60.0 + 60.0);
        // Single-member queries share the raw-read accounting.
        let before = store.stats();
        assert!(before.raw_fallbacks > 0);
    }

    #[test]
    fn top_nodes_ranks_both_directions() {
        let store = sealed_fleet(4, 10);
        let now = SimTime(11 * 60_000 - 1);
        let w = SimDuration::from_secs(600);
        let hot = store.top_nodes("m", now, w, WindowAgg::Max, 2, Rank::Highest);
        assert_eq!(hot.len(), 2);
        assert_eq!(hot[0].0, NodeId(3));
        assert_eq!(hot[0].1, 13.0);
        let laggards = store.top_nodes("m", now, w, WindowAgg::Max, 2, Rank::Lowest);
        assert_eq!(laggards[0].0, NodeId(0));
        assert_eq!(laggards[0].1, 10.0);
    }

    #[test]
    #[should_panic(expected = "Last is per-node")]
    fn fleet_last_is_rejected() {
        let store = sealed_fleet(2, 3);
        store.fleet_window_agg(
            "m",
            SimTime::from_secs(600),
            SimDuration::from_secs(60),
            WindowAgg::Last,
        );
    }

    #[test]
    fn unknown_logical_name_is_none_not_a_fallback() {
        let store = sealed_fleet(2, 3);
        let (out, served) = store.fleet_window_agg_served(
            "nope",
            SimTime::from_secs(600),
            SimDuration::from_secs(60),
            WindowAgg::Mean,
        );
        assert_eq!(out, None);
        assert_eq!(served.members, 0);
        assert_eq!(store.stats().raw_fallbacks, 0);
    }
}
