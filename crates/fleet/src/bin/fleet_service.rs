//! Standalone durable fleet service: the aggregation tier as a
//! process.
//!
//! ```text
//! fleet_service serve <dir> <addr> <token> [--snapshot-every N] [--selfscrape-every S]
//! fleet_service query <addr> <token> metrics
//! fleet_service query <addr> <token> agg <metric> <now_s> <window_s> <agg>
//! fleet_service query <addr> <token> top <metric> <now_s> <window_s> <agg> <k> <highest|lowest>
//! fleet_service query <addr> <token> health <now_s> <stale_after_s>
//! fleet_service query <addr> <token> covered <metric> <now_s> <window_s> <agg> <stale_after_s>
//! fleet_service query <addr> <token> selfstat [k] [--drain]
//! ```
//!
//! `serve` opens (or recovers) the [`moda_fleet::DurableFleet`] under
//! `<dir>`, binds the framed TCP listener on `<addr>` (use port `0`
//! for an ephemeral port), prints one `READY <addr>` line on stdout,
//! and serves until killed. Because every ingested batch is appended
//! to the write-ahead log before its ack, `kill -9` at any point loses
//! nothing that was acknowledged: restart the service on the same
//! `<dir>` and exporters resume from their persisted cursors.
//!
//! With `--selfscrape-every S` the service instruments itself: an
//! enabled [`moda_obs::Obs`] handle is attached to the fleet (WAL,
//! ingest, and query-serve spans start recording) and a
//! [`moda_fleet::SelfScraper`] ships the registry into the fleet's
//! `__self/` axes every `S` wall seconds through the stock export
//! pipeline. The scrape timeline starts at the store's observed
//! high-water mark and advances `S` logical seconds per tick, so
//! restarts keep it monotonic. `query ... agg __self/wal.fsync_ns ...`
//! then answers from the same planner as any fleet metric.
//!
//! `query` is the read-only CLI over the serving protocol
//! ([`moda_fleet::query`]): it dials a running service with a
//! [`moda_fleet::FleetClient`], issues one request, prints the answer,
//! and exits non-zero on refusal. `<agg>` is one of `mean`, `min`,
//! `max`, `sum`, `count`, or `pQ` with a rank in [0, 1] (`p0.99`).
//! Times are in seconds. `selfstat` prints the service's slowest
//! internal spans (default `k` 16; `--drain` clears the server log).
//!
//! This is the process the crash-recovery and query integration tests
//! (`tests/recovery.rs`, `tests/query.rs`) and the `fleet-recovery` /
//! `fleet-query` CI jobs drive.

use moda_fleet::{DurabilityConfig, DurableFleet, FleetClient, FleetListener, Rank, SelfScraper};
use moda_obs::Obs;
use moda_sim::{SimDuration, SimTime};
use moda_telemetry::WindowAgg;
use std::io::Write;
use std::sync::{Arc, Mutex};

fn usage() -> ! {
    eprintln!(
        "usage: fleet_service serve <dir> <addr> <token> [--snapshot-every N] [--selfscrape-every S]\n\
         \x20      fleet_service query <addr> <token> metrics\n\
         \x20      fleet_service query <addr> <token> agg <metric> <now_s> <window_s> <agg>\n\
         \x20      fleet_service query <addr> <token> top <metric> <now_s> <window_s> <agg> <k> <highest|lowest>\n\
         \x20      fleet_service query <addr> <token> health <now_s> <stale_after_s>\n\
         \x20      fleet_service query <addr> <token> covered <metric> <now_s> <window_s> <agg> <stale_after_s>\n\
         \x20      fleet_service query <addr> <token> selfstat [k] [--drain]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("serve") => serve(&args),
        Some("query") => query(&args),
        _ => usage(),
    }
}

fn serve(args: &[String]) -> ! {
    if args.len() < 5 {
        usage();
    }
    let (dir, addr, token) = (&args[2], &args[3], &args[4]);
    let mut cfg = DurabilityConfig::default();
    let mut selfscrape_every: u64 = 0;
    let mut rest = args[5..].iter();
    while let Some(flag) = rest.next() {
        match flag.as_str() {
            "--snapshot-every" => {
                let n = rest.next().unwrap_or_else(|| usage());
                cfg.snapshot_every_batches = n.parse().unwrap_or_else(|_| usage());
            }
            "--selfscrape-every" => {
                let n = rest.next().unwrap_or_else(|| usage());
                selfscrape_every = n.parse().unwrap_or_else(|_| usage());
            }
            _ => usage(),
        }
    }

    let mut fleet = match DurableFleet::open(dir, cfg) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("fleet_service: cannot open {dir}: {e}");
            std::process::exit(1);
        }
    };
    let rec = *fleet.recovery();
    // Self-telemetry: attach an enabled registry + scraper before the
    // listener takes the fleet, so the first served query is spanned.
    let mut scraper = if selfscrape_every > 0 {
        match SelfScraper::attach(&mut fleet, Obs::enabled()) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("fleet_service: cannot attach self-scraper: {e}");
                std::process::exit(1);
            }
        }
    } else {
        None
    };
    // Scrape timeline: resume past anything already ingested so raw
    // self samples stay monotonic across restarts.
    let mut scrape_t = fleet.aggregator().observed_now();
    let fleet = Arc::new(Mutex::new(fleet));
    let listener = match FleetListener::bind(addr.as_str(), Arc::clone(&fleet), token) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("fleet_service: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "fleet_service: epoch recovery {rec:?}; serving {} from {dir}",
        listener.local_addr()
    );
    // The parent (test harness, CI job) parses this exact line to learn
    // the ephemeral port. Stdout is block-buffered under a pipe, so
    // flush explicitly.
    println!("READY {}", listener.local_addr());
    std::io::stdout().flush().ok();
    // Serve until killed; durability is per-batch, so there is no
    // shutdown path to get right — SIGKILL is the supported exit.
    loop {
        match scraper.as_mut() {
            None => std::thread::sleep(std::time::Duration::from_secs(3600)),
            Some(s) => {
                std::thread::sleep(std::time::Duration::from_secs(selfscrape_every));
                scrape_t += SimDuration::from_secs(selfscrape_every);
                let mut f = fleet.lock().unwrap();
                if let Err(e) = s.tick(&mut f, scrape_t) {
                    eprintln!("fleet_service: self-scrape failed: {e}");
                }
            }
        }
    }
}

fn parse_agg(s: &str) -> WindowAgg {
    match s {
        "mean" => WindowAgg::Mean,
        "min" => WindowAgg::Min,
        "max" => WindowAgg::Max,
        "sum" => WindowAgg::Sum,
        "count" => WindowAgg::Count,
        _ => match s.strip_prefix('p').and_then(|q| q.parse::<f64>().ok()) {
            Some(q) => WindowAgg::Percentile(q),
            None => usage(),
        },
    }
}

fn parse_secs(s: &str) -> u64 {
    s.parse().unwrap_or_else(|_| usage())
}

fn query(args: &[String]) -> ! {
    if args.len() < 4 {
        usage();
    }
    let (addr, token) = (&args[2], &args[3]);
    let mut client = match FleetClient::connect(addr, token) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("fleet_service: cannot connect {addr}: {e}");
            std::process::exit(1);
        }
    };
    let rest = &args[4..];
    let result = match rest.first().map(String::as_str) {
        Some("metrics") if rest.len() == 1 => client.metrics().map(|m| {
            for (name, members) in &m.axes {
                println!("{name} members={members}");
            }
        }),
        Some("agg") if rest.len() == 5 => client
            .window_agg(
                &rest[1],
                SimTime::from_secs(parse_secs(&rest[2])),
                SimDuration::from_secs(parse_secs(&rest[3])),
                parse_agg(&rest[4]),
            )
            .map(|a| {
                println!(
                    "value={:?} members={} buckets={} raw_values={} sketch={}",
                    a.value,
                    a.served.members,
                    a.served.buckets,
                    a.served.raw_values,
                    a.served.sketch
                );
            }),
        Some("top") if rest.len() == 7 => {
            let rank = match rest[6].as_str() {
                "highest" => Rank::Highest,
                "lowest" => Rank::Lowest,
                _ => usage(),
            };
            client
                .top_nodes(
                    &rest[1],
                    SimTime::from_secs(parse_secs(&rest[2])),
                    SimDuration::from_secs(parse_secs(&rest[3])),
                    parse_agg(&rest[4]),
                    rest[5].parse().unwrap_or_else(|_| usage()),
                    rank,
                )
                .map(|entries| {
                    for (i, e) in entries.iter().enumerate() {
                        println!("#{i} {} ({}) value={}", e.name, e.node, e.value);
                    }
                })
        }
        Some("health") if rest.len() == 3 => client
            .health(
                SimTime::from_secs(parse_secs(&rest[1])),
                SimDuration::from_secs(parse_secs(&rest[2])),
            )
            .map(|h| {
                println!(
                    "live={} stale={} silent={} observed_now={:?}",
                    h.live, h.stale, h.silent, h.observed_now
                );
                for n in &h.nodes {
                    println!(
                        "{} ({}) {:?} high_water={:?} lag={:?} batches={} samples={} gaps={}",
                        n.name,
                        n.node,
                        n.liveness,
                        n.high_water,
                        n.drain_lag,
                        n.counters.batches,
                        n.counters.samples,
                        n.counters.gaps
                    );
                }
            }),
        Some("selfstat") => {
            let mut k: u32 = 16;
            let mut drain = false;
            for arg in &rest[1..] {
                match arg.as_str() {
                    "--drain" => drain = true,
                    s => k = s.parse().unwrap_or_else(|_| usage()),
                }
            }
            client.selfstat(k, drain).map(|a| {
                if a.ops.is_empty() {
                    println!("no spans recorded");
                }
                for (i, op) in a.ops.iter().enumerate() {
                    println!(
                        "#{i} {} {}ns depth={} seq={}",
                        op.name, op.duration_ns, op.depth, op.seq
                    );
                }
            })
        }
        Some("covered") if rest.len() == 6 => client
            .covered_window_agg(
                &rest[1],
                SimTime::from_secs(parse_secs(&rest[2])),
                SimDuration::from_secs(parse_secs(&rest[3])),
                parse_agg(&rest[4]),
                SimDuration::from_secs(parse_secs(&rest[5])),
            )
            .map(|a| {
                let c = &a.coverage;
                println!(
                    "value={:?} coverage={}/{} stale={} silent={} missing={}",
                    a.value, c.contributing, c.total, c.stale, c.silent, c.missing
                );
            }),
        _ => usage(),
    };
    match result {
        Ok(()) => std::process::exit(0),
        Err(e) => {
            eprintln!("fleet_service: query failed: {e}");
            std::process::exit(1);
        }
    }
}
