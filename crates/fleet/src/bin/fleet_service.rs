//! Standalone durable fleet service: the aggregation tier as a
//! process.
//!
//! ```text
//! fleet_service serve <dir> <addr> <token> [--snapshot-every N]
//! ```
//!
//! Opens (or recovers) the [`moda_fleet::DurableFleet`] under `<dir>`,
//! binds the framed TCP listener on `<addr>` (use port `0` for an
//! ephemeral port), prints one `READY <addr>` line on stdout, and
//! serves until killed. Because every ingested batch is appended to
//! the write-ahead log before its ack, `kill -9` at any point loses
//! nothing that was acknowledged: restart the service on the same
//! `<dir>` and exporters resume from their persisted cursors.
//!
//! This is the process the crash-recovery integration test
//! (`tests/recovery.rs`) and the `fleet-recovery` CI job drive.

use moda_fleet::{DurabilityConfig, DurableFleet, FleetListener};
use std::io::Write;
use std::sync::{Arc, Mutex};

fn usage() -> ! {
    eprintln!("usage: fleet_service serve <dir> <addr> <token> [--snapshot-every N]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() < 5 || args[1] != "serve" {
        usage();
    }
    let (dir, addr, token) = (&args[2], &args[3], &args[4]);
    let mut cfg = DurabilityConfig::default();
    let mut rest = args[5..].iter();
    while let Some(flag) = rest.next() {
        match flag.as_str() {
            "--snapshot-every" => {
                let n = rest.next().unwrap_or_else(|| usage());
                cfg.snapshot_every_batches = n.parse().unwrap_or_else(|_| usage());
            }
            _ => usage(),
        }
    }

    let fleet = match DurableFleet::open(dir, cfg) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("fleet_service: cannot open {dir}: {e}");
            std::process::exit(1);
        }
    };
    let rec = *fleet.recovery();
    let listener = match FleetListener::bind(addr.as_str(), Arc::new(Mutex::new(fleet)), token) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("fleet_service: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "fleet_service: epoch recovery {rec:?}; serving {} from {dir}",
        listener.local_addr()
    );
    // The parent (test harness, CI job) parses this exact line to learn
    // the ephemeral port. Stdout is block-buffered under a pipe, so
    // flush explicitly.
    println!("READY {}", listener.local_addr());
    std::io::stdout().flush().ok();
    // Serve until killed; durability is per-batch, so there is no
    // shutdown path to get right — SIGKILL is the supported exit.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
