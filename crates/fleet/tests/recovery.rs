//! Crash-recovery integration test: the `fleet_service` binary is
//! SIGKILLed mid-stream, restarted on the same directory, and the
//! exporters reconnect and resume from the server's persisted cursor.
//! Every fleet query afterwards must be bit-identical to an
//! uninterrupted in-process run, with zero re-ingest from `seq 0` and
//! zero duplicate batches — the tier-1 twin of the `fleet-recovery`
//! CI job.
//!
//! The working directory defaults to a per-process temp dir; set
//! `FLEET_RECOVERY_DIR` to pin it somewhere collectable (the CI job
//! points it into `target/` and uploads the snapshot + wal on
//! failure). On success the directory is removed.

use moda_fleet::{FleetAggregator, FleetStore, NodeId, SocketSink};
use moda_sim::{SimDuration, SimTime};
use moda_telemetry::export::{ExportBatch, MemorySink, Sink};
use moda_telemetry::{
    DrainStats, Exporter, MetricMeta, RollupConfig, RollupTier, SourceDomain, Tsdb, WindowAgg,
};
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

const NODES: usize = 3;
const SAMPLES: usize = 2400;
const TOKEN: &str = "recovery-test-token";

fn work_dir() -> PathBuf {
    match std::env::var_os("FLEET_RECOVERY_DIR") {
        Some(d) => PathBuf::from(d),
        None => std::env::temp_dir().join(format!("moda_fleet_recovery_{}", std::process::id())),
    }
}

/// One node's wire stream (sealed buckets, sketch columns, raw tail)
/// off a real sketched store, plus the exporter's drain totals.
fn node_stream(offset: f64) -> (Vec<ExportBatch>, DrainStats) {
    let cfg = RollupConfig::new(vec![
        RollupTier::new(SimDuration::from_secs(10), 256),
        RollupTier::new(SimDuration::from_secs(60), 64),
    ])
    .with_sketches();
    let mut db = Tsdb::with_retention(1 << 12);
    let id = db.register(MetricMeta::gauge("m", "u", SourceDomain::Hardware));
    db.enable_rollups(id, &cfg);
    for s in 0..SAMPLES as u64 {
        db.insert(
            id,
            SimTime::from_secs(1 + s),
            offset + ((s * 31) % 997) as f64,
        );
    }
    let mut sink = MemorySink::new();
    let mut exporter = Exporter::new().with_batch_records(64);
    exporter.drain(&db, &mut sink).unwrap();
    (sink.batches, exporter.totals())
}

/// Everything the ISSUE's acceptance clause names, as comparable data:
/// window aggregates, the merged fleet p99, top-k, and health.
fn fingerprint(agg: &FleetAggregator, now: SimTime) -> Vec<String> {
    let store = agg.store();
    let span = SimDuration(now.0);
    let mut out = Vec::new();
    for kind in [
        WindowAgg::Count,
        WindowAgg::Sum,
        WindowAgg::Min,
        WindowAgg::Max,
        WindowAgg::Mean,
        WindowAgg::Percentile(0.99),
    ] {
        out.push(format!(
            "{kind:?}={:?}",
            store
                .fleet_window_agg("m", now, span, kind)
                .map(f64::to_bits)
        ));
    }
    out.push(format!(
        "top={:?}",
        store.top_nodes(
            "m",
            now,
            span,
            WindowAgg::Mean,
            NODES,
            moda_fleet::Rank::Highest
        )
    ));
    out.push(scrub_retries(format!(
        "health={:?}",
        agg.health(now, SimDuration::from_secs(120))
    )));
    out
}

/// Zero out `send_retries` in a rendered health record: the counter
/// measures transport-level reconnect work, which an interrupted run
/// legitimately accrues — it is not part of the converged-state
/// contract the fingerprint pins.
fn scrub_retries(s: String) -> String {
    const KEY: &str = "send_retries: ";
    let mut out = String::with_capacity(s.len());
    let mut rest = s.as_str();
    while let Some(i) = rest.find(KEY) {
        let (head, tail) = rest.split_at(i + KEY.len());
        out.push_str(head);
        out.push('0');
        rest = tail.trim_start_matches(|c: char| c.is_ascii_digit());
    }
    out.push_str(rest);
    out
}

fn spawn_service(dir: &Path) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_fleet_service"))
        .arg("serve")
        .arg(dir)
        .args(["127.0.0.1:0", TOKEN, "--snapshot-every", "5"])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn fleet_service");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read READY line");
    let addr = line
        .trim()
        .strip_prefix("READY ")
        .unwrap_or_else(|| panic!("unexpected service banner: {line:?}"))
        .to_string();
    (child, addr)
}

#[test]
fn sigkill_mid_stream_recovers_bit_identical_with_no_seq0_replay() {
    let dir = work_dir();
    let _ = std::fs::remove_dir_all(&dir);

    let streams: Vec<(Vec<ExportBatch>, DrainStats)> =
        (0..NODES).map(|k| node_stream(1000.0 * k as f64)).collect();
    let now = SimTime::from_secs(SAMPLES as u64 + 1);

    // Uninterrupted in-process reference.
    let mut reference = FleetAggregator::new();
    for (k, (batches, totals)) in streams.iter().enumerate() {
        let node = reference.add_node(&format!("node{k:02}"));
        for batch in batches {
            reference.ingest(node, batch);
        }
        reference.report_drain(node, totals);
    }
    let want = fingerprint(&reference, now);

    // Phase 1: serve, connect every node, ship the first half.
    let (mut server, addr) = spawn_service(&dir);
    let mut sinks: Vec<SocketSink> = (0..NODES)
        .map(|k| SocketSink::connect(&addr, &format!("node{k:02}"), TOKEN).unwrap())
        .collect();
    let split = streams[0].0.len() / 2;
    assert!(split > 2, "stream long enough to split");
    for (k, sink) in sinks.iter_mut().enumerate() {
        for batch in &streams[k].0[..split] {
            sink.write_batch(batch).unwrap();
        }
        // Durability barrier: everything below `split` is acked, and an
        // ack is only sent after the batch hit the write-ahead log.
        sink.wait_idle().unwrap();
        // Two more in flight with NO ack wait — at kill time these are
        // in an unknown state (logged, torn, or never received), which
        // is exactly what the resume protocol must absorb.
        for batch in &streams[k].0[split..split + 2] {
            sink.write_batch(batch).unwrap();
        }
    }

    // Phase 2: kill -9, mid-stream.
    server.kill().expect("SIGKILL fleet_service");
    server.wait().expect("reap killed service");

    // Phase 3: restart on the same dir; exporters redirect and resume.
    let (mut server2, addr2) = spawn_service(&dir);
    for (k, sink) in sinks.iter_mut().enumerate() {
        sink.redirect(&addr2);
        for batch in &streams[k].0[split + 2..] {
            sink.write_batch(batch).unwrap();
        }
        sink.send_drain(&streams[k].1).unwrap();
        sink.wait_idle().unwrap();
        assert!(sink.reconnects() >= 1, "node{k:02} must have re-dialed");
        assert!(
            sink.last_resume_seq() >= split as u64,
            "node{k:02} resumed at the persisted cursor ({}), not seq 0",
            sink.last_resume_seq()
        );
        assert_eq!(sink.unacked_len(), 0, "node{k:02} fully acked");
    }

    // Phase 4: kill the restarted service too (acked ⇒ logged, so
    // SIGKILL is a clean exit) and recover in-process off the files.
    server2.kill().expect("SIGKILL restarted service");
    server2.wait().expect("reap restarted service");
    let recovered = FleetStore::recover(&dir).expect("recover from snapshot + wal");
    assert!(recovered.epoch() > 0, "snapshot cadence rotated the wal");

    // Zero re-ingest: every batch applied exactly once, none replayed
    // from seq 0, none re-delivered past the duplicate guard.
    for (k, (batches, _)) in streams.iter().enumerate() {
        let c = recovered.aggregator().counters(NodeId(k as u32));
        assert_eq!(c.duplicate_batches, 0, "node{k:02}: {c:?}");
        assert_eq!(c.gaps, 0, "node{k:02}: {c:?}");
        assert_eq!(c.batches, batches.len() as u64, "node{k:02}: {c:?}");
        assert_eq!(c.samples, SAMPLES as u64, "node{k:02}: {c:?}");
        assert_eq!(recovered.next_seq(NodeId(k as u32)), batches.len() as u64);
    }

    // The acceptance clause: window aggregates, merged p99, top-k, and
    // health — bit-identical to the uninterrupted run.
    let got = fingerprint(recovered.aggregator(), now);
    assert_eq!(got, want);

    // And the interrupted exporters actually exercised the reconnect
    // path: at least one drain recorded send retries.
    let retried: u64 = recovered
        .aggregator()
        .health(now, SimDuration::from_secs(120))
        .nodes
        .iter()
        .map(|n| n.drain.send_retries)
        .sum();
    assert!(retried > 0, "no exporter recorded a reconnect retry");

    drop(recovered);
    let _ = std::fs::remove_dir_all(&dir);
}
