//! Protocol conformance + equivalence suite for the serving front end
//! (`moda_fleet::query` over `FleetListener`/`FleetClient`).
//!
//! Four contracts, each pinned here:
//!
//! * **equivalence** — every remote answer is bit-identical
//!   (`f64::to_bits`, full metadata structs) to the in-process planner
//!   answer on an identically-fed `FleetAggregator`, over arbitrary
//!   fleets (including silent nodes and zero-contributor axes) and
//!   arbitrary query mixes;
//! * **fail closed** — arbitrary bytes never panic the codec; hostile
//!   frames never kill the server (typed `Error` responses for bad
//!   payloads inside valid envelopes, connection close for corrupt
//!   envelopes, listener keeps accepting either way); a rogue server's
//!   hostile responses surface as `Err` from `FleetClient`, never a
//!   panic or a wrong answer;
//! * **session discipline** — auth is mandatory and counted, roles are
//!   exclusive (ingest frames on a query session close it), pipelined
//!   answers come back strictly in request order;
//! * **durability** — queries served concurrently with live ingest
//!   streams, across a SIGKILL/recovery cycle of the `fleet_service`
//!   binary, answer bit-identically before and after the kill.
//!
//! The working directory defaults to a per-process temp dir; set
//! `FLEET_QUERY_DIR` to pin it somewhere collectable (the `fleet-query`
//! CI job points it into `target/` and uploads it on failure).

use moda_fleet::query::{decode_request, decode_response, encode_request, encode_response};
use moda_fleet::MetricsAnswer;
use moda_fleet::{
    DurabilityConfig, DurableFleet, FleetAggregator, FleetClient, FleetListener, HealthAnswer,
    NodeId, QueryErrorCode, QueryRequest, QueryResponse, Rank, SocketSink, TransportConfig,
};
use moda_sim::{SimDuration, SimTime};
use moda_telemetry::export::{frame_tag, read_frame, write_frame, ExportBatch, MemorySink, Sink};
use moda_telemetry::{
    DrainStats, Exporter, MetricMeta, RollupConfig, RollupTier, SourceDomain, Tsdb, WindowAgg,
};
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

const TOKEN: &str = "query-test-token";

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A unique working directory per test case (CI pins the base via
/// `FLEET_QUERY_DIR` so failures upload the snapshot + wal).
fn work_dir(tag: &str) -> PathBuf {
    let base = match std::env::var_os("FLEET_QUERY_DIR") {
        Some(d) => PathBuf::from(d),
        None => std::env::temp_dir(),
    };
    let n = DIR_SEQ.fetch_add(1, Ordering::SeqCst);
    base.join(format!("moda_fleet_query_{tag}_{}_{n}", std::process::id()))
}

/// Fast-failing transport tuning so hostile-peer tests stay quick.
fn fast_cfg() -> TransportConfig {
    TransportConfig {
        reconnect_attempts: 2,
        reconnect_pause: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(20),
        io_timeout: Some(Duration::from_secs(5)),
        ..TransportConfig::default()
    }
}

/// One node's wire stream off a real sketched store (sealed buckets,
/// sketch columns, raw tail), plus the exporter's drain totals.
fn node_stream(offset: f64, samples: usize) -> (Vec<ExportBatch>, DrainStats) {
    let cfg = RollupConfig::new(vec![
        RollupTier::new(SimDuration::from_secs(10), 256),
        RollupTier::new(SimDuration::from_secs(60), 64),
    ])
    .with_sketches();
    let mut db = Tsdb::with_retention(1 << 12);
    let id = db.register(MetricMeta::gauge("m", "u", SourceDomain::Hardware));
    db.enable_rollups(id, &cfg);
    for s in 0..samples as u64 {
        db.insert(
            id,
            SimTime::from_secs(1 + s),
            offset + ((s * 31) % 997) as f64,
        );
    }
    let mut sink = MemorySink::new();
    let mut exporter = Exporter::new().with_batch_records(64);
    exporter.drain(&db, &mut sink).unwrap();
    (sink.batches, exporter.totals())
}

/// Feed the same streams into a served `DurableFleet` and a plain
/// in-process `FleetAggregator`; nodes whose stream is empty are
/// registered but never ingest (the silent-node case). Returns the
/// live listener plus the independently-built reference.
fn serve_fleet(
    dir: &Path,
    streams: &[(Vec<ExportBatch>, DrainStats)],
) -> (FleetListener, FleetAggregator) {
    let _ = std::fs::remove_dir_all(dir);
    let mut durable = DurableFleet::open(dir, DurabilityConfig::default()).unwrap();
    let mut reference = FleetAggregator::new();
    for (k, (batches, totals)) in streams.iter().enumerate() {
        let name = format!("node{k:02}");
        let d = durable.add_node(&name).unwrap();
        let r = reference.add_node(&name);
        for batch in batches {
            durable.ingest(d, batch).unwrap();
            reference.ingest(r, batch);
        }
        if !batches.is_empty() {
            durable.report_drain(d, totals).unwrap();
            reference.report_drain(r, totals);
        }
    }
    let listener =
        FleetListener::bind("127.0.0.1:0", Arc::new(Mutex::new(durable)), TOKEN).unwrap();
    (listener, reference)
}

fn bits(v: Option<f64>) -> Option<u64> {
    v.map(f64::to_bits)
}

/// `(node, name, value bits)` form of an in-process ranking, for exact
/// comparison against the wire's `TopNodeEntry` list.
fn ranked(agg: &FleetAggregator, raw: Vec<(NodeId, f64)>) -> Vec<(NodeId, String, u64)> {
    raw.into_iter()
        .map(|(n, v)| (n, agg.node_name(n).to_string(), v.to_bits()))
        .collect()
}

fn entries(list: &[moda_fleet::TopNodeEntry]) -> Vec<(NodeId, String, u64)> {
    list.iter()
        .map(|e| (e.node, e.name.clone(), e.value.to_bits()))
        .collect()
}

// ----------------------------------------------------------- equivalence

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Arbitrary fleets (varying node counts, stream lengths, offsets,
    /// silent nodes) × arbitrary query mixes: the remote answer is
    /// bit-identical to the in-process planner's, including serving
    /// metadata, coverage classification, top-k order, and the
    /// zero-contributor axis.
    #[test]
    fn remote_answers_bit_identical_to_in_process(
        specs in prop::collection::vec((0u32..4, 0usize..160), 1..5),
        qnum in 0u32..1001,
        window_s in 1u64..4000,
        now_extra in 0u64..240,
    ) {
        let streams: Vec<(Vec<ExportBatch>, DrainStats)> = specs
            .iter()
            .map(|&(off, samples)| {
                // Short draws become registered-but-silent nodes.
                let samples = if samples < 40 { 0 } else { samples };
                node_stream(500.0 * off as f64, samples)
            })
            .collect();
        let max_samples = specs.iter().map(|s| s.1).max().unwrap_or(0) as u64;
        let now = SimTime::from_secs(max_samples + 1 + now_extra);
        let q = qnum as f64 / 1000.0;

        let dir = work_dir("equiv");
        let (listener, reference) = serve_fleet(&dir, &streams);
        let addr = listener.local_addr().to_string();
        let mut client = FleetClient::connect_with(&addr, TOKEN, fast_cfg()).unwrap();
        let store = reference.store();

        let windows = [SimDuration::from_secs(window_s), SimDuration(now.0)];
        let stale_afters = [
            SimDuration::from_secs(30),
            SimDuration::from_secs(1_000_000),
        ];

        // "m" is the shared axis; "absent" pins the zero-contributor
        // path end to end.
        for metric in ["m", "absent"] {
            for &w in &windows {
                for agg in [
                    WindowAgg::Count,
                    WindowAgg::Sum,
                    WindowAgg::Mean,
                    WindowAgg::Min,
                    WindowAgg::Max,
                    WindowAgg::Percentile(q),
                    WindowAgg::Percentile(0.0),
                    WindowAgg::Percentile(1.0),
                ] {
                    let (want_v, want_s) = store.fleet_window_agg_served(metric, now, w, agg);
                    let got = client.window_agg(metric, now, w, agg).unwrap();
                    prop_assert_eq!(bits(got.value), bits(want_v), "{} {:?}", metric, agg);
                    prop_assert_eq!(got.served, want_s);
                }
                // Rankings: `Last` is legal here (per-node time order).
                for agg in [WindowAgg::Mean, WindowAgg::Percentile(q), WindowAgg::Last] {
                    for rank in [Rank::Highest, Rank::Lowest] {
                        for k in [1usize, streams.len() + 2] {
                            let want =
                                ranked(&reference, store.top_nodes(metric, now, w, agg, k, rank));
                            let got = client
                                .top_nodes(metric, now, w, agg, k as u32, rank)
                                .unwrap();
                            prop_assert_eq!(entries(&got), want);
                        }
                    }
                }
                for &sa in &stale_afters {
                    let want = reference.covered_window_agg(metric, now, w, WindowAgg::Sum, sa);
                    let got = client
                        .covered_window_agg(metric, now, w, WindowAgg::Sum, sa)
                        .unwrap();
                    prop_assert_eq!(bits(got.value), bits(want.value));
                    prop_assert_eq!(got.served, want.served);
                    prop_assert_eq!(got.coverage, want.coverage);

                    let (want_rank, want_cov) = reference.covered_top_nodes(
                        metric,
                        now,
                        w,
                        WindowAgg::Percentile(q),
                        3,
                        Rank::Highest,
                        sa,
                    );
                    let got = client
                        .covered_top_nodes(
                            metric,
                            now,
                            w,
                            WindowAgg::Percentile(q),
                            3,
                            Rank::Highest,
                            sa,
                        )
                        .unwrap();
                    prop_assert_eq!(entries(&got.entries), ranked(&reference, want_rank));
                    prop_assert_eq!(got.coverage, want_cov);
                }
            }
        }

        // Health under bounds that classify live, stale, and silent.
        for &sa in &stale_afters {
            let want = HealthAnswer::from_fleet(&reference.health(now, sa));
            let got = client.health(now, sa).unwrap();
            prop_assert_eq!(got, want);
        }

        // Discovery listing.
        let want_axes: Vec<(String, u32)> = store
            .logical_axes()
            .into_iter()
            .map(|(n, c)| (n, c as u32))
            .collect();
        prop_assert_eq!(client.metrics().unwrap().axes, want_axes);

        drop(client);
        drop(listener.shutdown());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The degenerate fleet — no nodes registered at all — still answers
/// every query kind, bit-identically to the in-process planner.
#[test]
fn empty_fleet_answers_match_in_process() {
    let dir = work_dir("empty");
    let (listener, reference) = serve_fleet(&dir, &[]);
    let addr = listener.local_addr().to_string();
    let mut client = FleetClient::connect_with(&addr, TOKEN, fast_cfg()).unwrap();
    let now = SimTime::from_secs(60);
    let w = SimDuration::from_secs(60);
    let sa = SimDuration::from_secs(30);

    let got = client.window_agg("m", now, w, WindowAgg::Mean).unwrap();
    let (want_v, want_s) = reference
        .store()
        .fleet_window_agg_served("m", now, w, WindowAgg::Mean);
    assert_eq!(bits(got.value), bits(want_v));
    assert_eq!(got.served, want_s);
    assert!(got.value.is_none());

    assert!(client
        .top_nodes("m", now, w, WindowAgg::Mean, 5, Rank::Highest)
        .unwrap()
        .is_empty());

    let health = client.health(now, sa).unwrap();
    assert_eq!(health, HealthAnswer::from_fleet(&reference.health(now, sa)));
    assert_eq!((health.live, health.stale, health.silent), (0, 0, 0));

    let covered = client
        .covered_window_agg("m", now, w, WindowAgg::Sum, sa)
        .unwrap();
    let want = reference.covered_window_agg("m", now, w, WindowAgg::Sum, sa);
    assert_eq!(bits(covered.value), bits(want.value));
    assert_eq!(covered.coverage, want.coverage);
    assert_eq!(covered.coverage.total, 0);

    assert_eq!(client.metrics().unwrap().axes, Vec::<(String, u32)>::new());

    drop(listener.shutdown());
    let _ = std::fs::remove_dir_all(&dir);
}

// ------------------------------------------------------------ fail closed

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The codec never panics on arbitrary input, and anything it does
    /// accept re-encodes to a decodable equal value (decode∘encode is
    /// the identity on the accepted set).
    #[test]
    fn codec_never_panics_on_arbitrary_bytes(
        bytes in prop::collection::vec(0u16..256, 0..300),
    ) {
        let buf: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
        if let Ok(req) = decode_request(&buf) {
            let mut re = Vec::new();
            encode_request(&req, &mut re);
            prop_assert_eq!(decode_request(&re).unwrap(), req);
        }
        if let Ok(resp) = decode_response(&buf) {
            let mut re = Vec::new();
            encode_response(&resp, &mut re);
            prop_assert_eq!(decode_response(&re).unwrap(), resp);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Hostile bytes on the wire — pure junk on one connection, a
    /// bit-flipped but otherwise valid handshake + query stream on
    /// another — never kill the listener: a well-behaved client still
    /// gets served afterwards.
    #[test]
    fn arbitrary_bytes_never_kill_the_listener(
        junk in prop::collection::vec(0u16..256, 1..200),
        flip in 0usize..10_000,
    ) {
        let dir = work_dir("hostile");
        let (listener, _reference) = serve_fleet(&dir, &[]);
        let addr = listener.local_addr();

        // Connection 1: raw junk.
        {
            let mut s = TcpStream::connect(addr).unwrap();
            let buf: Vec<u8> = junk.iter().map(|&b| b as u8).collect();
            s.write_all(&buf).ok();
            // Whether the server closes (corrupt envelope) or waits for
            // more (incomplete frame), dropping the socket must be
            // absorbed either way.
        }

        // Connection 2: a valid hello + Metrics query with one flipped
        // bit somewhere in the stream.
        {
            let mut stream = Vec::new();
            let mut hello = Vec::new();
            put_str16(&mut hello, TOKEN);
            write_frame(&mut stream, frame_tag::QUERY_HELLO, &hello).unwrap();
            let mut q = Vec::new();
            q.extend_from_slice(&7u64.to_le_bytes());
            encode_request(&QueryRequest::Metrics, &mut q);
            write_frame(&mut stream, frame_tag::QUERY, &q).unwrap();
            let bit = flip % (stream.len() * 8);
            stream[bit / 8] ^= 1 << (bit % 8);

            let mut s = TcpStream::connect(addr).unwrap();
            s.set_read_timeout(Some(Duration::from_millis(500))).unwrap();
            s.write_all(&stream).ok();
            // Drain whatever the server says (ack, typed refusal, or
            // nothing before it closes); only absence of a server panic
            // matters here.
            let mut sink = [0u8; 4096];
            while matches!(s.read(&mut sink), Ok(n) if n > 0) {}
        }

        // Proof of life.
        let mut client =
            FleetClient::connect_with(&addr.to_string(), TOKEN, fast_cfg()).unwrap();
        prop_assert!(client.metrics().unwrap().axes.is_empty());

        drop(client);
        drop(listener.shutdown());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// `[len u16 LE][bytes]` string block, the hello payload layout.
fn put_str16(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn raw_frame(tag: u8, payload: &[u8]) -> Vec<u8> {
    let mut v = Vec::new();
    write_frame(&mut v, tag, payload).unwrap();
    v
}

/// Dial and complete the query handshake by hand, returning the raw
/// stream for frame-level protocol tests.
fn raw_query_session(addr: SocketAddr) -> TcpStream {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut hello = Vec::new();
    put_str16(&mut hello, TOKEN);
    s.write_all(&raw_frame(frame_tag::QUERY_HELLO, &hello))
        .unwrap();
    let (tag, ack) = read_frame(&mut s).unwrap().expect("hello ack");
    assert_eq!(tag, frame_tag::QUERY_HELLO_ACK);
    assert_eq!(ack[0], 0, "auth accepted");
    s
}

/// Send one raw QUERY payload and decode the matched response.
fn raw_roundtrip(s: &mut TcpStream, payload: &[u8]) -> (u64, QueryResponse) {
    s.write_all(&raw_frame(frame_tag::QUERY, payload)).unwrap();
    let (tag, resp) = read_frame(s).unwrap().expect("response frame");
    assert_eq!(tag, frame_tag::QUERY_RESP);
    let id = u64::from_le_bytes(resp[..8].try_into().unwrap());
    (id, decode_response(&resp[8..]).unwrap())
}

fn expect_error(resp: QueryResponse, code: QueryErrorCode) {
    match resp {
        QueryResponse::Error(e) => assert_eq!(e.code, code, "{e:?}"),
        other => panic!("expected {code:?} refusal, got {other:?}"),
    }
}

/// Every malformed-payload shape inside a *valid* envelope draws a
/// typed `Error` response and leaves the session usable; every corrupt
/// *envelope* closes the connection; and in all cases the listener
/// keeps serving new clients.
#[test]
fn hostile_frames_get_typed_refusals_and_sessions_fail_closed() {
    let dir = work_dir("refusals");
    let (listener, _reference) = serve_fleet(&dir, &[node_stream(0.0, 120)]);
    let addr = listener.local_addr();

    // --- Valid envelope, malformed payloads: refusal + session survives.
    let mut s = raw_query_session(addr);

    // Too short to carry a request id: Malformed, id echoes the
    // u64::MAX sentinel.
    let (id, resp) = raw_roundtrip(&mut s, &[1, 2, 3]);
    assert_eq!(id, u64::MAX);
    expect_error(resp, QueryErrorCode::Malformed);

    // Unknown protocol version.
    let mut p = 11u64.to_le_bytes().to_vec();
    p.extend_from_slice(&[0xEE, 0xEE]);
    let (id, resp) = raw_roundtrip(&mut s, &p);
    assert_eq!(id, 11);
    expect_error(resp, QueryErrorCode::UnsupportedVersion);

    // Unknown request kind.
    let mut p = 12u64.to_le_bytes().to_vec();
    p.extend_from_slice(&[1, 0, 0xEE]);
    let (id, resp) = raw_roundtrip(&mut s, &p);
    assert_eq!(id, 12);
    expect_error(resp, QueryErrorCode::UnknownKind);

    // Truncated fields.
    let mut p = 13u64.to_le_bytes().to_vec();
    p.extend_from_slice(&[1, 0, 1, 2]);
    let (_, resp) = raw_roundtrip(&mut s, &p);
    expect_error(resp, QueryErrorCode::Malformed);

    // Trailing bytes after a well-formed request.
    let mut p = 14u64.to_le_bytes().to_vec();
    encode_request(&QueryRequest::Metrics, &mut p);
    p.push(0);
    let (_, resp) = raw_roundtrip(&mut s, &p);
    expect_error(resp, QueryErrorCode::Malformed);

    // The session survived all of it: a good query still answers.
    let mut p = 15u64.to_le_bytes().to_vec();
    encode_request(&QueryRequest::Metrics, &mut p);
    let (id, resp) = raw_roundtrip(&mut s, &p);
    assert_eq!(id, 15);
    assert_eq!(
        resp,
        QueryResponse::Metrics(MetricsAnswer {
            axes: vec![("m".to_string(), 1)]
        })
    );
    drop(s);

    // --- Query before hello: typed Unauthorized refusal, then close.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut p = 21u64.to_le_bytes().to_vec();
        encode_request(&QueryRequest::Metrics, &mut p);
        s.write_all(&raw_frame(frame_tag::QUERY, &p)).unwrap();
        let (tag, resp) = read_frame(&mut s).unwrap().expect("refusal frame");
        assert_eq!(tag, frame_tag::QUERY_RESP);
        assert_eq!(u64::from_le_bytes(resp[..8].try_into().unwrap()), 21);
        expect_error(
            decode_response(&resp[8..]).unwrap(),
            QueryErrorCode::Unauthorized,
        );
        assert!(read_frame(&mut s).unwrap().is_err(), "connection closed");
    }

    // --- Ingest frame on a query session: close, no answer.
    {
        let mut s = raw_query_session(addr);
        s.write_all(&raw_frame(frame_tag::BATCH, &[0xAB; 16]))
            .unwrap();
        assert!(read_frame(&mut s).unwrap().is_err(), "connection closed");
    }

    // --- Corrupt envelope (flipped payload bit → CRC mismatch): close.
    {
        let mut s = raw_query_session(addr);
        let mut p = 31u64.to_le_bytes().to_vec();
        encode_request(&QueryRequest::Metrics, &mut p);
        let mut frame = raw_frame(frame_tag::QUERY, &p);
        frame[5] ^= 0x40;
        s.write_all(&frame).unwrap();
        assert!(read_frame(&mut s).unwrap().is_err(), "connection closed");
    }

    // --- Absurd length prefix: close without allocating.
    {
        let mut s = raw_query_session(addr);
        s.write_all(&[0xFF, 0xFF, 0xFF, 0xFF, 0x00]).unwrap();
        assert!(read_frame(&mut s).unwrap().is_err(), "connection closed");
    }

    // The listener outlived every hostile session.
    let mut client = FleetClient::connect_with(&addr.to_string(), TOKEN, fast_cfg()).unwrap();
    assert_eq!(client.metrics().unwrap().axes, vec![("m".to_string(), 1)]);
    assert!(listener.queries_served() >= 7);

    drop(client);
    drop(listener.shutdown());
    let _ = std::fs::remove_dir_all(&dir);
}

/// One rogue-server behavior per mode; every accepted connection gets
/// the same treatment so client-side retries land on identical
/// hostility.
fn rogue_server(mode: &'static str) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        for conn in listener.incoming() {
            let Ok(mut s) = conn else { continue };
            let _ = serve_rogue(&mut s, mode);
        }
    });
    addr
}

fn serve_rogue(s: &mut TcpStream, mode: &'static str) -> std::io::Result<()> {
    s.set_read_timeout(Some(Duration::from_secs(5))).ok();
    let (tag, _hello) = match read_frame(s)? {
        Ok(f) => f,
        Err(_) => return Ok(()),
    };
    assert_eq!(tag, frame_tag::QUERY_HELLO);
    // Honest handshake: status 0, protocol version 1.
    write_frame(s, frame_tag::QUERY_HELLO_ACK, &[0, 1, 0])?;
    s.flush()?;
    let (_, q) = match read_frame(s)? {
        Ok(f) => f,
        Err(_) => return Ok(()),
    };
    let id = u64::from_le_bytes(q[..8].try_into().unwrap());
    let honest = {
        let mut p = id.to_le_bytes().to_vec();
        encode_response(
            &QueryResponse::Metrics(MetricsAnswer { axes: Vec::new() }),
            &mut p,
        );
        p
    };
    match mode {
        "wrong_tag" => write_frame(s, frame_tag::ACK, &honest)?,
        "wrong_id" => {
            let mut p = (id ^ 1).to_le_bytes().to_vec();
            p.extend_from_slice(&honest[8..]);
            write_frame(s, frame_tag::QUERY_RESP, &p)?;
        }
        "short_payload" => write_frame(s, frame_tag::QUERY_RESP, &honest[..4])?,
        "unknown_kind" => {
            let mut p = id.to_le_bytes().to_vec();
            p.extend_from_slice(&[1, 0, 0xEE]);
            write_frame(s, frame_tag::QUERY_RESP, &p)?;
        }
        "corrupt_crc" => {
            let mut frame = raw_frame(frame_tag::QUERY_RESP, &honest);
            let n = frame.len();
            frame[n - 1] ^= 0xFF;
            s.write_all(&frame)?;
        }
        "close" => return Ok(()),
        _ => unreachable!("unknown rogue mode"),
    }
    s.flush()
}

/// A server that reorders, mislabels, truncates, corrupts, or drops
/// responses makes `FleetClient` fail closed with `Err` — never a
/// panic, never a fabricated answer.
#[test]
fn rogue_server_responses_fail_closed_without_panic() {
    for mode in [
        "wrong_tag",
        "wrong_id",
        "short_payload",
        "unknown_kind",
        "corrupt_crc",
        "close",
    ] {
        let addr = rogue_server(mode);
        let mut client = FleetClient::connect_with(&addr.to_string(), TOKEN, fast_cfg()).unwrap();
        let err = client.metrics().expect_err(mode);
        assert_ne!(
            err.kind(),
            std::io::ErrorKind::PermissionDenied,
            "{mode}: transport corruption must not masquerade as auth"
        );
    }
}

// ------------------------------------------------------- session rules

/// Auth and aggregate-validation conformance: bad tokens are refused
/// and counted; invalid requests draw their documented reason codes
/// over the full client path.
#[test]
fn auth_and_validation_refusals_carry_their_codes() {
    let dir = work_dir("auth");
    let (listener, _reference) = serve_fleet(&dir, &[node_stream(0.0, 120)]);
    let addr = listener.local_addr().to_string();
    let now = SimTime::from_secs(200);
    let w = SimDuration::from_secs(100);

    // Bad token: PermissionDenied at connect, counted by the listener.
    let before = listener.auth_failures();
    let err = FleetClient::connect_with(&addr, "wrong-token", fast_cfg()).expect_err("bad token");
    assert_eq!(err.kind(), std::io::ErrorKind::PermissionDenied);
    assert_eq!(listener.auth_failures(), before + 1);

    let mut client = FleetClient::connect_with(&addr, TOKEN, fast_cfg()).unwrap();
    assert_eq!(client.server_version(), moda_fleet::QUERY_PROTOCOL_VERSION);

    // Fleet-wide Last: typed UnsupportedAggregate through the raw path…
    let resp = client
        .request(&QueryRequest::WindowAgg {
            metric: "m".to_string(),
            now,
            window: w,
            agg: WindowAgg::Last,
        })
        .unwrap();
    expect_error(resp, QueryErrorCode::UnsupportedAggregate);

    // …and an InvalidData error through the typed helper.
    let err = client
        .window_agg("m", now, w, WindowAgg::Last)
        .expect_err("fleet-wide Last");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

    // NaN / out-of-range percentile ranks: BadField.
    for bad_q in [f64::NAN, f64::INFINITY, -0.25, 1.5] {
        let resp = client
            .request(&QueryRequest::WindowAgg {
                metric: "m".to_string(),
                now,
                window: w,
                agg: WindowAgg::Percentile(bad_q),
            })
            .unwrap();
        expect_error(resp, QueryErrorCode::BadField);
    }

    // Refusals kept the session serving: a good query still answers.
    assert!(client
        .window_agg("m", now, w, WindowAgg::Count)
        .unwrap()
        .value
        .is_some());

    drop(client);
    drop(listener.shutdown());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Pipelined requests answer strictly in request order, with each
/// response id matching its request — including typed refusals
/// interleaved mid-pipeline.
#[test]
fn pipelined_requests_answer_in_order() {
    let dir = work_dir("pipeline");
    let (listener, reference) = serve_fleet(&dir, &[node_stream(0.0, 120), node_stream(50.0, 120)]);
    let addr = listener.local_addr().to_string();
    let mut client = FleetClient::connect_with(&addr, TOKEN, fast_cfg()).unwrap();
    let now = SimTime::from_secs(200);
    let w = SimDuration::from_secs(200);

    let reqs = [
        QueryRequest::Metrics,
        QueryRequest::WindowAgg {
            metric: "m".to_string(),
            now,
            window: w,
            agg: WindowAgg::Sum,
        },
        // A refusal in the middle of the pipeline…
        QueryRequest::WindowAgg {
            metric: "m".to_string(),
            now,
            window: w,
            agg: WindowAgg::Last,
        },
        QueryRequest::Health {
            now,
            stale_after: SimDuration::from_secs(60),
        },
        QueryRequest::TopNodes {
            metric: "m".to_string(),
            now,
            window: w,
            agg: WindowAgg::Percentile(0.5),
            k: 2,
            rank: Rank::Lowest,
        },
    ];
    let ids: Vec<u64> = reqs.iter().map(|r| client.send(r).unwrap()).collect();
    for (i, &id) in ids.iter().enumerate() {
        let (got_id, resp) = client.recv().unwrap();
        assert_eq!(got_id, id, "response {i} out of order");
        match (i, resp) {
            (0, QueryResponse::Metrics(m)) => {
                assert_eq!(m.axes, vec![("m".to_string(), 2)]);
            }
            (1, QueryResponse::Scalar(a)) => {
                let (want, _) =
                    reference
                        .store()
                        .fleet_window_agg_served("m", now, w, WindowAgg::Sum);
                assert_eq!(bits(a.value), bits(want));
            }
            (2, resp) => expect_error(resp, QueryErrorCode::UnsupportedAggregate),
            (3, QueryResponse::Health(h)) => {
                assert_eq!(
                    h,
                    HealthAnswer::from_fleet(&reference.health(now, SimDuration::from_secs(60)))
                );
            }
            (4, QueryResponse::TopNodes(t)) => {
                let want = ranked(
                    &reference,
                    reference.store().top_nodes(
                        "m",
                        now,
                        w,
                        WindowAgg::Percentile(0.5),
                        2,
                        Rank::Lowest,
                    ),
                );
                assert_eq!(entries(&t), want);
            }
            (i, other) => panic!("response {i} has wrong kind: {other:?}"),
        }
    }
    assert_eq!(listener.queries_served(), reqs.len() as u64);

    drop(client);
    drop(listener.shutdown());
    let _ = std::fs::remove_dir_all(&dir);
}

// ------------------------------------------------- concurrency + SIGKILL

const NODES: usize = 3;
const SAMPLES: usize = 1800;

fn spawn_service(dir: &Path) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_fleet_service"))
        .arg("serve")
        .arg(dir)
        .args(["127.0.0.1:0", TOKEN, "--snapshot-every", "5"])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn fleet_service");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read READY line");
    let addr = line
        .trim()
        .strip_prefix("READY ")
        .unwrap_or_else(|| panic!("unexpected service banner: {line:?}"))
        .to_string();
    (child, addr)
}

/// Everything the acceptance clause names, fetched **remotely**:
/// window aggregates, the merged fleet p99, top-k, health, coverage.
fn remote_fingerprint(client: &mut FleetClient, now: SimTime) -> Vec<String> {
    let span = SimDuration(now.0);
    let sa = SimDuration::from_secs(120);
    let mut out = Vec::new();
    for agg in [
        WindowAgg::Count,
        WindowAgg::Sum,
        WindowAgg::Min,
        WindowAgg::Max,
        WindowAgg::Mean,
        WindowAgg::Percentile(0.99),
    ] {
        let a = client.window_agg("m", now, span, agg).unwrap();
        out.push(format!("{agg:?}={:?} {:?}", bits(a.value), a.served));
    }
    let top = client
        .top_nodes("m", now, span, WindowAgg::Mean, NODES as u32, Rank::Highest)
        .unwrap();
    out.push(format!("top={:?}", entries(&top)));
    out.push(format!("health={:?}", client.health(now, sa).unwrap()));
    let c = client
        .covered_window_agg("m", now, span, WindowAgg::Sum, sa)
        .unwrap();
    out.push(format!(
        "covered={:?} {:?} {:?}",
        bits(c.value),
        c.served,
        c.coverage
    ));
    out
}

/// The same fingerprint computed in-process on the reference
/// aggregator, through the same wire projections.
fn local_fingerprint(agg: &FleetAggregator, now: SimTime) -> Vec<String> {
    let store = agg.store();
    let span = SimDuration(now.0);
    let sa = SimDuration::from_secs(120);
    let mut out = Vec::new();
    for kind in [
        WindowAgg::Count,
        WindowAgg::Sum,
        WindowAgg::Min,
        WindowAgg::Max,
        WindowAgg::Mean,
        WindowAgg::Percentile(0.99),
    ] {
        let (v, s) = store.fleet_window_agg_served("m", now, span, kind);
        out.push(format!("{kind:?}={:?} {s:?}", bits(v)));
    }
    let top = ranked(
        agg,
        store.top_nodes("m", now, span, WindowAgg::Mean, NODES, Rank::Highest),
    );
    out.push(format!("top={top:?}"));
    out.push(format!(
        "health={:?}",
        HealthAnswer::from_fleet(&agg.health(now, sa))
    ));
    let c = agg.covered_window_agg("m", now, span, WindowAgg::Sum, sa);
    out.push(format!(
        "covered={:?} {:?} {:?}",
        bits(c.value),
        c.served,
        c.coverage
    ));
    out
}

/// Queries stream concurrently with live ingest sessions, the service
/// is SIGKILLed and restarted on its directory, and the remote answers
/// after recovery are bit-identical to the answers before the kill —
/// which are themselves bit-identical to an uninterrupted in-process
/// run.
#[test]
fn queries_during_ingest_survive_sigkill_recovery_bit_identical() {
    let dir = work_dir("sigkill");
    let _ = std::fs::remove_dir_all(&dir);

    let streams: Vec<(Vec<ExportBatch>, DrainStats)> = (0..NODES)
        .map(|k| node_stream(1000.0 * k as f64, SAMPLES))
        .collect();
    let now = SimTime::from_secs(SAMPLES as u64 + 1);

    // Uninterrupted in-process reference.
    let mut reference = FleetAggregator::new();
    for (k, (batches, totals)) in streams.iter().enumerate() {
        let node = reference.add_node(&format!("node{k:02}"));
        for batch in batches {
            reference.ingest(node, batch);
        }
        reference.report_drain(node, totals);
    }
    let want = local_fingerprint(&reference, now);

    // Serve, and hammer queries from a second connection while the
    // ingest sessions stream.
    let (mut server, addr) = spawn_service(&dir);
    let stop = Arc::new(AtomicBool::new(false));
    let query_thread = {
        let addr = addr.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut client = FleetClient::connect_with(&addr, TOKEN, fast_cfg()).unwrap();
            let mut served = 0u64;
            while !stop.load(Ordering::SeqCst) {
                let t = SimTime::from_secs(SAMPLES as u64);
                let w = SimDuration::from_secs(SAMPLES as u64);
                // Interleaved ingest must never make a concurrent read
                // fail or panic — each answer is a consistent snapshot.
                client.health(t, SimDuration::from_secs(120)).unwrap();
                client.window_agg("m", t, w, WindowAgg::Count).unwrap();
                client.metrics().unwrap();
                served += 3;
            }
            served
        })
    };

    let mut sinks: Vec<SocketSink> = (0..NODES)
        .map(|k| SocketSink::connect(&addr, &format!("node{k:02}"), TOKEN).unwrap())
        .collect();
    for (k, sink) in sinks.iter_mut().enumerate() {
        for batch in &streams[k].0 {
            sink.write_batch(batch).unwrap();
        }
        sink.send_drain(&streams[k].1).unwrap();
        sink.wait_idle().unwrap();
    }

    stop.store(true, Ordering::SeqCst);
    let concurrent_queries = query_thread.join().expect("query thread");
    assert!(
        concurrent_queries > 0,
        "no queries actually overlapped the ingest streams"
    );

    // Pre-kill remote answers == uninterrupted in-process answers.
    let mut client = FleetClient::connect_with(&addr, TOKEN, fast_cfg()).unwrap();
    let pre_kill = remote_fingerprint(&mut client, now);
    assert_eq!(pre_kill, want);
    drop(client);

    // SIGKILL mid-life, restart on the same directory.
    server.kill().expect("SIGKILL fleet_service");
    server.wait().expect("reap killed service");
    let (mut server2, addr2) = spawn_service(&dir);

    // Post-recovery remote answers: bit-identical to pre-kill.
    let mut client = FleetClient::connect_with(&addr2, TOKEN, fast_cfg()).unwrap();
    let post_recovery = remote_fingerprint(&mut client, now);
    assert_eq!(post_recovery, pre_kill);

    drop(client);
    server2.kill().expect("SIGKILL restarted service");
    server2.wait().expect("reap restarted service");
    let _ = std::fs::remove_dir_all(&dir);
}
