//! Property tests for the fleet merge algebra.
//!
//! The aggregation tier's contract (`docs/EXPORT_FORMAT.md`,
//! "Aggregator consumption"):
//!
//! * **ingest order independence** — per-node streams are applied in
//!   stream order, but the interleaving *across* nodes is transport
//!   noise: any interleaving yields the same fleet store (samples,
//!   buckets, merged sketches, and therefore every query answer) —
//!   sketch and bucket merges are commutative and associative;
//! * **the fleet percentile bound** — a fleet p99 merged from the
//!   nodes' sealed-bucket sketches stays within the documented
//!   `SKETCH_RELATIVE_ERROR` (1 %) of the exact pooled order statistic
//!   over all nodes' raw values, and reads zero raw samples on sealed
//!   aligned windows.

use moda_fleet::{
    DurabilityConfig, DurableFleet, FleetAggregator, FleetStore, NodeId, NodeLiveness, Rank,
};
use moda_sim::{SimDuration, SimTime};
use moda_telemetry::export::{ExportBatch, MemorySink};
use moda_telemetry::{
    Exporter, MetricMeta, RollupConfig, RollupTier, SourceDomain, Tsdb, WindowAgg,
};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Build one node's store (tiny sketched 1s/10s pyramid so seals happen
/// within short prop streams) and export it in `batch_records`-sized
/// batches.
fn node_stream(values: &[u16], offset: f64, batch_records: usize) -> (Vec<ExportBatch>, Vec<f64>) {
    let cfg = RollupConfig::new(vec![
        RollupTier::new(SimDuration::from_secs(1), 512),
        RollupTier::new(SimDuration::from_secs(10), 128),
    ])
    .with_sketches();
    let mut db = Tsdb::with_retention(1 << 12);
    let id = db.register(MetricMeta::gauge("m", "u", SourceDomain::Hardware));
    db.enable_rollups(id, &cfg);
    let mut raw = Vec::with_capacity(values.len());
    for (i, &v) in values.iter().enumerate() {
        // ~3 samples per 1 s slot, starting past t=0 so whole-span
        // windows (open at t0) cover everything.
        let t = SimTime(1_000 + i as u64 * 333);
        let v = offset + v as f64;
        if db.insert(id, t, v) {
            raw.push(v);
        }
    }
    let mut sink = MemorySink::new();
    Exporter::new()
        .with_batch_records(batch_records)
        .drain(&db, &mut sink)
        .unwrap();
    (sink.batches, raw)
}

/// Ingest the per-node batch streams in the interleaving dictated by
/// `schedule` (a sequence of node indices; per-node order preserved —
/// the transport guarantee).
fn ingest_interleaved(streams: &[Vec<ExportBatch>], schedule: &[usize]) -> FleetAggregator {
    let mut agg = FleetAggregator::new();
    let nodes: Vec<NodeId> = (0..streams.len())
        .map(|k| agg.add_node(&format!("node{k:02}")))
        .collect();
    let mut cursors = vec![0usize; streams.len()];
    // The schedule picks which node ships next; exhaust leftovers after.
    for &pick in schedule {
        let k = pick % streams.len();
        if cursors[k] < streams[k].len() {
            agg.ingest(nodes[k], &streams[k][cursors[k]]);
            cursors[k] += 1;
        }
    }
    for (k, cur) in cursors.iter_mut().enumerate() {
        while *cur < streams[k].len() {
            agg.ingest(nodes[k], &streams[k][*cur]);
            *cur += 1;
        }
    }
    agg
}

/// Everything observable about the fleet store, as comparable data.
fn fingerprint(agg: &FleetAggregator, n_nodes: usize, span_s: u64) -> Vec<String> {
    let store = agg.store();
    let mut out = Vec::new();
    for k in 0..n_nodes {
        let id = store.lookup(&format!("node{k:02}/m")).expect("mapped");
        let raw: Vec<String> = store
            .raw(id)
            .iter()
            .map(|s| format!("{}:{}", s.t.0, s.value))
            .collect();
        out.push(format!("samples[{k}]={raw:?}"));
        for res in [SimDuration::from_secs(1), SimDuration::from_secs(10)] {
            let buckets: Vec<String> = store
                .buckets(id, res)
                .map(|b| {
                    format!(
                        "{}:{}:{}:{}:{}:{}:{:?}",
                        b.start.0, b.count, b.sum, b.min, b.max, b.last, b.sketch
                    )
                })
                .collect();
            out.push(format!("tier[{k},{}]={buckets:?}", res.0));
        }
    }
    // Query answers must agree too (they are derived, but cheap to pin).
    let now = SimTime(span_s * 1000);
    let w = SimDuration(span_s * 1000);
    for agg_kind in [
        WindowAgg::Count,
        WindowAgg::Sum,
        WindowAgg::Min,
        WindowAgg::Max,
    ] {
        out.push(format!(
            "{agg_kind:?}={:?}",
            store.fleet_window_agg("m", now, w, agg_kind)
        ));
    }
    out.push(format!(
        "p99={:?}",
        store.fleet_window_agg("m", now, w, WindowAgg::Percentile(0.99))
    ));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Ingesting node streams in any interleaving yields the same fleet
    /// store — the additive merge algebra is commutative/associative.
    #[test]
    fn ingest_interleaving_is_irrelevant(
        a in prop::collection::vec(0u16..1000, 30..400),
        b in prop::collection::vec(0u16..1000, 30..400),
        c in prop::collection::vec(0u16..1000, 30..400),
        batch_records in 16usize..200,
        schedule in prop::collection::vec(0usize..3, 0..64),
    ) {
        let streams = vec![
            node_stream(&a, 0.0, batch_records).0,
            node_stream(&b, 1000.0, batch_records).0,
            node_stream(&c, 2000.0, batch_records).0,
        ];
        let span_s = 1 + (400 * 333) / 1000 + 1;
        // Reference: node-by-node in order.
        let reference = ingest_interleaved(&streams, &[]);
        let shuffled = ingest_interleaved(&streams, &schedule);
        prop_assert_eq!(
            fingerprint(&reference, 3, span_s),
            fingerprint(&shuffled, 3, span_s)
        );
        // And the wire stayed clean in both runs.
        for k in 0..3u32 {
            let c = shuffled.counters(NodeId(k));
            prop_assert_eq!(c.duplicate_batches, 0);
            prop_assert_eq!(c.orphan_sketches, 0);
            prop_assert_eq!(c.unmapped_records, 0);
        }
    }

    /// The fleet percentile over merged sketches stays within the
    /// documented 1 % relative-error bound of the exact pooled order
    /// statistic — and reads zero raw samples on a sealed aligned span.
    #[test]
    fn fleet_percentile_is_within_alpha_of_exact_pooled(
        a in prop::collection::vec(1u16..2000, 60..500),
        b in prop::collection::vec(1u16..2000, 60..500),
        c in prop::collection::vec(1u16..2000, 60..500),
        d in prop::collection::vec(1u16..2000, 60..500),
        q in 0.0f64..1.0,
    ) {
        let mut agg = FleetAggregator::new();
        // Equal stream lengths: every node's sealed boundary coincides,
        // so the whole in-scope span is sealed on *every* node (a short
        // node's still-unsealed tail would legitimately splice raw).
        let n = a.len().min(b.len()).min(c.len()).min(d.len());
        let inputs = [&a[..n], &b[..n], &c[..n], &d[..n]];
        let mut max_t = 0u64;
        for (k, vals) in inputs.iter().enumerate() {
            let (batches, _) = node_stream(vals, (k as f64) * 500.0, 4096);
            let node = agg.add_node(&format!("node{k:02}"));
            for batch in &batches {
                agg.ingest(node, batch);
            }
            max_t = max_t.max(1_000 + (vals.len() as u64 - 1) * 333);
        }
        // Pool only what landed in *sealed* 1 s buckets: everything
        // before the newest slot any node is still filling. The window
        // (0, sealed_end-1] is slot-aligned, so the fleet answer must
        // come purely from merged sketches.
        let sealed_end = (max_t / 1_000) * 1_000;
        let store = agg.store();
        let now = SimTime(sealed_end - 1);
        let window = SimDuration(sealed_end - 1);
        let (got, served) =
            store.fleet_window_agg_served("m", now, window, WindowAgg::Percentile(q));
        // Which raw values are in scope: t in (0, sealed_end-1] — i.e.
        // t < sealed_end given 333 ms spacing never lands on *_999.
        let mut in_scope: Vec<f64> = Vec::new();
        for (k, vals) in inputs.iter().enumerate() {
            for (i, &v) in vals.iter().enumerate() {
                let t = 1_000 + i as u64 * 333;
                if t < sealed_end {
                    in_scope.push(v as f64 + (k as f64) * 500.0);
                }
            }
        }
        // ≥ 60 samples at 333 ms spacing guarantee sealed slots exist.
        prop_assert!(!in_scope.is_empty());
        let got = got.expect("data in window");
        prop_assert!(served.sketch, "{:?}", served);
        prop_assert_eq!(served.raw_values, 0, "sealed span must not read raw");
        // Exact pooled order statistic at the documented rank.
        let rank = (q * (in_scope.len() as f64 - 1.0)).round() as usize;
        in_scope.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let exact = in_scope[rank];
        prop_assert!(
            (got - exact).abs() <= 0.0101 * exact.abs() + 1e-9,
            "q={}: sketch {} vs exact pooled {} over {} values",
            q, got, exact, in_scope.len()
        );
    }

    /// Duplicate delivery of any batch is rejected whole: the store
    /// equals the clean single-delivery store.
    #[test]
    fn duplicate_batches_do_not_change_the_store(
        vals in prop::collection::vec(0u16..500, 50..300),
        batch_records in 16usize..120,
        dup_at in 0usize..16,
    ) {
        let (batches, _) = node_stream(&vals, 0.0, batch_records);
        let span_s = 1 + (300 * 333) / 1000 + 1;
        let clean = ingest_interleaved(std::slice::from_ref(&batches), &[]);
        let mut noisy = FleetAggregator::new();
        let node = noisy.add_node("node00");
        for batch in &batches {
            noisy.ingest(node, batch);
            // Re-deliver an already-covered batch somewhere mid-stream.
            let replay = &batches[dup_at % batches.len()];
            if replay.seq <= batch.seq {
                let r = noisy.ingest(node, replay);
                prop_assert!(r.duplicate);
            }
        }
        let clean_fp = {
            let store = clean.store();
            let id = store.lookup("node00/m").unwrap();
            (
                store.raw(id).len(),
                store.buckets(id, SimDuration::from_secs(1)).count(),
                store.fleet_window_agg(
                    "m",
                    SimTime(span_s * 1000),
                    SimDuration(span_s * 1000),
                    WindowAgg::Sum,
                ),
            )
        };
        let noisy_fp = {
            let store = noisy.store();
            let id = store.lookup("node00/m").unwrap();
            (
                store.raw(id).len(),
                store.buckets(id, SimDuration::from_secs(1)).count(),
                store.fleet_window_agg(
                    "m",
                    SimTime(span_s * 1000),
                    SimDuration(span_s * 1000),
                    WindowAgg::Sum,
                ),
            )
        };
        prop_assert_eq!(clean_fp, noisy_fp);
        prop_assert!(noisy.counters(node).duplicate_batches > 0);
    }

    /// Graceful degradation is *exact*: for an arbitrary mix of live,
    /// stale (truncated stream), and silent (registered, never
    /// ingested) nodes, every covered fleet query — window aggregates,
    /// p99, top-k — returns precisely the answer a fleet containing
    /// only the contributing nodes would return, annotates coverage
    /// correctly, never counts a stale or silent node, and never
    /// panics (including the zero-contributors fleet).
    #[test]
    fn covered_queries_answer_exactly_over_the_contributing_subset(
        a in prop::collection::vec(0u16..1000, 64..200),
        b in prop::collection::vec(0u16..1000, 64..200),
        c in prop::collection::vec(0u16..1000, 64..200),
        d in prop::collection::vec(0u16..1000, 64..200),
        e in prop::collection::vec(0u16..1000, 64..200),
        states in prop::collection::vec(0usize..3, 5..6),
        batch_records in 16usize..200,
    ) {
        const LIVE: usize = 0;
        const STALE: usize = 1;
        const SILENT: usize = 2;
        // Equal stream lengths so every live node shares one high-water
        // mark; stale nodes ship only the first half of their stream.
        let n = [a.len(), b.len(), c.len(), d.len(), e.len()]
            .into_iter().min().unwrap();
        let inputs = [&a[..n], &b[..n], &c[..n], &d[..n], &e[..n]];
        let now = SimTime(1_000 + (n as u64 - 1) * 333 + 1);
        let stale_after = SimDuration((n as u64 / 4) * 333);

        // The full fleet, nodes in their chaos states.
        let mut full = FleetAggregator::new();
        let mut full_ids = Vec::new();
        for (k, vals) in inputs.iter().enumerate() {
            let node = full.add_node(&format!("node{k:02}"));
            full_ids.push(node);
            match states[k] {
                LIVE => {
                    let (batches, _) = node_stream(vals, (k as f64) * 100.0, batch_records);
                    for batch in &batches { full.ingest(node, batch); }
                }
                STALE => {
                    let (batches, _) =
                        node_stream(&vals[..n / 2], (k as f64) * 100.0, batch_records);
                    for batch in &batches { full.ingest(node, batch); }
                }
                _ => {} // silent: registered, never ingested
            }
        }
        // The reference fleet: only the contributing (live) nodes.
        let mut reference = FleetAggregator::new();
        let mut live_of = Vec::new(); // reference index -> full NodeId
        for (k, vals) in inputs.iter().enumerate() {
            if states[k] == LIVE {
                let node = reference.add_node(&format!("node{k:02}"));
                let (batches, _) = node_stream(vals, (k as f64) * 100.0, batch_records);
                for batch in &batches { reference.ingest(node, batch); }
                live_of.push((node, full_ids[k]));
            }
        }
        let n_live = live_of.len();
        let n_stale = states.iter().filter(|&&s| s == STALE).count();
        let n_silent = states.iter().filter(|&&s| s == SILENT).count();
        let window = SimDuration(now.0);

        for agg in [
            WindowAgg::Count,
            WindowAgg::Sum,
            WindowAgg::Min,
            WindowAgg::Max,
            WindowAgg::Mean,
            WindowAgg::Percentile(0.99),
        ] {
            let got = full.covered_window_agg("m", now, window, agg, stale_after);
            // Coverage metadata is exact.
            prop_assert_eq!(got.coverage.total, 5);
            prop_assert_eq!(got.coverage.contributing, n_live);
            prop_assert_eq!(got.coverage.stale, n_stale);
            prop_assert_eq!(got.coverage.silent, n_silent);
            prop_assert_eq!(got.coverage.excluded.len(), n_stale + n_silent);
            for &(node, why) in &got.coverage.excluded {
                let k = full_ids.iter().position(|&id| id == node).unwrap();
                prop_assert_ne!(states[k], LIVE, "live node excluded");
                let expect = if states[k] == STALE {
                    NodeLiveness::Stale
                } else {
                    NodeLiveness::Silent
                };
                prop_assert_eq!(why, expect);
            }
            // The answer equals the contributing-only fleet's, exactly.
            let want = reference.covered_window_agg("m", now, window, agg, stale_after);
            if n_live > 0 {
                prop_assert!(want.coverage.complete());
            }
            match (got.value, want.value) {
                (Some(g), Some(w)) => prop_assert!(
                    (g - w).abs() <= 1e-9 * w.abs().max(1.0),
                    "{agg:?}: {g} vs contributing-only {w}"
                ),
                (g, w) => prop_assert_eq!(g, w, "{:?}", agg),
            }
        }

        // Top-k ranking: same nodes (translated), same order, same values.
        for k in [2usize, usize::MAX] {
            let (got, _) = full.covered_top_nodes(
                "m", now, window, WindowAgg::Mean, k, Rank::Highest, stale_after,
            );
            let (want, _) = reference.covered_top_nodes(
                "m", now, window, WindowAgg::Mean, k, Rank::Highest, stale_after,
            );
            prop_assert_eq!(got.len(), want.len());
            for (&(gn, gv), &(wn, wv)) in got.iter().zip(want.iter()) {
                let translated = live_of.iter()
                    .find(|&&(r, _)| r == wn)
                    .map(|&(_, f)| f)
                    .unwrap();
                prop_assert_eq!(gn, translated, "ranking order diverged");
                prop_assert!((gv - wv).abs() <= 1e-9 * wv.abs().max(1.0));
                let state = states[full_ids.iter().position(|&id| id == gn).unwrap()];
                prop_assert_eq!(state, LIVE, "non-live node served as fresh");
            }
        }
    }

    /// Torn-write safety of the durable tier's append-log: truncating
    /// the wal at *any* byte boundary recovers to a consistent prefix —
    /// no partial batch is ever applied, the torn tail is counted and
    /// trimmed off the file, and ingest resumes to the full stream.
    #[test]
    fn torn_log_recovers_to_a_consistent_prefix_and_resumes(
        vals in prop::collection::vec(0u16..800, 50..300),
        batch_records in 16usize..120,
        cut_frac in 0.0f64..1.0,
    ) {
        static CASE: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "moda_fleet_torn_{}_{}",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let (batches, _) = node_stream(&vals, 0.0, batch_records);
        let span_s = 1 + (300 * 333) / 1000 + 1;

        // Write the whole stream through the durable tier; snapshot
        // cadence off so everything stays in one wal epoch.
        let mut fleet = DurableFleet::open(
            &dir,
            DurabilityConfig { snapshot_every_batches: u64::MAX },
        ).unwrap();
        let node = fleet.add_node("node00").unwrap();
        for batch in &batches {
            fleet.ingest(node, batch).unwrap();
        }
        drop(fleet);

        // Tear the log at an arbitrary byte offset.
        let wal = std::fs::read_dir(&dir).unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| {
                p.file_name().and_then(|n| n.to_str()).is_some_and(|n| n.starts_with("wal-"))
            })
            .expect("one wal file");
        let len = std::fs::metadata(&wal).unwrap().len();
        let cut = (len as f64 * cut_frac) as u64;
        let f = std::fs::OpenOptions::new().write(true).open(&wal).unwrap();
        f.set_len(cut).unwrap();
        f.sync_all().unwrap();
        drop(f);

        // Recovery: a clean frame prefix, the torn tail counted and
        // trimmed (a pure truncation never corrupts a CRC).
        let mut fleet = FleetStore::recover(&dir).unwrap();
        let rec = *fleet.recovery();
        prop_assert_eq!(rec.corrupt_frames, 0);
        prop_assert_eq!(
            std::fs::metadata(&wal).unwrap().len(),
            cut - rec.torn_tail_bytes,
            "recovery trims the wal to its last whole frame"
        );
        let applied = rec.replayed_batches as usize;
        prop_assert!(applied <= batches.len());
        if applied > 0 {
            // The recovered tier equals a clean ingest of exactly that
            // batch prefix — never a partially-applied batch.
            let reference = ingest_interleaved(&[batches[..applied].to_vec()], &[]);
            prop_assert_eq!(
                fingerprint(fleet.aggregator(), 1, span_s),
                fingerprint(&reference, 1, span_s)
            );
        } else {
            prop_assert_eq!(fleet.store().cardinality(), 0);
        }

        // Ingest resumes from the persisted cursor and reaches the
        // same end state as a never-torn run.
        let node = fleet.add_node("node00").unwrap();
        prop_assert_eq!(fleet.next_seq(node), applied as u64);
        for batch in &batches[applied..] {
            let report = fleet.ingest(node, batch).unwrap();
            prop_assert!(!report.duplicate);
        }
        drop(fleet);
        let fleet = FleetStore::recover(&dir).unwrap();
        let full_reference = ingest_interleaved(std::slice::from_ref(&batches), &[]);
        prop_assert_eq!(
            fingerprint(fleet.aggregator(), 1, span_s),
            fingerprint(&full_reference, 1, span_s)
        );
        drop(fleet);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
