//! Self-telemetry integration suite: the pipeline's own metrics ride
//! the pipeline.
//!
//! Three contracts:
//!
//! * **bit-exact round trip** (proptest) — arbitrary instrument
//!   states scraped into a node store, drained through the stock
//!   exporter, and ingested into the fleet answer every mergeable
//!   window aggregate bit-identically to the node-local store the
//!   scrape wrote (durations are integer ns ≤ 2^48, so ns → f64 →
//!   wire → fleet never rounds);
//! * **disabled means untouched** — a disabled [`Obs`] handle records
//!   nothing, scrapes nothing, and leaves a store byte-for-byte
//!   identical to an uninstrumented run;
//! * **selfstat over the wire** — the bounded slow-op log is drainable
//!   through the versioned query protocol (`REQ_SELF_STAT`), empty on
//!   an uninstrumented fleet, populated and then drained on an
//!   instrumented one.

use moda_fleet::{
    DurabilityConfig, DurableFleet, FleetAggregator, FleetClient, FleetListener, SelfScraper,
};
use moda_obs::Obs;
use moda_sim::{SimDuration, SimTime};
use moda_telemetry::export::MemorySink;
use moda_telemetry::{Exporter, Tsdb, WindowAgg};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

const TOKEN: &str = "selfobs-test-token";

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn work_dir(tag: &str) -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::SeqCst);
    std::env::temp_dir().join(format!("moda_selfobs_it_{tag}_{}_{n}", std::process::id()))
}

// ------------------------------------------------- bit-exact round trip

/// Arbitrary instrument workload: counters, gauges, and latency
/// recorders with pending durations.
#[derive(Debug, Clone)]
struct Workload {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    latencies: Vec<(String, Vec<u64>)>,
}

fn workload() -> impl Strategy<Value = Workload> {
    let name = "[a-z]{1,6}";
    let counters = prop::collection::vec((name, any::<u64>()), 0..4);
    let gauges = prop::collection::vec((name, -1e12f64..1e12), 0..4);
    // Durations bounded to 2^48 ns (~3 days): comfortably inside f64's
    // integer-exact range, far above anything a span can record.
    let lats = prop::collection::vec((name, prop::collection::vec(0u64..(1 << 48), 1..24)), 0..3);
    (counters, gauges, lats).prop_map(|(counters, gauges, latencies)| Workload {
        counters,
        gauges,
        latencies,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// scrape → export → fleet ingest answers every mergeable window
    /// aggregate bit-identically to the node-local store the scrape
    /// wrote — for arbitrary instrument states.
    #[test]
    fn self_metrics_round_trip_bit_exactly(w in workload()) {
        let obs = Obs::enabled();
        for (name, v) in &w.counters {
            obs.counter(&format!("c.{name}")).add(*v);
        }
        for (name, v) in &w.gauges {
            obs.gauge(&format!("g.{name}")).set(*v);
        }
        for (name, samples) in &w.latencies {
            let lat = obs.latency(&format!("l.{name}"));
            for ns in samples {
                lat.record_ns(*ns);
            }
        }

        let t = SimTime::from_secs(30);
        let mut db = Tsdb::new();
        let stats = obs.scrape_into(&mut db, t);
        prop_assert_eq!(stats.instruments, db.cardinality());

        let mut sink = MemorySink::new();
        Exporter::new().drain(&db, &mut sink).unwrap();
        let mut fleet = FleetAggregator::new();
        let node = fleet.add_node("svc");
        for batch in &sink.batches {
            let report = fleet.ingest(node, batch);
            prop_assert!(report.applied);
        }

        let span = SimDuration::from_secs(60);
        for id in 0..db.cardinality() as u32 {
            let id = moda_telemetry::MetricId(id);
            let name = db.meta(id).name.clone();
            prop_assert!(name.starts_with("__self/"));
            for agg in [WindowAgg::Count, WindowAgg::Sum, WindowAgg::Min, WindowAgg::Max] {
                let want = db.window_agg(id, t, span, agg);
                let got = fleet.store().fleet_window_agg(&name, t, span, agg);
                prop_assert_eq!(
                    got.map(f64::to_bits),
                    want.map(f64::to_bits),
                    "{} {:?}", &name, agg
                );
            }
        }
    }
}

// ------------------------------------------------- disabled means untouched

#[test]
fn disabled_obs_leaves_the_store_untouched() {
    // Identical workloads, one with a disabled handle spanning every
    // insert, one bare: the stores must be indistinguishable and the
    // handle must have recorded nothing.
    let run = |obs: Option<&Obs>| {
        let mut db = Tsdb::new();
        let id = db.register(moda_telemetry::MetricMeta::gauge(
            "m",
            "u",
            moda_telemetry::SourceDomain::Software,
        ));
        let lat = obs.map(|o| o.latency("tsdb.insert_ns"));
        for s in 0..500u64 {
            let _span = lat.as_ref().map(|l| l.start());
            db.insert(id, SimTime::from_secs(s), s as f64);
            if let Some(o) = obs {
                o.counter("inserts").add(1);
            }
        }
        if let Some(o) = obs {
            o.scrape_into(&mut db, SimTime::from_secs(500));
        }
        db
    };
    let obs = Obs::disabled();
    let instrumented = run(Some(&obs));
    let bare = run(None);

    assert!(obs.registry().is_none(), "disabled handle has no registry");
    assert!(obs.slow_ops(16).is_empty());
    assert_eq!(obs.counter_value("inserts"), None);
    assert_eq!(instrumented.cardinality(), bare.cardinality());
    assert_eq!(instrumented.total_inserts(), bare.total_inserts());
    assert_eq!(instrumented.self_inserts(), 0, "no scrape happened");
    let id = moda_telemetry::MetricId(0);
    assert_eq!(
        instrumented.latest_value(id).map(f64::to_bits),
        bare.latest_value(id).map(f64::to_bits)
    );
    let agg = instrumented.window_agg(
        id,
        SimTime::from_secs(499),
        SimDuration::from_secs(500),
        WindowAgg::Sum,
    );
    let want = bare.window_agg(
        id,
        SimTime::from_secs(499),
        SimDuration::from_secs(500),
        WindowAgg::Sum,
    );
    assert_eq!(agg.map(f64::to_bits), want.map(f64::to_bits));
}

// ------------------------------------------------- selfstat over the wire

#[test]
fn selfstat_is_empty_on_an_uninstrumented_fleet() {
    let dir = work_dir("plain");
    let _ = std::fs::remove_dir_all(&dir);
    let fleet = DurableFleet::open(&dir, DurabilityConfig::default()).unwrap();
    let listener = FleetListener::bind("127.0.0.1:0", Arc::new(Mutex::new(fleet)), TOKEN).unwrap();
    let addr = listener.local_addr().to_string();
    let mut client = FleetClient::connect(&addr, TOKEN).unwrap();
    let answer = client.selfstat(16, false).unwrap();
    assert!(answer.ops.is_empty(), "no obs attached, no spans");
    drop(client);
    let _ = listener.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn selfstat_drains_the_slow_op_log_over_the_wire() {
    let dir = work_dir("spans");
    let _ = std::fs::remove_dir_all(&dir);
    let mut fleet = DurableFleet::open(&dir, DurabilityConfig::default()).unwrap();
    let obs = Obs::enabled();
    let mut scraper = SelfScraper::attach(&mut fleet, obs.clone()).unwrap();
    // A recognizable span, long enough to stay near the top of the log.
    {
        let _span = obs.latency("test.slow_ns").start();
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    scraper.tick(&mut fleet, SimTime::from_secs(1)).unwrap();

    let listener = FleetListener::bind("127.0.0.1:0", Arc::new(Mutex::new(fleet)), TOKEN).unwrap();
    let addr = listener.local_addr().to_string();
    let mut client = FleetClient::connect(&addr, TOKEN).unwrap();

    let peek = client.selfstat(64, false).unwrap();
    assert!(
        peek.ops.iter().any(|op| op.name == "test.slow_ns"),
        "the slow span is listed: {:?}",
        peek.ops
    );
    // Slowest first.
    for pair in peek.ops.windows(2) {
        assert!(pair[0].duration_ns >= pair[1].duration_ns);
    }

    let drained = client.selfstat(64, true).unwrap();
    assert!(drained.ops.iter().any(|op| op.name == "test.slow_ns"));
    // The drain cleared the log; only spans recorded *after* it (the
    // serves of the drain + this request) can appear now.
    let after = client.selfstat(64, false).unwrap();
    assert!(
        after.ops.iter().all(|op| op.name != "test.slow_ns"),
        "drained spans do not reappear: {:?}",
        after.ops
    );

    drop(client);
    let _ = listener.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

// ------------------------------------------------- namespace end to end

#[test]
fn user_writes_into_the_reserved_namespace_bounce_everywhere() {
    // The typed-error registration paths are unit-tested in
    // moda-telemetry; this pins the end-to-end shape: nothing a user
    // inserts can masquerade as self-telemetry in the fleet.
    let mut db = Tsdb::new();
    assert!(db
        .try_register(moda_telemetry::MetricMeta::gauge(
            "__self/forged",
            "ns",
            moda_telemetry::SourceDomain::Software,
        ))
        .is_err());
    let obs = Obs::enabled();
    obs.counter("real").add(1);
    let stats = obs.scrape_into(&mut db, SimTime::from_secs(1));
    assert_eq!(stats.samples, 1);
    let id = db.lookup("__self/real").unwrap();
    // Even with the id in hand, the user insert path refuses.
    assert!(!db.insert(id, SimTime::from_secs(2), 999.0));
    assert!(db.try_insert(id, SimTime::from_secs(2), 999.0).is_err());
    assert_eq!(db.latest_value(id), Some(1.0), "scrape value undisturbed");
}
