//! §III.iv trust controls and §IV explainability, end to end.
//!
//! The paper's position is that autonomy is adoptable only when bounded
//! (extension caps, reservation protection) and explainable (audit
//! events, human notifications). These tests drive the full stack and
//! then inspect the control surfaces.

use moda::core::{AuditKind, AutonomyMode};
use moda::hpc::{workload, World, WorldConfig};
use moda::scheduler::ExtensionPolicy;
use moda::sim::{RngStreams, SimDuration, SimTime};
use moda::usecases::harness::{drive, shared, CampaignStats, SharedWorld};
use moda::usecases::scheduler_case::{build_loop, SchedulerLoopConfig};

fn stressed_world(seed: u64, policy: ExtensionPolicy) -> SharedWorld {
    let mut w = World::new(WorldConfig {
        nodes: 16,
        seed,
        policy,
        power_period: None,
        ..WorldConfig::default()
    });
    w.submit_campaign(workload::generate(
        &workload::WorkloadConfig {
            n_jobs: 50,
            mean_interarrival_s: 60.0,
            walltime_error: workload::WalltimeErrorModel {
                underestimate_frac: 0.4,
                ..workload::WalltimeErrorModel::default()
            },
            ..workload::WorkloadConfig::default()
        },
        &RngStreams::new(seed),
        0,
    ));
    shared(w)
}

#[test]
fn per_job_extension_caps_hold_under_pressure() {
    // A tight policy: at most 1 extension, at most 10 minutes.
    let policy = ExtensionPolicy {
        max_extensions_per_job: 1,
        max_total_extension: SimDuration::from_mins(10),
        respect_reservation: true,
    };
    let w = stressed_world(13, policy);
    let mut l = build_loop(w.clone(), SchedulerLoopConfig::default());
    drive(
        &w,
        SimDuration::from_secs(30),
        SimTime::from_hours(24 * 7),
        |t| {
            l.tick(t);
        },
    );
    let wb = w.borrow();
    for job in wb.sched.jobs() {
        assert!(
            job.extensions <= 1,
            "{}: {} extensions granted under a 1-extension policy",
            job.req.id,
            job.extensions
        );
        assert!(
            job.extended_total <= SimDuration::from_mins(10),
            "{}: budget exceeded: {:?}",
            job.req.id,
            job.extended_total
        );
    }
}

#[test]
fn reservation_protection_limits_queue_damage() {
    // With respect_reservation, the §III.iv harm metric (delay imposed
    // on the backfill reservation of the queue head) must stay zero.
    let w = stressed_world(13, ExtensionPolicy::default());
    let mut l = build_loop(w.clone(), SchedulerLoopConfig::default());
    drive(
        &w,
        SimDuration::from_secs(30),
        SimTime::from_hours(24 * 7),
        |t| {
            l.tick(t);
        },
    );
    let s = CampaignStats::collect(&w.borrow());
    assert!(s.ext_granted + s.ext_partial > 0, "loop must have acted");
    assert_eq!(
        s.reservation_delay_s, 0.0,
        "protected reservations must never be delayed"
    );

    // Ablation: the permissive policy trades that guarantee away.
    let w2 = stressed_world(13, ExtensionPolicy::permissive());
    let mut l2 = build_loop(w2.clone(), SchedulerLoopConfig::default());
    drive(
        &w2,
        SimDuration::from_secs(30),
        SimTime::from_hours(24 * 7),
        |t| {
            l2.tick(t);
        },
    );
    let s2 = CampaignStats::collect(&w2.borrow());
    assert!(
        s2.reservation_delay_s > 0.0,
        "the permissive ablation should show measurable reservation damage"
    );
}

#[test]
fn every_executed_action_is_audited_with_an_explanation() {
    let w = stressed_world(17, ExtensionPolicy::default());
    let mut l = build_loop(w.clone(), SchedulerLoopConfig::default());
    let mut executed = 0usize;
    drive(
        &w,
        SimDuration::from_secs(30),
        SimTime::from_hours(24 * 7),
        |t| {
            executed += l.tick(t).executed;
        },
    );
    assert!(executed > 0);
    let audit = l.audit();
    assert_eq!(
        audit.count(AuditKind::Executed),
        executed,
        "every execution must leave an audit event"
    );
    for ev in audit.events() {
        if ev.kind == AuditKind::Executed {
            assert!(
                !ev.detail.is_empty(),
                "executed actions must carry the planner's rationale"
            );
        }
    }
}

#[test]
fn human_on_the_loop_notifies_without_waiting() {
    let run = |mode: AutonomyMode| -> (CampaignStats, usize) {
        let w = stressed_world(19, ExtensionPolicy::default());
        let mut l = build_loop(
            w.clone(),
            SchedulerLoopConfig {
                mode,
                ..SchedulerLoopConfig::default()
            },
        );
        drive(
            &w,
            SimDuration::from_secs(30),
            SimTime::from_hours(24 * 7),
            |t| {
                l.tick(t);
            },
        );
        let stats = CampaignStats::collect(&w.borrow());
        let notes = l.audit().notifications().len();
        (stats, notes)
    };
    let (auto, auto_notes) = run(AutonomyMode::Autonomous);
    let (hotl, hotl_notes) = run(AutonomyMode::HumanOnTheLoop);
    // Same decisions, same outcomes — plus an explanation stream.
    assert_eq!(auto.timed_out, hotl.timed_out);
    assert_eq!(auto.ext_granted, hotl.ext_granted);
    assert_eq!(auto_notes, 0);
    assert!(hotl_notes > 0);
    // Each notification explains itself.
    // (Notifications were already consumed in `run`; re-run to inspect.)
    let w = stressed_world(19, ExtensionPolicy::default());
    let mut l = build_loop(
        w.clone(),
        SchedulerLoopConfig {
            mode: AutonomyMode::HumanOnTheLoop,
            ..SchedulerLoopConfig::default()
        },
    );
    drive(
        &w,
        SimDuration::from_secs(30),
        SimTime::from_hours(24 * 7),
        |t| {
            l.tick(t);
        },
    );
    // Human-ON-the-loop notifications come in two flavours: actions the
    // loop proceeded with, and low-confidence actions it withheld and
    // escalated. Both must carry explanations; executed ones must state
    // they proceeded without waiting.
    let notes = l.audit().notifications();
    assert!(notes.iter().any(|n| n.proceeded));
    for n in notes {
        assert!(!n.explanation.is_empty());
        if !n.proceeded {
            assert!(
                n.subject.contains("withheld"),
                "non-proceeding notifications must be escalations: {}",
                n.subject
            );
        }
    }
}

#[test]
fn human_in_the_loop_latency_degrades_outcomes_monotonically() {
    let kills = |mode: AutonomyMode| -> u64 {
        let w = stressed_world(23, ExtensionPolicy::default());
        let mut l = build_loop(
            w.clone(),
            SchedulerLoopConfig {
                mode,
                enable_checkpoint: false,
                ..SchedulerLoopConfig::default()
            },
        );
        drive(
            &w,
            SimDuration::from_secs(30),
            SimTime::from_hours(24 * 7),
            |t| {
                l.tick(t);
            },
        );
        let stats = CampaignStats::collect(&w.borrow());
        stats.timed_out
    };
    let autonomous = kills(AutonomyMode::Autonomous);
    let slow = kills(AutonomyMode::HumanInTheLoop {
        latency: SimDuration::from_hours(4),
    });
    let w = stressed_world(23, ExtensionPolicy::default());
    drive(
        &w,
        SimDuration::from_secs(30),
        SimTime::from_hours(24 * 7),
        |_| {},
    );
    let none = CampaignStats::collect(&w.borrow()).timed_out;
    assert!(
        autonomous < slow,
        "4-hour approvals must cost jobs: {autonomous} vs {slow}"
    );
    assert!(
        slow <= none,
        "even slow approvals shouldn't be worse than no loop: {slow} vs {none}"
    );
}
