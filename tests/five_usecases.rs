//! The paper's five §III use cases, end-to-end through the facade.
//!
//! Each test states the case's headline differential — the observable
//! improvement that would justify production deployment (§III.v) — and
//! verifies it on a seeded campaign.

use moda::core::AutonomyMode;
use moda::hpc::{workload, AppProfile, World, WorldConfig};
use moda::pfs::{OstId, PfsConfig};
use moda::scheduler::{JobId, JobRequest};
use moda::sim::{Dist, RngStreams, SimDuration, SimTime};
use moda::usecases::harness::{drive, shared, CampaignStats, SharedWorld};
use moda::usecases::{io_qos, maintenance, misconfig, ost, scheduler_case};

// ---------------------------------------------------------------- case 5

/// Scheduler (the initial case, Fig. 3): the loop converts walltime
/// kills into completions via extensions.
#[test]
fn scheduler_case_cuts_kills_and_resubmissions() {
    let run = |with_loop: bool| -> CampaignStats {
        let w = shared({
            let mut w = World::new(WorldConfig {
                nodes: 16,
                seed: 42,
                power_period: None,
                ..WorldConfig::default()
            });
            w.submit_campaign(workload::generate(
                &workload::WorkloadConfig {
                    n_jobs: 60,
                    mean_interarrival_s: 60.0,
                    walltime_error: workload::WalltimeErrorModel {
                        underestimate_frac: 0.3,
                        ..workload::WalltimeErrorModel::default()
                    },
                    ..workload::WorkloadConfig::default()
                },
                &RngStreams::new(42),
                0,
            ));
            w
        });
        let mut l = with_loop.then(|| {
            scheduler_case::build_loop(w.clone(), scheduler_case::SchedulerLoopConfig::default())
        });
        drive(
            &w,
            SimDuration::from_secs(30),
            SimTime::from_hours(24 * 7),
            |t| {
                if let Some(l) = l.as_mut() {
                    l.tick(t);
                }
            },
        );
        let stats = CampaignStats::collect(&w.borrow());
        stats
    };
    let base = run(false);
    let auto = run(true);
    assert!(
        base.timed_out > 0,
        "campaign must stress walltimes: {base:?}"
    );
    assert!(
        auto.timed_out < base.timed_out / 2,
        "loop should at least halve walltime kills: {} vs {}",
        auto.timed_out,
        base.timed_out
    );
    assert!(auto.resubmits < base.resubmits);
    assert!(auto.ext_granted + auto.ext_partial > 0);
    // §III.iv trust: extensions stay within the policy budget.
    assert!(auto.ext_time_granted_s <= 2.0 * 3600.0 * (auto.ext_granted + auto.ext_partial) as f64);
}

// ---------------------------------------------------------------- case 1

/// Maintenance: checkpoint-before-outage preserves work across a
/// short-notice window.
#[test]
fn maintenance_case_preserves_work_through_outage() {
    let long_jobs = || {
        let mut c = workload::AppClassSpec::cfd();
        c.steps = Dist::Uniform {
            lo: 2_000.0,
            hi: 4_000.0,
        };
        c.mean_step_s = Dist::Uniform { lo: 2.0, hi: 4.0 };
        workload::generate(
            &workload::WorkloadConfig {
                n_jobs: 20,
                mean_interarrival_s: 120.0,
                classes: vec![c],
                ..workload::WorkloadConfig::default()
            },
            &RngStreams::new(5),
            0,
        )
    };
    let run = |with_loop: bool| -> CampaignStats {
        let w = shared({
            let mut w = World::new(WorldConfig {
                nodes: 16,
                seed: 5,
                power_period: None,
                ..WorldConfig::default()
            });
            w.submit_campaign(long_jobs());
            w
        });
        let mut l =
            maintenance::build_loop(w.clone(), maintenance::MaintenanceLoopConfig::default());
        let announce = SimTime::from_secs(2 * 3600 + 50 * 60);
        drive(
            &w,
            SimDuration::from_secs(20),
            SimTime::from_hours(24 * 5),
            |t| {
                if t == announce {
                    w.borrow_mut()
                        .add_outage(SimTime::from_hours(3), SimTime::from_hours(5));
                }
                if with_loop {
                    l.tick(t);
                }
            },
        );
        let stats = CampaignStats::collect(&w.borrow());
        stats
    };
    let base = run(false);
    let auto = run(true);
    assert!(
        base.maintenance_killed > 0,
        "outage must interrupt running jobs: {base:?}"
    );
    assert_eq!(auto.maintenance_killed, base.maintenance_killed);
    assert!(auto.checkpoints >= auto.maintenance_killed);
    // Checkpointed resubmissions resume → less redone work.
    assert!(
        auto.steps_completed < base.steps_completed,
        "checkpoints must save redone steps: {} vs {}",
        auto.steps_completed,
        base.steps_completed
    );
    assert_eq!(auto.roots_completed, auto.roots_total);
}

// ---------------------------------------------------------------- case 2

/// I/O QoS: adaptive token rates relieve a starved tenant without
/// touching a satisfied one.
#[test]
fn io_qos_case_relieves_starved_tenant() {
    let io_job = |id: u64, user: &str, io_mb: f64| -> (JobRequest, AppProfile) {
        (
            JobRequest {
                id: JobId(id),
                user: user.into(),
                app_class: "io".into(),
                submit: SimTime::ZERO,
                nodes: 1,
                walltime: SimDuration::from_hours(12),
            },
            AppProfile {
                app_class: "io".into(),
                total_steps: 300,
                mean_step_s: 2.0,
                step_cv: 0.05,
                io_every: 2,
                io_mb,
                stripe: 1,
                phase_change: None,
                checkpoint_cost_s: 5.0,
                misconfig: None,
                scale: 1.0,
                cores_per_rank: 8,
            },
        )
    };
    let w = shared({
        let mut w = World::new(WorldConfig {
            nodes: 8,
            seed: 2,
            power_period: None,
            ..WorldConfig::default()
        });
        w.register_qos("starved", 10.0, 100.0);
        w.register_qos("satisfied", 200.0, 400.0);
        w.submit_campaign(vec![
            io_job(0, "starved", 100.0),
            io_job(1, "satisfied", 50.0),
        ]);
        w
    });
    let mut l = io_qos::build_loop(w.clone(), io_qos::QosLoopConfig::default());
    drive(
        &w,
        SimDuration::from_secs(30),
        SimTime::from_hours(8),
        |t| {
            l.tick(t);
        },
    );
    let starved_rate = w.borrow().qos.rate("starved").unwrap();
    let satisfied_rate = w.borrow().qos.rate("satisfied").unwrap();
    assert!(
        starved_rate > 20.0,
        "starved tenant rate must be raised: {starved_rate}"
    );
    assert_eq!(satisfied_rate, 200.0, "satisfied tenant must be left alone");
}

// ---------------------------------------------------------------- case 3

/// OST: CUSUM detection + reopen restores completion time under a
/// degraded storage target.
#[test]
fn ost_case_recovers_from_degraded_target() {
    let io_job = |id: u64| -> (JobRequest, AppProfile) {
        (
            JobRequest {
                id: JobId(id),
                user: "u".into(),
                app_class: "io".into(),
                submit: SimTime::ZERO,
                nodes: 1,
                walltime: SimDuration::from_hours(12),
            },
            AppProfile {
                app_class: "io".into(),
                total_steps: 1200,
                mean_step_s: 2.0,
                step_cv: 0.05,
                io_every: 2,
                io_mb: 100.0,
                stripe: 1,
                phase_change: None,
                checkpoint_cost_s: 5.0,
                misconfig: None,
                scale: 1.0,
                cores_per_rank: 8,
            },
        )
    };
    let run = |with_loop: bool| -> f64 {
        let w = shared({
            let mut w = World::new(WorldConfig {
                nodes: 4,
                seed: 3,
                power_period: None,
                pfs: PfsConfig {
                    num_osts: 4,
                    ost_bandwidth: 500.0,
                    default_stripe: 1,
                    base_latency_ms: 1,
                },
                ..WorldConfig::default()
            });
            w.submit_campaign(vec![io_job(0), io_job(1), io_job(2)]);
            w
        });
        let mut l = ost::build_loop(w.clone(), ost::OstLoopConfig::default());
        drive(
            &w,
            SimDuration::from_secs(10),
            SimTime::from_hours(12),
            |t| {
                if t == SimTime::from_secs(600) {
                    w.borrow_mut().pfs.set_ost_health(OstId(0), 0.02);
                }
                if with_loop {
                    l.tick(t);
                }
            },
        );
        let end = w.borrow().last_progress().as_secs_f64();
        end
    };
    let with_loop = run(true);
    let without = run(false);
    assert!(
        with_loop < without * 0.6,
        "reopening away from the degraded OST must restore throughput: \
         {with_loop:.0}s (loop) vs {without:.0}s (none)"
    );
}

// ---------------------------------------------------------------- case 4

/// Misconfiguration: detect, then inform or correct — corrections remove
/// the slowdown, inform-only leaves an audit trail for the user.
#[test]
fn misconfig_case_detects_and_corrects() {
    let run = |auto_correct: bool| -> (u64, f64, usize) {
        let jobs = workload::generate(
            &workload::WorkloadConfig {
                n_jobs: 40,
                mean_interarrival_s: 60.0,
                misconfig_rate: 0.25,
                ..workload::WorkloadConfig::default()
            },
            &RngStreams::new(9),
            0,
        );
        let w: SharedWorld = shared({
            let mut w = World::new(WorldConfig {
                nodes: 16,
                seed: 9,
                power_period: None,
                ..WorldConfig::default()
            });
            w.submit_campaign(jobs);
            w
        });
        let mut l = misconfig::build_loop(
            w.clone(),
            misconfig::MisconfigLoopConfig {
                auto_correct,
                ..misconfig::MisconfigLoopConfig::default()
            },
        )
        .with_mode(AutonomyMode::HumanOnTheLoop);
        drive(
            &w,
            SimDuration::from_secs(30),
            SimTime::from_hours(24 * 4),
            |t| {
                l.tick(t);
            },
        );
        let corrections = w.borrow().metrics.corrections;
        let makespan = w.borrow().last_progress().as_secs_f64();
        let notifications = l.audit().notifications().len();
        (corrections, makespan, notifications)
    };
    let (corr_auto, makespan_auto, _) = run(true);
    let (corr_inform, makespan_inform, notes_inform) = run(false);
    assert!(corr_auto > 0, "auto-correct must fix something");
    assert_eq!(corr_inform, 0, "inform-only must not touch jobs");
    assert!(
        notes_inform > 0,
        "inform-only must notify users (human-on-the-loop)"
    );
    assert!(
        makespan_auto <= makespan_inform,
        "corrections must not slow the campaign: {makespan_auto:.0}s vs {makespan_inform:.0}s"
    );
}
