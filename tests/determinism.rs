//! Determinism guarantees across the full stack.
//!
//! Every experiment in the repository claims bit-for-bit reproducibility
//! from a root seed (DESIGN.md §5). These tests hold the whole facade to
//! that claim — world, scheduler, filesystem, telemetry, and the
//! autonomy loop together.

use moda::hpc::{workload, World, WorldConfig};
use moda::scheduler::ExtensionPolicy;
use moda::sim::{RngStreams, SimDuration, SimTime};
use moda::usecases::harness::{drive, shared, CampaignStats, SharedWorld};
use moda::usecases::scheduler_case::{build_loop, SchedulerLoopConfig};

fn campaign_world(seed: u64) -> SharedWorld {
    let mut w = World::new(WorldConfig {
        nodes: 16,
        seed,
        policy: ExtensionPolicy::default(),
        ..WorldConfig::default()
    });
    w.submit_campaign(workload::generate(
        &workload::WorkloadConfig {
            n_jobs: 60,
            mean_interarrival_s: 60.0,
            ..workload::WorkloadConfig::default()
        },
        &RngStreams::new(seed),
        0,
    ));
    shared(w)
}

fn run(seed: u64, with_loop: bool) -> CampaignStats {
    let w = campaign_world(seed);
    let mut l = with_loop.then(|| build_loop(w.clone(), SchedulerLoopConfig::default()));
    drive(
        &w,
        SimDuration::from_secs(30),
        SimTime::from_hours(24 * 7),
        |t| {
            if let Some(l) = l.as_mut() {
                l.tick(t);
            }
        },
    );
    let stats = CampaignStats::collect(&w.borrow());
    stats
}

#[test]
fn same_seed_same_outcome_without_loop() {
    let a = run(7, false);
    let b = run(7, false);
    assert_eq!(a, b, "baseline campaign must be bit-reproducible");
}

#[test]
fn same_seed_same_outcome_with_loop() {
    let a = run(7, true);
    let b = run(7, true);
    assert_eq!(a, b, "loop-driven campaign must be bit-reproducible");
}

#[test]
fn different_seeds_differ() {
    let a = run(7, false);
    let b = run(8, false);
    // Makespan is continuous-valued: collisions across seeds would be
    // astronomically unlikely unless the seed were being ignored.
    assert_ne!(
        a.makespan_s, b.makespan_s,
        "different seeds must produce different campaigns"
    );
}

#[test]
fn telemetry_stream_is_reproducible() {
    let collect = |seed: u64| -> String {
        let w = campaign_world(seed);
        drive(
            &w,
            SimDuration::from_secs(30),
            SimTime::from_hours(24),
            |_| {},
        );
        let wb = w.borrow();
        moda::telemetry::export::snapshot_csv(&wb.tsdb)
    };
    assert_eq!(collect(3), collect(3));
    assert_ne!(collect(3), collect(4));
}

#[test]
fn loop_knowledge_is_reproducible() {
    let knowledge_json = |seed: u64| -> String {
        let w = campaign_world(seed);
        let mut l = build_loop(w.clone(), SchedulerLoopConfig::default());
        drive(
            &w,
            SimDuration::from_secs(30),
            SimTime::from_hours(24 * 7),
            |t| {
                l.tick(t);
            },
        );
        serde_json::to_string(l.knowledge()).expect("knowledge serializes")
    };
    assert_eq!(knowledge_json(11), knowledge_json(11));
}
