//! Wire-format compatibility gate: a committed golden
//! `export-wire-v1.1` byte stream (`tests/golden/export_wire_v1_1.bin`)
//! that the *current* reader must decode, record for record. This is
//! the test behind the `wire-compat` CI job.
//!
//! What it pins (see `docs/EXPORT_FORMAT.md`, binary framing):
//!
//! * the frame envelope — `[len u32 LE][tag u8][payload][crc32 u32 LE]`;
//! * the batch and record encodings of every v1.1 kind
//!   (meta / sample / bucket / sketch / chunk);
//! * the **additive-kinds rule**: the golden stream deliberately
//!   carries one record of an unknown future kind, and the reader must
//!   skip it via its length prefix (counting it, losing nothing else);
//! * writer stability — re-encoding the decoded batches reproduces the
//!   committed bytes bit-for-bit.
//!
//! Any intentional format change must both update
//! `docs/EXPORT_FORMAT.md` *and* regenerate the dataset:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test --test wire_golden
//! ```

use moda::sim::{SimDuration, SimTime};
use moda::telemetry::export::{
    decode_batch, encode_batch, encode_record, read_frame, write_frame, ExportRecord, FrameEnd,
    MemorySink,
};
use moda::telemetry::{
    Exporter, MetricId, MetricMeta, RollupConfig, RollupTier, SourceDomain, Tsdb,
};

const GOLDEN_PATH: &str = "tests/golden/export_wire_v1_1.bin";
/// Frame tag carrying one encoded batch (the transport's `BATCH`).
const TAG_BATCH: u8 = 3;
/// A record kind v1.1 does not define — receivers must skip it.
const UNKNOWN_KIND: u8 = 9;

/// The deterministic dataset behind the golden stream: one sketched
/// gauge and one plain counter, enough samples to seal rollup buckets,
/// sketch columns, and whole raw chunks — every v1.1 record kind.
fn golden_batches() -> Vec<moda::telemetry::export::ExportBatch> {
    let mut db = Tsdb::with_retention(1 << 12);
    let g = db.register(MetricMeta::gauge(
        "golden.power_w",
        "W",
        SourceDomain::Hardware,
    ));
    let c = db.register(MetricMeta::counter(
        "golden.jobs",
        "jobs",
        SourceDomain::Software,
    ));
    db.enable_rollups(
        g,
        &RollupConfig::new(vec![RollupTier::new(SimDuration::from_secs(10), 64)]).with_sketches(),
    );
    for s in 0..700u64 {
        db.insert(g, SimTime::from_secs(s), 80.0 + ((s * 31) % 97) as f64);
        db.insert(c, SimTime::from_secs(s), (s * 3) as f64);
    }
    let mut sink = MemorySink::new();
    Exporter::new()
        .with_batch_records(64)
        .drain(&db, &mut sink)
        .unwrap();
    sink.batches
}

/// The full golden byte stream: every dataset batch as a `BATCH`
/// frame, then one hand-built frame whose batch carries a known sample
/// followed by an unknown-kind record.
fn golden_bytes() -> Vec<u8> {
    let batches = golden_batches();
    let mut out = Vec::new();
    for batch in &batches {
        let mut payload = Vec::new();
        encode_batch(batch, &mut payload);
        write_frame(&mut out, TAG_BATCH, &payload).unwrap();
    }
    let mut payload = Vec::new();
    payload.extend_from_slice(&(batches.len() as u64).to_le_bytes());
    payload.extend_from_slice(&2u32.to_le_bytes());
    encode_record(
        &ExportRecord::Sample {
            id: MetricId(0),
            t: SimTime(123_456),
            value: 42.5,
        },
        &mut payload,
    );
    payload.push(UNKNOWN_KIND);
    payload.extend_from_slice(&7u32.to_le_bytes());
    payload.extend_from_slice(b"future!");
    write_frame(&mut out, TAG_BATCH, &payload).unwrap();
    out
}

#[test]
fn golden_wire_stream_decodes_and_matches_the_spec() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(GOLDEN_PATH);
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, golden_bytes()).unwrap();
    }
    let bytes = std::fs::read(&path).unwrap_or_else(|e| {
        panic!("{GOLDEN_PATH} unreadable ({e}); generate it with GOLDEN_REGEN=1")
    });

    // Writer stability: regenerating the stream from the deterministic
    // dataset reproduces the committed bytes bit-for-bit.
    assert_eq!(
        bytes,
        golden_bytes(),
        "current writer drifted from the committed golden stream; if the \
         change is an intentional spec revision, update docs/EXPORT_FORMAT.md \
         and regenerate with GOLDEN_REGEN=1"
    );

    // Reader compatibility: walk the committed frames with the current
    // decoder and account for every record.
    let reference = golden_batches();
    let mut r = &bytes[..];
    let mut frames = Vec::new();
    loop {
        match read_frame(&mut r).expect("golden read never io-errors") {
            Ok((tag, payload)) => {
                assert_eq!(tag, TAG_BATCH);
                frames.push(payload);
            }
            Err(end) => {
                assert_eq!(
                    end,
                    FrameEnd::Clean,
                    "golden stream ends on a frame boundary"
                );
                break;
            }
        }
    }
    assert_eq!(frames.len(), reference.len() + 1);

    let (mut metas, mut samples, mut buckets, mut sketches, mut chunks) = (0, 0, 0, 0, 0);
    for (i, payload) in frames[..reference.len()].iter().enumerate() {
        let (batch, skipped) = decode_batch(payload).expect("v1.1 frame decodes");
        assert_eq!(skipped, 0, "no unknown kinds in the dataset frames");
        assert_eq!(batch.seq, i as u64);
        for rec in &batch.records {
            match rec {
                ExportRecord::Meta { .. } => metas += 1,
                ExportRecord::Sample { .. } => samples += 1,
                ExportRecord::Bucket { .. } => buckets += 1,
                ExportRecord::Sketch { .. } => sketches += 1,
                ExportRecord::Chunk { .. } => chunks += 1,
            }
        }
        // Round-trip identity per frame.
        let mut again = Vec::new();
        encode_batch(&batch, &mut again);
        assert_eq!(&again, payload);
    }
    assert_eq!(metas, 2, "both registry entries ship");
    assert!(
        samples > 0 && buckets > 0 && sketches > 0 && chunks > 0,
        "every v1.1 record kind present: {samples} samples, {buckets} buckets, \
         {sketches} sketch columns, {chunks} chunks"
    );

    // The additive-kinds rule: the final frame's unknown record is
    // skipped and counted; the known record around it survives intact.
    let (tail, skipped) =
        decode_batch(frames.last().unwrap()).expect("unknown kinds are skippable");
    assert_eq!(skipped, 1);
    assert_eq!(tail.seq, reference.len() as u64);
    assert_eq!(tail.records.len(), 1);
    match &tail.records[0] {
        ExportRecord::Sample { id, t, value } => {
            assert_eq!(*id, MetricId(0));
            assert_eq!(*t, SimTime(123_456));
            assert_eq!(*value, 42.5);
        }
        other => panic!("expected the known sample, got {other:?}"),
    }
}
