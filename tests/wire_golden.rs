//! Wire-format compatibility gate: committed golden byte streams that
//! the *current* readers must decode, record for record. This is the
//! test behind the `wire-compat` CI job.
//!
//! Two datasets:
//!
//! * `tests/golden/export_wire_v1_1.bin` — the `export-wire-v1.1`
//!   ingest stream (see `docs/EXPORT_FORMAT.md`, binary framing):
//!   the frame envelope `[len u32 LE][tag u8][payload][crc32 u32 LE]`,
//!   the batch and record encodings of every v1.1 kind
//!   (meta / sample / bucket / sketch / chunk), and the
//!   **additive-kinds rule** — the stream deliberately carries one
//!   record of an unknown future kind, and the reader must skip it via
//!   its length prefix (counting it, losing nothing else);
//! * `tests/golden/query_wire_v1.bin` — a recorded query-protocol v1
//!   exchange (see `docs/FLEET_SERVICE.md`, query protocol): one
//!   `QUERY`/`QUERY_RESP` frame pair per request kind over a
//!   deterministic two-node fleet, plus one typed refusal — pinning
//!   the request and response encodings, the request-id convention,
//!   and the planner answers themselves.
//!
//! Both tests also pin writer stability — re-encoding the decoded
//! values reproduces the committed bytes bit-for-bit.
//!
//! Any intentional format change must both update the docs *and*
//! regenerate the dataset:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test --test wire_golden
//! ```

use moda::fleet::query::{
    decode_request, decode_response, encode_request, encode_response, execute,
};
use moda::fleet::{FleetAggregator, QueryRequest, QueryResponse, Rank};
use moda::sim::{SimDuration, SimTime};
use moda::telemetry::export::{
    decode_batch, encode_batch, encode_record, frame_tag, read_frame, write_frame, ExportRecord,
    FrameEnd, MemorySink,
};
use moda::telemetry::{
    Exporter, MetricId, MetricMeta, RollupConfig, RollupTier, SourceDomain, Tsdb, WindowAgg,
};

const GOLDEN_PATH: &str = "tests/golden/export_wire_v1_1.bin";
const QUERY_GOLDEN_PATH: &str = "tests/golden/query_wire_v1.bin";
/// Frame tag carrying one encoded batch (the transport's `BATCH`).
const TAG_BATCH: u8 = 3;
/// A record kind v1.1 does not define — receivers must skip it.
const UNKNOWN_KIND: u8 = 9;

/// The deterministic dataset behind the golden stream: one sketched
/// gauge and one plain counter, enough samples to seal rollup buckets,
/// sketch columns, and whole raw chunks — every v1.1 record kind.
fn golden_batches() -> Vec<moda::telemetry::export::ExportBatch> {
    let mut db = Tsdb::with_retention(1 << 12);
    let g = db.register(MetricMeta::gauge(
        "golden.power_w",
        "W",
        SourceDomain::Hardware,
    ));
    let c = db.register(MetricMeta::counter(
        "golden.jobs",
        "jobs",
        SourceDomain::Software,
    ));
    db.enable_rollups(
        g,
        &RollupConfig::new(vec![RollupTier::new(SimDuration::from_secs(10), 64)]).with_sketches(),
    );
    for s in 0..700u64 {
        db.insert(g, SimTime::from_secs(s), 80.0 + ((s * 31) % 97) as f64);
        db.insert(c, SimTime::from_secs(s), (s * 3) as f64);
    }
    let mut sink = MemorySink::new();
    Exporter::new()
        .with_batch_records(64)
        .drain(&db, &mut sink)
        .unwrap();
    sink.batches
}

/// The full golden byte stream: every dataset batch as a `BATCH`
/// frame, then one hand-built frame whose batch carries a known sample
/// followed by an unknown-kind record.
fn golden_bytes() -> Vec<u8> {
    let batches = golden_batches();
    let mut out = Vec::new();
    for batch in &batches {
        let mut payload = Vec::new();
        encode_batch(batch, &mut payload);
        write_frame(&mut out, TAG_BATCH, &payload).unwrap();
    }
    let mut payload = Vec::new();
    payload.extend_from_slice(&(batches.len() as u64).to_le_bytes());
    payload.extend_from_slice(&2u32.to_le_bytes());
    encode_record(
        &ExportRecord::Sample {
            id: MetricId(0),
            t: SimTime(123_456),
            value: 42.5,
        },
        &mut payload,
    );
    payload.push(UNKNOWN_KIND);
    payload.extend_from_slice(&7u32.to_le_bytes());
    payload.extend_from_slice(b"future!");
    write_frame(&mut out, TAG_BATCH, &payload).unwrap();
    out
}

#[test]
fn golden_wire_stream_decodes_and_matches_the_spec() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(GOLDEN_PATH);
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, golden_bytes()).unwrap();
    }
    let bytes = std::fs::read(&path).unwrap_or_else(|e| {
        panic!("{GOLDEN_PATH} unreadable ({e}); generate it with GOLDEN_REGEN=1")
    });

    // Writer stability: regenerating the stream from the deterministic
    // dataset reproduces the committed bytes bit-for-bit.
    assert_eq!(
        bytes,
        golden_bytes(),
        "current writer drifted from the committed golden stream; if the \
         change is an intentional spec revision, update docs/EXPORT_FORMAT.md \
         and regenerate with GOLDEN_REGEN=1"
    );

    // Reader compatibility: walk the committed frames with the current
    // decoder and account for every record.
    let reference = golden_batches();
    let mut r = &bytes[..];
    let mut frames = Vec::new();
    loop {
        match read_frame(&mut r).expect("golden read never io-errors") {
            Ok((tag, payload)) => {
                assert_eq!(tag, TAG_BATCH);
                frames.push(payload);
            }
            Err(end) => {
                assert_eq!(
                    end,
                    FrameEnd::Clean,
                    "golden stream ends on a frame boundary"
                );
                break;
            }
        }
    }
    assert_eq!(frames.len(), reference.len() + 1);

    let (mut metas, mut samples, mut buckets, mut sketches, mut chunks) = (0, 0, 0, 0, 0);
    for (i, payload) in frames[..reference.len()].iter().enumerate() {
        let (batch, skipped) = decode_batch(payload).expect("v1.1 frame decodes");
        assert_eq!(skipped, 0, "no unknown kinds in the dataset frames");
        assert_eq!(batch.seq, i as u64);
        for rec in &batch.records {
            match rec {
                ExportRecord::Meta { .. } => metas += 1,
                ExportRecord::Sample { .. } => samples += 1,
                ExportRecord::Bucket { .. } => buckets += 1,
                ExportRecord::Sketch { .. } => sketches += 1,
                ExportRecord::Chunk { .. } => chunks += 1,
            }
        }
        // Round-trip identity per frame.
        let mut again = Vec::new();
        encode_batch(&batch, &mut again);
        assert_eq!(&again, payload);
    }
    assert_eq!(metas, 2, "both registry entries ship");
    assert!(
        samples > 0 && buckets > 0 && sketches > 0 && chunks > 0,
        "every v1.1 record kind present: {samples} samples, {buckets} buckets, \
         {sketches} sketch columns, {chunks} chunks"
    );

    // The additive-kinds rule: the final frame's unknown record is
    // skipped and counted; the known record around it survives intact.
    let (tail, skipped) =
        decode_batch(frames.last().unwrap()).expect("unknown kinds are skippable");
    assert_eq!(skipped, 1);
    assert_eq!(tail.seq, reference.len() as u64);
    assert_eq!(tail.records.len(), 1);
    match &tail.records[0] {
        ExportRecord::Sample { id, t, value } => {
            assert_eq!(*id, MetricId(0));
            assert_eq!(*t, SimTime(123_456));
            assert_eq!(*value, 42.5);
        }
        other => panic!("expected the known sample, got {other:?}"),
    }
}

// ------------------------------------------------------ query protocol

/// The deterministic fleet behind the query-exchange golden stream:
/// two nodes exporting a sketched gauge `m` with different offsets and
/// stream lengths (so health classifies one node stale under the
/// recorded bound), ingested through the real wire batches.
fn golden_fleet() -> FleetAggregator {
    let mut agg = FleetAggregator::new();
    for (k, samples) in [(0u64, 700usize), (1, 500)] {
        let mut db = Tsdb::with_retention(1 << 12);
        let id = db.register(MetricMeta::gauge("m", "u", SourceDomain::Hardware));
        db.enable_rollups(
            id,
            &RollupConfig::new(vec![RollupTier::new(SimDuration::from_secs(10), 64)])
                .with_sketches(),
        );
        for s in 0..samples as u64 {
            db.insert(
                id,
                SimTime::from_secs(1 + s),
                1000.0 * k as f64 + ((s * 31) % 97) as f64,
            );
        }
        let mut sink = MemorySink::new();
        Exporter::new()
            .with_batch_records(64)
            .drain(&db, &mut sink)
            .unwrap();
        let node = agg.add_node(&format!("node{k:02}"));
        for batch in &sink.batches {
            agg.ingest(node, batch);
        }
    }
    agg
}

/// One request of every kind, plus one the server must refuse (a
/// fleet-wide `Last`) — the refusal's reason code and detail are part
/// of the recorded contract.
fn golden_requests() -> Vec<QueryRequest> {
    let now = SimTime::from_secs(701);
    let window = SimDuration::from_secs(701);
    let stale_after = SimDuration::from_secs(120);
    let metric = "m".to_string();
    vec![
        QueryRequest::WindowAgg {
            metric: metric.clone(),
            now,
            window,
            agg: WindowAgg::Percentile(0.99),
        },
        QueryRequest::TopNodes {
            metric: metric.clone(),
            now,
            window,
            agg: WindowAgg::Mean,
            k: 2,
            rank: Rank::Highest,
        },
        QueryRequest::Health { now, stale_after },
        QueryRequest::CoveredWindowAgg {
            metric: metric.clone(),
            now,
            window,
            agg: WindowAgg::Sum,
            stale_after,
        },
        QueryRequest::CoveredTopNodes {
            metric: metric.clone(),
            now,
            window,
            agg: WindowAgg::Percentile(0.5),
            k: 2,
            rank: Rank::Lowest,
            stale_after,
        },
        QueryRequest::Metrics,
        QueryRequest::WindowAgg {
            metric,
            now,
            window,
            agg: WindowAgg::Last,
        },
    ]
}

/// The recorded exchange: alternating `QUERY` / `QUERY_RESP` frames,
/// request ids counting up from 1, each response computed by the
/// current planner on the deterministic fleet.
fn golden_query_bytes() -> Vec<u8> {
    let fleet = golden_fleet();
    let mut out = Vec::new();
    for (i, req) in golden_requests().iter().enumerate() {
        let id = (i + 1) as u64;
        let mut payload = id.to_le_bytes().to_vec();
        encode_request(req, &mut payload);
        write_frame(&mut out, frame_tag::QUERY, &payload).unwrap();

        let mut payload = id.to_le_bytes().to_vec();
        encode_response(&execute(&fleet, req), &mut payload);
        write_frame(&mut out, frame_tag::QUERY_RESP, &payload).unwrap();
    }
    out
}

#[test]
fn golden_query_exchange_decodes_and_matches_the_planner() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(QUERY_GOLDEN_PATH);
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, golden_query_bytes()).unwrap();
    }
    let bytes = std::fs::read(&path).unwrap_or_else(|e| {
        panic!("{QUERY_GOLDEN_PATH} unreadable ({e}); generate it with GOLDEN_REGEN=1")
    });

    // Writer stability: the current codec + planner reproduce the
    // committed exchange bit-for-bit.
    assert_eq!(
        bytes,
        golden_query_bytes(),
        "current query codec or planner drifted from the committed golden \
         exchange; if the change is an intentional protocol revision, update \
         docs/FLEET_SERVICE.md and regenerate with GOLDEN_REGEN=1"
    );

    // Reader compatibility: walk the committed frames with the current
    // decoders and re-derive every answer.
    let fleet = golden_fleet();
    let requests = golden_requests();
    let mut r = &bytes[..];
    let mut pairs = Vec::new();
    loop {
        let (tag, q) = match read_frame(&mut r).expect("golden read never io-errors") {
            Ok(frame) => frame,
            Err(end) => {
                assert_eq!(end, FrameEnd::Clean, "stream ends on a frame boundary");
                break;
            }
        };
        assert_eq!(tag, frame_tag::QUERY);
        let (tag, resp) = read_frame(&mut r)
            .expect("golden read never io-errors")
            .expect("every request frame is followed by its response");
        assert_eq!(tag, frame_tag::QUERY_RESP);
        pairs.push((q, resp));
    }
    assert_eq!(pairs.len(), requests.len());

    for (i, ((q, resp), want_req)) in pairs.iter().zip(&requests).enumerate() {
        let id = (i + 1) as u64;
        assert_eq!(u64::from_le_bytes(q[..8].try_into().unwrap()), id);
        assert_eq!(u64::from_le_bytes(resp[..8].try_into().unwrap()), id);

        // The original request re-encodes identically (encoding is
        // total — even the refused request has stable bytes).
        let mut again = id.to_le_bytes().to_vec();
        encode_request(want_req, &mut again);
        assert_eq!(&again, q, "request {i} re-encode identity");

        let answer = decode_response(&resp[8..]).expect("committed response decodes");
        match decode_request(&q[8..]) {
            // Request decodes to the original; the recorded response
            // matches the current planner's answer on the same fleet.
            Ok(req) => {
                assert_eq!(&req, want_req);
                assert_eq!(answer, execute(&fleet, &req), "response {i} planner match");
            }
            // The server-side refusal path: a request `decode_request`
            // rejects draws exactly the recorded typed error.
            Err(e) => {
                assert_eq!(answer, QueryResponse::Error(e), "refusal {i} match");
            }
        }
        let mut again = id.to_le_bytes().to_vec();
        encode_response(&answer, &mut again);
        assert_eq!(&again, resp, "response {i} re-encode identity");
    }

    // The recorded refusal really is a refusal (fleet-wide `Last`).
    let last = decode_response(&pairs.last().unwrap().1[8..]).unwrap();
    match last {
        QueryResponse::Error(e) => {
            assert_eq!(e.code, moda::fleet::QueryErrorCode::UnsupportedAggregate);
        }
        other => panic!("expected the recorded refusal, got {other:?}"),
    }
}
