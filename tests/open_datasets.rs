//! §III.iii open datasets: exportability of everything a site would
//! release — telemetry series and the Knowledge base — and lossless
//! round-trips for the structured forms.

use moda::core::knowledge::{Knowledge, OutcomeRecord, RunRecord};
use moda::core::Confidence;
use moda::hpc::{workload, World, WorldConfig};
use moda::sim::{RngStreams, SimDuration, SimTime};
use moda::telemetry::export;
use moda::usecases::harness::{drive, shared};
use moda::usecases::scheduler_case::{build_loop, SchedulerLoopConfig};
use std::collections::BTreeMap;

fn run_small_campaign(seed: u64) -> (moda::usecases::harness::SharedWorld, Knowledge) {
    let w = shared({
        let mut w = World::new(WorldConfig {
            nodes: 8,
            seed,
            ..WorldConfig::default()
        });
        w.submit_campaign(workload::generate(
            &workload::WorkloadConfig {
                n_jobs: 20,
                mean_interarrival_s: 60.0,
                ..workload::WorkloadConfig::default()
            },
            &RngStreams::new(seed),
            0,
        ));
        w
    });
    let mut l = build_loop(w.clone(), SchedulerLoopConfig::default());
    drive(
        &w,
        SimDuration::from_secs(30),
        SimTime::from_hours(24 * 3),
        |t| {
            l.tick(t);
        },
    );
    let k = l.knowledge().clone();
    (w, k)
}

#[test]
fn campaign_telemetry_exports_as_csv_and_json() {
    let (w, _) = run_small_campaign(1);
    let wb = w.borrow();

    let csv = export::store_csv(&wb.tsdb);
    let mut lines = csv.lines();
    assert_eq!(
        lines.next(),
        Some("metric,domain,unit,time_ms,value"),
        "CSV header"
    );
    let body: Vec<&str> = lines.collect();
    assert!(
        body.len() > 100,
        "a campaign should export substantial telemetry ({} rows)",
        body.len()
    );
    // Every row has the five columns and a numeric tail.
    for row in &body {
        let cols: Vec<&str> = row.split(',').collect();
        assert_eq!(cols.len(), 5, "malformed CSV row: {row}");
        cols[3].parse::<u64>().expect("time_ms numeric");
        cols[4].parse::<f64>().expect("value numeric");
    }
    // Progress markers (the §III.iii "variation of progress markers"
    // dataset) are present.
    assert!(csv.contains(".steps"));

    let json = export::store_json(&wb.tsdb);
    let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid JSON export");
    assert!(parsed.as_array().map(|a| !a.is_empty()).unwrap_or(false));
}

#[test]
fn knowledge_round_trips_through_json() {
    let (_, k) = run_small_campaign(2);
    assert!(k.run_count() > 0, "campaign must have recorded run history");
    let json = serde_json::to_string_pretty(&k).expect("knowledge serializes");
    let back: Knowledge = serde_json::from_str(&json).expect("knowledge deserializes");
    assert_eq!(back.run_count(), k.run_count());
    assert_eq!(back.outcomes().len(), k.outcomes().len());
    assert_eq!(
        serde_json::to_string(&back).unwrap(),
        serde_json::to_string(&k).unwrap(),
        "round-trip must be lossless"
    );
}

#[test]
fn hand_built_knowledge_round_trips() {
    let mut k = Knowledge::new();
    k.record_run(RunRecord {
        app_class: "cfd".into(),
        signature: vec![1.0, 0.2, 0.1, 8.0, 640.0],
        runtime_s: 1234.5,
        total_steps: 640,
        metadata: BTreeMap::from([("deck".to_string(), "re3500".to_string())]),
    });
    k.record_outcome(OutcomeRecord {
        loop_name: "scheduler-loop".into(),
        t: SimTime::from_secs(300),
        kind: "extension".into(),
        confidence: Confidence::new(0.8).value(),
        success: Some(true),
        error: 42.0,
    });
    k.set_fact("job.0.ext_count", 1.0);
    k.set_model("progress-rate", vec![0.5, 1.5]);

    let json = serde_json::to_string(&k).unwrap();
    let back: Knowledge = serde_json::from_str(&json).unwrap();
    assert_eq!(back.fact("job.0.ext_count"), Some(1.0));
    assert_eq!(back.model("progress-rate"), Some(&[0.5, 1.5][..]));
    assert_eq!(back.runs()[0].metadata["deck"], "re3500");
    assert_eq!(back.outcomes()[0].success, Some(true));
}

#[test]
fn series_csv_is_ordered_and_complete() {
    let (w, _) = run_small_campaign(3);
    let wb = w.borrow();
    // Find a progress-marker series.
    let id = wb
        .tsdb
        .names()
        .find(|(name, _)| name.ends_with(".steps"))
        .map(|(_, id)| id)
        .expect("at least one job emitted markers");
    let csv = export::series_csv(&wb.tsdb, id);
    let times: Vec<u64> = csv
        .lines()
        .skip(1)
        .map(|l| l.split(',').next().unwrap().parse().unwrap())
        .collect();
    assert!(!times.is_empty());
    assert!(
        times.windows(2).all(|w| w[0] <= w[1]),
        "exported series must be time-ordered"
    );
}
