//! §III.iii open datasets: exportability of everything a site would
//! release — telemetry series and the Knowledge base — and lossless
//! round-trips for the structured forms.

use moda::core::knowledge::{Knowledge, OutcomeRecord, RunRecord};
use moda::core::Confidence;
use moda::hpc::{workload, World, WorldConfig};
use moda::sim::{RngStreams, SimDuration, SimTime};
use moda::telemetry::export;
use moda::usecases::harness::{drive, shared};
use moda::usecases::scheduler_case::{build_loop, SchedulerLoopConfig};
use std::collections::BTreeMap;

fn run_small_campaign(seed: u64) -> (moda::usecases::harness::SharedWorld, Knowledge) {
    let w = shared({
        let mut w = World::new(WorldConfig {
            nodes: 8,
            seed,
            ..WorldConfig::default()
        });
        w.submit_campaign(workload::generate(
            &workload::WorkloadConfig {
                n_jobs: 20,
                mean_interarrival_s: 60.0,
                ..workload::WorkloadConfig::default()
            },
            &RngStreams::new(seed),
            0,
        ));
        w
    });
    let mut l = build_loop(w.clone(), SchedulerLoopConfig::default());
    drive(
        &w,
        SimDuration::from_secs(30),
        SimTime::from_hours(24 * 3),
        |t| {
            l.tick(t);
        },
    );
    let k = l.knowledge().clone();
    (w, k)
}

#[test]
fn campaign_telemetry_exports_as_csv_and_jsonl() {
    let (w, _) = run_small_campaign(1);
    let wb = w.borrow();

    let csv = export::snapshot_csv(&wb.tsdb);
    let mut lines = csv.lines();
    assert_eq!(
        lines.next(),
        Some("format,moda-export,1"),
        "wire-format preamble"
    );
    let body: Vec<&str> = lines.collect();
    let samples: Vec<&&str> = body.iter().filter(|l| l.starts_with("sample,")).collect();
    assert!(
        samples.len() > 100,
        "a campaign should export substantial telemetry ({} sample rows)",
        samples.len()
    );
    // Every sample row is `sample,<id>,<t_ms>,<value>` with numerics.
    for row in &samples {
        let cols: Vec<&str> = row.split(',').collect();
        assert_eq!(cols.len(), 4, "malformed sample row: {row}");
        cols[1].parse::<u32>().expect("metric id numeric");
        cols[2].parse::<u64>().expect("t_ms numeric");
        cols[3].parse::<f64>().expect("value numeric");
    }
    // One meta row per registered metric, before any of its data.
    let meta_rows = body.iter().filter(|l| l.starts_with("meta,")).count();
    assert_eq!(meta_rows, wb.tsdb.cardinality());
    // Progress markers (the §III.iii "variation of progress markers"
    // dataset) are present, and their compact pyramids ship as sealed
    // buckets with sketch columns.
    assert!(csv.contains(".steps"));
    assert!(csv.lines().any(|l| l.starts_with("bucket,")));
    assert!(csv.lines().any(|l| l.starts_with("sketch,")));

    // The JSON-lines rendering carries the same stream, one valid JSON
    // object per line.
    let jsonl = export::snapshot_jsonl(&wb.tsdb);
    for line in jsonl.lines() {
        let v: serde_json::Value = serde_json::from_str(line).expect("valid JSON line");
        assert!(v["kind"].as_str().is_some());
    }
}

#[test]
fn campaign_export_replays_into_a_downstream_store() {
    let (w, _) = run_small_campaign(1);
    let mut wb = w.borrow_mut();

    // Drain the per-job progress pyramids through the world's own
    // incremental snapshot hook and replay them downstream.
    let mut sink = export::MemorySink::new();
    let stats = wb.export_progress(&mut sink).unwrap();
    assert!(stats.samples > 0 && stats.buckets > 0);
    let mut replay = export::ReplayStore::new();
    for b in &sink.batches {
        replay.apply(b);
    }
    assert!(replay.cardinality() > 0);
    // Every replayed marker series is time-ordered and monotone (step
    // counters), i.e. the dataset is analysis-ready without the node.
    let mut checked = 0;
    for (name, id) in wb.tsdb.names() {
        if !name.ends_with(".steps") {
            continue;
        }
        let Some(rid) = replay.lookup(name) else {
            continue;
        };
        assert_eq!(rid, id, "wire ids are the registry ids");
        let samples = replay.samples(rid);
        assert!(samples.windows(2).all(|p| p[0].0 <= p[1].0));
        checked += 1;
    }
    assert!(checked > 0, "at least one marker series replayed");
}

#[test]
fn knowledge_round_trips_through_json() {
    let (_, k) = run_small_campaign(2);
    assert!(k.run_count() > 0, "campaign must have recorded run history");
    let json = serde_json::to_string_pretty(&k).expect("knowledge serializes");
    let back: Knowledge = serde_json::from_str(&json).expect("knowledge deserializes");
    assert_eq!(back.run_count(), k.run_count());
    assert_eq!(back.outcomes().len(), k.outcomes().len());
    assert_eq!(
        serde_json::to_string(&back).unwrap(),
        serde_json::to_string(&k).unwrap(),
        "round-trip must be lossless"
    );
}

#[test]
fn hand_built_knowledge_round_trips() {
    let mut k = Knowledge::new();
    k.record_run(RunRecord {
        app_class: "cfd".into(),
        signature: vec![1.0, 0.2, 0.1, 8.0, 640.0],
        runtime_s: 1234.5,
        total_steps: 640,
        metadata: BTreeMap::from([("deck".to_string(), "re3500".to_string())]),
    });
    k.record_outcome(OutcomeRecord {
        loop_name: "scheduler-loop".into(),
        t: SimTime::from_secs(300),
        kind: "extension".into(),
        confidence: Confidence::new(0.8).value(),
        success: Some(true),
        error: 42.0,
    });
    k.set_fact("job.0.ext_count", 1.0);
    k.set_model("progress-rate", vec![0.5, 1.5]);

    let json = serde_json::to_string(&k).unwrap();
    let back: Knowledge = serde_json::from_str(&json).unwrap();
    assert_eq!(back.fact("job.0.ext_count"), Some(1.0));
    assert_eq!(back.model("progress-rate"), Some(&[0.5, 1.5][..]));
    assert_eq!(back.runs()[0].metadata["deck"], "re3500");
    assert_eq!(back.outcomes()[0].success, Some(true));
}

#[test]
fn exported_series_are_ordered_and_complete() {
    let (w, _) = run_small_campaign(3);
    let wb = w.borrow();
    // Find a progress-marker series.
    let id = wb
        .tsdb
        .names()
        .find(|(name, _)| name.ends_with(".steps"))
        .map(|(_, id)| id)
        .expect("at least one job emitted markers");
    // A single-metric drain (the per-series dataset shape).
    let mut sink = export::MemorySink::new();
    let stats = export::Exporter::new()
        .drain_metrics(&wb.tsdb, &[id], &mut sink)
        .unwrap();
    // Sealed regions ship as compressed chunk records (wire spec
    // revision 1.1); expand them so the check covers the decoded
    // stream the dataset consumer sees.
    let mut times: Vec<u64> = Vec::new();
    for r in sink.records() {
        match r {
            export::ExportRecord::Sample { t, .. } => times.push(t.0),
            export::ExportRecord::Chunk {
                count,
                first_t,
                bytes,
                ..
            } => {
                let mut vals = Vec::new();
                moda::telemetry::chunk::decode_exact(
                    first_t.0, *count, bytes, &mut times, &mut vals,
                )
                .expect("exported chunk payloads decode");
            }
            _ => {}
        }
    }
    assert!(!times.is_empty());
    assert_eq!(times.len() as u64, stats.samples);
    assert_eq!(times.len(), wb.tsdb.series(id).len(), "complete series");
    assert!(
        times.windows(2).all(|w| w[0] <= w[1]),
        "exported series must be time-ordered"
    );
}
