//! Fig. 2 pattern orchestrators composed with the real use-case loops.
//!
//! The paper's bet is that the MAPE-K formalism lets the same loop be
//! dropped into different architectural patterns unchanged. These tests
//! do exactly that: the Scheduler-case loop (Fig. 3) is run under the
//! classical pattern's cadence, and a per-application fleet of classical
//! loops is compared against one loop watching every job — the paper's
//! "single 'classical' autonomy loop per application" starting point.

use moda::core::patterns::{Classical, Hierarchy, OscillationDamper};
use moda::core::{Domain, LoopReport, MapeLoop};
use moda::hpc::{workload, World, WorldConfig};
use moda::sim::{RngStreams, SimDuration, SimTime};
use moda::usecases::harness::{drive, shared, CampaignStats, SharedWorld};
use moda::usecases::scheduler_case::{build_loop, SchedulerDomain, SchedulerLoopConfig};

fn stressed_world(seed: u64) -> SharedWorld {
    let mut w = World::new(WorldConfig {
        nodes: 16,
        seed,
        power_period: None,
        ..WorldConfig::default()
    });
    w.submit_campaign(workload::generate(
        &workload::WorkloadConfig {
            n_jobs: 40,
            mean_interarrival_s: 90.0,
            walltime_error: workload::WalltimeErrorModel {
                underestimate_frac: 0.3,
                ..workload::WalltimeErrorModel::default()
            },
            ..workload::WorkloadConfig::default()
        },
        &RngStreams::new(seed),
        0,
    ));
    shared(w)
}

/// Drive a pattern-wrapped loop with a fine-grained clock; the pattern's
/// own cadence decides when MAPE actually runs.
fn drive_pattern<D: Domain, F: FnMut(SimTime) -> LoopReport>(
    world: &SharedWorld,
    mut poll: F,
) -> CampaignStats {
    drive(
        world,
        SimDuration::from_secs(5),
        SimTime::from_hours(24 * 7),
        |t| {
            poll(t);
        },
    );
    let stats = CampaignStats::collect(&world.borrow());
    let _ = std::marker::PhantomData::<D>;
    stats
}

#[test]
fn classical_pattern_matches_manual_ticking() {
    // Manual 30 s ticks…
    let w1 = stressed_world(3);
    let mut manual = build_loop(w1.clone(), SchedulerLoopConfig::default());
    drive(
        &w1,
        SimDuration::from_secs(30),
        SimTime::from_hours(24 * 7),
        |t| {
            manual.tick(t);
        },
    );
    let s1 = CampaignStats::collect(&w1.borrow());

    // …must equal the Classical pattern polled at 5 s with a 30 s cadence
    // (the pattern runs MAPE only when due, starting at the same phase).
    let w2 = stressed_world(3);
    let inner = build_loop(w2.clone(), SchedulerLoopConfig::default());
    let mut classical = Classical::new(inner, SimDuration::from_secs(30), SimTime::from_secs(30));
    let s2 = drive_pattern::<moda::usecases::scheduler_case::SchedulerDomain, _>(&w2, |t| {
        classical.poll(t)
    });

    assert_eq!(s1, s2, "pattern cadence must reproduce manual ticking");
    assert!(classical.inner().iterations() > 0);
}

#[test]
fn redundant_loops_are_absorbed_by_scheduler_caps() {
    // §II warns that decentralized loops interact indirectly through the
    // managed system. Worst case: several *identical* Scheduler loops,
    // each with private Knowledge, all watching every job — each one
    // independently requests extensions for the same at-risk job. The
    // scheduler-side trust controls (per-job count and budget caps) are
    // the backstop: outcomes must stay sane and bounds must hold.
    let one_loop = {
        let w = stressed_world(9);
        let mut l = build_loop(w.clone(), SchedulerLoopConfig::default());
        drive(
            &w,
            SimDuration::from_secs(30),
            SimTime::from_hours(24 * 7),
            |t| {
                l.tick(t);
            },
        );
        let stats = CampaignStats::collect(&w.borrow());
        stats
    };

    let (redundant, per_job_bounds_hold) = {
        let w = stressed_world(9);
        let mut loops: Vec<MapeLoop<moda::usecases::scheduler_case::SchedulerDomain>> = (0..3)
            .map(|_| build_loop(w.clone(), SchedulerLoopConfig::default()))
            .collect();
        drive(
            &w,
            SimDuration::from_secs(30),
            SimTime::from_hours(24 * 7),
            |t| {
                for l in loops.iter_mut() {
                    l.tick(t);
                }
            },
        );
        let stats = CampaignStats::collect(&w.borrow());
        let bounds = w
            .borrow()
            .sched
            .jobs()
            .all(|j| j.extensions <= 3 && j.extended_total <= SimDuration::from_hours(2));
        (stats, bounds)
    };

    assert!(
        per_job_bounds_hold,
        "scheduler caps must hold under redundancy"
    );
    // Redundancy may waste requests but must not make outcomes much worse.
    assert!(redundant.timed_out <= one_loop.timed_out + 2);
    assert_eq!(redundant.roots_total, one_loop.roots_total);
}

#[test]
fn hierarchy_supervises_real_loops_across_two_clusters() {
    // Fig. 2(d) over real domain loops: two independent clusters, each
    // managed by its own Scheduler-case loop (fast timescale), under one
    // supervisor on a 20×-slower cadence that tightens/relaxes the
    // children's confidence gates based on their activity — "separation
    // of concerns and time scales" (§II).
    let worlds: Vec<SharedWorld> = (0..2).map(|i| stressed_world(40 + i)).collect();
    let children: Vec<MapeLoop<SchedulerDomain>> = worlds
        .iter()
        .map(|w| build_loop(w.clone(), SchedulerLoopConfig::default()))
        .collect();
    let mut hierarchy = Hierarchy::new(
        children,
        Box::new(OscillationDamper::default()),
        SimDuration::from_secs(30),
        SimDuration::from_secs(600),
    );

    // Drive both worlds against one shared clock; the hierarchy decides
    // internally which timescale fires when.
    let mut t = SimTime::ZERO;
    let horizon = SimTime::from_hours(24 * 7);
    loop {
        t += SimDuration::from_secs(30);
        if t > horizon {
            break;
        }
        for w in &worlds {
            w.borrow_mut().run_until(t);
        }
        hierarchy.poll(t);
        if worlds.iter().all(|w| w.borrow().drained()) {
            break;
        }
    }
    for w in &worlds {
        w.borrow_mut().run_to_completion(horizon);
    }

    assert!(hierarchy.supervision_passes() > 0, "supervisor never ran");
    for (i, w) in worlds.iter().enumerate() {
        let s = CampaignStats::collect(&w.borrow());
        assert_eq!(s.roots_completed, s.roots_total, "cluster {i}: {s:?}");
        assert!(
            s.ext_granted + s.ext_partial > 0,
            "cluster {i}: child loop never acted"
        );
        // Children stay independent: each child's Knowledge only saw its
        // own cluster's jobs.
        assert!(hierarchy.child(i).knowledge().run_count() > 0);
    }
}
