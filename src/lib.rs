//! # moda — Autonomy loops for MODA in HPC operations
//!
//! Facade crate re-exporting the full `moda` stack: a reproduction of
//! *"Autonomy Loops for Monitoring, Operational Data Analytics, Feedback,
//! and Response in HPC Operations"* (CLUSTER 2023).
//!
//! The stack layers, bottom-up:
//!
//! * [`sim`] — deterministic discrete-event simulation engine,
//! * [`telemetry`] — holistic monitoring substrate (metrics, TSDB, samplers),
//! * [`core`] — the MAPE-K autonomy-loop formalism (the paper's contribution),
//! * [`analytics`] — operational data analytics (forecasting, anomaly
//!   detection, similarity, continual learning),
//! * [`scheduler`] — SLURM-like batch scheduler with feedback hooks,
//! * [`pfs`] — Lustre-like parallel filesystem with OSTs and QoS,
//! * [`hpc`] — the simulated HPC center (the *managed system*),
//! * [`usecases`] — the paper's five production use cases wired as
//!   MAPE-K loops over the simulated center.
//!
//! See `examples/quickstart.rs` for a ten-line tour.

pub use moda_analytics as analytics;
pub use moda_core as core;
pub use moda_hpc as hpc;
pub use moda_pfs as pfs;
pub use moda_scheduler as scheduler;
pub use moda_sim as sim;
pub use moda_telemetry as telemetry;
pub use moda_usecases as usecases;
