//! # moda — Autonomy loops for MODA in HPC operations
//!
//! Facade crate re-exporting the full `moda` stack: a reproduction of
//! *"Autonomy Loops for Monitoring, Operational Data Analytics, Feedback,
//! and Response in HPC Operations"* (CLUSTER 2023).
//!
//! The stack layers, bottom-up:
//!
//! * [`sim`] — deterministic discrete-event simulation engine,
//! * [`telemetry`] — holistic monitoring substrate (metrics, TSDB,
//!   rollup/sketch tiers, and the incremental export pipeline),
//! * [`obs`] — self-telemetry: the pipeline instrumented with its own
//!   TSDB (counters, RAII latency spans, a bounded slow-op log, and the
//!   reserved `__self/` scrape that flows through export, fleet
//!   aggregation, and the remote query wire like any other series),
//! * [`core`] — the MAPE-K autonomy-loop formalism (the paper's contribution),
//! * [`analytics`] — operational data analytics (forecasting, anomaly
//!   detection, similarity, continual learning),
//! * [`scheduler`] — SLURM-like batch scheduler with feedback hooks,
//! * [`pfs`] — Lustre-like parallel filesystem with OSTs and QoS,
//! * [`hpc`] — the simulated HPC center (the *managed system*), plus
//!   the multi-`World` cluster harness,
//! * [`usecases`] — the paper's five production use cases wired as
//!   MAPE-K loops over the simulated center,
//! * [`fleet`] — the fleet aggregation tier: per-node wire ingest over
//!   the export format, a namespaced cluster store with wire-fed
//!   rollup pyramids, additive sketch merge (cluster-wide p99 without
//!   raw data), and per-node liveness/staleness health.
//!
//! `ARCHITECTURE.md` (repository root) maps every crate onto the
//! paper's loop layers — Monitoring → Operational Data Analytics →
//! Feedback → Response — and walks the insert → query → export data
//! path through the telemetry store.
//!
//! # Quickstart
//!
//! Build a cluster, let a loop rescue an under-requested job:
//!
//! ```
//! use moda::hpc::{AppProfile, World, WorldConfig};
//! use moda::scheduler::{JobId, JobRequest};
//! use moda::sim::{SimDuration, SimTime};
//! use moda::usecases::harness::{drive, shared};
//! use moda::usecases::scheduler_case::{build_loop, SchedulerLoopConfig};
//!
//! let world = shared(World::new(WorldConfig {
//!     nodes: 4,
//!     power_period: None,
//!     ..WorldConfig::default()
//! }));
//! // 200 steps × 5 s of real work, but only 600 s of requested walltime:
//! // without the loop this job dies at the limit.
//! world.borrow_mut().submit_campaign(vec![(
//!     JobRequest {
//!         id: JobId(0),
//!         user: "alice".into(),
//!         app_class: "cfd".into(),
//!         submit: SimTime::ZERO,
//!         nodes: 2,
//!         walltime: SimDuration::from_secs(600),
//!     },
//!     AppProfile {
//!         app_class: "cfd".into(),
//!         total_steps: 200,
//!         mean_step_s: 5.0,
//!         step_cv: 0.1,
//!         io_every: 0,
//!         io_mb: 0.0,
//!         stripe: 1,
//!         phase_change: None,
//!         checkpoint_cost_s: 10.0,
//!         misconfig: None,
//!         scale: 1000.0,
//!         cores_per_rank: 8,
//!     },
//! )]);
//! let mut l = build_loop(world.clone(), SchedulerLoopConfig::default());
//! drive(&world, SimDuration::from_secs(30), SimTime::from_hours(4), |t| {
//!     l.tick(t);
//! });
//! assert_eq!(world.borrow().metrics.completed, 1, "the loop negotiated the extension");
//! ```
//!
//! And the monitoring substrate on its own — insert, wide query, export:
//!
//! ```
//! use moda::sim::{SimDuration, SimTime};
//! use moda::telemetry::export::{Exporter, MemorySink};
//! use moda::telemetry::{MetricMeta, RollupConfig, SourceDomain, Tsdb, WindowAgg};
//!
//! let mut db = Tsdb::new();
//! let id = db.register(MetricMeta::gauge("node.0.power_w", "W", SourceDomain::Hardware));
//! db.enable_rollups(id, &RollupConfig::standard().with_sketches());
//! for s in 0..3600u64 {
//!     db.insert(id, SimTime::from_secs(s), 200.0 + (s % 50) as f64);
//! }
//! // Wide queries are served from sealed rollup buckets (p99 via sketches).
//! let now = SimTime::from_secs(3599);
//! let p99 = db.window_agg(id, now, SimDuration::from_hours(1), WindowAgg::Percentile(0.99));
//! assert!(p99.is_some());
//! // The Knowledge layer leaves the node through the incremental exporter.
//! let mut sink = MemorySink::new();
//! let stats = Exporter::new().drain(&db, &mut sink).unwrap();
//! assert_eq!(stats.samples, 3600);
//! assert!(stats.buckets > 0 && stats.sketch_entries > 0);
//! ```
//!
//! # Runnable examples
//!
//! `cargo run --release --example <name>`:
//!
//! * `quickstart` — the ten-line tour above, narrated,
//! * `rollup_analytics` — week-wide aggregates and p99 from the rollup
//!   tier, orders of magnitude past raw scans and raw retention,
//! * `export_pipeline` — the incremental export walkthrough: daily
//!   drains of samples + sealed buckets + sketch columns into a CSV
//!   dataset, replayed into a downstream store (the wire format is
//!   specified in `docs/EXPORT_FORMAT.md`),
//! * `adaptive_sampling`, `holistic_dashboard`, `pattern_zoo`,
//!   `scheduler_autonomy`, `maintenance_window`, `failure_resilience`,
//!   `ost_failover`, `misconfig_triage` — one per subsystem/use case.

pub use moda_analytics as analytics;
pub use moda_core as core;
pub use moda_fleet as fleet;
pub use moda_hpc as hpc;
pub use moda_obs as obs;
pub use moda_pfs as pfs;
pub use moda_scheduler as scheduler;
pub use moda_sim as sim;
pub use moda_telemetry as telemetry;
pub use moda_usecases as usecases;
