//! Offline stub of `serde` for this workspace.
//!
//! Real serde abstracts over data formats with visitor machinery; this
//! stub collapses that to a single in-memory [`Value`] tree (the only
//! format the workspace uses is JSON, via the sibling `serde_json` stub):
//!
//! * [`Serialize`] converts a value into a [`Value`],
//! * [`Deserialize`] reconstructs a value from a [`Value`],
//! * the `derive` feature re-exports `#[derive(Serialize, Deserialize)]`
//!   proc-macros from `serde_derive` that generate those impls with
//!   serde's externally-tagged enum representation.

mod value;

pub use value::{Number, Value};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// Construct from any message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

macro_rules! de_err {
    ($($arg:tt)*) => { Err($crate::DeError::custom(format!($($arg)*))) };
}

/// Convert `self` into a [`Value`] tree.
pub trait Serialize {
    /// Build the value tree.
    fn to_value(&self) -> Value;
}

/// Reconstruct `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parse from the value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// Called when a struct field is absent. Overridden by `Option` (and
    /// other defaultable containers) to supply an empty value, matching
    /// serde's behaviour for optional fields.
    fn missing_field(field: &str) -> Result<Self, DeError> {
        de_err!("missing field `{field}`")
    }
}

/// Look up a key in an object body (helper used by derived code).
pub fn value_get<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

// --------------------------------------------------------------- impls

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v.as_u64() {
                    Some(n) if n <= <$t>::MAX as u64 => Ok(n as $t),
                    _ => de_err!("expected {}, got {v:?}", stringify!($t)),
                }
            }
        }
    )*};
}
ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n < 0 {
                    Value::Number(Number::I64(n))
                } else {
                    Value::Number(Number::U64(n as u64))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v.as_i64() {
                    Some(n) if n >= <$t>::MIN as i64 && n <= <$t>::MAX as i64 => Ok(n as $t),
                    _ => de_err!("expected {}, got {v:?}", stringify!($t)),
                }
            }
        }
    )*};
}
ser_de_int!(i8, i16, i32, i64, isize);

macro_rules! ser_de_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::F64(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Number(n) => Ok(n.as_f64() as $t),
                    // serde_json renders non-finite floats as null.
                    Value::Null => Ok(<$t>::NAN),
                    _ => de_err!("expected {}, got {v:?}", stringify!($t)),
                }
            }
        }
    )*};
}
ser_de_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => de_err!("expected bool, got {v:?}"),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => de_err!("expected string, got {v:?}"),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => de_err!("expected single-char string, got {v:?}"),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn missing_field(_field: &str) -> Result<Self, DeError> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => de_err!("expected array, got {v:?}"),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => de_err!("expected array, got {v:?}"),
        }
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => de_err!("expected array, got {v:?}"),
        }
    }
}

/// Map keys must render as JSON strings.
pub trait MapKey: Sized {
    /// Render as an object key.
    fn to_key(&self) -> String;
    /// Parse back from an object key.
    fn from_key(key: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, DeError> {
        Ok(key.to_string())
    }
}

macro_rules! map_key_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, DeError> {
                key.parse().map_err(|_| DeError::custom(format!("bad numeric key `{key}`")))
            }
        }
    )*};
}
map_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sort keys for deterministic output, matching serde_json's
        // BTreeMap-backed Value.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K: MapKey + std::hash::Hash + Eq, V: Deserialize, S> Deserialize
    for std::collections::HashMap<K, V, S>
where
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            _ => de_err!("expected object, got {v:?}"),
        }
    }
}

impl<K: MapKey, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            _ => de_err!("expected object, got {v:?}"),
        }
    }
}

macro_rules! ser_de_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = $n; 1 })+;
                match v {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    _ => de_err!("expected {LEN}-tuple array, got {v:?}"),
                }
            }
        }
    )*};
}
ser_de_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
