//! The in-memory value tree shared by the `serde` and `serde_json` stubs.

use std::ops::Index;

/// A JSON-shaped value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered list.
    Array(Vec<Value>),
    /// Key → value entries in insertion order.
    Object(Vec<(String, Value)>),
}

/// A JSON number, preserving integer-ness for exact round trips.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Anything written with a fraction or exponent.
    F64(f64),
}

impl Number {
    /// Lossy conversion to `f64`.
    pub fn as_f64(self) -> f64 {
        match self {
            Number::U64(n) => n as f64,
            Number::I64(n) => n as f64,
            Number::F64(n) => n,
        }
    }
}

impl Value {
    /// The value if it is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The entries if the value is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// The value if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U64(n)) => Some(*n),
            Value::Number(Number::F64(f)) if *f >= 0.0 && f.fract() == 0.0 => Some(*f as u64),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::I64(n)) => Some(*n),
            Value::Number(Number::U64(n)) if *n <= i64::MAX as u64 => Some(*n as i64),
            Value::Number(Number::F64(f)) if f.fract() == 0.0 => Some(*f as i64),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(o) => o.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl Index<&str> for Value {
    type Output = Value;

    /// Field access; missing keys index to `Null` (like serde_json).
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&Value::Null)
    }
}

impl Index<usize> for Value {
    type Output = Value;

    /// Array element access; out-of-range indexes to `Null`.
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&Value::Null),
            _ => &Value::Null,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<i32> for Value {
    fn eq(&self, other: &i32) -> bool {
        self.as_i64() == Some(*other as i64)
    }
}
