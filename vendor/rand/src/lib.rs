//! Offline stub of `rand` 0.8 for this workspace.
//!
//! Provides `StdRng` (xoshiro256** seeded via splitmix64), the `Rng`,
//! `RngCore`, and `SeedableRng` traits, `gen`/`gen_range`/`gen_bool`,
//! and uniform range sampling for the numeric types the workspace uses.
//! Deterministic: the same seed always yields the same stream.

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface.
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible uniformly at random ("standard" distribution).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Types with uniform range sampling.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw from `[lo, hi)` or `[lo, hi]`.
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + Copy> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty gen_range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty gen_range");
        T::sample_uniform(rng, lo, hi, true)
    }
}

/// High-level generator interface (blanket-implemented over [`RngCore`]).
pub trait Rng: RngCore {
    /// Uniform value of any [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Uniform value in `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as u64)
                    .wrapping_sub(lo as u64)
                    .wrapping_add(inclusive as u64);
                if span == 0 {
                    // Inclusive full-domain range wrapped to zero.
                    return rng.next_u64() as $t;
                }
                // Modulo bias is negligible for simulation-scale spans.
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                let u = f64::from_rng(rng) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for rand's StdRng).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(z: &mut u64) -> u64 {
        *z = z.wrapping_add(0x9E3779B97F4A7C15);
        let mut x = *z;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
        x ^ (x >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut z = seed;
            let s = [
                splitmix64(&mut z),
                splitmix64(&mut z),
                splitmix64(&mut z),
                splitmix64(&mut z),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** (Blackman & Vigna, public domain).
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_rate() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }
}
