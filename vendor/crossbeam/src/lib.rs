//! Offline stub of `crossbeam`, implementing the `channel` module this
//! workspace uses over `std::sync::mpsc`.

pub mod channel {
    //! MPSC channels with the crossbeam-channel API shape.
    use std::sync::mpsc;

    pub use mpsc::{RecvError, SendError, TryRecvError};

    /// Sending half of a channel (cloneable).
    pub struct Sender<T>(SenderInner<T>);

    enum SenderInner<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(match &self.0 {
                SenderInner::Unbounded(s) => SenderInner::Unbounded(s.clone()),
                SenderInner::Bounded(s) => SenderInner::Bounded(s.clone()),
            })
        }
    }

    impl<T> Sender<T> {
        /// Send a value, blocking if the channel is bounded and full.
        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            match &self.0 {
                SenderInner::Unbounded(s) => s.send(t),
                SenderInner::Bounded(s) => s.send(t),
            }
        }
    }

    /// Receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block until a value arrives or all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Iterate over received values until senders disconnect.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    /// Channel with unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(SenderInner::Unbounded(tx)), Receiver(rx))
    }

    /// Channel with bounded capacity.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(SenderInner::Bounded(tx)), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn unbounded_round_trip() {
        let (tx, rx) = channel::unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.try_recv().unwrap(), 2);
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn bounded_round_trip() {
        let (tx, rx) = channel::bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
    }
}
