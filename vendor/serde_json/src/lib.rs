//! Offline stub of `serde_json`: renders and parses the [`serde`] stub's
//! [`Value`] tree as JSON text.
//!
//! Numbers keep their integer-ness (`u64`/`i64`) where possible so that
//! parse → print round trips are textually stable, and floats print via
//! Rust's shortest-round-trip formatting with a trailing `.0` appended to
//! integral floats (matching serde_json's output shape).

pub use serde::{Number, Value};

/// Error from (de)serialization.
pub type Error = serde::DeError;

/// Serialize to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to human-indented JSON (two spaces, like serde_json).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Parse JSON text into any deserializable type (including [`Value`]).
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    T::from_value(&v)
}

// ------------------------------------------------------------- printer

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
}

fn write_number(out: &mut String, n: Number) {
    use std::fmt::Write as _;
    match n {
        Number::U64(u) => {
            let _ = write!(out, "{u}");
        }
        Number::I64(i) => {
            let _ = write!(out, "{i}");
        }
        Number::F64(f) => {
            if !f.is_finite() {
                // serde_json cannot represent non-finite floats; render null.
                out.push_str("null");
            } else {
                let start = out.len();
                let _ = write!(out, "{f}");
                // Mark integral floats as floats, as serde_json does.
                if !out[start..].contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// -------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::custom(format!("bad literal at byte {}", self.pos)))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::custom(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("bad \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            // Surrogate pairs are unsupported (the printer
                            // never emits them); map to replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::custom("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = text.chars().next().expect("non-empty");
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("bad number"))?;
        let n = if is_float {
            Number::F64(
                text.parse::<f64>()
                    .map_err(|_| Error::custom(format!("bad number `{text}`")))?,
            )
        } else if text.starts_with('-') {
            Number::I64(
                text.parse::<i64>()
                    .map_err(|_| Error::custom(format!("bad number `{text}`")))?,
            )
        } else {
            Number::U64(
                text.parse::<u64>()
                    .map_err(|_| Error::custom(format!("bad number `{text}`")))?,
            )
        };
        Ok(Value::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&100.0f64).unwrap(), "100.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("a\"b").unwrap(), "\"a\\\"b\"");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("1.5e3").unwrap(), 1500.0);
        assert_eq!(from_str::<String>("\"x\\ny\"").unwrap(), "x\ny");
    }

    #[test]
    fn round_trip_collections() {
        let v = vec![(1u64, 2.5f64), (3, 4.0)];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1,2.5],[3,4.0]]");
        let back: Vec<(u64, f64)> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn value_indexing() {
        let v: Value = from_str(r#"{"a": [1, {"b": "x"}], "c": null}"#).unwrap();
        assert_eq!(v["a"][0], 1u64);
        assert_eq!(v["a"][1]["b"], "x");
        assert!(v["c"].is_null());
        assert!(v["missing"].is_null());
    }

    #[test]
    fn pretty_shape() {
        let v: Value = from_str(r#"{"a":[1,2]}"#).unwrap();
        let p = to_string_pretty(&v).unwrap();
        assert_eq!(p, "{\n  \"a\": [\n    1,\n    2\n  ]\n}");
    }

    #[test]
    fn float_text_round_trip_is_stable() {
        for f in [0.1f64, 1.0 / 3.0, 1e-12, 123456.789, 1e20] {
            let s1 = to_string(&f).unwrap();
            let back: f64 = from_str(&s1).unwrap();
            assert_eq!(back.to_bits(), f.to_bits());
            let s2 = to_string(&back).unwrap();
            assert_eq!(s1, s2);
        }
    }
}
