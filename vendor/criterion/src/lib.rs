//! Offline stub of `criterion` for this workspace.
//!
//! Implements the API surface the bench files use — `Criterion`,
//! `BenchmarkGroup`, `Bencher::iter`/`iter_batched`, `BenchmarkId`,
//! `Throughput`, `BatchSize`, and the `criterion_group!`/
//! `criterion_main!` macros — with a real wall-clock measurement loop:
//! each benchmark is warmed up, auto-calibrated to a target measurement
//! window, then reported as mean ns/iter (plus derived throughput).
//!
//! Environment knobs:
//! * `CRITERION_JSON=<path>` — append one JSON record per benchmark,
//!   `{"name": ..., "mean_ns": ..., "iters": ..., "throughput_elems_per_s": ...}`.
//! * `CRITERION_MEASURE_MS` — measurement window per bench (default 120).
//! * `CRITERION_WARMUP_MS` — warmup window per bench (default 40).

use std::hint;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Per-iteration setup cost class (ignored by the stub's timer beyond
/// excluding setup from measurement).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Benchmark identifier: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function/parameter` id.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled by `iter`.
    mean_ns: f64,
    /// Total measured iterations.
    iters: u64,
}

fn env_ms(name: &str, default_ms: u64) -> Duration {
    Duration::from_millis(
        std::env::var(name)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default_ms),
    )
}

impl Bencher {
    /// Measure `routine`, auto-calibrating the iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warmup = env_ms("CRITERION_WARMUP_MS", 40);
        let measure = env_ms("CRITERION_MEASURE_MS", 120);

        // Warmup + calibration: count how many iterations fit.
        let start = Instant::now();
        let mut warm_iters = 0u64;
        while start.elapsed() < warmup || warm_iters == 0 {
            hint::black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000_000 {
                break;
            }
        }
        let per_iter = start.elapsed().as_secs_f64() / warm_iters as f64;
        let target_iters = ((measure.as_secs_f64() / per_iter).ceil() as u64).max(1);

        let t0 = Instant::now();
        for _ in 0..target_iters {
            hint::black_box(routine());
        }
        let elapsed = t0.elapsed();
        self.mean_ns = elapsed.as_nanos() as f64 / target_iters as f64;
        self.iters = target_iters;
    }

    /// Measure `routine` with per-iteration `setup` excluded from timing.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warmup = env_ms("CRITERION_WARMUP_MS", 40);
        let measure = env_ms("CRITERION_MEASURE_MS", 120);

        let start = Instant::now();
        let mut warm_iters = 0u64;
        let mut routine_time = Duration::ZERO;
        while start.elapsed() < warmup || warm_iters == 0 {
            let input = setup();
            let t = Instant::now();
            hint::black_box(routine(input));
            routine_time += t.elapsed();
            warm_iters += 1;
        }
        let per_iter = (routine_time.as_secs_f64() / warm_iters as f64).max(1e-9);
        let target_iters = ((measure.as_secs_f64() / per_iter).ceil() as u64).max(1);

        let mut total = Duration::ZERO;
        for _ in 0..target_iters {
            let input = setup();
            let t = Instant::now();
            hint::black_box(routine(input));
            total += t.elapsed();
        }
        self.mean_ns = total.as_nanos() as f64 / target_iters as f64;
        self.iters = target_iters;
    }
}

#[derive(Debug)]
struct Record {
    name: String,
    mean_ns: f64,
    iters: u64,
    throughput: Option<Throughput>,
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    records: Vec<Record>,
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut b);
        self.report(name, b, None);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    fn report(&mut self, name: &str, b: Bencher, throughput: Option<Throughput>) {
        let thr = match throughput {
            Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) => {
                format!(" ({:.1} M/s)", n as f64 / b.mean_ns * 1e3)
            }
            None => String::new(),
        };
        println!("bench: {:<48} {:>14.1} ns/iter{}", name, b.mean_ns, thr);
        self.records.push(Record {
            name: name.to_string(),
            mean_ns: b.mean_ns,
            iters: b.iters,
            throughput,
        });
    }

    /// Write collected results as JSON to `CRITERION_JSON`, if set.
    pub fn finalize(&self) {
        let Ok(path) = std::env::var("CRITERION_JSON") else {
            return;
        };
        let mut out = String::from("[\n");
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            let thr = match r.throughput {
                Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) => {
                    format!(",\"elems_per_s\":{:.1}", n as f64 / r.mean_ns * 1e9)
                }
                None => String::new(),
            };
            out.push_str(&format!(
                "  {{\"name\":\"{}\",\"mean_ns\":{:.2},\"iters\":{}{}}}",
                r.name, r.mean_ns, r.iters, thr
            ));
        }
        out.push_str("\n]\n");
        if let Ok(mut f) = std::fs::File::create(&path) {
            let _ = f.write_all(out.as_bytes());
        }
    }
}

/// Scoped group of benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the throughput annotation for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API parity; the stub auto-calibrates iteration counts
    /// instead of using a fixed sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API parity (see [`BenchmarkGroup::sample_size`]).
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Run one parameterized benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut b, input);
        let name = format!("{}/{}", self.name, id.id);
        self.criterion.report(&name, b, self.throughput);
        self
    }

    /// Run one named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut b);
        let name = format!("{}/{}", self.name, id);
        self.criterion.report(&name, b, self.throughput);
        self
    }

    /// Close the group (no-op beyond API parity).
    pub fn finish(self) {}
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
            c.finalize();
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
